"""Figure 10: all matmul strategies + analysis (n = 100 blocks).

The million-task instance of the paper (at paper scale).  Checks the
ordering and that the analysis tracks the two-phase strategy at the
largest p.
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig10(benchmark):
    fig = run_figure_benchmark(benchmark, "fig10")
    for i in range(len(fig["DynamicMatrix2Phases"])):
        assert fig["DynamicMatrix2Phases"].mean[i] < fig["RandomMatrix"].mean[i]
    sim = fig["DynamicMatrix2Phases"].mean[-1]
    ana = fig["Analysis"].mean[-1]
    assert abs(ana - sim) / sim < 0.25
