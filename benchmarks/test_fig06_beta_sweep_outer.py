"""Figure 6: outer-product communication vs β (p = 20, fixed speeds).

Checks that the β minimizing the analysis lands inside the simulated
valley, and that the speed-agnostic β (Section 3.6) is within a few
percent of it.
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig06(benchmark):
    fig = run_figure_benchmark(benchmark, "fig06")
    sweep = fig["DynamicOuter2Phases"]
    beta_star = fig.meta["beta_opt_analysis"]
    xs = sweep.x
    best_idx = min(range(len(sweep)), key=lambda i: sweep.mean[i])
    # beta* within the simulated flat valley (half the sweep range).
    assert abs(xs[best_idx] - beta_star) <= (max(xs) - min(xs)) / 2
    # Speed agnosticism.
    assert abs(fig.meta["beta_opt_agnostic"] - beta_star) / beta_star < 0.10
