"""Extension benchmark: the bandwidth/prefetch study (paper's open model).

Times the bandwidth-limited engine and checks the two regime claims: the
run is communication-bound below the critical bandwidth and overlaps with
a small prefetch above it.
"""

import pytest

from repro.core.strategies import OuterTwoPhase
from repro.extensions.overlap import critical_bandwidth, simulate_with_bandwidth
from repro.platform import Platform, uniform_speeds

P, N = 20, 60


@pytest.fixture(scope="module")
def platform():
    return Platform(uniform_speeds(P, 10, 100, rng=0))


def test_overlap_regimes(benchmark, platform):
    def run():
        b_star = critical_bandwidth(lambda: OuterTwoPhase(N), platform, rng=1)
        low = simulate_with_bandwidth(
            OuterTwoPhase(N), platform, bandwidth=0.5 * b_star, prefetch_tasks=2, rng=1
        )
        high = simulate_with_bandwidth(
            OuterTwoPhase(N), platform, bandwidth=4.0 * b_star, prefetch_tasks=2, rng=1
        )
        return low.slowdown, high.slowdown

    low, high = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nslowdown at B*/2: {low:.2f}   at 4B*: {high:.2f}")
    assert low >= 1.8
    assert high < 1.5
