"""Section 3.6: β is effectively speed-agnostic.

Regenerates the textual study: across random heterogeneous speed draws,
the homogeneous β deviates little from the per-draw optimum and costs a
negligible amount of predicted communication volume.
"""

from benchmarks.conftest import run_figure_benchmark


def test_sec36(benchmark):
    fig = run_figure_benchmark(benchmark, "sec36")
    assert max(fig["max_beta_rel_dev"].mean) < 0.15
    assert max(fig["max_volume_rel_error"].mean) < 0.01
