"""Benchmark of the live threaded runtime (real BLAS kernels).

Times an actual multi-threaded outer product and matmul driven by
DynamicOuter2Phases / DynamicMatrix, and checks numerical correctness.
Wall-clock scaling is hardware/GIL-dependent and is *reported*, not
asserted.
"""

import numpy as np
import pytest

from repro.execution.live import run_matrix_live, run_outer_live


@pytest.fixture(scope="module")
def outer_data():
    rng = np.random.default_rng(0)
    n, l = 40, 64
    return n, rng.normal(size=n * l), rng.normal(size=n * l)


@pytest.fixture(scope="module")
def matrix_data():
    rng = np.random.default_rng(1)
    n, l = 12, 48
    m = rng.normal(size=(n * l, n * l))
    return n, m, rng.normal(size=(n * l, n * l))


def test_live_outer(benchmark, outer_data):
    n, a, b = outer_data
    report = benchmark.pedantic(
        lambda: run_outer_live(a, b, n, n_workers=4, rng=0), rounds=3, iterations=1
    )
    assert report.max_abs_error == 0.0
    assert report.total_tasks == n * n


def test_live_matrix(benchmark, matrix_data):
    n, a, b = matrix_data
    report = benchmark.pedantic(
        lambda: run_matrix_live(a, b, n, n_workers=4, rng=0), rounds=3, iterations=1
    )
    assert report.max_abs_error < 1e-9
    assert report.total_tasks == n**3
