"""Figure 11: matmul communication vs β (p = 100, n = 40 at paper scale).

Checks that the analysis' β* sits in the simulated valley and that the
agnostic β is close (paper: 2.95 vs 2.92).
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig11(benchmark):
    fig = run_figure_benchmark(benchmark, "fig11")
    sweep = fig["DynamicMatrix2Phases"]
    beta_star = fig.meta["beta_opt_analysis"]
    xs = sweep.x
    best_idx = min(range(len(sweep)), key=lambda i: sweep.mean[i])
    assert abs(xs[best_idx] - beta_star) <= (max(xs) - min(xs)) / 2
    assert abs(fig.meta["beta_opt_agnostic"] - beta_star) / beta_star < 0.10
