"""Shared machinery for the figure benchmarks.

Every ``bench_figNN`` target regenerates one figure of the paper and prints
its series (the same rows the paper plots).  The default scale is ``ci``
(seconds per figure); set ``REPRO_SCALE=medium`` or ``REPRO_SCALE=paper``
to rerun at larger sizes, e.g.::

    REPRO_SCALE=medium pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import generate
from repro.experiments.io import render_figure

__all__ = ["run_figure_benchmark"]


def _scale() -> str:
    return os.environ.get("REPRO_SCALE", "ci")


@pytest.fixture
def figure_scale() -> str:
    return _scale()


def run_figure_benchmark(benchmark, figure_id: str, seed: int = 0):
    """Generate *figure_id* under pytest-benchmark timing and print it."""
    scale = _scale()
    fig = benchmark.pedantic(
        generate,
        args=(figure_id,),
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure(fig))
    return fig
