"""Figure 5: all outer-product strategies + analysis (n = 1000 blocks).

Checks the paper's key observation at larger n: the gap between the random
strategies and the data-aware ones *widens* (compare with Figure 4 — the
ratio Random/2Phases grows with n).
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig05(benchmark):
    fig = run_figure_benchmark(benchmark, "fig05")
    for i in range(len(fig["DynamicOuter2Phases"])):
        ratio = fig["RandomOuter"].mean[i] / fig["DynamicOuter2Phases"].mean[i]
        assert ratio > 1.5
