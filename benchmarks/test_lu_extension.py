"""Extension benchmark: the tiled-LU DAG scheduler."""

import numpy as np
import pytest

from repro.extensions.lu import LocalityScheduler, RandomScheduler, lu_task_counts, simulate_lu
from repro.platform import Platform, uniform_speeds

N_TILES = 14
REPS = 3


@pytest.fixture(scope="module")
def platform():
    return Platform(uniform_speeds(12, 10, 100, rng=0))


def test_lu_locality_gain(benchmark, platform):
    def run():
        rnd = np.mean(
            [simulate_lu(N_TILES, platform, RandomScheduler(), rng=s).total_blocks for s in range(REPS)]
        )
        loc = np.mean(
            [simulate_lu(N_TILES, platform, LocalityScheduler(), rng=s).total_blocks for s in range(REPS)]
        )
        return rnd, loc

    rnd, loc = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRandomLU={rnd:.0f} blocks  LocalityLU={loc:.0f} blocks")
    assert loc < 0.85 * rnd


def test_lu_simulation_speed(benchmark, platform):
    total = sum(lu_task_counts(N_TILES).values())
    result = benchmark.pedantic(
        lambda: simulate_lu(N_TILES, platform, LocalityScheduler(), rng=1),
        rounds=3,
        iterations=1,
    )
    assert result.total_tasks == total
