"""Figure 8: heterogeneity scenarios unif.1/unif.2/set.3/set.5/dyn.5/dyn.20.

Checks the paper's conclusion: neither the speed-class structure nor the
dynamic speed drift changes the ranking of the heuristics.
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig08(benchmark):
    fig = run_figure_benchmark(benchmark, "fig08")
    assert list(fig.x_categories) == ["unif.1", "unif.2", "set.3", "set.5", "dyn.5", "dyn.20"]
    for i in range(6):
        assert fig["DynamicOuter"].mean[i] < fig["RandomOuter"].mean[i]
        assert fig["DynamicOuter2Phases"].mean[i] < fig["RandomOuter"].mean[i]
