"""Figure 4: all outer-product strategies + analysis (n = 100 blocks).

Checks the full ordering and that the analysis tracks the two-phase
strategy at the largest p of the grid.
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig04(benchmark):
    fig = run_figure_benchmark(benchmark, "fig04")
    for i in range(len(fig["DynamicOuter2Phases"])):
        assert fig["DynamicOuter2Phases"].mean[i] < fig["RandomOuter"].mean[i]
        assert fig["DynamicOuter2Phases"].mean[i] < fig["SortedOuter"].mean[i]
    sim = fig["DynamicOuter2Phases"].mean[-1]
    ana = fig["Analysis"].mean[-1]
    assert abs(ana - sim) / sim < 0.25
