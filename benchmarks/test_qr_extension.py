"""Extension benchmark: the tiled-QR DAG scheduler (future work of the paper).

Checks the data-aware principle on the second factorization kernel and
times the engine at a realistic tile count.
"""

import numpy as np
import pytest

from repro.extensions.qr import LocalityScheduler, RandomScheduler, qr_task_counts, simulate_qr
from repro.platform import Platform, uniform_speeds

N_TILES = 14
REPS = 3


@pytest.fixture(scope="module")
def platform():
    return Platform(uniform_speeds(12, 10, 100, rng=0))


def test_qr_locality_gain(benchmark, platform):
    def run():
        rnd = np.mean(
            [simulate_qr(N_TILES, platform, RandomScheduler(), rng=s).total_blocks for s in range(REPS)]
        )
        loc = np.mean(
            [simulate_qr(N_TILES, platform, LocalityScheduler(), rng=s).total_blocks for s in range(REPS)]
        )
        return rnd, loc

    rnd, loc = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRandomQR={rnd:.0f} blocks  LocalityQR={loc:.0f} blocks")
    assert loc < 0.85 * rnd


def test_qr_simulation_speed(benchmark, platform):
    total = sum(qr_task_counts(N_TILES).values())
    result = benchmark.pedantic(
        lambda: simulate_qr(N_TILES, platform, LocalityScheduler(), rng=1),
        rounds=3,
        iterations=1,
    )
    assert result.total_tasks == total
