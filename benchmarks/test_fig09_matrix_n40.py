"""Figure 9: all matmul strategies + analysis (n = 40 blocks).

Checks the ordering carries over from the outer product to matmul.  The
plain DynamicMatrix-vs-RandomMatrix comparison only holds at the paper's
n = 40 (at the ci smoke size n = 10 the dynamic end-phase waste dominates),
so it is asserted at medium/paper scale only.
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig09(benchmark, figure_scale):
    fig = run_figure_benchmark(benchmark, "fig09")
    for i in range(len(fig["DynamicMatrix2Phases"])):
        assert fig["DynamicMatrix2Phases"].mean[i] < fig["RandomMatrix"].mean[i]
        if figure_scale != "ci":
            assert fig["DynamicMatrix"].mean[i] < fig["RandomMatrix"].mean[i]
