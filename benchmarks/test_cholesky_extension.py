"""Extension benchmark: the Cholesky DAG scheduler (future work of the paper).

Times the dependency-aware simulation at a realistic tile count and checks
the data-aware principle carries over: locality-aware ready-task selection
ships substantially fewer blocks than random selection.
"""

import numpy as np
import pytest

from repro.extensions.cholesky import LocalityScheduler, RandomScheduler, simulate_cholesky
from repro.platform import Platform, uniform_speeds

N_TILES = 20
REPS = 3


@pytest.fixture(scope="module")
def platform():
    return Platform(uniform_speeds(16, 10, 100, rng=0))


def test_cholesky_locality_gain(benchmark, platform):
    def run():
        rnd = np.mean(
            [simulate_cholesky(N_TILES, platform, RandomScheduler(), rng=s).total_blocks for s in range(REPS)]
        )
        loc = np.mean(
            [simulate_cholesky(N_TILES, platform, LocalityScheduler(), rng=s).total_blocks for s in range(REPS)]
        )
        return rnd, loc

    rnd, loc = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRandomCholesky={rnd:.0f} blocks  LocalityCholesky={loc:.0f} blocks")
    assert loc < 0.8 * rnd  # at least a 20% cut


def test_cholesky_simulation_speed(benchmark, platform):
    """Raw engine throughput on the 1540-task n=20 instance."""
    result = benchmark.pedantic(
        lambda: simulate_cholesky(N_TILES, platform, LocalityScheduler(), rng=1),
        rounds=3,
        iterations=1,
    )
    assert result.total_tasks == 1540
