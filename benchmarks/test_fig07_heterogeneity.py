"""Figure 7: impact of the heterogeneity level (p = 20).

Checks the paper's conclusion: the strategy ranking is invariant across
heterogeneity levels from homogeneous (h = 0) to extreme (h -> 100).
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig07(benchmark):
    fig = run_figure_benchmark(benchmark, "fig07")
    for i in range(len(fig["DynamicOuter"])):
        assert fig["DynamicOuter"].mean[i] < fig["RandomOuter"].mean[i]
        assert fig["DynamicOuter2Phases"].mean[i] <= fig["DynamicOuter"].mean[i] * 1.1
