"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three questions the paper raises but does not isolate in a figure:

1. **How much does the second phase buy?**  DynamicOuter vs
   DynamicOuter2Phases at the analysis-chosen β.
2. **What does speed-agnosticism cost?**  β tuned with the true relative
   speeds vs the homogeneous β of Section 3.6.
3. **How close does the best dynamic strategy get to a fully static
   schedule with perfect speed knowledge?**  DynamicOuter2Phases vs the
   7/4-approximation column partition (paper reference [2]).
"""

import numpy as np
import pytest

from repro.core.analysis import outer_lower_bound
from repro.core.strategies import OuterDynamic, OuterTwoPhase
from repro.partition import partition_square
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate

P, N, REPS = 50, 100, 5


@pytest.fixture(scope="module")
def platform():
    return Platform(uniform_speeds(P, 10, 100, rng=0))


@pytest.fixture(scope="module")
def lb(platform):
    return outer_lower_bound(platform.relative_speeds, N)


def _mean(strategy_factory, platform, lb, reps=REPS):
    return float(
        np.mean([simulate(strategy_factory(), platform, rng=s).normalized(lb) for s in range(reps)])
    )


def test_phase2_gain(benchmark, platform, lb):
    """Ablation 1: the second phase must cut communication measurably."""

    def run():
        dyn = _mean(lambda: OuterDynamic(N), platform, lb)
        two = _mean(lambda: OuterTwoPhase(N), platform, lb)
        return dyn, two

    dyn, two = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nDynamicOuter={dyn:.3f}  DynamicOuter2Phases={two:.3f}  gain={(dyn - two) / dyn:.1%}")
    assert two < dyn
    assert (dyn - two) / dyn > 0.05  # at least a 5% cut at this size


def test_agnostic_beta_cost(benchmark, platform, lb):
    """Ablation 2: the homogeneous beta costs < 2% extra communication."""

    def run():
        exact = _mean(lambda: OuterTwoPhase(N), platform, lb)
        agnostic = _mean(lambda: OuterTwoPhase(N, agnostic=True), platform, lb)
        return exact, agnostic

    exact, agnostic = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbeta(speeds)={exact:.3f}  beta(agnostic)={agnostic:.3f}")
    assert agnostic <= exact * 1.02


def test_warm_cache_wakeup_policy(benchmark):
    """Ablation 4: serving the finishing worker before long-idle workers
    (warm caches) vs FIFO demand order, on the Cholesky DAG."""
    from repro.extensions.cholesky import CholeskyDag, LocalityScheduler as Loc
    from repro.extensions.dagsched import simulate_dag
    from repro.platform import uniform_speeds as us

    pf = Platform(us(12, 10, 100, rng=3))

    def run():
        fifo = np.mean(
            [simulate_dag(CholeskyDag(16), pf, Loc(), rng=s).total_blocks for s in range(3)]
        )
        warm = np.mean(
            [
                simulate_dag(CholeskyDag(16), pf, Loc(), rng=s, prefer_finishing_worker=True).total_blocks
                for s in range(3)
            ]
        )
        return fifo, warm

    fifo, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFIFO wakeup={fifo:.0f} blocks  warm-cache wakeup={warm:.0f} blocks")
    assert warm <= fifo * 1.05  # never meaningfully worse


def test_dynamic_vs_static(benchmark, platform, lb):
    """Ablation 3: dynamic, speed-agnostic scheduling stays within ~2.5x of
    the static 7/4-approximation that knows every speed exactly."""

    def run():
        static = partition_square(platform.speeds).communication_volume(N) / lb
        two = _mean(lambda: OuterTwoPhase(N), platform, lb)
        return static, two

    static, two = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nstatic(7/4)={static:.3f}  DynamicOuter2Phases={two:.3f}")
    assert static <= 1.75  # the guarantee of reference [2]
    assert two <= 2.5 * static
