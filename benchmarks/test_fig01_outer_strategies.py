"""Figure 1: random vs data-aware strategies for the outer product.

Regenerates the Figure-1 series (normalized communication vs p) and checks
the paper's shape: DynamicOuter clearly below RandomOuter/SortedOuter at
every p.
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig01(benchmark):
    fig = run_figure_benchmark(benchmark, "fig01")
    for i in range(len(fig["DynamicOuter"])):
        assert fig["DynamicOuter"].mean[i] < fig["RandomOuter"].mean[i]
        assert fig["DynamicOuter"].mean[i] < fig["SortedOuter"].mean[i]
