"""Figure 2: DynamicOuter2Phases vs the fraction of tasks in phase 1.

Checks the paper's shape: a sweet spot with most-but-not-all tasks in
phase 1 beats both extremes (pure random at 0%, pure dynamic at 100%).
"""

from benchmarks.conftest import run_figure_benchmark


def test_fig02(benchmark):
    fig = run_figure_benchmark(benchmark, "fig02")
    sweep = fig["DynamicOuter2Phases"]
    best = min(sweep.mean)
    assert best < sweep.mean[0]  # better than the all-random extreme
    assert best <= sweep.mean[-1] + 1e-9  # no worse than all-dynamic
