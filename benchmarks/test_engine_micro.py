"""Micro-benchmarks of the simulation substrate itself.

These time the hot paths — the event loop, the O(1) task sampler, the
vectorized cross/shell marking — independently of the figure sweeps, so
performance regressions in the engine show up directly.
"""

import numpy as np
import pytest

from repro.core.strategies import MatrixDynamic, OuterDynamic, OuterRandom, OuterTwoPhase
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate
from repro.simulator.events import EventQueue
from repro.taskpool import OuterTaskPool, SampleSet


@pytest.fixture(scope="module")
def platform():
    return Platform(uniform_speeds(50, 10, 100, rng=0))


class TestEventQueueMicro:
    def test_event_queue_churn(self, benchmark):
        """200k push/pop cycles through the heap.

        Guards the hot-loop contract: the engine validates worker ids once
        and re-queues through the internal fast push, so per-event overhead
        must stay at heap cost, not validation cost.
        """

        def churn():
            queue = EventQueue()
            for w in range(8):
                queue.push(float(w), w)
            for _ in range(200_000):
                t, w = queue.pop()
                queue._push(t + 1.0, w)
            return queue

        result = benchmark(churn)
        assert len(result) == 8


class TestSamplerMicro:
    def test_sample_set_drain(self, benchmark):
        """Drain a 100k-element SampleSet (O(1) per draw)."""
        rng = np.random.default_rng(0)

        def drain():
            s = SampleSet(100_000)
            while s:
                s.draw(rng)
            return s

        result = benchmark(drain)
        assert len(result) == 0

    def test_mark_cross_row(self, benchmark):
        """Vectorized cross marking on a 1000 x 1000 pool."""
        n = 1000
        rows = np.arange(0, n, 2, dtype=np.int64)[:400]  # evens 0..798
        cols = np.arange(1, n, 2, dtype=np.int64)[:400]  # odds 1..799
        # New indices outside the known sets (precondition of mark_cross).
        i, j = 900, 901

        def run():
            pool = OuterTaskPool(n)
            pool.mark_cross(i, j, rows, cols)
            return pool

        pool = benchmark(run)
        assert pool.remaining == n * n - 801


class TestSimulationMicro:
    def test_outer_random_10k_tasks(self, benchmark, platform):
        """RandomOuter, n=100: 10k discrete events through the heap."""
        result = benchmark.pedantic(
            lambda: simulate(OuterRandom(100), platform, rng=1), rounds=3, iterations=1
        )
        assert result.total_tasks == 10_000

    def test_outer_dynamic_large(self, benchmark, platform):
        """DynamicOuter, n=500: 250k tasks via vectorized marking."""
        result = benchmark.pedantic(
            lambda: simulate(OuterDynamic(500), platform, rng=1), rounds=3, iterations=1
        )
        assert result.total_tasks == 250_000

    def test_outer_two_phase_tuned(self, benchmark, platform):
        """DynamicOuter2Phases with auto-tuned beta, n=200."""
        result = benchmark.pedantic(
            lambda: simulate(OuterTwoPhase(200), platform, rng=1), rounds=3, iterations=1
        )
        assert result.total_tasks == 40_000

    def test_matrix_dynamic_64k_tasks(self, benchmark, platform):
        """DynamicMatrix, n=40: the Figure-9 instance size."""
        result = benchmark.pedantic(
            lambda: simulate(MatrixDynamic(40), platform, rng=1), rounds=3, iterations=1
        )
        assert result.total_tasks == 64_000
