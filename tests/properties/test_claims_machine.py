"""Stateful property test of the claim protocol (hypothesis).

Drives arbitrary interleavings of claim / heartbeat / release / complete /
crash / clock-advance across several simulated owners sharing one real
store directory, checking the three properties the cross-process layer
promises:

* **mutual exclusion** — at most one claim file per cell, always owned by
  exactly one owner (or absent);
* **no double compute** — a cell is computed (put into the store) at most
  once, because every compute path re-checks store presence first;
* **no lost cells** — whatever happened (including crashed owners whose
  claims linger), once claims go stale a surviving owner can always drain
  the remaining cells.
"""

import shutil
import tempfile

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.store.cache import ResultStore
from repro.store.claims import ClaimRegistry
from repro.store.fingerprint import fingerprint

N_OWNERS = 3
N_CELLS = 4
STALE_AFTER = 10.0

KEYS = [{"machine-cell": i} for i in range(N_CELLS)]
FPS = [fingerprint(k) for k in KEYS]

owners = st.integers(0, N_OWNERS - 1)
cells = st.integers(0, N_CELLS - 1)


class SharedClock:
    def __init__(self):
        self.t = 1_000.0

    def __call__(self):
        return self.t


class ClaimMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.root = tempfile.mkdtemp(prefix="claims-machine-")
        self.store = ResultStore(self.root)
        self.clock = SharedClock()
        self.registries = [
            ClaimRegistry(
                self.store,
                owner=f"owner-{i}",
                stale_after=STALE_AFTER,
                clock=self.clock,
            )
            for i in range(N_OWNERS)
        ]
        self.alive = [True] * N_OWNERS
        self.computes = {fp: 0 for fp in FPS}

    # -- rules ---------------------------------------------------------------

    @rule(dt=st.floats(0.1, 2.5 * STALE_AFTER))
    def advance_clock(self, dt):
        self.clock.t += dt

    @rule(i=owners, j=cells)
    def claim(self, i, j):
        if self.alive[i] and not self.store.has_fingerprint(FPS[j]):
            self.registries[i].try_claim(FPS[j])

    @rule(i=owners, j=cells)
    def heartbeat(self, i, j):
        if self.alive[i]:
            self.registries[i].heartbeat(FPS[j])

    @rule(i=owners, j=cells)
    def release(self, i, j):
        if self.alive[i]:
            self.registries[i].release(FPS[j])

    @rule(i=owners, j=cells)
    def complete(self, i, j):
        """The owner's compute step, exactly as ``drain_cells`` sequences it."""
        fp, registry = FPS[j], self.registries[i]
        if not self.alive[i]:
            return
        if self.store.has_fingerprint(fp):
            return  # someone already finished it; computing again is the bug
        if not registry.try_claim(fp):
            return
        self.computes[fp] += 1
        assert self.computes[fp] == 1, f"cell {j} computed twice"
        self.store.put(KEYS[j], {"value": float(j)}, kind="machine-cell")
        registry.release(fp)

    @rule(i=owners)
    def crash(self, i):
        """SIGKILL: the owner stops acting; its claims linger until stale."""
        if sum(self.alive) > 1:  # keep at least one survivor to drain with
            self.alive[i] = False

    @rule(i=owners)
    def break_stale(self, i):
        if self.alive[i]:
            self.registries[i].break_stale()

    # -- invariants ----------------------------------------------------------

    @invariant()
    def one_owner_per_claim(self):
        seen = set()
        for info in self.registries[0].active():
            assert info.fingerprint not in seen
            seen.add(info.fingerprint)
            assert info.owner in {r.owner for r in self.registries}

    @invariant()
    def computed_cells_are_in_the_store(self):
        for fp, count in self.computes.items():
            assert count <= 1
            if count:
                assert self.store.has_fingerprint(fp)

    # -- convergence ---------------------------------------------------------

    def teardown(self):
        try:
            # Let every lingering claim (crashed owners included) go stale,
            # then any survivor must be able to drain the leftovers.
            self.clock.t += STALE_AFTER + 1.0
            survivor = self.registries[self.alive.index(True)]
            for j, fp in enumerate(FPS):
                if self.store.has_fingerprint(fp):
                    continue
                assert survivor.try_claim(fp), f"cell {j} lost: unclaimable"
                self.computes[fp] += 1
                assert self.computes[fp] == 1, f"cell {j} computed twice"
                self.store.put(KEYS[j], {"value": float(j)}, kind="machine-cell")
                survivor.release(fp)
            assert all(self.store.has_fingerprint(fp) for fp in FPS)  # drained
        finally:
            shutil.rmtree(self.root, ignore_errors=True)


ClaimMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestClaimMachine = ClaimMachine.TestCase
