"""Property-based tests of system-wide invariants (hypothesis).

Random platforms, sizes and strategies — every run must satisfy:

* completeness: every task allocated exactly once;
* communication sanity: within the per-strategy hard bounds;
* conservation: per-worker tasks sum to the total;
* determinism: same seed, same outcome.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analysis import lower_bound
from repro.core.strategies import make_strategy, strategies_for_kernel
from repro.platform import Platform
from repro.simulator import simulate

SPEEDS = st.lists(st.floats(1.0, 100.0), min_size=1, max_size=12)
COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def outer_case(draw):
    name = draw(st.sampled_from(strategies_for_kernel("outer")))
    n = draw(st.integers(1, 14))
    speeds = draw(SPEEDS)
    seed = draw(st.integers(0, 2**31))
    return name, n, speeds, seed


@st.composite
def matrix_case(draw):
    name = draw(st.sampled_from(strategies_for_kernel("matrix")))
    n = draw(st.integers(1, 7))
    speeds = draw(SPEEDS)
    seed = draw(st.integers(0, 2**31))
    return name, n, speeds, seed


class TestOuterInvariants:
    @settings(**COMMON)
    @given(outer_case())
    def test_exactly_once_and_conservation(self, case):
        name, n, speeds, seed = case
        pf = Platform(speeds)
        strategy = make_strategy(name, n, collect_ids=True)
        result = simulate(strategy, pf, rng=seed, collect_trace=True)
        ids = result.trace.all_task_ids()
        assert ids.size == n * n
        assert np.unique(ids).size == n * n
        assert result.per_worker_tasks.sum() == n * n
        assert result.per_worker_blocks.sum() == result.total_blocks

    @settings(**COMMON)
    @given(outer_case())
    def test_communication_bounds(self, case):
        name, n, speeds, seed = case
        pf = Platform(speeds)
        result = simulate(make_strategy(name, n), pf, rng=seed)
        if name == "MapReduceOuter":
            # Stateless full replication: exactly 2 blocks per task.
            assert result.total_blocks == 2 * n * n
            return
        # Hard per-worker capacity: nobody can receive more than both
        # input vectors (blocks are never re-sent to a holder).
        assert np.all(result.per_worker_blocks <= 2 * n)
        # Hard lower bound: the inputs must reach at least one worker.
        assert result.total_blocks >= 2 * n
        # The paper's lower bound assumes perfect load balancing; it only
        # truly bounds the volume when tasks vastly outnumber workers
        # (integrality effects can shave a block or two otherwise).
        if n * n >= 8 * pf.p:
            lb = lower_bound("outer", pf.relative_speeds, n)
            assert result.total_blocks >= 0.98 * lb

    @settings(**COMMON)
    @given(outer_case())
    def test_determinism(self, case):
        name, n, speeds, seed = case
        pf = Platform(speeds)
        r1 = simulate(make_strategy(name, n), pf, rng=seed)
        r2 = simulate(make_strategy(name, n), pf, rng=seed)
        assert r1.total_blocks == r2.total_blocks
        assert np.array_equal(r1.per_worker_blocks, r2.per_worker_blocks)
        assert r1.makespan == r2.makespan

    @settings(**COMMON)
    @given(outer_case())
    def test_makespan_at_least_ideal(self, case):
        name, n, speeds, seed = case
        pf = Platform(speeds)
        result = simulate(make_strategy(name, n), pf, rng=seed)
        ideal = n * n / pf.total_speed
        assert result.makespan >= ideal - 1e-9


class TestMatrixInvariants:
    @settings(**COMMON)
    @given(matrix_case())
    def test_exactly_once_and_conservation(self, case):
        name, n, speeds, seed = case
        pf = Platform(speeds)
        strategy = make_strategy(name, n, collect_ids=True)
        result = simulate(strategy, pf, rng=seed, collect_trace=True)
        ids = result.trace.all_task_ids()
        assert ids.size == n**3
        assert np.unique(ids).size == n**3
        assert result.per_worker_tasks.sum() == n**3

    @settings(**COMMON)
    @given(matrix_case())
    def test_communication_bounds(self, case):
        name, n, speeds, seed = case
        pf = Platform(speeds)
        result = simulate(make_strategy(name, n), pf, rng=seed)
        if name == "MapReduceMatrix":
            assert result.total_blocks == 3 * n**3
            return
        # Hard per-worker capacity: all of A, B and C.
        assert np.all(result.per_worker_blocks <= 3 * n * n)
        if n**3 >= 8 * pf.p:
            lb = lower_bound("matrix", pf.relative_speeds, n)
            assert result.total_blocks >= 0.98 * lb

    @settings(**COMMON)
    @given(matrix_case())
    def test_determinism(self, case):
        name, n, speeds, seed = case
        pf = Platform(speeds)
        r1 = simulate(make_strategy(name, n), pf, rng=seed)
        r2 = simulate(make_strategy(name, n), pf, rng=seed)
        assert r1.total_blocks == r2.total_blocks
        assert r1.n_assignments == r2.n_assignments


class TestTwoPhaseThresholdProperty:
    @settings(**COMMON)
    @given(
        st.integers(2, 16),
        st.floats(0.0, 8.0),
        st.lists(st.floats(1.0, 50.0), min_size=2, max_size=8),
        st.integers(0, 2**31),
    )
    def test_any_beta_completes(self, n, beta, speeds, seed):
        pf = Platform(speeds)
        strategy = make_strategy("DynamicOuter2Phases", n, beta=beta)
        result = simulate(strategy, pf, rng=seed)
        assert result.total_tasks == n * n

    @settings(**COMMON)
    @given(
        st.integers(2, 12),
        st.floats(0.0, 1.0),
        st.lists(st.floats(1.0, 50.0), min_size=2, max_size=8),
        st.integers(0, 2**31),
    )
    def test_any_fraction_completes(self, n, fraction, speeds, seed):
        pf = Platform(speeds)
        strategy = make_strategy("DynamicOuter2Phases", n, phase1_fraction=fraction)
        result = simulate(strategy, pf, rng=seed)
        assert result.total_tasks == n * n
