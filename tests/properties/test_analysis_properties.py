"""Property-based tests of the analysis formulas over random platforms."""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.analysis.matrix import (
    matrix_phase1_ratio,
    matrix_phase2_ratio,
    matrix_total_ratio,
    optimal_matrix_beta,
)
from repro.core.analysis.outer import (
    optimal_outer_beta,
    outer_phase1_ratio,
    outer_phase2_ratio,
    outer_total_ratio,
)

COMMON = dict(deadline=None, max_examples=80, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def rel_speeds(draw, min_p=2, max_p=64):
    p = draw(st.integers(min_p, max_p))
    speeds = np.asarray(draw(st.lists(st.floats(1.0, 100.0), min_size=p, max_size=p)))
    return speeds / speeds.sum()


class TestOuterFormulaProperties:
    @settings(**COMMON)
    @given(rel_speeds(), st.floats(0.0, 8.0))
    def test_ratios_nonnegative(self, rel, beta):
        assert outer_phase1_ratio(beta, rel) >= 0.0
        assert outer_phase2_ratio(beta, rel, 100) >= 0.0

    @settings(**COMMON)
    @given(rel_speeds(), st.floats(0.0, 6.0), st.floats(0.05, 2.0))
    def test_phase1_increasing_in_beta(self, rel, beta, delta):
        # Monotonicity holds on the model's validity range beta <= 1/max(rs)
        # (beyond it the Lemma-3 expansion turns around; see DESIGN.md).
        assume(beta + delta <= 1.0 / rel.max())
        assert outer_phase1_ratio(beta + delta, rel) >= outer_phase1_ratio(beta, rel) - 1e-12

    @settings(**COMMON)
    @given(rel_speeds(), st.floats(0.0, 6.0), st.floats(0.05, 2.0))
    def test_phase2_decreasing_in_beta(self, rel, beta, delta):
        n = 100
        assert outer_phase2_ratio(beta + delta, rel, n) <= outer_phase2_ratio(beta, rel, n) + 1e-12

    @settings(**COMMON)
    @given(rel_speeds(min_p=8), st.integers(50, 500))
    def test_optimum_within_validity_range(self, rel, n):
        beta = optimal_outer_beta(rel, n)
        assert 0 < beta <= 1.0 / rel.max() + 1e-9

    @settings(**COMMON)
    @given(rel_speeds(min_p=8), st.integers(50, 500))
    def test_optimum_beats_neighbors(self, rel, n):
        beta = optimal_outer_beta(rel, n)
        best = outer_total_ratio(beta, rel, n)
        for probe in (0.7 * beta, 1.3 * beta):
            if 0 < probe <= 1.0 / rel.max():
                assert best <= outer_total_ratio(probe, rel, n) + 1e-9


class TestMatrixFormulaProperties:
    @settings(**COMMON)
    @given(rel_speeds(), st.floats(0.0, 8.0))
    def test_ratios_nonnegative(self, rel, beta):
        assert matrix_phase1_ratio(beta, rel) >= 0.0
        assert matrix_phase2_ratio(beta, rel, 40) >= 0.0

    @settings(**COMMON)
    @given(rel_speeds(), st.floats(0.0, 6.0), st.floats(0.05, 2.0))
    def test_phase1_increasing_in_beta(self, rel, beta, delta):
        assume(beta + delta <= 1.0 / rel.max())
        assert matrix_phase1_ratio(beta + delta, rel) >= matrix_phase1_ratio(beta, rel) - 1e-12

    @settings(**COMMON)
    @given(rel_speeds(min_p=8), st.integers(20, 120))
    def test_optimum_beats_neighbors(self, rel, n):
        beta = optimal_matrix_beta(rel, n)
        best = matrix_total_ratio(beta, rel, n)
        for probe in (0.7 * beta, 1.3 * beta):
            if 0 < probe <= 1.0 / rel.max():
                assert best <= matrix_total_ratio(probe, rel, n) + 1e-9

    @settings(**COMMON)
    @given(rel_speeds(min_p=4), st.integers(10, 100))
    def test_total_ratio_finite(self, rel, n):
        for beta in (0.5, 2.0, 5.0):
            v = matrix_total_ratio(beta, rel, n)
            assert np.isfinite(v)
            assert v >= 0
