"""Property-based tests of the generic DAG engine on random DAGs.

Hypothesis generates arbitrary small DAGs (random forward edges, random
tile footprints); every schedule must:

* complete every task exactly once,
* respect the dependency order,
* fetch at least one block per distinct tile (someone must receive it),
* never exceed the trivial per-task fetch bound,
* be deterministic per seed.
"""

from typing import List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.extensions.dagsched import LocalityScheduler, RandomScheduler, simulate_dag
from repro.platform import Platform


class SyntheticTask:
    __slots__ = ("reads", "writes", "extra_writes", "work")

    def __init__(self, reads, writes, work):
        self.reads = tuple(reads)
        self.writes = writes
        self.extra_writes = ()
        self.work = work


class SyntheticDag:
    """A DAG built from an explicit edge list (topological by index)."""

    def __init__(self, tasks: List[SyntheticTask], edges: List[Tuple[int, int]]):
        self.tasks = tasks
        self.successors: List[List[int]] = [[] for _ in tasks]
        self.n_deps = [0] * len(tasks)
        for src, dst in edges:
            self.successors[src].append(dst)
            self.n_deps[dst] += 1
        # Upward ranks as priorities.
        rank = [0.0] * len(tasks)
        for t in reversed(range(len(tasks))):
            best = max((rank[s] for s in self.successors[t]), default=0.0)
            rank[t] = tasks[t].work + best
        self.priority = rank

    def initial_ready(self):
        return [t for t, d in enumerate(self.n_deps) if d == 0]


@st.composite
def dag_case(draw):
    n_tasks = draw(st.integers(1, 25))
    n_tiles = draw(st.integers(1, 10))
    tasks = []
    for _ in range(n_tasks):
        n_reads = draw(st.integers(0, 3))
        reads = [(draw(st.integers(0, n_tiles - 1)),) for _ in range(n_reads)]
        writes = (draw(st.integers(0, n_tiles - 1)),)
        work = draw(st.floats(0.1, 5.0))
        tasks.append(SyntheticTask(reads, writes, work))
    edges = []
    for dst in range(1, n_tasks):
        for src in range(dst):
            if draw(st.booleans()) and len(edges) < 3 * n_tasks:
                if draw(st.integers(0, 3)) == 0:  # sparsify
                    edges.append((src, dst))
    speeds = draw(st.lists(st.floats(1.0, 20.0), min_size=1, max_size=6))
    seed = draw(st.integers(0, 2**31))
    policy = draw(st.sampled_from(["random", "locality"]))
    return SyntheticDag(tasks, edges), speeds, seed, policy


def _make_policy(name):
    return RandomScheduler() if name == "random" else LocalityScheduler()


COMMON = dict(deadline=None, max_examples=60, suppress_health_check=[HealthCheck.too_slow])


class TestRandomDags:
    @settings(**COMMON)
    @given(dag_case())
    def test_completes_all_tasks(self, case):
        dag, speeds, seed, policy = case
        result = simulate_dag(dag, Platform(speeds), _make_policy(policy), rng=seed)
        assert result.total_tasks == len(dag.tasks)
        assert len(result.schedule) == len(dag.tasks)
        assert len({tid for _, _, tid in result.schedule}) == len(dag.tasks)

    @settings(**COMMON)
    @given(dag_case())
    def test_schedule_respects_dependencies(self, case):
        dag, speeds, seed, policy = case
        result = simulate_dag(dag, Platform(speeds), _make_policy(policy), rng=seed)
        pos = {tid: i for i, (_, _, tid) in enumerate(result.schedule)}
        for src, succs in enumerate(dag.successors):
            for dst in succs:
                assert pos[src] < pos[dst]

    @settings(**COMMON)
    @given(dag_case())
    def test_communication_bounds(self, case):
        dag, speeds, seed, policy = case
        result = simulate_dag(dag, Platform(speeds), _make_policy(policy), rng=seed)
        touched = set()
        per_task_touch = 0
        for t in dag.tasks:
            tiles = set(t.reads) | {t.writes}
            touched |= tiles
            per_task_touch += len(tiles)
        assert result.total_blocks >= len(touched)
        assert result.total_blocks <= per_task_touch

    @settings(**COMMON)
    @given(dag_case())
    def test_deterministic(self, case):
        dag, speeds, seed, policy = case
        a = simulate_dag(dag, Platform(speeds), _make_policy(policy), rng=seed)
        b = simulate_dag(dag, Platform(speeds), _make_policy(policy), rng=seed)
        assert a.schedule == b.schedule
        assert a.total_blocks == b.total_blocks

    @settings(**COMMON)
    @given(dag_case())
    def test_makespan_bounds(self, case):
        dag, speeds, seed, policy = case
        pf = Platform(speeds)
        result = simulate_dag(dag, pf, _make_policy(policy), rng=seed)
        total_work = sum(t.work for t in dag.tasks)
        # Lower bound: all work on the fastest machine in parallel heaven.
        assert result.makespan >= total_work / (pf.speeds.max() * pf.p) - 1e-9
        # Upper bound: everything serialized on the slowest machine.
        assert result.makespan <= total_work / pf.speeds.min() + 1e-9
