"""Property-based batch/scalar equivalence (hypothesis).

For random (strategy, n, p, seed) cells, the vectorized engine's
per-replicate traces must fingerprint-match the scalar oracle exactly:
same event sequence (time, worker, blocks, tasks, duration), same
totals, same RNG stream consumption.  This is the batch engine's whole
contract, so it gets the adversarial-input treatment on top of the
pinned cases in ``tests/simulator/test_batch.py``.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.strategies.registry import make_strategy
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate, simulate_batch
from repro.utils.rng import spawn_rngs

VECTORIZED_OUTER = ["RandomOuter", "SortedOuter", "DynamicOuter"]
VECTORIZED_MATRIX = ["RandomMatrix", "SortedMatrix", "DynamicMatrix"]

COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def batch_case(draw):
    kernel = draw(st.booleans())
    if kernel:
        name = draw(st.sampled_from(VECTORIZED_MATRIX))
        n = draw(st.integers(1, 5))
    else:
        name = draw(st.sampled_from(VECTORIZED_OUTER))
        n = draw(st.integers(1, 12))
    p = draw(st.integers(1, 12))
    low = draw(st.floats(1.0, 50.0))
    high = draw(st.floats(50.0, 100.0))
    platform_seed = draw(st.integers(0, 2**31))
    seed = draw(st.integers(0, 2**31))
    return name, n, p, low, high, platform_seed, seed


def trace_fingerprint(result):
    return (
        result.total_blocks,
        result.n_assignments,
        result.makespan,
        result.per_worker_blocks.tolist(),
        result.per_worker_tasks.tolist(),
        [
            (r.time, r.worker, r.blocks, r.tasks, r.duration, r.phase)
            for r in result.trace.records
        ],
    )


@given(batch_case())
@settings(**COMMON)
def test_batch_traces_fingerprint_match_scalar(case):
    name, n, p, low, high, platform_seed, seed = case
    platform = Platform(uniform_speeds(p, low, high, rng=platform_seed))
    reps = 2
    scalar_gens = spawn_rngs(seed, reps)
    refs = [
        simulate(make_strategy(name, n), platform, rng=g, collect_trace=True)
        for g in scalar_gens
    ]
    batch_gens = spawn_rngs(seed, reps)
    gots = simulate_batch(
        lambda: make_strategy(name, n),
        [platform] * reps,
        rngs=batch_gens,
        collect_trace=True,
    )
    for ref, got in zip(refs, gots):
        assert trace_fingerprint(ref) == trace_fingerprint(got)
    for bg, sg in zip(batch_gens, scalar_gens):
        assert bg.bit_generator.state == sg.bit_generator.state
