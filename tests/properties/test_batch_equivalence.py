"""Property-based batch/scalar equivalence (hypothesis).

For random (strategy, n, p, seed) cells, the vectorized engine's
per-replicate traces must fingerprint-match the scalar oracle exactly:
same event sequence (time, worker, blocks, tasks, duration), same
totals, same RNG stream consumption.  This is the batch engine's whole
contract, so it gets the adversarial-input treatment on top of the
pinned cases in ``tests/simulator/test_batch.py``.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.strategies.registry import make_strategy
from repro.platform import Platform, uniform_speeds
from repro.platform.speeds import make_scenario
from repro.simulator import simulate, simulate_batch
from repro.utils.rng import spawn_rngs

VECTORIZED_OUTER = ["RandomOuter", "SortedOuter", "DynamicOuter", "MapReduceOuter"]
VECTORIZED_MATRIX = ["RandomMatrix", "SortedMatrix", "DynamicMatrix", "MapReduceMatrix"]
TWO_PHASE = ["DynamicOuter2Phases", "DynamicMatrix2Phases"]

COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def batch_case(draw):
    kernel = draw(st.booleans())
    if kernel:
        name = draw(st.sampled_from(VECTORIZED_MATRIX))
        n = draw(st.integers(1, 5))
    else:
        name = draw(st.sampled_from(VECTORIZED_OUTER))
        n = draw(st.integers(1, 12))
    p = draw(st.integers(1, 12))
    low = draw(st.floats(1.0, 50.0))
    high = draw(st.floats(50.0, 100.0))
    platform_seed = draw(st.integers(0, 2**31))
    seed = draw(st.integers(0, 2**31))
    return name, n, p, low, high, platform_seed, seed


def trace_fingerprint(result):
    return (
        result.total_blocks,
        result.n_assignments,
        result.makespan,
        result.per_worker_blocks.tolist(),
        result.per_worker_tasks.tolist(),
        [
            (r.time, r.worker, r.blocks, r.tasks, r.duration, r.phase)
            for r in result.trace.records
        ],
    )


@given(batch_case())
@settings(**COMMON)
def test_batch_traces_fingerprint_match_scalar(case):
    name, n, p, low, high, platform_seed, seed = case
    platform = Platform(uniform_speeds(p, low, high, rng=platform_seed))
    reps = 2
    scalar_gens = spawn_rngs(seed, reps)
    refs = [
        simulate(make_strategy(name, n), platform, rng=g, collect_trace=True)
        for g in scalar_gens
    ]
    batch_gens = spawn_rngs(seed, reps)
    gots = simulate_batch(
        lambda: make_strategy(name, n),
        [platform] * reps,
        rngs=batch_gens,
        collect_trace=True,
    )
    for ref, got in zip(refs, gots):
        assert trace_fingerprint(ref) == trace_fingerprint(got)
    for bg, sg in zip(batch_gens, scalar_gens):
        assert bg.bit_generator.state == sg.bit_generator.state


@st.composite
def two_phase_case(draw):
    name = draw(st.sampled_from(TWO_PHASE))
    n = draw(st.integers(1, 5)) if "Matrix" in name else draw(st.integers(1, 10))
    p = draw(st.integers(1, 10))
    # One of: auto-resolved beta (possibly agnostic), an explicit beta
    # grid point, a phase-1 fraction, or a raw task threshold.
    mode = draw(st.sampled_from(["auto", "beta", "fraction", "threshold"]))
    kwargs = {}
    if mode == "auto":
        kwargs["agnostic"] = draw(st.booleans())
    elif mode == "beta":
        kwargs["beta"] = draw(st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0, 3.0]))
    elif mode == "fraction":
        kwargs["phase1_fraction"] = draw(st.sampled_from([0.0, 0.3, 0.7, 1.0]))
    else:
        kwargs["threshold_tasks"] = draw(st.integers(0, 2 * n**3))
    platform_seed = draw(st.integers(0, 2**31))
    seed = draw(st.integers(0, 2**31))
    return name, n, p, kwargs, platform_seed, seed


@given(two_phase_case())
@settings(**COMMON)
def test_two_phase_traces_fingerprint_match_scalar(case):
    name, n, p, kwargs, platform_seed, seed = case
    platform = Platform(uniform_speeds(p, 10.0, 100.0, rng=platform_seed))
    reps = 2
    scalar_gens = spawn_rngs(seed, reps)
    refs = [
        simulate(make_strategy(name, n, **kwargs), platform, rng=g, collect_trace=True)
        for g in scalar_gens
    ]
    batch_gens = spawn_rngs(seed, reps)
    gots = simulate_batch(
        lambda: make_strategy(name, n, **kwargs),
        [platform] * reps,
        rngs=batch_gens,
        collect_trace=True,
    )
    for ref, got in zip(refs, gots):
        assert trace_fingerprint(ref) == trace_fingerprint(got)
    for bg, sg in zip(batch_gens, scalar_gens):
        assert bg.bit_generator.state == sg.bit_generator.state


@st.composite
def dynamic_speed_case(draw):
    kernel = draw(st.booleans())
    if kernel:
        name = draw(st.sampled_from(VECTORIZED_MATRIX + ["DynamicMatrix2Phases"]))
        n = draw(st.integers(1, 4))
    else:
        name = draw(st.sampled_from(VECTORIZED_OUTER + ["DynamicOuter2Phases"]))
        n = draw(st.integers(1, 10))
    p = draw(st.integers(1, 8))
    scenario = draw(st.sampled_from(["dyn.5", "dyn.20"]))
    seed = draw(st.integers(0, 2**31))
    return name, n, p, scenario, seed


@given(dynamic_speed_case())
@settings(**COMMON)
def test_dynamic_speed_traces_fingerprint_match_scalar(case):
    # dyn.* models draw per-block speed noise from the replicate stream;
    # the kernels replay model.duration per event, so the fingerprints
    # (and the model's end-of-run speed state) must stay bit-identical.
    name, n, p, scenario, seed = case
    reps = 2
    scalar_gens = spawn_rngs(seed, reps)
    refs, ref_models = [], []
    for g in scalar_gens:
        platform, model = make_scenario(scenario, p, rng=g)
        ref_models.append(model)
        refs.append(
            simulate(
                make_strategy(name, n), platform, rng=g, speed_model=model, collect_trace=True
            )
        )
    batch_gens = spawn_rngs(seed, reps)
    platforms, models = [], []
    for g in batch_gens:
        platform, model = make_scenario(scenario, p, rng=g)
        platforms.append(platform)
        models.append(model)
    gots = simulate_batch(
        lambda: make_strategy(name, n),
        platforms,
        rngs=batch_gens,
        speed_models=models,
        collect_trace=True,
    )
    for ref, got in zip(refs, gots):
        assert trace_fingerprint(ref) == trace_fingerprint(got)
    for ref_model, got_model in zip(ref_models, models):
        assert np.array_equal(ref_model._speeds, got_model._speeds)
    for bg, sg in zip(batch_gens, scalar_gens):
        assert bg.bit_generator.state == sg.bit_generator.state
