"""The public API surface: everything advertised in ``repro.__all__`` works."""

import numpy as np

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} advertised but missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstring_quickstart(self):
        """The README/module-docstring quickstart must run as written."""
        platform = repro.Platform(repro.uniform_speeds(20, 10, 100, rng=0))
        strategy = repro.OuterTwoPhase(100)
        result = repro.simulate(strategy, platform, rng=1)
        lb = repro.outer_lower_bound(platform.relative_speeds, 100)
        value = result.normalized(lb)
        assert 1.0 < value < 4.0
        assert strategy.beta is not None

    def test_strategy_names_roundtrip(self):
        for name in repro.strategy_names():
            s = repro.make_strategy(name, 4)
            assert s.name == name

    def test_lower_bound_dispatch(self):
        rel = np.array([0.5, 0.5])
        assert repro.lower_bound("outer", rel, 10) == repro.outer_lower_bound(rel, 10)
        assert repro.lower_bound("matrix", rel, 10) == repro.matrix_lower_bound(rel, 10)

    def test_total_ratio_functions(self):
        rel = np.full(20, 0.05)
        assert repro.outer_total_ratio(4.0, rel, 100) > 1.0
        assert repro.matrix_total_ratio(3.0, rel, 40) > 1.0

    def test_agnostic_beta(self):
        assert 1.0 < repro.agnostic_beta("outer", 20, 100) < 8.0
