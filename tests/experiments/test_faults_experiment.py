"""Tests for the worker-churn experiment (flt01) and its CLI wiring."""

import json

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.faults import CHURN_STRATEGIES, churn_summary, flt01
from repro.experiments.figures import FIGURES, generate


class TestFlt01:
    @pytest.fixture(scope="class")
    def fig(self):
        return flt01(scale="ci", seed=0)

    def test_series_and_grid(self, fig):
        assert fig.figure_id == "flt01"
        for name in CHURN_STRATEGIES:
            series = fig[name]
            assert series.x == [0.0, 1.0, 2.0]
            assert all(m > 0 for m in series.mean)

    def test_zero_churn_observes_zero_crashes(self, fig):
        observed = fig["crashes_observed"]
        assert observed.mean[0] == 0.0
        assert observed.mean[-1] > 0.0

    def test_churn_costs_communication(self, fig):
        """More crashes can only increase re-shipping, for every strategy."""
        for name in CHURN_STRATEGIES:
            series = fig[name]
            assert series.mean[-1] > series.mean[0]

    def test_deterministic(self, fig):
        again = flt01(scale="ci", seed=0)
        for name in CHURN_STRATEGIES:
            assert again[name].mean == fig[name].mean

    def test_registered_in_figures(self):
        assert "flt01" in FIGURES
        fig = generate("flt01", scale="ci", seed=0)
        assert fig.figure_id == "flt01"

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            flt01(scale="huge")


class TestChurnSummary:
    def test_summary_shape(self):
        fig = flt01(scale="ci", seed=0)
        summary = churn_summary(fig)
        assert summary["figure"] == "flt01"
        for name in CHURN_STRATEGIES:
            entry = summary["strategies"][name]
            assert entry["baseline"] == entry["mean"][0]
            assert entry["at_max_churn"] == entry["mean"][-1]
            assert entry["degradation"] > 0
        json.dumps(summary)  # must be JSON-serializable as-is

    def test_rejects_foreign_figure(self):
        fig = generate("fig01", scale="ci", seed=0)
        with pytest.raises(ValueError):
            churn_summary(fig)


class TestCli:
    def test_parser_accepts_faults(self):
        args = build_parser().parse_args(["faults", "--scale", "ci", "--json"])
        assert args.command == "faults"
        assert args.json

    def test_faults_writes_outputs(self, tmp_path, capsys):
        code = main(
            [
                "faults",
                "--scale",
                "ci",
                "--outdir",
                str(tmp_path),
                "--json",
                "--svg",
                "--quiet",
            ]
        )
        assert code == 0
        assert (tmp_path / "flt01_ci.csv").exists()
        assert (tmp_path / "flt01_ci.svg").exists()
        payload = json.loads((tmp_path / "flt01_ci.json").read_text())
        assert payload["figure"] == "flt01"

    def test_json_requires_outdir(self):
        with pytest.raises(SystemExit):
            main(["faults", "--scale", "ci", "--json", "--quiet"])
