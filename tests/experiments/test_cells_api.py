"""CellRequest / CellResult / run_cells — the serve lane's batch entrypoint."""

import pytest

from repro.experiments.parallel import (
    CellRequest,
    CellResult,
    StrategySpec,
    UniformPlatformSpec,
    run_cells,
)
from repro.experiments.runner import average_normalized_comm
from repro.store.cache import ResultStore


def make_request(seed=0, n=12):
    return CellRequest(
        StrategySpec("DynamicOuter", n), UniformPlatformSpec(4), n, 2, seed=seed
    )


def _boom_platform(rng):
    raise RuntimeError("platform fabrication failed")


class TestCellRequest:
    def test_key_matches_runner_schema(self):
        key = make_request().key()
        assert key["schema"] == "repro.store.cell/1"
        assert key["reps"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CellRequest(StrategySpec("DynamicOuter", 8), UniformPlatformSpec(4), 0, 2)
        with pytest.raises(ValueError):
            CellRequest(StrategySpec("DynamicOuter", 8), UniformPlatformSpec(4), 8, 0)


class TestCellResult:
    def test_exactly_one_of_summary_or_error(self):
        with pytest.raises(ValueError):
            CellResult(None, None)
        summary = average_normalized_comm(
            StrategySpec("DynamicOuter", 8), UniformPlatformSpec(4), 8, 1, seed=0
        )
        with pytest.raises(ValueError):
            CellResult(summary, "also an error")
        assert CellResult(summary).ok
        assert not CellResult(None, "err").ok


class TestRunCells:
    def test_matches_direct_runner_call(self):
        request = make_request(seed=3)
        results = run_cells([request])
        assert len(results) == 1 and results[0].ok
        direct = average_normalized_comm(
            request.strategy_factory,
            request.platform_factory,
            request.n,
            request.reps,
            seed=request.seed,
        )
        assert results[0].summary.mean == direct.mean

    def test_writes_through_the_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        request = make_request(seed=4)
        run_cells([request], cache=store)
        assert store.counts.puts == 1
        run_cells([request], cache=store)
        assert store.counts.puts == 1  # second run is a pure hit
        assert store.counts.hits == 1

    def test_one_bad_cell_does_not_poison_the_batch(self):
        bad = CellRequest(StrategySpec("DynamicOuter", 8), _boom_platform, 8, 1)
        good = make_request(seed=5)
        results = run_cells([bad, good])
        assert not results[0].ok
        assert "platform fabrication failed" in results[0].error
        assert results[1].ok
