"""Tests for the repro-experiments CLI."""

import os

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig01"])
        assert args.figures == ["fig01"]
        assert args.scale == "ci"
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig01", "fig02", "--scale", "medium", "--seed", "9", "--outdir", "out"]
        )
        assert args.figures == ["fig01", "fig02"]
        assert args.scale == "medium"
        assert args.seed == 9
        assert args.outdir == "out"

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig01", "--scale", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "sec36" in out

    def test_run_writes_csv(self, tmp_path, capsys):
        rc = main(["run", "fig01", "--scale", "ci", "--outdir", str(tmp_path), "--quiet"])
        assert rc == 0
        assert os.path.exists(tmp_path / "fig01_ci.csv")

    def test_run_renders(self, capsys):
        assert main(["run", "fig01", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "RandomOuter" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_svg_output(self, tmp_path):
        rc = main(["run", "fig01", "--scale", "ci", "--outdir", str(tmp_path), "--svg", "--quiet"])
        assert rc == 0
        assert (tmp_path / "fig01_ci.svg").exists()


class TestGantt:
    def test_gantt_command(self, capsys):
        rc = main(["gantt", "DynamicOuter2Phases", "-n", "12", "-p", "4", "--width", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Gantt (DynamicOuter2Phases" in out
        assert "lower bound" in out
        assert out.count("P") >= 4  # one row per worker

    def test_gantt_matrix_strategy(self, capsys):
        rc = main(["gantt", "DynamicMatrix", "-n", "6", "-p", "3"])
        assert rc == 0
        assert "DynamicMatrix" in capsys.readouterr().out

    def test_gantt_unknown_strategy(self):
        with pytest.raises(ValueError):
            main(["gantt", "NoSuchStrategy"])


class TestBeta:
    def test_agnostic_outer(self, capsys):
        rc = main(["beta", "outer", "-n", "100", "-p", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "beta* = 4.39" in out
        assert "speed-agnostic" in out

    def test_with_speeds(self, capsys):
        rc = main(["beta", "outer", "-n", "50", "-p", "3", "--speeds", "10", "20", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuned to the given speeds" in out

    def test_speed_count_mismatch(self):
        with pytest.raises(SystemExit):
            main(["beta", "outer", "-n", "50", "-p", "3", "--speeds", "10", "20"])

    def test_matrix_kernel(self, capsys):
        rc = main(["beta", "matrix", "-n", "40", "-p", "100"])
        assert rc == 0
        assert "x lower bound" in capsys.readouterr().out

    def test_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            main(["beta", "conv", "-n", "10", "-p", "5"])


class TestReport:
    def test_report_stdout(self, tmp_path, capsys):
        main(["run", "fig01", "--scale", "ci", "--outdir", str(tmp_path), "--quiet"])
        capsys.readouterr()
        rc = main(["report", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# Results summary" in out
        assert "fig01" in out

    def test_report_to_file(self, tmp_path, capsys):
        main(["run", "fig01", "--scale", "ci", "--outdir", str(tmp_path), "--quiet"])
        rc = main(["report", str(tmp_path), "-o", str(tmp_path / "r.md")])
        assert rc == 0
        assert (tmp_path / "r.md").exists()


class TestWorkersExternal:
    def test_parser_accepts_external_flags(self):
        args = build_parser().parse_args(
            ["run", "fig01", "--workers-external", "--claim-stale-after", "5"]
        )
        assert args.workers_external is True
        assert args.claim_stale_after == 5.0

    def test_external_requires_cache(self):
        with pytest.raises(SystemExit, match="requires --cache"):
            main(["run", "fig01", "--workers-external", "--quiet"])

    def test_single_external_worker_matches_plain_run(self, tmp_path, capsys):
        plain, ext = tmp_path / "plain", tmp_path / "ext"
        assert main(["run", "fig01", "--scale", "ci", "--outdir", str(plain), "--quiet"]) == 0
        rc = main([
            "run", "fig01", "--scale", "ci", "--outdir", str(ext), "--quiet",
            "--cache", str(tmp_path / "cache"), "--workers-external",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "drained as" in out
        with open(plain / "fig01_ci.csv", "rb") as a, open(ext / "fig01_ci.csv", "rb") as b:
            assert a.read() == b.read()
