"""Tests for the extension experiments ext01-ext03."""

import pytest

from repro.experiments.figures import generate


@pytest.fixture(scope="module")
def figures():
    return {fid: generate(fid, scale="ci", seed=1) for fid in ("ext01", "ext02", "ext03")}


class TestExt01:
    def test_series(self, figures):
        fig = figures["ext01"]
        assert set(fig.series) == {
            "RandomCholesky",
            "LocalityCholesky",
            "RandomQR",
            "LocalityQR",
            "RandomLU",
            "LocalityLU",
        }

    def test_locality_wins_at_larger_tiles(self, figures):
        fig = figures["ext01"]
        # At the largest tile count locality must fetch fewer blocks/task.
        assert fig["LocalityCholesky"].mean[-1] < fig["RandomCholesky"].mean[-1]
        assert fig["LocalityQR"].mean[-1] < fig["RandomQR"].mean[-1]
        assert fig["LocalityLU"].mean[-1] < fig["RandomLU"].mean[-1]

    def test_blocks_per_task_bounded(self, figures):
        fig = figures["ext01"]
        for series in fig.series.values():
            assert all(0 < v <= 3.0 for v in series.mean)


class TestExt02:
    def test_structure(self, figures):
        fig = figures["ext02"]
        assert "critical_bandwidth" in fig.meta
        assert fig.meta["critical_bandwidth"] > 0
        assert all(label.startswith("prefetch=") for label in fig.series)

    def test_more_bandwidth_less_slowdown(self, figures):
        fig = figures["ext02"]
        for series in fig.series.values():
            assert series.mean[-1] < series.mean[0]  # 2 B* beats B*/2

    def test_slowdowns_at_least_one(self, figures):
        fig = figures["ext02"]
        for series in fig.series.values():
            assert all(v >= 1.0 for v in series.mean)


class TestExt03:
    def test_formula_tracks_simulation(self, figures):
        fig = figures["ext03"]
        for sim_label, formula_label in (
            ("RandomOuter", "OuterFormula"),
            ("RandomMatrix", "MatrixFormula"),
        ):
            for sim, pred in zip(fig[sim_label].mean, fig[formula_label].mean):
                assert pred == pytest.approx(sim, rel=0.06)
