"""Tests for repro.experiments.config."""

import pytest

from repro.experiments.config import FigureData, Series, check_scale


class TestSeries:
    def test_add_and_len(self):
        s = Series("x")
        s.add(1, 2.0, 0.1)
        s.add(2, 3.0)
        assert len(s) == 2
        assert s.x == [1.0, 2.0]
        assert s.mean == [2.0, 3.0]
        assert s.std == [0.1, 0.0]


class TestFigureData:
    def test_new_series(self):
        fig = FigureData("f", "t", "x", "y")
        s = fig.new_series("a")
        assert fig["a"] is s

    def test_duplicate_series_rejected(self):
        fig = FigureData("f", "t", "x", "y")
        fig.new_series("a")
        with pytest.raises(ValueError):
            fig.new_series("a")

    def test_missing_series(self):
        fig = FigureData("f", "t", "x", "y")
        with pytest.raises(KeyError):
            fig["nope"]


class TestCheckScale:
    def test_valid(self):
        for s in ("paper", "medium", "ci"):
            assert check_scale(s) == s

    def test_invalid(self):
        with pytest.raises(ValueError):
            check_scale("huge")
