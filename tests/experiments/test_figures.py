"""Tests for repro.experiments.figures — every figure generator at CI scale.

Each test asserts both the *structure* (series, points) and the paper's
qualitative *shape* (who beats whom) where it is robust at smoke size.
"""

import pytest

from repro.experiments.figures import FIGURES, generate


@pytest.fixture(scope="module")
def figures():
    """Generate every figure once at CI scale (shared across tests)."""
    return {fid: generate(fid, scale="ci", seed=3) for fid in FIGURES}


class TestRegistry:
    def test_all_figures_present(self):
        paper_figures = {
            "fig01",
            "fig02",
            "fig04",
            "fig05",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "sec36",
        }
        extension_figures = {"ext01", "ext02", "ext03"}
        fault_figures = {"flt01"}
        assert set(FIGURES) == paper_figures | extension_figures | fault_figures

    def test_generate_unknown(self):
        with pytest.raises(ValueError):
            generate("fig03")  # proof illustration, not an experiment

    def test_generate_bad_scale(self):
        with pytest.raises(ValueError):
            generate("fig01", scale="gigantic")


class TestFig01:
    def test_series(self, figures):
        fig = figures["fig01"]
        assert set(fig.series) == {"RandomOuter", "SortedOuter", "DynamicOuter"}
        assert all(len(s) == 2 for s in fig.series.values())

    def test_dynamic_wins(self, figures):
        fig = figures["fig01"]
        for i in range(len(fig["DynamicOuter"])):
            assert fig["DynamicOuter"].mean[i] < fig["RandomOuter"].mean[i]
            assert fig["DynamicOuter"].mean[i] < fig["SortedOuter"].mean[i]


class TestFig02:
    def test_series(self, figures):
        fig = figures["fig02"]
        assert "DynamicOuter2Phases" in fig.series
        assert len(fig["DynamicOuter2Phases"]) == 5

    def test_extremes_match_pure_strategies(self, figures):
        fig = figures["fig02"]
        sweep = fig["DynamicOuter2Phases"]
        # 0% phase 1 == RandomOuter; 100% phase 1 == DynamicOuter.
        assert sweep.mean[0] == pytest.approx(fig["RandomOuter"].mean[0], rel=0.15)
        assert sweep.mean[-1] == pytest.approx(fig["DynamicOuter"].mean[0], rel=0.15)

    def test_sweet_spot_beats_extremes(self, figures):
        sweep = figures["fig02"]["DynamicOuter2Phases"]
        best = min(sweep.mean)
        assert best < sweep.mean[0]
        assert best <= sweep.mean[-1] + 1e-9


@pytest.mark.parametrize("fid,kernel", [("fig04", "outer"), ("fig05", "outer"), ("fig09", "matrix"), ("fig10", "matrix")])
class TestStrategySweeps:
    def test_structure(self, figures, fid, kernel):
        fig = figures[fid]
        assert "Analysis" in fig.series
        two_phase = "DynamicOuter2Phases" if kernel == "outer" else "DynamicMatrix2Phases"
        assert two_phase in fig.series
        assert fig.meta["kernel"] == kernel

    def test_two_phase_best_among_simulated(self, figures, fid, kernel):
        fig = figures[fid]
        two_phase = "DynamicOuter2Phases" if kernel == "outer" else "DynamicMatrix2Phases"
        rnd = "RandomOuter" if kernel == "outer" else "RandomMatrix"
        for i in range(len(fig[two_phase])):
            assert fig[two_phase].mean[i] < fig[rnd].mean[i]

    def test_analysis_tracks_two_phase(self, figures, fid, kernel):
        """The analysis must track the simulated strategy at the largest p.

        The paper itself notes the analysis is only accurate for large
        enough p (>= 50 for matmul); at smoke scale we check the last grid
        point only and loosely — the integration tests cover realistic
        sizes tightly.
        """
        fig = figures[fid]
        two_phase = "DynamicOuter2Phases" if kernel == "outer" else "DynamicMatrix2Phases"
        assert fig["Analysis"].mean[-1] == pytest.approx(fig[two_phase].mean[-1], rel=0.25)


@pytest.mark.parametrize("fid", ["fig06", "fig11"])
class TestBetaSweeps:
    def test_structure(self, figures, fid):
        fig = figures[fid]
        assert "Analysis" in fig.series
        assert "beta_opt_analysis" in fig.meta
        assert "beta_opt_agnostic" in fig.meta

    def test_agnostic_close_to_optimal(self, figures, fid):
        fig = figures[fid]
        assert fig.meta["beta_opt_agnostic"] == pytest.approx(fig.meta["beta_opt_analysis"], rel=0.10)

    def test_optimal_beta_in_simulated_valley(self, figures, fid):
        """The analysis' beta* must land near the simulated minimum."""
        fig = figures[fid]
        sweep = next(s for label, s in fig.series.items() if label.endswith("2Phases"))
        best_idx = min(range(len(sweep)), key=lambda i: sweep.mean[i])
        beta_star = fig.meta["beta_opt_analysis"]
        # The simulated valley is wide; beta* within a grid step of argmin.
        xs = sweep.x
        assert abs(xs[best_idx] - beta_star) <= (max(xs) - min(xs)) / 2


class TestFig07:
    def test_ranking_stable_across_heterogeneity(self, figures):
        fig = figures["fig07"]
        for i in range(len(fig["DynamicOuter"])):
            assert fig["DynamicOuter"].mean[i] < fig["RandomOuter"].mean[i]
            assert fig["DynamicOuter2Phases"].mean[i] <= fig["DynamicOuter"].mean[i] * 1.1


class TestFig08:
    def test_all_scenarios_present(self, figures):
        fig = figures["fig08"]
        assert list(fig.x_categories) == ["unif.1", "unif.2", "set.3", "set.5", "dyn.5", "dyn.20"]
        assert len(fig["RandomOuter"]) == 6

    def test_ranking_stable_across_scenarios(self, figures):
        fig = figures["fig08"]
        for i in range(6):
            assert fig["DynamicOuter"].mean[i] < fig["RandomOuter"].mean[i]


class TestSec36:
    def test_structure(self, figures):
        fig = figures["sec36"]
        assert set(fig.series) == {"beta_hom", "max_beta_rel_dev", "max_volume_rel_error"}

    def test_deviation_small(self, figures):
        fig = figures["sec36"]
        assert max(fig["max_beta_rel_dev"].mean) < 0.15
        assert max(fig["max_volume_rel_error"].mean) < 0.01
