"""Tests for the SVG figure renderer and the CSV round-trip."""

import pytest

from repro.experiments.config import FigureData
from repro.experiments.io import read_csv, write_csv
from repro.experiments.svgplot import _nice_ticks, render_svg, write_svg


def _figure():
    fig = FigureData("figT", "Test figure", "processors", "ratio")
    s = fig.new_series("alpha")
    s.add(10, 2.0, 0.1)
    s.add(50, 3.0, 0.2)
    s.add(100, 2.5, 0.0)
    t = fig.new_series("beta")
    t.add(10, 4.0)
    t.add(100, 5.0)
    return fig


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] <= 0.0 + 1e-9
        assert ticks[-1] >= 10.0 - 2.0  # last tick near the top
        assert ticks == sorted(ticks)

    def test_small_range(self):
        ticks = _nice_ticks(1.9, 2.1)
        assert len(ticks) >= 2
        assert all(1.8 <= t <= 2.2 for t in ticks)

    def test_degenerate(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert len(ticks) >= 1


class TestRenderSvg:
    def test_valid_document(self):
        svg = render_svg(_figure())
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<polyline") == 2  # one per series
        assert "Test figure" in svg
        assert "alpha" in svg and "beta" in svg

    def test_error_whiskers_present(self):
        svg = render_svg(_figure())
        # Series alpha has nonzero std at two points -> two whisker lines
        # beyond the grid/tick/legend lines; count markers instead.
        assert svg.count("<circle") == 5  # 3 + 2 data points

    def test_escaping(self):
        fig = FigureData("figE", "a < b & c", "x", "y")
        fig.new_series("s<1>").add(1, 1.0)
        svg = render_svg(fig)
        assert "a &lt; b &amp; c" in svg
        assert "s&lt;1&gt;" in svg

    def test_empty_figure_rejected(self):
        fig = FigureData("figE", "t", "x", "y")
        with pytest.raises(ValueError):
            render_svg(fig)
        fig.new_series("empty")
        with pytest.raises(ValueError):
            render_svg(fig)

    def test_categorical_axis(self):
        fig = FigureData("figC", "t", "scenario", "y", x_categories=["one", "two"])
        s = fig.new_series("s")
        s.add(0, 1.0)
        s.add(1, 2.0)
        svg = render_svg(fig)
        assert "one" in svg and "two" in svg

    def test_write_svg(self, tmp_path):
        path = write_svg(_figure(), str(tmp_path / "sub" / "fig.svg"))
        with open(path) as fh:
            assert fh.read().startswith("<svg")


class TestCsvRoundTrip:
    def test_roundtrip_preserves_data(self, tmp_path):
        fig = _figure()
        path = write_csv(fig, str(tmp_path / "fig.csv"))
        back = read_csv(path)
        assert back.figure_id == "figT"
        assert set(back.series) == {"alpha", "beta"}
        assert back["alpha"].x == fig["alpha"].x
        assert back["alpha"].mean == fig["alpha"].mean
        assert back["alpha"].std == fig["alpha"].std

    def test_roundtrip_categories(self, tmp_path):
        fig = FigureData("figC", "t", "x", "y", x_categories=["aa", "bb"])
        s = fig.new_series("s")
        s.add(0, 1.0)
        s.add(1, 2.0)
        path = write_csv(fig, str(tmp_path / "fig.csv"))
        back = read_csv(path)
        assert list(back.x_categories) == ["aa", "bb"]

    def test_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_csv(str(path))

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("figure,series,x,x_label,mean,std\n")
        with pytest.raises(ValueError):
            read_csv(str(path))

    def test_svg_from_roundtrip(self, tmp_path):
        """The full pipeline: figure -> CSV -> FigureData -> SVG."""
        fig = _figure()
        path = write_csv(fig, str(tmp_path / "fig.csv"))
        svg = render_svg(read_csv(path))
        assert "<polyline" in svg
