"""Tests for the results-directory report generator."""

import os

import pytest

from repro.experiments.config import FigureData
from repro.experiments.io import write_csv
from repro.experiments.report import summarize_results, write_report


def _populate(directory):
    fig = FigureData("fig99", "t", "p", "ratio")
    s = fig.new_series("RandomOuter")
    s.add(10, 4.0, 0.1)
    s.add(100, 6.0, 0.1)
    t = fig.new_series("DynamicOuter2Phases")
    t.add(10, 2.0, 0.05)
    t.add(100, 2.1, 0.05)
    write_csv(fig, os.path.join(directory, "fig99_ci.csv"))
    return fig


class TestSummarize:
    def test_report_contents(self, tmp_path):
        _populate(str(tmp_path))
        text = summarize_results(str(tmp_path))
        assert "# Results summary" in text
        assert "## fig99 (ci)" in text
        assert "RandomOuter" in text
        assert "DynamicOuter2Phases" in text

    def test_headline_ratio(self, tmp_path):
        _populate(str(tmp_path))
        text = summarize_results(str(tmp_path))
        # At x=100: Random 6.0 vs 2Phases 2.1 -> 2.86x.
        assert "2.86x" in text

    def test_scales_ordered(self, tmp_path):
        fig = FigureData("figz", "t", "p", "r")
        fig.new_series("a").add(1, 1.0)
        write_csv(fig, os.path.join(str(tmp_path), "figz_ci.csv"))
        write_csv(fig, os.path.join(str(tmp_path), "figz_paper.csv"))
        text = summarize_results(str(tmp_path))
        assert text.index("figz (paper)") < text.index("figz (ci)")

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            summarize_results(str(tmp_path))

    def test_non_figure_csv_skipped(self, tmp_path):
        (tmp_path / "random_data.csv").write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            summarize_results(str(tmp_path))

    def test_write_report(self, tmp_path):
        _populate(str(tmp_path))
        out = write_report(str(tmp_path), str(tmp_path / "out" / "report.md"))
        assert os.path.exists(out)
        with open(out) as fh:
            assert "# Results summary" in fh.read()

    def test_real_results_directory(self):
        """The repo's own results/ directory must summarize cleanly."""
        if not os.path.isdir("results"):
            pytest.skip("results/ not present")
        text = summarize_results("results")
        assert "fig04" in text
