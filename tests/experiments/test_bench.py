"""The repro-bench harness: suite shape, records, comparison, CLI."""

import json

import pytest

from repro.experiments.bench import (
    SCHEMA,
    SUITES,
    build_suite,
    compare_results,
    main,
    run_suite,
)
from repro.obs.profile import StageProfiler


def _tiny_record(**medians):
    """A minimal schema-valid record with the given workload medians."""
    return {
        "schema": SCHEMA,
        "suite": "quick",
        "seed": 0,
        "repeats": 1,
        "machine": {"platform": "test", "python": "3", "numpy": "1", "cpu_count": 1},
        "workloads": {
            name: {
                "params": {},
                "repeats": 1,
                "seconds": {"median": med, "min": med, "mean": med},
            }
            for name, med in medians.items()
        },
    }


class TestSuite:
    def test_suites_share_workload_names(self):
        names = {suite: [wl.name for wl in build_suite(suite)] for suite in SUITES}
        assert names["default"] == names["quick"]

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            build_suite("huge")

    def test_workloads_are_runnable(self):
        # Every quick workload must complete on a fixed seed.
        for wl in build_suite("quick"):
            assert wl.fn(0, StageProfiler(enabled=False)) is not None

    def test_workloads_profile_stages(self):
        # With an enabled profiler every workload reports at least one stage.
        for wl in build_suite("quick"):
            prof = StageProfiler()
            assert wl.fn(0, prof) is not None
            assert len(prof) >= 1
            assert prof.total() > 0


class TestRunSuite:
    def test_record_shape_and_derived_speedup(self):
        record = run_suite("quick", seed=0, repeats=1)
        assert record["schema"] == SCHEMA
        assert record["suite"] == "quick"
        assert set(record["machine"]) == {"platform", "python", "numpy", "cpu_count"}
        for entry in record["workloads"].values():
            seconds = entry["seconds"]
            assert 0 < seconds["min"] <= seconds["median"]
        assert "replicate_sweep_speedup" in record["derived"]

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            run_suite("quick", repeats=0)

    def test_profile_records_stage_seconds(self):
        record = run_suite("quick", seed=0, repeats=1, profile=True)
        assert record["profile"] is True
        for entry in record["workloads"].values():
            stages = entry["profile"]
            assert stages  # at least one stage per workload
            assert all(seconds >= 0 for seconds in stages.values())
        engine = record["workloads"]["engine_outer_dynamic"]["profile"]
        assert set(engine) == {"setup", "simulate"}

    def test_no_profile_leaves_entries_clean(self):
        record = run_suite("quick", seed=0, repeats=1)
        assert record["profile"] is False
        assert all("profile" not in e for e in record["workloads"].values())


class TestCompare:
    def test_regression_detected(self):
        old = _tiny_record(a=1.0, b=1.0)
        new = _tiny_record(a=1.5, b=1.0)
        rows = {r["name"]: r for r in compare_results(old, new, threshold=0.2)}
        assert rows["a"]["status"] == "regression"
        assert rows["b"]["status"] == "ok"

    def test_improvement_and_membership_changes(self):
        old = _tiny_record(a=1.0, gone=1.0)
        new = _tiny_record(a=0.5, fresh=1.0)
        rows = {r["name"]: r for r in compare_results(old, new)}
        assert rows["a"]["status"] == "improved"
        assert rows["fresh"]["status"] == "new"
        assert rows["gone"]["status"] == "removed"

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            compare_results(_tiny_record(), _tiny_record(), threshold=0.0)


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "replicate_sweep_serial" in out

    def test_run_writes_record(self, tmp_path):
        path = tmp_path / "bench.json"
        assert main(["run", "--quick", "--repeats", "1", "--json", str(path)]) == 0
        record = json.loads(path.read_text())
        assert record["schema"] == SCHEMA

    def test_compare_exit_codes(self, tmp_path, capsys):
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(_tiny_record(a=1.0)))
        new_path.write_text(json.dumps(_tiny_record(a=2.0)))
        assert main(["compare", str(old_path), str(new_path)]) == 1
        assert main(["compare", str(old_path), str(new_path), "--warn-only"]) == 0
        assert main(["compare", str(old_path), str(old_path)]) == 0
        capsys.readouterr()

    def test_compare_rejects_non_bench_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit):
            main(["compare", str(bad), str(bad)])
