"""The parallel replicate runner: bit-identity, pickling, dispatch edges."""

import pickle

import numpy as np
import pytest

from repro.core.strategies.registry import make_strategy
from repro.experiments.parallel import (
    FixedPlatformSpec,
    HeterogeneityPlatformSpec,
    RepJob,
    ScenarioPlatformSpec,
    StrategySpec,
    UniformPlatformSpec,
    _chunk_indices,
    parallel_average_normalized_comm,
    resolve_workers,
)
from repro.experiments.runner import average_normalized_comm
from repro.platform.platform import Platform
from repro.platform.speeds import SCENARIO_NAMES, uniform_speeds
from repro.utils.rng import spawn_seed_sequences


OUTER = StrategySpec("RandomOuter", 20)
MATRIX = StrategySpec("DynamicMatrix", 8)
PLATFORM = UniformPlatformSpec(6)


class TestBitIdentical:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_outer_kernel_matches_serial(self, workers):
        serial = average_normalized_comm(OUTER, PLATFORM, 20, 7, seed=42, workers=1)
        par = average_normalized_comm(OUTER, PLATFORM, 20, 7, seed=42, workers=workers)
        assert par == serial

    @pytest.mark.parametrize("workers", [2, 4])
    def test_matrix_kernel_matches_serial(self, workers):
        serial = average_normalized_comm(MATRIX, PLATFORM, 8, 5, seed=3, workers=1)
        par = average_normalized_comm(MATRIX, PLATFORM, 8, 5, seed=3, workers=workers)
        assert par == serial

    def test_scenario_factory_matches_serial(self):
        spec = ScenarioPlatformSpec(sorted(SCENARIO_NAMES)[0], 5)
        serial = average_normalized_comm(OUTER, spec, 20, 4, seed=1, workers=1)
        par = average_normalized_comm(OUTER, spec, 20, 4, seed=1, workers=2)
        assert par == serial

    def test_closure_factories_match_serial(self):
        # Unpicklable lambdas (the figure drivers' style) must still work
        # via fork dispatch — or fall back to serial, either way identical.
        strategy = lambda: make_strategy("RandomOuter", 15)  # noqa: E731
        platform = lambda rng: Platform(uniform_speeds(4, 10.0, 100.0, rng=rng))  # noqa: E731
        serial = average_normalized_comm(strategy, platform, 15, 6, seed=9, workers=1)
        par = average_normalized_comm(strategy, platform, 15, 6, seed=9, workers=2)
        assert par == serial

    def test_chunk_size_does_not_change_results(self):
        base = parallel_average_normalized_comm(OUTER, PLATFORM, 20, 6, seed=5, workers=2)
        tiny = parallel_average_normalized_comm(
            OUTER, PLATFORM, 20, 6, seed=5, workers=2, chunk_size=1
        )
        assert tiny == base

    def test_workers_zero_resolves_to_cpu_count(self):
        serial = average_normalized_comm(OUTER, PLATFORM, 20, 4, seed=0, workers=1)
        auto = average_normalized_comm(OUTER, PLATFORM, 20, 4, seed=0, workers=0)
        assert auto == serial


class TestRepJob:
    def test_pickle_round_trip_preserves_values(self):
        seeds = spawn_seed_sequences(0, 4)
        job = RepJob(OUTER, PLATFORM, 20, seeds)
        clone = pickle.loads(pickle.dumps(job))
        assert clone.run([0, 2]) == job.run([0, 2])

    def test_run_respects_index_order(self):
        job = RepJob(OUTER, PLATFORM, 20, spawn_seed_sequences(0, 4))
        forward = job.run([0, 1, 2, 3])
        reversed_ = job.run([3, 2, 1, 0])
        assert forward == reversed_[::-1]

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            RepJob(OUTER, PLATFORM, 0, spawn_seed_sequences(0, 1))


class TestSpecs:
    def test_strategy_spec_builds_named_strategy(self):
        strategy = StrategySpec("DynamicOuter", 12)()
        assert strategy.kernel == "outer"

    def test_strategy_spec_forwards_kwargs(self):
        spec = StrategySpec("DynamicOuter2Phases", 12, phase1_fraction=0.5)
        assert spec() is not None
        assert spec == StrategySpec("DynamicOuter2Phases", 12, phase1_fraction=0.5)
        assert spec != StrategySpec("DynamicOuter2Phases", 12)

    def test_fixed_platform_spec_ignores_rng(self):
        spec = FixedPlatformSpec([10.0, 20.0, 30.0])
        a = spec(np.random.default_rng(0))
        b = spec(np.random.default_rng(99))
        assert np.array_equal(a.speeds, b.speeds)

    def test_heterogeneity_spec_validates_h(self):
        with pytest.raises(ValueError):
            HeterogeneityPlatformSpec(4, 100.0)

    def test_scenario_spec_rejects_unknown(self):
        with pytest.raises(ValueError):
            ScenarioPlatformSpec("no-such-scenario", 4)

    def test_specs_are_picklable(self):
        for spec in (
            OUTER,
            PLATFORM,
            FixedPlatformSpec([1.0, 2.0]),
            HeterogeneityPlatformSpec(4, 50.0),
            ScenarioPlatformSpec(sorted(SCENARIO_NAMES)[0], 4),
        ):
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestDispatchHelpers:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)
        with pytest.raises(TypeError):
            resolve_workers(True)
        with pytest.raises(TypeError):
            resolve_workers(2.0)

    def test_chunk_indices_cover_all_reps_in_order(self):
        chunks = _chunk_indices(10, 3, None)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(10))

    def test_chunk_indices_explicit_size(self):
        assert _chunk_indices(5, 2, 2) == [[0, 1], [2, 3], [4]]
        with pytest.raises(ValueError):
            _chunk_indices(5, 2, 0)

    def test_reps_must_be_positive(self):
        with pytest.raises(ValueError):
            parallel_average_normalized_comm(OUTER, PLATFORM, 20, 0, seed=0)
