"""Cached sweeps: bit-identity, interrupt/resume, serial/parallel sharing.

The contract under test is the ISSUE's acceptance criterion: a sweep killed
mid-run and relaunched with ``--resume --cache`` produces byte-identical
CSVs while recomputing only the missing cells.
"""

import os

import pytest

import repro.experiments.cli as cli_module
from repro.experiments.cli import main
from repro.experiments.figures import generate
from repro.experiments.io import write_csv
from repro.experiments.parallel import StrategySpec, UniformPlatformSpec
from repro.experiments.runner import average_normalized_comm
from repro.obs.sink import RecordingSink
from repro.store.cache import ResultStore
from repro.store.cells import replicate_cell_key
from repro.store.fingerprint import fingerprint

STRATEGY = StrategySpec("RandomOuter", 12)
PLATFORM = UniformPlatformSpec(4)

#: Pinned fingerprint of a fixed replicate-cell key.  If this changes, every
#: existing cache silently invalidates — that must be a deliberate
#: ENGINE_VERSION / schema bump, not an accidental key-shape drift.
PINNED_KEY_FINGERPRINT = "3e12f48a2062b251d865fe54e3b0656a257e94c2fe4cd656245476b889fc4e7e"


def test_cell_key_fingerprint_is_pinned():
    key = replicate_cell_key(
        strategy_factory=STRATEGY,
        platform_factory=PLATFORM,
        n=12,
        reps=3,
        seed=0,
        metrics=False,
    )
    assert fingerprint(key) == PINNED_KEY_FINGERPRINT


class TestRunnerCache:
    def test_hit_is_bit_identical(self, tmp_path):
        store = ResultStore(str(tmp_path))
        uncached = average_normalized_comm(STRATEGY, PLATFORM, 12, 3, seed=5)
        miss = average_normalized_comm(STRATEGY, PLATFORM, 12, 3, seed=5, cache=store)
        hit = average_normalized_comm(STRATEGY, PLATFORM, 12, 3, seed=5, cache=store)
        assert uncached == miss == hit
        assert store.counts.hits == 1
        assert store.counts.puts == 1

    def test_serial_and_parallel_share_entries(self, tmp_path):
        store = ResultStore(str(tmp_path))
        serial = average_normalized_comm(STRATEGY, PLATFORM, 12, 3, seed=5, cache=store)
        parallel = average_normalized_comm(
            STRATEGY, PLATFORM, 12, 3, seed=5, workers=2, cache=store
        )
        assert serial == parallel
        assert store.counts.hits == 1  # the parallel call never simulated

    def test_metrics_replay_matches_live_run(self, tmp_path):
        store = ResultStore(str(tmp_path))
        live = RecordingSink()
        average_normalized_comm(STRATEGY, PLATFORM, 12, 3, seed=5, sink=live, cache=store)
        cached = RecordingSink()
        average_normalized_comm(STRATEGY, PLATFORM, 12, 3, seed=5, sink=cached, cache=store)
        assert cached.snapshot() == live.snapshot()

    def test_closure_factories_bypass_cache(self, tmp_path):
        from repro.core.strategies.registry import make_strategy
        from repro.platform.platform import Platform
        from repro.platform.speeds import uniform_speeds

        store = ResultStore(str(tmp_path))
        factory = lambda rng: Platform(uniform_speeds(4, 10, 100, rng=rng))  # noqa: E731
        average_normalized_comm(
            lambda: make_strategy("RandomOuter", 12), factory, 12, 2, seed=5, cache=store
        )
        assert store.entries() == []
        assert store.counts.puts == 0


class TestFigureCache:
    def test_cached_figure_matches_uncached(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        plain = generate("fig01", scale="ci", seed=3)
        warm = generate("fig01", scale="ci", seed=3, cache=store)
        hit = generate("fig01", scale="ci", seed=3, cache=store)
        a, b, c = (
            write_csv(fig, str(tmp_path / name))
            for fig, name in ((plain, "a.csv"), (warm, "b.csv"), (hit, "c.csv"))
        )
        blobs = [open(p, "rb").read() for p in (a, b, c)]
        assert blobs[0] == blobs[1] == blobs[2]
        assert store.counts.hits > 0

    def test_corrupted_entry_recomputes(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        reference = generate("fig01", scale="ci", seed=3, cache=store)
        for entry in store.entries():
            with open(entry.path, "a", encoding="utf-8") as fh:
                fh.write("garbage")
        recomputed = generate("fig01", scale="ci", seed=3, cache=store)
        assert store.counts.corrupt > 0
        ref_csv = write_csv(reference, str(tmp_path / "ref.csv"))
        new_csv = write_csv(recomputed, str(tmp_path / "new.csv"))
        assert open(ref_csv, "rb").read() == open(new_csv, "rb").read()


class _InterruptingStore(ResultStore):
    """A store whose process 'dies' (KeyboardInterrupt) after a few writes."""

    puts_before_death = 3

    def put(self, key, payload, *, kind):
        if self.counts.puts >= self.puts_before_death:
            raise KeyboardInterrupt("simulated kill -INT mid-sweep")
        return super().put(key, payload, kind=kind)


class TestInterruptAndResume:
    FIGURES = ["fig01", "fig02"]

    def _run(self, outdir, cache):
        return main(
            ["run", *self.FIGURES, "--scale", "ci", "--seed", "3",
             "--outdir", outdir, "--cache", cache, "--resume", "--quiet"]
        )

    def test_killed_sweep_resumes_bit_identical(self, tmp_path, monkeypatch, capsys):
        ref_dir = str(tmp_path / "ref")
        out_dir = str(tmp_path / "out")
        cache_dir = str(tmp_path / "cache")

        # Reference CSVs: no cache involved at all.
        assert main(["run", *self.FIGURES, "--scale", "ci", "--seed", "3",
                     "--outdir", ref_dir, "--quiet"]) == 0

        # First attempt dies after 3 cell writes, partway through the sweep.
        monkeypatch.setattr(cli_module, "ResultStore", _InterruptingStore)
        with pytest.raises(KeyboardInterrupt):
            self._run(out_dir, cache_dir)
        monkeypatch.undo()
        survived = len(ResultStore(cache_dir).entries())
        assert 0 < survived < 14  # partial progress persisted, sweep incomplete

        # Relaunch with --resume --cache: completes, reusing the survivors.
        capsys.readouterr()
        assert self._run(out_dir, cache_dir) == 0
        out = capsys.readouterr().out
        hits = int(out.rsplit("[cache: ", 1)[1].split(" hits")[0])
        assert hits > 0  # only the missing cells were recomputed

        for fid in self.FIGURES:
            ref = open(os.path.join(ref_dir, f"{fid}_ci.csv"), "rb").read()
            got = open(os.path.join(out_dir, f"{fid}_ci.csv"), "rb").read()
            assert got == ref, f"{fid} CSV differs after resume"

        # A third launch skips every figure via its manifest.
        assert self._run(out_dir, cache_dir) == 0
        out = capsys.readouterr().out
        for fid in self.FIGURES:
            assert f"[{fid} already complete" in out

    def test_resume_flag_requires_cache(self, tmp_path):
        with pytest.raises(SystemExit, match="--resume requires --cache"):
            main(["run", "fig01", "--scale", "ci", "--resume",
                  "--outdir", str(tmp_path), "--quiet"])

    def test_resume_flag_requires_outdir(self, tmp_path):
        with pytest.raises(SystemExit, match="--resume requires --outdir"):
            main(["run", "fig01", "--scale", "ci", "--resume",
                  "--cache", str(tmp_path / "c"), "--quiet"])
