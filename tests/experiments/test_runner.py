"""Tests for repro.experiments.runner."""

import pytest

from repro.core.strategies import OuterDynamic, OuterRandom
from repro.experiments.runner import average_normalized_comm, mean_analysis_ratio
from repro.platform import DynamicSpeedModel, Platform, uniform_speeds


def factory(rng):
    return Platform(uniform_speeds(10, 10, 100, rng=rng))


class TestAverageNormalizedComm:
    def test_basic(self):
        summary = average_normalized_comm(lambda: OuterDynamic(12), factory, 12, reps=3, seed=0)
        assert summary.n == 3
        assert summary.mean >= 1.0

    def test_reproducible(self):
        a = average_normalized_comm(lambda: OuterRandom(10), factory, 10, reps=3, seed=5)
        b = average_normalized_comm(lambda: OuterRandom(10), factory, 10, reps=3, seed=5)
        assert a.mean == b.mean and a.std == b.std

    def test_seed_matters(self):
        a = average_normalized_comm(lambda: OuterRandom(10), factory, 10, reps=3, seed=1)
        b = average_normalized_comm(lambda: OuterRandom(10), factory, 10, reps=3, seed=2)
        assert a.mean != b.mean

    def test_platform_with_speed_model(self):
        def dyn_factory(rng):
            return Platform(uniform_speeds(5, 80, 120, rng=rng)), DynamicSpeedModel(0.05)

        summary = average_normalized_comm(lambda: OuterDynamic(10), dyn_factory, 10, reps=2, seed=0)
        assert summary.mean >= 1.0

    def test_invalid_reps(self):
        with pytest.raises(ValueError):
            average_normalized_comm(lambda: OuterDynamic(5), factory, 5, reps=0)


class TestMeanAnalysisRatio:
    def test_outer(self):
        summary = mean_analysis_ratio("outer", factory, 50, reps=3, seed=0)
        assert 1.0 <= summary.mean <= 5.0

    def test_matrix(self):
        summary = mean_analysis_ratio("matrix", factory, 20, reps=3, seed=0)
        assert 1.0 <= summary.mean <= 6.0

    def test_fixed_beta(self):
        at_opt = mean_analysis_ratio("outer", factory, 50, reps=3, seed=0)
        off_opt = mean_analysis_ratio("outer", factory, 50, reps=3, seed=0, beta=0.5)
        assert at_opt.mean <= off_opt.mean

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            mean_analysis_ratio("conv", factory, 10, reps=1)

    def test_invalid_reps(self):
        with pytest.raises(ValueError):
            mean_analysis_ratio("outer", factory, 10, reps=-1)


class TestWorkersOption:
    def test_workers_param_delegates_and_matches_serial(self):
        strategy = lambda: OuterRandom(10)  # noqa: E731
        serial = average_normalized_comm(strategy, factory, 10, 4, seed=0, workers=1)
        parallel = average_normalized_comm(strategy, factory, 10, 4, seed=0, workers=2)
        assert parallel == serial
