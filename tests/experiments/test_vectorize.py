"""Vectorized-engine wiring through the runner, parallel and bench layers.

The engine-level equivalence lives in ``tests/simulator/test_batch.py``;
here we pin the plumbing: ``vectorize`` mode resolution, bit-identical
summaries/snapshots across engine selections, cache coherence across
modes, the per-worker chunking default, warm-pool reuse, and the bench
suite's scaling workloads and derived metrics.
"""

import pytest

import repro.experiments.parallel as parallel_module
from repro.experiments.bench import _derive_metrics, build_suite
from repro.experiments.parallel import (
    RepJob,
    StrategySpec,
    UniformPlatformSpec,
    _chunk_indices,
    parallel_average_normalized_comm,
    shutdown_pool,
)
from repro.experiments.runner import average_normalized_comm
from repro.obs.sink import RecordingSink
from repro.store.cache import ResultStore
from repro.utils.rng import spawn_seed_sequences


@pytest.fixture
def cell():
    return StrategySpec("RandomMatrix", 6), UniformPlatformSpec(10)


class TestRunnerVectorize:
    def test_modes_bit_identical(self, cell):
        strategy, platform = cell
        scalar = average_normalized_comm(strategy, platform, 6, 5, seed=2, vectorize=False)
        vector = average_normalized_comm(strategy, platform, 6, 5, seed=2, vectorize=True)
        auto = average_normalized_comm(strategy, platform, 6, 5, seed=2)
        assert scalar == vector == auto

    def test_sink_snapshots_bit_identical(self, cell):
        strategy, platform = cell
        scalar_sink, vector_sink = RecordingSink(), RecordingSink()
        average_normalized_comm(
            strategy, platform, 6, 4, seed=3, vectorize=False, sink=scalar_sink
        )
        average_normalized_comm(
            strategy, platform, 6, 4, seed=3, vectorize=True, sink=vector_sink
        )
        assert scalar_sink.snapshot() == vector_sink.snapshot()

    def test_auto_falls_back_for_fast_path_ineligible_strategy(self, cell):
        # collect_ids needs per-task id lists the kernels do not build, so
        # "auto" must transparently run the scalar loop.
        _, platform = cell
        strategy = StrategySpec("RandomOuter", 6, collect_ids=True)
        scalar = average_normalized_comm(strategy, platform, 6, 3, seed=1, vectorize=False)
        auto = average_normalized_comm(strategy, platform, 6, 3, seed=1)
        assert scalar == auto

    def test_true_requires_the_fast_path(self, cell):
        _, platform = cell
        with pytest.raises(ValueError, match="no vector kernel"):
            average_normalized_comm(
                StrategySpec("RandomOuter", 6, collect_ids=True),
                platform,
                6,
                3,
                vectorize=True,
            )

    def test_invalid_mode_rejected(self, cell):
        strategy, platform = cell
        with pytest.raises(ValueError, match="vectorize"):
            average_normalized_comm(strategy, platform, 6, 3, vectorize="yes")

    def test_cache_coherent_across_modes(self, cell, tmp_path):
        strategy, platform = cell
        store = ResultStore(str(tmp_path))
        scalar = average_normalized_comm(
            strategy, platform, 6, 4, seed=5, vectorize=False, cache=store
        )
        hit = average_normalized_comm(
            strategy, platform, 6, 4, seed=5, vectorize=True, cache=store
        )
        assert scalar == hit
        assert store.counts.hits == 1


class TestParallelVectorize:
    def test_job_run_respects_index_order_when_vectorized(self, cell):
        strategy, platform = cell
        job = RepJob(
            strategy, platform, 6, spawn_seed_sequences(0, 4), vectorize=True
        )
        forward = job.run([0, 1, 2, 3])
        assert job.run([3, 2, 1, 0]) == forward[::-1]
        scalar_job = RepJob(
            strategy, platform, 6, spawn_seed_sequences(0, 4), vectorize=False
        )
        assert scalar_job.run([0, 1, 2, 3]) == forward

    def test_parallel_matches_serial_with_vectorize(self, cell):
        strategy, platform = cell
        serial = average_normalized_comm(strategy, platform, 6, 5, seed=4, vectorize=False)
        par = parallel_average_normalized_comm(
            strategy, platform, 6, 5, seed=4, workers=2, vectorize="auto"
        )
        assert serial == par

    def test_warm_pool_is_reused_across_calls(self, cell):
        strategy, platform = cell
        try:
            parallel_average_normalized_comm(strategy, platform, 6, 4, seed=1, workers=2)
            first = parallel_module._POOL
            parallel_average_normalized_comm(strategy, platform, 6, 4, seed=2, workers=2)
            assert parallel_module._POOL is first
            assert first is not None
        finally:
            shutdown_pool()
        assert parallel_module._POOL is None

    def test_default_chunking_is_one_chunk_per_worker(self):
        assert _chunk_indices(10, 3, None) == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert _chunk_indices(8, 4, None) == [[0, 1], [2, 3], [4, 5], [6, 7]]
        assert _chunk_indices(3, 8, None) == [[0], [1], [2]]


class TestBenchScaling:
    def test_scaling_suite_shape(self):
        names = [wl.name for wl in build_suite("scaling")]
        for reps in (1, 4, 16, 64):
            for engine in ("serial", "vectorized", "parallel4"):
                assert f"scaling_reps{reps:02d}_{engine}" in names
        assert "twophase_beta_sweep_serial" in names
        assert "twophase_beta_sweep_vectorized" in names
        assert len(names) == 14

    def test_scaling_suite_records_engine_params(self):
        by_name = {wl.name: wl for wl in build_suite("scaling")}
        assert by_name["scaling_reps04_vectorized"].params["engine"] == "vectorized"
        assert by_name["twophase_beta_sweep_vectorized"].params["engine"] == "vectorized"
        serial = by_name["twophase_beta_sweep_serial"].params
        assert serial["engine"] == "scalar"
        assert serial["vectorize_fallback"] == "forced"

    def test_derive_metrics_two_phase_beta_sweep_speedup(self):
        entries = {
            "twophase_beta_sweep_serial": self._entry(6.0),
            "twophase_beta_sweep_vectorized": self._entry(1.0),
        }
        derived = _derive_metrics(entries, cpu_count=4)
        assert derived["twophase_beta_sweep_speedup"] == 6.0

    def test_quick_suite_has_vectorized_workload(self):
        names = [wl.name for wl in build_suite("quick")]
        assert "replicate_sweep_vectorized" in names

    @staticmethod
    def _entry(median):
        return {"seconds": {"median": median}}

    def test_derive_metrics_speedups(self):
        entries = {
            "replicate_sweep_serial": self._entry(4.0),
            "replicate_sweep_parallel4": self._entry(2.0),
            "replicate_sweep_vectorized": self._entry(0.5),
        }
        derived = _derive_metrics(entries, cpu_count=4)
        assert derived["replicate_sweep_speedup"] == 2.0
        assert derived["parallel_speedup_ok"] is True
        assert derived["replicate_sweep_vectorized_speedup"] == 8.0

    def test_derive_metrics_flags_parallel_loss_on_multicore(self):
        entries = {
            "replicate_sweep_serial": self._entry(2.0),
            "replicate_sweep_parallel4": self._entry(4.0),
        }
        assert _derive_metrics(entries, cpu_count=4)["parallel_speedup_ok"] is False
        # Warn-only on a single-CPU machine: parallelism cannot win there.
        assert _derive_metrics(entries, cpu_count=1)["parallel_speedup_ok"] is True

    def test_derive_metrics_scaling_curve(self):
        entries = {}
        for reps in (1, 4, 16, 64):
            entries[f"scaling_reps{reps:02d}_serial"] = self._entry(1.0 * reps)
            entries[f"scaling_reps{reps:02d}_vectorized"] = self._entry(0.2 * reps)
            entries[f"scaling_reps{reps:02d}_parallel4"] = self._entry(0.5 * reps)
        curve = _derive_metrics(entries, cpu_count=4)["scaling_curve"]
        assert [row["reps"] for row in curve] == [1, 4, 16, 64]
        for row in curve:
            assert row["vectorized_speedup"] == pytest.approx(5.0)
            assert row["parallel_speedup"] == pytest.approx(2.0)

    def test_derive_metrics_empty(self):
        assert _derive_metrics({}, cpu_count=4) == {}
