"""Tests for repro.experiments.io."""

import csv

from repro.experiments.config import FigureData
from repro.experiments.io import figure_to_rows, render_figure, write_csv


def _figure():
    fig = FigureData("figX", "A test figure", "p", "ratio")
    s = fig.new_series("alpha")
    s.add(10, 2.0, 0.1)
    s.add(20, 3.0, 0.0)
    t = fig.new_series("beta")
    t.add(10, 1.5, 0.05)
    return fig


class TestRows:
    def test_rows(self):
        rows = figure_to_rows(_figure())
        assert len(rows) == 3
        assert rows[0] == ("figX", "alpha", 10.0, "", 2.0, 0.1)

    def test_categorical_labels(self):
        fig = FigureData("figY", "t", "x", "y", x_categories=["one", "two"])
        fig.new_series("s").add(1, 5.0)
        rows = figure_to_rows(fig)
        assert rows[0][3] == "two"


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(_figure(), str(tmp_path / "sub" / "fig.csv"))
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["figure", "series", "x", "x_label", "mean", "std"]
        assert len(rows) == 4
        assert rows[1][1] == "alpha"


class TestRender:
    def test_contains_values(self):
        text = render_figure(_figure())
        assert "figX" in text
        assert "alpha" in text and "beta" in text
        assert "2.000" in text
        assert "±" in text  # std shown when nonzero

    def test_missing_points_dash(self):
        text = render_figure(_figure())
        assert "-" in text  # beta has no point at x=20
