"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform import Platform, uniform_speeds


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_platform() -> Platform:
    """Four workers with simple integer speeds (total 10)."""
    return Platform([1.0, 2.0, 3.0, 4.0])


@pytest.fixture
def paper_platform() -> Platform:
    """Twenty workers with speeds uniform in [10, 100] (paper default)."""
    return Platform(uniform_speeds(20, 10, 100, rng=7))


@pytest.fixture
def homogeneous_platform() -> Platform:
    return Platform.homogeneous(8, speed=5.0)
