"""SimulationLane: coalescing, admission control, priority order, drain."""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import ALL_PHASES, ALL_WORKERS
from repro.obs.sink import RecordingSink
from repro.serve.protocol import CellSpec
from repro.serve.queueing import AdmissionError, SimulationLane
from repro.serve.telemetry import ServiceSink
from repro.store.cache import ResultStore


def make_cell(seed=0, priority=0, n=12):
    return CellSpec.parse(
        {
            "strategy": "DynamicOuter",
            "n": n,
            "reps": 2,
            "seed": seed,
            "platform": {"type": "uniform", "p": 4},
            "priority": priority,
        }
    )


def make_lane(tmp_path, *, store_sink=None, executor=None, **kwargs):
    store = ResultStore(str(tmp_path / "cache"), sink=store_sink)
    sink = ServiceSink()
    executor = executor or ThreadPoolExecutor(max_workers=4)
    return SimulationLane(store, sink, executor, **kwargs), store, sink


class TestCoalescing:
    def test_concurrent_identical_cells_run_the_engine_once(self, tmp_path):
        recording = RecordingSink()
        lane, store, sink = make_lane(tmp_path, store_sink=recording)

        async def scenario():
            await lane.start()
            try:
                outcomes = await asyncio.gather(
                    lane.submit(make_cell(seed=5)), lane.submit(make_cell(seed=5))
                )
            finally:
                await lane.drain()
            return outcomes

        outcomes = asyncio.run(scenario())
        statuses = sorted(o.status for o in outcomes)
        assert statuses == ["coalesced", "computed"]
        # One engine run: exactly one store put, observed two independent ways.
        assert store.counts.puts == 1
        put_key = ("replicate-cell", ALL_WORKERS, ALL_PHASES)
        assert recording.metrics.counter("store_put").get(put_key) == 1
        assert sink.counter_value("serve_coalesced", "simulation") == 1
        # Both requesters got the same summary payload.
        assert outcomes[0].summary == outcomes[1].summary

    def test_second_request_after_completion_is_a_cache_hit(self, tmp_path):
        lane, store, sink = make_lane(tmp_path)

        async def scenario():
            await lane.start()
            try:
                first = await lane.submit(make_cell(seed=6))
                second = await lane.submit(make_cell(seed=6))
            finally:
                await lane.drain()
            return first, second

        first, second = asyncio.run(scenario())
        assert (first.status, second.status) == ("computed", "hit")
        assert first.summary == second.summary
        assert store.counts.puts == 1


class TestAdmission:
    def test_queue_full_rejects(self, tmp_path):
        lane, _, sink = make_lane(tmp_path, max_queue=1)

        async def scenario():
            # Workers never started: the first cell parks in the queue.
            first = asyncio.ensure_future(lane.submit(make_cell(seed=1)))
            await asyncio.sleep(0.05)  # let the cache probe resolve + enqueue
            assert lane.queue_depth == 1
            with pytest.raises(AdmissionError) as err:
                await lane.submit(make_cell(seed=2))
            assert err.value.reason == "queue_full"
            first.cancel()
            try:
                await first
            except asyncio.CancelledError:
                pass

        asyncio.run(scenario())
        assert sink.counter_value("serve_rejected", "queue_full") == 1

    def test_draining_rejects(self, tmp_path):
        lane, _, sink = make_lane(tmp_path)

        async def scenario():
            await lane.start()
            await lane.drain()
            with pytest.raises(AdmissionError) as err:
                await lane.submit(make_cell(seed=3))
            assert err.value.reason == "draining"

        asyncio.run(scenario())
        assert sink.counter_value("serve_rejected", "draining") == 1


class TestPriorityOrder:
    def test_saturated_lane_runs_high_priority_first(self, tmp_path):
        lane, _, _ = make_lane(tmp_path, workers=1, batch_max=1)
        finished = []

        async def scenario():
            # Enqueue while no worker runs, in *ascending* priority order.
            tasks = []
            for seed, priority in ((1, 0), (2, 5), (3, 9)):
                cell = make_cell(seed=seed, priority=priority)

                async def submit(c=cell, p=priority):
                    outcome = await lane.submit(c)
                    finished.append(p)
                    return outcome

                tasks.append(asyncio.ensure_future(submit()))
                await asyncio.sleep(0.05)  # past the cache probe, into the heap
            assert lane.queue_depth == 3
            await lane.start()
            await asyncio.gather(*tasks)
            await lane.drain()

        asyncio.run(scenario())
        # One worker, one cell per batch: completion order is execution order.
        assert finished == [9, 5, 0]


class TestErrorIsolation:
    def test_engine_failure_settles_every_requester(self, tmp_path, monkeypatch):
        lane, _, sink = make_lane(tmp_path)

        def boom(requests, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr("repro.serve.queueing.run_cells", boom)

        async def scenario():
            await lane.start()
            try:
                outcomes = await asyncio.gather(
                    lane.submit(make_cell(seed=7)), lane.submit(make_cell(seed=8))
                )
            finally:
                await lane.drain()
            return outcomes

        outcomes = asyncio.run(scenario())
        assert all(o.status == "error" for o in outcomes)
        assert all("engine exploded" in (o.error or "") for o in outcomes)
        assert lane.in_flight == 0  # jobs cleaned up despite the failure
        assert sink.counter_value("serve_cells", "error") == 2

    def test_payload_shape(self, tmp_path):
        lane, _, _ = make_lane(tmp_path)

        async def scenario():
            await lane.start()
            try:
                return await lane.submit(make_cell(seed=9))
            finally:
                await lane.drain()

        outcome = asyncio.run(scenario())
        payload = outcome.payload()
        assert payload["status"] == "computed"
        assert payload["fingerprint"] == make_cell(seed=9).fingerprint()
        assert payload["latency_s"] >= 0
        assert set(payload["summary"]) >= {"mean", "n"}
