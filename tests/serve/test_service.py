"""End-to-end service tests over real TCP via the in-process ServerThread."""

import json
import threading

import pytest

from repro.serve.client import ServeClient, ServeError, ServerThread, wait_until_healthy
from repro.serve.service import ServeConfig

CELL = {
    "strategy": "DynamicOuter",
    "n": 12,
    "reps": 2,
    "seed": 11,
    "platform": {"type": "uniform", "p": 4},
}
ANALYTICAL = {
    "query": "ratio",
    "kernel": "outer",
    "n": 50,
    "speeds": [70.0, 10.0, 15.0, 20.0],
    "beta": 2.0,
}


def config(tmp_path, **kwargs):
    kwargs.setdefault("quota_burst", 0)  # most tests opt out of quotas
    return ServeConfig(port=0, store_root=str(tmp_path / "cache"), **kwargs)


class TestMixedWorkloadAcceptance:
    """The ISSUE's acceptance scenario: N analytical + M simulation clients."""

    def test_mixed_traffic(self, tmp_path):
        # One lane worker, one cell per batch: the simulation lane is easy
        # to saturate, which is exactly when analytical must stay fast.
        cfg = config(tmp_path, lane_workers=1, batch_max=1)
        with ServerThread(cfg) as (host, port):
            client = ServeClient(host, port, client_id="mixed")
            specs = [dict(CELL, seed=100 + i) for i in range(3)]
            duplicates = specs + [dict(s) for s in specs]  # every cell twice

            sweep_result = {}

            def run_sweep():
                sweep_result.update(
                    ServeClient(host, port, client_id="sweeper").sweep(duplicates)
                )

            sweeper = threading.Thread(target=run_sweep)
            sweeper.start()
            try:
                # While the simulation lane grinds, analytical queries are
                # answered inline — none of them queues behind the lane.
                analytical = [client.analytical(ANALYTICAL) for _ in range(5)]
            finally:
                sweeper.join()
            assert all(r["value"] == analytical[0]["value"] for r in analytical)

            # Duplicates coalesced: 6 requested cells, 3 engine runs.
            counts = sweep_result["counts"]
            assert counts.get("computed", 0) == 3
            assert counts.get("computed", 0) + counts.get("coalesced", 0) + counts.get(
                "hit", 0
            ) == 6
            metrics = client.metrics()
            assert metrics["derived"]["store"]["puts"] == 3

            # Re-requesting is a byte-identical cache hit.
            first = client.cell(specs[0])
            again = client.cell(specs[0])
            assert first["status"] == "hit"
            assert json.dumps(first["summary"], sort_keys=True) == json.dumps(
                again["summary"], sort_keys=True
            )
            row = next(
                r for r in sweep_result["cells"] if r["fingerprint"] == first["fingerprint"]
            )
            assert row["summary"] == first["summary"]

            # /metrics: nonzero hit rate and populated latency histograms.
            derived = client.metrics()["derived"]
            assert derived["hit_rate"] is not None and derived["hit_rate"] > 0
            assert derived["latency"]["simulation"]["p50"] is not None
            assert derived["latency"]["simulation"]["p99"] is not None
            assert derived["latency"]["analytical"]["p50"] is not None


class TestQuotas:
    def test_quota_exhaustion_is_429(self, tmp_path):
        cfg = config(tmp_path, quota_rate=0.0, quota_burst=2.0)
        with ServerThread(cfg) as (host, port):
            client = ServeClient(host, port, client_id="greedy")
            assert client.cell(CELL)["status"] == "computed"
            assert client.cell(CELL)["status"] == "hit"
            with pytest.raises(ServeError) as err:
                client.cell(CELL)
            assert err.value.status == 429
            # Independent budgets: the analytical lane still answers, and so
            # does a different client on the simulation lane.
            assert client.analytical(ANALYTICAL)["value"] > 0
            other = ServeClient(host, port, client_id="patient")
            assert other.cell(CELL)["status"] == "hit"

    def test_sweep_costs_one_token_per_cell(self, tmp_path):
        cfg = config(tmp_path, quota_rate=0.0, quota_burst=3.0)
        with ServerThread(cfg) as (host, port):
            client = ServeClient(host, port, client_id="sweeper")
            cells = [dict(CELL, seed=200 + i) for i in range(4)]
            with pytest.raises(ServeError) as err:
                client.sweep(cells)
            assert err.value.status == 429
            assert client.sweep(cells[:3])["counts"]["computed"] == 3


class TestProtocolSurface:
    def test_error_statuses(self, tmp_path):
        with ServerThread(config(tmp_path, max_body=512)) as (host, port):
            client = ServeClient(host, port)
            assert client.healthz()["status"] == "ok"
            for path, status in (
                ("/nope", 404),
                ("/healthz", 405),  # POSTed below
            ):
                with pytest.raises(ServeError) as err:
                    client._request("POST", path, {})
                assert err.value.status == status
            with pytest.raises(ServeError) as err:
                client._request("POST", "/v1/cell", {"strategy": "nope"})
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client._request("POST", "/v1/sweep", {"cells": []})
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client._request(
                    "POST", "/v1/cell", {**CELL, "strategy_kwargs": {"pad": "x" * 600}}
                )
            assert err.value.status == 413

    def test_sweep_cell_cap(self, tmp_path):
        with ServerThread(config(tmp_path, max_cells=2)) as (host, port):
            client = ServeClient(host, port)
            with pytest.raises(ServeError) as err:
                client.sweep([dict(CELL, seed=i) for i in range(3)])
            assert err.value.status == 400

    def test_sse_stream_orders_events(self, tmp_path):
        with ServerThread(config(tmp_path)) as (host, port):
            client = ServeClient(host, port, client_id="stream")
            cells = [dict(CELL, seed=300 + i) for i in range(3)]
            events = list(client.sweep_stream(cells))
            names = [name for name, _ in events]
            assert names[0] == "accepted"
            assert names[-1] == "done"
            assert names.count("cell") == 3
            assert events[0][1]["cells"] == 3
            assert isinstance(events[0][1]["job"], str) and events[0][1]["job"]
            indices = sorted(data["index"] for name, data in events if name == "cell")
            assert indices == [0, 1, 2]
            done = events[-1][1]
            assert done["counts"] == {"computed": 3}

    def test_wait_until_healthy_and_drain(self, tmp_path):
        server = ServerThread(config(tmp_path))
        host, port = server.start()
        assert wait_until_healthy(host, port)["status"] == "ok"
        server.stop()
        # Port is released: a fresh client cannot connect anymore.
        with pytest.raises((OSError, ServeError)):
            ServeClient(host, port, timeout=1.0).healthz()

    def test_wait_until_healthy_times_out(self):
        with pytest.raises(TimeoutError):
            wait_until_healthy("127.0.0.1", 1, timeout=0.2, interval=0.05)
