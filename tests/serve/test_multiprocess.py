"""Two service instances over one store: cross-process coalescing & recovery.

Each :class:`ServerThread` boots a complete, independent
:class:`SweepService` — its own event loop, executor, claim registry and
journal — over the same store root, which is exactly the state two
``repro-serve`` processes behind a load balancer would share.
"""

import threading

import pytest

from repro.serve.client import ServeClient, ServeError, ServerThread
from repro.serve.protocol import CellSpec, sweep_job_id
from repro.serve.service import ServeConfig
from repro.store.cache import ResultStore
from repro.store.claims import ClaimRegistry
from repro.store.journal import Journal

CELLS = [
    {
        "strategy": strategy,
        "n": 6,
        "reps": 2,
        "seed": 7,
        "platform": {"type": "uniform", "p": 3},
    }
    for strategy in ("DynamicOuter", "SortedOuter", "RandomOuter")
]


def config(tmp_path, **overrides):
    settings = dict(
        port=0,
        store_root=str(tmp_path / "shared-store"),
        quota_burst=0,  # quotas off: these tests exercise claims, not limits
        claim_stale_after=5.0,
        claim_poll=0.01,
    )
    settings.update(overrides)
    return ServeConfig(**settings)


class TestCrossProcessCoalescing:
    def test_identical_cold_sweeps_run_each_engine_cell_once(self, tmp_path):
        with ServerThread(config(tmp_path)) as (h1, p1), \
                ServerThread(config(tmp_path)) as (h2, p2):
            clients = [ServeClient(h1, p1), ServeClient(h2, p2)]
            results = {}

            def sweep(idx):
                results[idx] = clients[idx % 2].sweep(CELLS)

            threads = [threading.Thread(target=sweep, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            # Every requester got every cell answered, none rejected.
            for body in results.values():
                assert sum(body["counts"].values()) == len(CELLS)
                assert "rejected" not in body["counts"]
                assert all(c["summary"] is not None for c in body["cells"])
            # The put counter across BOTH services is the cell count:
            # each cold cell hit the engine exactly once, cluster-wide.
            puts = 0
            for client in clients:
                puts += client.metrics()["derived"]["store"]["puts"]
            assert puts == len(CELLS)
            # All four sweeps resolved to the same deterministic job id.
            jobs = {body["job"] for body in results.values()}
            assert len(jobs) == 1

    def test_both_services_serve_the_same_summaries(self, tmp_path):
        with ServerThread(config(tmp_path)) as (h1, p1), \
                ServerThread(config(tmp_path)) as (h2, p2):
            first = ServeClient(h1, p1).sweep(CELLS)
            second = ServeClient(h2, p2).sweep(CELLS)
            assert second["counts"] == {"hit": len(CELLS)}
            by_fp = {c["fingerprint"]: c["summary"] for c in first["cells"]}
            for cell in second["cells"]:
                assert cell["summary"] == by_fp[cell["fingerprint"]]


class TestJobRecovery:
    def test_jobs_answers_from_either_service(self, tmp_path):
        with ServerThread(config(tmp_path)) as (h1, p1), \
                ServerThread(config(tmp_path)) as (h2, p2):
            job = ServeClient(h1, p1).sweep(CELLS)["job"]
            status = ServeClient(h2, p2).job(job)  # the service that never saw it
            assert status["job"] == job
            assert status["done"] is True
            assert len(status["finished"]) == len(CELLS)
            assert status["pending"] == []

    def test_jobs_survives_service_restart(self, tmp_path):
        with ServerThread(config(tmp_path)) as (host, port):
            job = ServeClient(host, port).sweep(CELLS)["job"]
        # First service fully stopped; a fresh one reconstructs the answer
        # from journal + store alone.
        with ServerThread(config(tmp_path)) as (host, port):
            status = ServeClient(host, port).job(job)
            assert status["done"] is True and len(status["finished"]) == len(CELLS)

    def test_unfinished_job_reports_pending_after_restart(self, tmp_path):
        store = ResultStore(str(tmp_path / "shared-store"))
        Journal(store).append_many(
            "accepted", ["never-computed-1", "never-computed-2"], job="half-done"
        )
        with ServerThread(config(tmp_path)) as (host, port):
            status = ServeClient(host, port).job("half-done")
            assert status["done"] is False
            assert status["pending"] == ["never-computed-1", "never-computed-2"]

    def test_unknown_job_is_404(self, tmp_path):
        with ServerThread(config(tmp_path)) as (host, port):
            with pytest.raises(ServeError) as err:
                ServeClient(host, port).job("no-such-job")
            assert err.value.status == 404

    def test_jobs_route_rejects_post(self, tmp_path):
        with ServerThread(config(tmp_path)) as (host, port):
            with pytest.raises(ServeError) as err:
                ServeClient(host, port)._request("POST", "/jobs/abc", {})
            assert err.value.status == 405


class FakeClock:
    """Settable clock for deterministic quota-refill and staleness tests."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


QUERY = {"query": "ratio", "kernel": "outer", "n": 16, "speeds": [1.0, 2.0], "beta": 2.0}


class TestInjectedClock:
    def test_quota_refill_is_clock_driven_not_wall_driven(self, tmp_path):
        clock = FakeClock(100.0)
        cfg = config(tmp_path, quota_rate=1.0, quota_burst=1.0)
        with ServerThread(cfg, clock=clock) as (host, port):
            client = ServeClient(host, port, client_id="budget")
            assert client.analytical(QUERY)["value"] > 0
            with pytest.raises(ServeError) as err:
                client.analytical(QUERY)  # bucket empty, no wall time passed
            assert err.value.status == 429
            clock.t += 5.0  # tokens refill by decree, not by sleeping
            assert client.analytical(QUERY)["value"] > 0

    def test_stale_claim_steal_is_clock_driven(self, tmp_path):
        # A "dead worker" claimed the cell at fake-time 0; the service's
        # injected clock says 1000, far past staleness — it must steal and
        # compute without any real waiting.
        clock = FakeClock(1_000.0)
        cfg = config(tmp_path, claim_stale_after=30.0)
        store = ResultStore(cfg.store_root)
        dead = ClaimRegistry(
            store, owner="dead-worker", stale_after=30.0, clock=FakeClock(0.0)
        )
        assert dead.try_claim(CellSpec.parse(CELLS[0]).fingerprint())
        with ServerThread(cfg, clock=clock) as (host, port):
            client = ServeClient(host, port)
            body = client.sweep([CELLS[0]])
            assert body["counts"] == {"computed": 1}
            assert client.metrics()["derived"]["claims"]["stolen"] == 1


class TestClaimConfiguration:
    def test_sweep_job_id_is_order_insensitive(self):
        cells = [CellSpec.parse(raw) for raw in CELLS]
        assert sweep_job_id(cells) == sweep_job_id(list(reversed(cells)))

    def test_claims_disabled_still_serves_and_journals(self, tmp_path):
        with ServerThread(config(tmp_path, claim_stale_after=0.0)) as (host, port):
            client = ServeClient(host, port)
            body = client.sweep(CELLS)
            assert body["counts"] == {"computed": len(CELLS)}
            assert client.metrics()["derived"]["claims"] is None
            # Journal acceptance (and /jobs) works without claims.
            status = client.job(body["job"])
            assert status["done"] is True

    def test_metrics_expose_claim_counters(self, tmp_path):
        with ServerThread(config(tmp_path)) as (host, port):
            client = ServeClient(host, port)
            client.sweep(CELLS)
            claims = client.metrics()["derived"]["claims"]
            assert claims["claimed"] == len(CELLS)
            assert claims["released"] == len(CELLS)

    def test_config_validates_claim_fields(self, tmp_path):
        with pytest.raises(ValueError, match="claim_stale_after"):
            config(tmp_path, claim_stale_after=-1.0)
        with pytest.raises(ValueError, match="claim_poll"):
            config(tmp_path, claim_poll=0.0)
