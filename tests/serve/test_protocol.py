"""Wire-schema validation: platform/cell/analytical parsing + canonicalization."""

import numpy as np
import pytest

from repro.core.analysis import (
    agnostic_beta,
    lower_bound,
    optimal_outer_beta,
    outer_total_ratio,
)
from repro.experiments.parallel import (
    FixedPlatformSpec,
    HeterogeneityPlatformSpec,
    ScenarioPlatformSpec,
    UniformPlatformSpec,
)
from repro.platform.platform import Platform
from repro.serve.protocol import (
    SERVE_SCHEMA,
    AnalyticalQuery,
    CellSpec,
    ProtocolError,
    parse_platform,
)

CELL = {
    "strategy": "DynamicOuter",
    "n": 16,
    "reps": 3,
    "seed": 7,
    "platform": {"type": "uniform", "p": 4},
}


class TestParsePlatform:
    def test_all_four_types(self):
        assert isinstance(parse_platform({"type": "uniform", "p": 4}), UniformPlatformSpec)
        assert isinstance(
            parse_platform({"type": "fixed", "speeds": [70, 10, 15]}), FixedPlatformSpec
        )
        assert isinstance(
            parse_platform({"type": "heterogeneity", "p": 4, "h": 50}),
            HeterogeneityPlatformSpec,
        )
        assert isinstance(
            parse_platform({"type": "scenario", "name": "unif.1", "p": 8}),
            ScenarioPlatformSpec,
        )

    def test_uniform_defaults_to_paper_draw(self):
        spec = parse_platform({"type": "uniform", "p": 4})
        assert (spec.low, spec.high) == (10.0, 100.0)

    @pytest.mark.parametrize(
        "raw",
        [
            "not a mapping",
            {"type": "nope"},
            {"type": "uniform", "p": 0},
            {"type": "uniform", "p": True},
            {"type": "uniform"},
            {"type": "fixed", "speeds": []},
            {"type": "fixed", "speeds": "fast"},
            {"type": "fixed", "speeds": [1.0, "x"]},
            {"type": "heterogeneity", "p": 4, "h": 100},
            {"type": "scenario", "p": 8},
            {"type": "scenario", "name": "nope", "p": 8},
        ],
    )
    def test_rejects(self, raw):
        with pytest.raises(ProtocolError):
            parse_platform(raw)

    def test_worker_cap(self):
        with pytest.raises(ProtocolError):
            parse_platform({"type": "uniform", "p": 9}, max_p=8)
        with pytest.raises(ProtocolError):
            parse_platform({"type": "fixed", "speeds": [1.0] * 9}, max_p=8)


class TestCellSpec:
    def test_parse_roundtrip(self):
        cell = CellSpec.parse(CELL)
        assert cell.priority == 0
        key = cell.key()
        assert key["schema"] == "repro.store.cell/1"
        assert cell.describe()["fingerprint"] == cell.fingerprint()

    def test_canonicalization_ignores_field_order_and_defaults(self):
        reordered = {
            "platform": {"p": 4, "type": "uniform", "low": 10, "high": 100},
            "seed": 7,
            "reps": 3,
            "n": 16,
            "strategy": "DynamicOuter",
            "strategy_kwargs": {},
            "priority": 9,
        }
        assert CellSpec.parse(reordered).fingerprint() == CellSpec.parse(CELL).fingerprint()

    def test_seed_and_kwargs_change_the_fingerprint(self):
        base = CellSpec.parse(CELL).fingerprint()
        assert CellSpec.parse({**CELL, "seed": 8}).fingerprint() != base
        assert (
            CellSpec.parse(
                {**CELL, "strategy": "DynamicOuter2Phases", "strategy_kwargs": {"phase1_fraction": 0.5}}
            ).fingerprint()
            != base
        )

    @pytest.mark.parametrize(
        "raw",
        [
            [],
            {**CELL, "strategy": "nope"},
            {**CELL, "n": 0},
            {**CELL, "n": 2.5},
            {**CELL, "reps": 0},
            {**CELL, "seed": -1},
            {**CELL, "priority": 10},
            {**CELL, "priority": "high"},
            {**CELL, "strategy_kwargs": {"no_such_kwarg": 1}},
            {k: v for k, v in CELL.items() if k != "platform"},
        ],
    )
    def test_rejects(self, raw):
        with pytest.raises(ProtocolError):
            CellSpec.parse(raw)

    def test_admission_caps(self):
        with pytest.raises(ProtocolError):
            CellSpec.parse(CELL, max_n=8)
        with pytest.raises(ProtocolError):
            CellSpec.parse(CELL, max_reps=2)


class TestAnalyticalQuery:
    SPEEDS = [70.0, 10.0, 15.0, 20.0]

    def _rel(self):
        return Platform(np.asarray(self.SPEEDS)).relative_speeds

    def test_ratio_with_explicit_beta(self):
        out = AnalyticalQuery.parse(
            {"query": "ratio", "kernel": "outer", "n": 50, "speeds": self.SPEEDS, "beta": 2.0}
        ).evaluate()
        assert out["beta"] == 2.0
        assert out["p"] == 4
        assert out["value"] == pytest.approx(outer_total_ratio(2.0, self._rel(), 50))

    def test_ratio_defaults_to_optimal_beta(self):
        out = AnalyticalQuery.parse(
            {"query": "ratio", "kernel": "outer", "n": 50, "speeds": self.SPEEDS}
        ).evaluate()
        beta_star = optimal_outer_beta(self._rel(), 50)
        assert out["beta"] == pytest.approx(beta_star)
        assert out["value"] == pytest.approx(outer_total_ratio(beta_star, self._rel(), 50))

    def test_optimal_beta_can_exceed_one(self):
        out = AnalyticalQuery.parse(
            {"query": "optimal_beta", "kernel": "outer", "n": 50, "speeds": self.SPEEDS}
        ).evaluate()
        assert out["value"] == pytest.approx(optimal_outer_beta(self._rel(), 50))

    def test_agnostic_beta_uses_p_not_speeds(self):
        out = AnalyticalQuery.parse(
            {"query": "agnostic_beta", "kernel": "outer", "n": 100, "p": 8}
        ).evaluate()
        assert out["value"] == pytest.approx(agnostic_beta("outer", 8, 100))

    def test_lower_bound(self):
        out = AnalyticalQuery.parse(
            {"query": "lower_bound", "kernel": "matrix", "n": 30, "speeds": self.SPEEDS}
        ).evaluate()
        assert out["value"] == pytest.approx(lower_bound("matrix", self._rel(), 30))

    @pytest.mark.parametrize(
        "raw",
        [
            {"query": "nope", "kernel": "outer", "n": 10, "speeds": [1.0]},
            {"query": "ratio", "kernel": "cube", "n": 10, "speeds": [1.0]},
            {"query": "ratio", "kernel": "outer", "n": 0, "speeds": [1.0]},
            {"query": "ratio", "kernel": "outer", "n": 10, "speeds": []},
            {"query": "ratio", "kernel": "outer", "n": 10, "speeds": [1.0], "beta": 0},
            {"query": "ratio", "kernel": "outer", "n": 10, "speeds": [1.0], "beta": -1.0},
            {"query": "agnostic_beta", "kernel": "outer", "n": 10},
        ],
    )
    def test_rejects(self, raw):
        with pytest.raises(ProtocolError):
            AnalyticalQuery.parse(raw)

    def test_schema_tag(self):
        assert SERVE_SCHEMA == "repro.serve/1"
