"""Token-bucket quotas: refill math, per-(client, lane) isolation, eviction."""

import pytest

from repro.serve.quotas import QuotaRegistry, TokenBucket


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(2.0, 1.0, now=0.0)
        assert bucket.try_take(1.0, now=0.0)
        assert bucket.try_take(1.0, now=0.0)
        assert not bucket.try_take(1.0, now=0.0)
        assert bucket.try_take(1.0, now=1.0)  # one token refilled
        assert not bucket.try_take(1.0, now=1.0)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(2.0, 10.0, now=0.0)
        # 100 s at rate 10 would be 1000 tokens; the cap holds it at 2.
        assert bucket.try_take(2.0, now=100.0)
        assert not bucket.try_take(1.0, now=100.0)

    def test_zero_rate_is_a_hard_budget(self):
        bucket = TokenBucket(3.0, 0.0, now=0.0)
        for _ in range(3):
            assert bucket.try_take(1.0, now=0.0)
        assert not bucket.try_take(1.0, now=10_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, -1.0, now=0.0)


class TestQuotaRegistry:
    def test_lanes_have_independent_budgets(self):
        clock = FakeClock()
        quotas = QuotaRegistry(0.0, 1.0, clock=clock)
        assert quotas.allow("alice", "simulation")
        assert not quotas.allow("alice", "simulation")
        # Exhausting simulation does not touch the analytical budget.
        assert quotas.allow("alice", "analytical")

    def test_clients_do_not_share_buckets(self):
        quotas = QuotaRegistry(0.0, 1.0, clock=FakeClock())
        assert quotas.allow("alice", "simulation")
        assert quotas.allow("bob", "simulation")
        assert not quotas.allow("alice", "simulation")

    def test_sweep_cost_spends_many_tokens(self):
        quotas = QuotaRegistry(0.0, 4.0, clock=FakeClock())
        assert quotas.allow("alice", "simulation", cost=3.0)
        assert not quotas.allow("alice", "simulation", cost=3.0)
        assert quotas.allow("alice", "simulation", cost=1.0)

    def test_refill_over_time(self):
        clock = FakeClock()
        quotas = QuotaRegistry(2.0, 2.0, clock=clock)
        assert quotas.allow("alice", "simulation", cost=2.0)
        assert not quotas.allow("alice", "simulation")
        clock.t = 1.0
        assert quotas.allow("alice", "simulation", cost=2.0)

    def test_burst_zero_disables_quotas(self):
        quotas = QuotaRegistry(0.0, 0.0, clock=FakeClock())
        assert quotas.unlimited
        for _ in range(100):
            assert quotas.allow("anyone", "simulation", cost=50.0)
        assert len(quotas) == 0

    def test_lru_eviction_bounds_memory(self):
        quotas = QuotaRegistry(0.0, 1.0, clock=FakeClock(), max_clients=2)
        assert quotas.allow("a", "simulation")
        assert quotas.allow("b", "simulation")
        assert quotas.allow("c", "simulation")  # evicts ("a", "simulation")
        assert len(quotas) == 2
        # Evicted client starts over with a fresh (full) bucket.
        assert quotas.allow("a", "simulation")
