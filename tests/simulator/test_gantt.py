"""Tests for occupancy analysis and the ASCII Gantt renderer."""

import numpy as np
import pytest

from repro.core.strategies import OuterDynamic, OuterTwoPhase
from repro.simulator import ascii_gantt, simulate, utilization, worker_intervals


@pytest.fixture
def traced(paper_platform):
    return simulate(OuterTwoPhase(20, beta=3.0), paper_platform, rng=2, collect_trace=True)


class TestWorkerIntervals:
    def test_intervals_within_makespan(self, traced):
        for intervals in worker_intervals(traced).values():
            for start, end, phase in intervals:
                assert 0 <= start < end <= traced.makespan + 1e-9
                assert phase in (1, 2)

    def test_intervals_non_overlapping_per_worker(self, traced):
        for intervals in worker_intervals(traced).values():
            ordered = sorted(intervals)
            for (s1, e1, _), (s2, _, _) in zip(ordered, ordered[1:]):
                assert e1 <= s2 + 1e-9

    def test_requires_trace(self, paper_platform):
        r = simulate(OuterDynamic(8), paper_platform, rng=0)
        with pytest.raises(ValueError, match="trace"):
            worker_intervals(r)


class TestUtilization:
    def test_range(self, traced, paper_platform):
        u = utilization(traced)
        assert u.shape == (paper_platform.p,)
        assert np.all(u >= 0) and np.all(u <= 1 + 1e-9)

    def test_demand_driven_high_utilization(self, paper_platform):
        """Demand-driven workers stay busy nearly to the end (larger n —
        at tiny sizes the last-batch tail dominates the makespan)."""
        r = simulate(OuterTwoPhase(60, beta=4.0), paper_platform, rng=2, collect_trace=True)
        assert utilization(r).mean() > 0.8


class TestAsciiGantt:
    def test_structure(self, traced, paper_platform):
        art = ascii_gantt(traced, width=40)
        lines = art.splitlines()
        assert len(lines) == paper_platform.p + 2  # header + rows + axis
        assert "DynamicOuter2Phases" in lines[0]
        for line in lines[1 : 1 + paper_platform.p]:
            assert line.startswith("P")
            assert "%" in line

    def test_busy_cells_present(self, traced):
        art = ascii_gantt(traced, width=40)
        assert "#" in art  # phase-1 compute visible

    def test_phase2_cells_present(self, paper_platform):
        r = simulate(OuterTwoPhase(20, beta=1.0), paper_platform, rng=2, collect_trace=True)
        assert "=" in ascii_gantt(r, width=40)

    def test_width_validation(self, traced):
        with pytest.raises(ValueError):
            ascii_gantt(traced, width=5)
