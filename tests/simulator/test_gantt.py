"""Tests for occupancy analysis and the ASCII Gantt renderer."""

import numpy as np
import pytest

from repro.core.strategies import OuterDynamic, OuterTwoPhase
from repro.simulator import ascii_gantt, simulate, utilization, worker_intervals
from repro.simulator.results import SimulationResult
from repro.simulator.trace import AssignmentRecord, Trace


@pytest.fixture
def traced(paper_platform):
    return simulate(OuterTwoPhase(20, beta=3.0), paper_platform, rng=2, collect_trace=True)


def _manual_result(records, p=2, makespan=None):
    """A hand-built traced result for edge cases the engine never produces."""
    trace = Trace()
    for rec in records:
        trace.append(rec)
    blocks = [0] * p
    tasks = [0] * p
    span = 0.0
    for rec in records:
        blocks[rec.worker] += rec.blocks
        tasks[rec.worker] += rec.tasks
        span = max(span, rec.time + rec.duration)
    return SimulationResult(
        total_blocks=sum(blocks),
        per_worker_blocks=np.asarray(blocks, dtype=np.int64),
        per_worker_tasks=np.asarray(tasks, dtype=np.int64),
        makespan=span if makespan is None else makespan,
        n_assignments=len(records),
        strategy_name="Manual",
        trace=trace,
    )


class TestWorkerIntervals:
    def test_intervals_within_makespan(self, traced):
        for intervals in worker_intervals(traced).values():
            for start, end, phase in intervals:
                assert 0 <= start < end <= traced.makespan + 1e-9
                assert phase in (1, 2)

    def test_intervals_non_overlapping_per_worker(self, traced):
        for intervals in worker_intervals(traced).values():
            ordered = sorted(intervals)
            for (s1, e1, _), (s2, _, _) in zip(ordered, ordered[1:]):
                assert e1 <= s2 + 1e-9

    def test_requires_trace(self, paper_platform):
        r = simulate(OuterDynamic(8), paper_platform, rng=0)
        with pytest.raises(ValueError, match="trace"):
            worker_intervals(r)

    def test_zero_duration_assignments_skipped(self):
        r = _manual_result(
            [
                AssignmentRecord(time=0.0, worker=0, blocks=4, tasks=0, duration=0.0),
                AssignmentRecord(time=0.0, worker=1, blocks=2, tasks=3, duration=1.5),
            ]
        )
        intervals = worker_intervals(r)
        assert 0 not in intervals  # pure data shipment leaves no busy interval
        assert intervals[1] == [(0.0, 1.5, 1)]

    def test_phase_carried_through(self):
        r = _manual_result(
            [AssignmentRecord(time=1.0, worker=0, blocks=1, tasks=2, duration=0.5, phase=2)]
        )
        assert worker_intervals(r)[0] == [(1.0, 1.5, 2)]


class TestUtilization:
    def test_range(self, traced, paper_platform):
        u = utilization(traced)
        assert u.shape == (paper_platform.p,)
        assert np.all(u >= 0) and np.all(u <= 1 + 1e-9)

    def test_demand_driven_high_utilization(self, paper_platform):
        """Demand-driven workers stay busy nearly to the end (larger n —
        at tiny sizes the last-batch tail dominates the makespan)."""
        r = simulate(OuterTwoPhase(60, beta=4.0), paper_platform, rng=2, collect_trace=True)
        assert utilization(r).mean() > 0.8

    def test_zero_makespan_gives_zero_utilization(self):
        r = _manual_result(
            [AssignmentRecord(time=0.0, worker=0, blocks=1, tasks=0, duration=0.0)],
            makespan=0.0,
        )
        assert np.array_equal(utilization(r), np.zeros(2))

    def test_matches_interval_lengths(self, traced):
        u = utilization(traced)
        for worker, intervals in worker_intervals(traced).items():
            busy = sum(end - start for start, end, _ in intervals)
            assert u[worker] == pytest.approx(busy / traced.makespan)

    def test_requires_trace(self, paper_platform):
        r = simulate(OuterDynamic(8), paper_platform, rng=0)
        with pytest.raises(ValueError, match="trace"):
            utilization(r)


class TestAsciiGantt:
    def test_structure(self, traced, paper_platform):
        art = ascii_gantt(traced, width=40)
        lines = art.splitlines()
        assert len(lines) == paper_platform.p + 2  # header + rows + axis
        assert "DynamicOuter2Phases" in lines[0]
        for line in lines[1 : 1 + paper_platform.p]:
            assert line.startswith("P")
            assert "%" in line

    def test_busy_cells_present(self, traced):
        art = ascii_gantt(traced, width=40)
        assert "#" in art  # phase-1 compute visible

    def test_phase2_cells_present(self, paper_platform):
        r = simulate(OuterTwoPhase(20, beta=1.0), paper_platform, rng=2, collect_trace=True)
        assert "=" in ascii_gantt(r, width=40)

    def test_width_validation(self, traced):
        with pytest.raises(ValueError):
            ascii_gantt(traced, width=5)

    def test_axis_line_spans_makespan(self, traced):
        last = ascii_gantt(traced, width=40).splitlines()[-1]
        assert last.strip().startswith("0")
        assert f"{traced.makespan:.4g}" in last

    def test_idle_worker_row_blank(self):
        # Worker 1 never computes: its row must be all spaces at 0% util.
        r = _manual_result(
            [AssignmentRecord(time=0.0, worker=0, blocks=2, tasks=4, duration=2.0)]
        )
        row = ascii_gantt(r, width=20).splitlines()[2]
        assert row.startswith("P1")
        assert "#" not in row and "=" not in row
        assert "0.0%" in row

    def test_rendering_is_deterministic(self, traced):
        assert ascii_gantt(traced, width=40) == ascii_gantt(traced, width=40)
