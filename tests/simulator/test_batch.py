"""Batch-engine equivalence: simulate_batch vs the scalar oracle.

The vectorized engine's whole contract is *bit-identity* with
:func:`repro.simulator.simulate` per replicate — same results, same
traces, same sink snapshots, same RNG stream consumption.  These tests
pin that contract for every vectorized strategy, the scheduling helpers'
edge cases, and the transparent fallbacks.
"""

import numpy as np
import pytest

from repro.core.strategies.outer_random import OuterRandom
from repro.core.strategies.registry import make_strategy
from repro.obs.sink import RecordingSink
from repro.platform import Platform, uniform_speeds
from repro.platform.speeds import StaticSpeedModel, make_scenario
from repro.simulator import has_vector_kernel, simulate, simulate_batch
from repro.simulator.batch import fallback_reason
from repro.simulator.vector_kernels import (
    _fifo_fix,
    _heap_schedule,
    _pop_schedule,
    kernel_for,
)
from repro.utils.rng import spawn_rngs

VECTORIZED = [
    "RandomOuter",
    "SortedOuter",
    "RandomMatrix",
    "SortedMatrix",
    "MapReduceOuter",
    "MapReduceMatrix",
    "DynamicOuter",
    "DynamicMatrix",
    "DynamicOuter2Phases",
    "DynamicMatrix2Phases",
]


class _SubclassedRandomOuter(OuterRandom):
    """Exact-type registry must not cover subclasses (changed semantics)."""


def assert_same_result(ref, got):
    assert ref.total_blocks == got.total_blocks
    assert ref.n_assignments == got.n_assignments
    assert ref.makespan == got.makespan
    assert ref.strategy_name == got.strategy_name
    assert np.array_equal(ref.per_worker_blocks, got.per_worker_blocks)
    assert np.array_equal(ref.per_worker_tasks, got.per_worker_tasks)
    if ref.trace is None:
        assert got.trace is None
    else:
        assert len(ref.trace.records) == len(got.trace.records)
        for a, b in zip(ref.trace.records, got.trace.records):
            assert (a.time, a.worker, a.blocks, a.tasks, a.duration, a.phase) == (
                b.time,
                b.worker,
                b.blocks,
                b.tasks,
                b.duration,
                b.phase,
            )


def _size(name):
    return 6 if "Matrix" in name else 12


@pytest.mark.parametrize("name", VECTORIZED)
def test_batch_matches_scalar_with_traces(name):
    platform = Platform(uniform_speeds(6, 10, 100, rng=123))
    n = _size(name)
    refs = [
        simulate(make_strategy(name, n), platform, rng=g, collect_trace=True)
        for g in spawn_rngs(321, 3)
    ]
    gots = simulate_batch(
        lambda: make_strategy(name, n),
        [platform] * 3,
        rngs=spawn_rngs(321, 3),
        collect_trace=True,
    )
    for ref, got in zip(refs, gots):
        assert_same_result(ref, got)


@pytest.mark.parametrize("name", VECTORIZED)
def test_batch_consumes_rng_streams_identically(name):
    platform = Platform(uniform_speeds(4, 10, 100, rng=1))
    n = _size(name)
    batch_gens = spawn_rngs(9, 2)
    simulate_batch(lambda: make_strategy(name, n), [platform] * 2, rngs=batch_gens)
    scalar_gens = spawn_rngs(9, 2)
    for g in scalar_gens:
        simulate(make_strategy(name, n), platform, rng=g)
    for bg, sg in zip(batch_gens, scalar_gens):
        assert bg.bit_generator.state == sg.bit_generator.state


@pytest.mark.parametrize("name", VECTORIZED)
def test_batch_on_homogeneous_speeds_ties(name):
    # Equal speeds put every worker's k-th event at the same timestamp, so
    # the pop order is decided purely by the heap's FIFO tie-breaking.
    platform = Platform(np.full(5, 25.0))
    n = _size(name)
    ref = simulate(make_strategy(name, n), platform, rng=7, collect_trace=True)
    got = simulate_batch(
        lambda: make_strategy(name, n), [platform], rngs=[7], collect_trace=True
    )[0]
    assert_same_result(ref, got)


@pytest.mark.parametrize("name", VECTORIZED)
def test_batch_with_fewer_tasks_than_workers(name):
    n = 2
    platform = Platform(uniform_speeds(9, 10, 100, rng=3))
    ref = simulate(make_strategy(name, n), platform, rng=11, collect_trace=True)
    got = simulate_batch(
        lambda: make_strategy(name, n), [platform], rngs=[11], collect_trace=True
    )[0]
    assert_same_result(ref, got)


@pytest.mark.parametrize("name", VECTORIZED)
def test_batch_single_worker(name):
    platform = Platform(np.array([42.0]))
    n = _size(name)
    ref = simulate(make_strategy(name, n), platform, rng=2, collect_trace=True)
    got = simulate_batch(
        lambda: make_strategy(name, n), [platform], rngs=[2], collect_trace=True
    )[0]
    assert_same_result(ref, got)


def test_sink_snapshots_bit_identical():
    platform = Platform(uniform_speeds(6, 10, 100, rng=123))
    for name in VECTORIZED:
        n = _size(name)
        ref_sink, got_sink = RecordingSink(), RecordingSink()
        simulate(make_strategy(name, n), platform, rng=5, sink=ref_sink)
        simulate_batch(
            lambda: make_strategy(name, n), [platform], rngs=[5], sinks=[got_sink]
        )
        assert ref_sink.snapshot() == got_sink.snapshot(), name


# -- scheduling helpers ------------------------------------------------------


def test_pop_schedule_matches_heap_replay():
    rng = np.random.default_rng(0)
    for _ in range(25):
        p = int(rng.integers(1, 12))
        total = int(rng.integers(1, 400))
        d = 1.0 / rng.uniform(10, 100, size=p)
        w_ref, t_ref, c_ref, m_ref = _heap_schedule(d, total)
        w, t, c, m = _pop_schedule(d, total)
        assert np.array_equal(w, w_ref)
        assert np.array_equal(t, t_ref)
        assert np.array_equal(c, c_ref)
        assert m == m_ref


def test_pop_schedule_regrows_small_k0():
    d = 1.0 / np.array([100.0, 10.0, 12.0])
    total = 200
    ref = _pop_schedule(d, total)
    tiny = _pop_schedule(d, total, k0=1)
    for a, b in zip(ref[:3], tiny[:3]):
        assert np.array_equal(a, b)
    assert ref[3] == tiny[3]


def test_pop_schedule_homogeneous_is_round_robin():
    d = np.full(4, 0.5)
    w, t, c, m = _pop_schedule(d, 8)
    assert w.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]
    assert np.array_equal(c, np.full(4, 2))
    assert m == 1.0


def test_fifo_fix_bails_on_same_worker_twice_in_a_tie():
    # Synthetic degenerate schedule: worker 0's first two events at the
    # same timestamp (possible only when fl(t + d) == t).  The exact pop
    # order then depends on heap-internal sequencing the analytic fix
    # cannot reconstruct, so it must hand over to the heap replay.
    p = 2
    flat = np.array([0.0, 0.0, 0.0, 1.0])  # events (k=0,w=0) (k=0,w=1) (k=1,w=0)
    order = np.argsort(flat, kind="stable")
    assert _fifo_fix(flat, order, 3, p) is None


# -- fallbacks and validation ------------------------------------------------


def test_has_vector_kernel_registry():
    for name in VECTORIZED:
        assert has_vector_kernel(make_strategy(name, 4))
    # Exact-type matching: a subclass may change semantics, so it must
    # fall back even though its parent has a kernel.
    assert kernel_for(_SubclassedRandomOuter(4)) is None
    assert not has_vector_kernel(_SubclassedRandomOuter(4))


def test_fallback_reason_strings():
    assert fallback_reason(make_strategy("DynamicOuter2Phases", 4)) is None
    assert fallback_reason(_SubclassedRandomOuter(4)) == "no-kernel"
    assert fallback_reason(make_strategy("RandomOuter", 4, collect_ids=True)) == "collect-ids"
    mixed = [
        Platform(uniform_speeds(3, 10, 100, rng=1)),
        Platform(uniform_speeds(5, 10, 100, rng=2)),
    ]
    assert fallback_reason(make_strategy("RandomOuter", 4), mixed) == "mixed-p"
    platform = Platform(uniform_speeds(3, 10, 100, rng=1))

    class _OddModel(StaticSpeedModel):
        pass

    assert (
        fallback_reason(make_strategy("RandomOuter", 4), [platform], [_OddModel()])
        == "custom-speed-model"
    )
    _, dyn_model = make_scenario("dyn.5", 3, rng=0)
    assert fallback_reason(make_strategy("RandomOuter", 4), [platform], [dyn_model]) is None
    assert (
        fallback_reason(
            make_strategy("RandomOuter", 4), [platform, platform], [dyn_model, dyn_model]
        )
        == "shared-speed-model"
    )


def test_fallback_strategy_without_kernel():
    platform = Platform(uniform_speeds(5, 10, 100, rng=8))
    refs = [
        simulate(_SubclassedRandomOuter(8), platform, rng=g, collect_trace=True)
        for g in spawn_rngs(4, 2)
    ]
    gots = simulate_batch(
        lambda: _SubclassedRandomOuter(8),
        [platform] * 2,
        rngs=spawn_rngs(4, 2),
        collect_trace=True,
    )
    for ref, got in zip(refs, gots):
        assert_same_result(ref, got)


def test_fallback_on_collect_ids():
    platform = Platform(uniform_speeds(4, 10, 100, rng=8))
    ref = simulate(
        make_strategy("RandomOuter", 6, collect_ids=True),
        platform,
        rng=3,
        collect_trace=True,
    )
    got = simulate_batch(
        lambda: make_strategy("RandomOuter", 6, collect_ids=True),
        [platform],
        rngs=[3],
        collect_trace=True,
    )[0]
    assert_same_result(ref, got)
    assert got.trace.records[0].task_ids is not None


@pytest.mark.parametrize("name", VECTORIZED)
def test_dynamic_speed_models_vectorize(name):
    # dyn.* models no longer force the scalar loop: the kernels replay
    # model.duration per event on the replicate's own stream.
    n = _size(name)
    ref_rngs = spawn_rngs(6, 2)
    ref_results = []
    for g in ref_rngs:
        platform, model = make_scenario("dyn.20", 5, rng=g)
        ref_results.append(
            simulate(
                make_strategy(name, n), platform, rng=g, speed_model=model, collect_trace=True
            )
        )
    got_rngs = spawn_rngs(6, 2)
    platforms, models = [], []
    for g in got_rngs:
        platform, model = make_scenario("dyn.20", 5, rng=g)
        platforms.append(platform)
        models.append(model)
    assert fallback_reason(make_strategy(name, n), platforms, models) is None
    gots = simulate_batch(
        lambda: make_strategy(name, n),
        platforms,
        rngs=got_rngs,
        speed_models=models,
        collect_trace=True,
    )
    for ref, got in zip(ref_results, gots):
        assert_same_result(ref, got)
    for bg, sg in zip(got_rngs, ref_rngs):
        assert bg.bit_generator.state == sg.bit_generator.state


def test_fallback_on_custom_speed_model():
    class _OddModel(StaticSpeedModel):
        pass

    platform = Platform(uniform_speeds(4, 10, 100, rng=8))
    ref = simulate(
        make_strategy("RandomOuter", 6), platform, rng=3, speed_model=_OddModel()
    )
    got = simulate_batch(
        lambda: make_strategy("RandomOuter", 6),
        [platform],
        rngs=[3],
        speed_models=[_OddModel()],
    )[0]
    assert_same_result(ref, got)


def test_two_phase_trace_marks_phase_two():
    platform = Platform(uniform_speeds(4, 10, 100, rng=6))
    got = simulate_batch(
        lambda: make_strategy("DynamicOuter2Phases", 10, phase1_fraction=0.5),
        [platform],
        rngs=[4],
        collect_trace=True,
    )[0]
    phases = {rec.phase for rec in got.trace.records}
    assert phases == {1, 2}


@pytest.mark.parametrize(
    "name,kwargs",
    [
        ("DynamicOuter2Phases", {"threshold_tasks": 0}),
        ("DynamicOuter2Phases", {"phase1_fraction": 0.0}),
        ("DynamicOuter2Phases", {"threshold_tasks": 10**9}),
        ("DynamicOuter2Phases", {"agnostic": True}),
        ("DynamicMatrix2Phases", {"phase1_fraction": 1.0}),
        ("DynamicMatrix2Phases", {"threshold_tasks": 0}),
    ],
)
def test_two_phase_threshold_edge_cases(name, kwargs):
    # threshold >= total => phase 2 from the very first event; threshold 0
    # (phase1_fraction 1.0) => pure phase 1.  Both must stay bit-identical.
    n = 5 if "Matrix" in name else 8
    platform = Platform(uniform_speeds(5, 10, 100, rng=2))
    ref = simulate(make_strategy(name, n, **kwargs), platform, rng=13, collect_trace=True)
    got = simulate_batch(
        lambda: make_strategy(name, n, **kwargs), [platform], rngs=[13], collect_trace=True
    )[0]
    assert_same_result(ref, got)


@pytest.mark.parametrize("name", ["DynamicMatrix2Phases", "DynamicMatrix", "RandomMatrix"])
def test_chunked_batch_matches_unchunked(name):
    # A memory budget that forces >= 3 replicate chunks must not change a
    # single bit: replicates never interact, so slicing R is exact.
    n = 6
    R = 9
    platforms = [Platform(uniform_speeds(4, 10, 100, rng=50 + r)) for r in range(R)]
    kernel = kernel_for(make_strategy(name, n))
    budget = 3 * kernel.bytes_per_replicate(make_strategy(name, n), 4)
    assert (R * kernel.bytes_per_replicate(make_strategy(name, n), 4)) / budget >= 3
    full = simulate_batch(
        lambda: make_strategy(name, n), platforms, rngs=spawn_rngs(77, R), collect_trace=True
    )
    chunked = simulate_batch(
        lambda: make_strategy(name, n),
        platforms,
        rngs=spawn_rngs(77, R),
        collect_trace=True,
        memory_budget_bytes=budget,
    )
    for ref, got in zip(full, chunked):
        assert_same_result(ref, got)


def test_memory_budget_validation():
    platform = Platform(uniform_speeds(3, 10, 100, rng=1))
    with pytest.raises(ValueError, match="memory_budget_bytes"):
        simulate_batch(
            lambda: make_strategy("RandomOuter", 4),
            [platform],
            rngs=[1],
            memory_budget_bytes=0,
        )


def test_fallback_on_mixed_worker_counts():
    platforms = [
        Platform(uniform_speeds(3, 10, 100, rng=1)),
        Platform(uniform_speeds(5, 10, 100, rng=2)),
    ]
    refs = [
        simulate(make_strategy("RandomOuter", 6), pl, rng=g)
        for pl, g in zip(platforms, spawn_rngs(0, 2))
    ]
    gots = simulate_batch(
        lambda: make_strategy("RandomOuter", 6), platforms, rngs=spawn_rngs(0, 2)
    )
    for ref, got in zip(refs, gots):
        assert_same_result(ref, got)


def test_empty_batch():
    assert simulate_batch(lambda: make_strategy("RandomOuter", 4), [], rngs=[]) == []


def test_length_validation():
    platform = Platform(uniform_speeds(3, 10, 100, rng=1))
    factory = lambda: make_strategy("RandomOuter", 4)
    with pytest.raises(ValueError, match="rngs"):
        simulate_batch(factory, [platform], rngs=[1, 2])
    with pytest.raises(ValueError, match="speed models"):
        simulate_batch(factory, [platform], rngs=[1], speed_models=[None, None])
    with pytest.raises(ValueError, match="sinks"):
        simulate_batch(factory, [platform], rngs=[1], sinks=[None, None])
