"""Tests for repro.simulator.trace."""

import numpy as np

from repro.simulator.trace import AssignmentRecord, Trace


def _rec(time=0.0, worker=0, blocks=1, tasks=1, duration=1.0, phase=1, task_ids=None):
    return AssignmentRecord(
        time=time, worker=worker, blocks=blocks, tasks=tasks, duration=duration, phase=phase, task_ids=task_ids
    )


class TestTrace:
    def test_append_len_iter(self):
        t = Trace()
        t.append(_rec())
        t.append(_rec(worker=1))
        assert len(t) == 2
        assert [r.worker for r in t] == [0, 1]

    def test_for_worker(self):
        t = Trace()
        t.append(_rec(worker=0, time=0.0))
        t.append(_rec(worker=1, time=1.0))
        t.append(_rec(worker=0, time=2.0))
        recs = t.for_worker(0)
        assert [r.time for r in recs] == [0.0, 2.0]

    def test_totals(self):
        t = Trace()
        t.append(_rec(blocks=2, tasks=3))
        t.append(_rec(blocks=1, tasks=5))
        assert t.total_blocks() == 3
        assert t.total_tasks() == 8

    def test_phase_breakdown(self):
        t = Trace()
        t.append(_rec(blocks=2, tasks=3, phase=1))
        t.append(_rec(blocks=4, tasks=1, phase=2))
        t.append(_rec(blocks=1, tasks=1, phase=2))
        assert t.phase_blocks(1) == 2
        assert t.phase_blocks(2) == 5
        assert t.phase_tasks(1) == 3
        assert t.phase_tasks(2) == 2

    def test_all_task_ids(self):
        t = Trace()
        t.append(_rec(task_ids=np.array([1, 2], dtype=np.int64)))
        t.append(_rec(task_ids=np.array([7], dtype=np.int64)))
        t.append(_rec(task_ids=None))
        t.append(_rec(task_ids=np.empty(0, dtype=np.int64)))
        assert sorted(t.all_task_ids().tolist()) == [1, 2, 7]

    def test_all_task_ids_empty(self):
        t = Trace()
        assert t.all_task_ids().size == 0
