"""Tests for repro.simulator.events."""

import pytest

from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_empty(self):
        q = EventQueue()
        assert len(q) == 0
        assert not q
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek_time()

    def test_ordering_by_time(self):
        q = EventQueue()
        q.push(3.0, 0)
        q.push(1.0, 1)
        q.push(2.0, 2)
        assert q.pop() == (1.0, 1)
        assert q.pop() == (2.0, 2)
        assert q.pop() == (3.0, 0)

    def test_fifo_among_ties(self):
        q = EventQueue()
        for w in (5, 3, 9, 1):
            q.push(1.0, w)
        assert [q.pop()[1] for _ in range(4)] == [5, 3, 9, 1]

    def test_peek_does_not_pop(self):
        q = EventQueue()
        q.push(2.0, 0)
        assert q.peek_time() == 2.0
        assert len(q) == 1

    def test_rejects_negative_time(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, 0)

    def test_rejects_nan_inf(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), 0)
        with pytest.raises(ValueError):
            q.push(float("inf"), 0)

    def test_rejects_negative_worker(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(0.0, -1)

    def test_interleaved_push_pop(self):
        q = EventQueue()
        q.push(1.0, 0)
        q.push(5.0, 1)
        assert q.pop() == (1.0, 0)
        q.push(2.0, 2)
        assert q.pop() == (2.0, 2)
        assert q.pop() == (5.0, 1)


class TestUncheckedPush:
    def test_push_and_unchecked_push_interleave(self):
        """The hot-path push_unchecked orders identically to the validating push."""
        q = EventQueue()
        q.push(3.0, 0)
        q.push_unchecked(1.0, 1)
        q.push_unchecked(2.0, 2)
        assert q.pop() == (1.0, 1)
        assert q.pop() == (2.0, 2)
        assert q.pop() == (3.0, 0)

    def test_unchecked_push_keeps_fifo_tie_break(self):
        q = EventQueue()
        q.push_unchecked(1.0, 5)
        q.push_unchecked(1.0, 3)
        q.push(1.0, 4)
        assert [q.pop()[1] for _ in range(3)] == [5, 3, 4]
