"""Tests for trace/result JSON serialization."""

import numpy as np
import pytest

from repro.core.strategies import OuterTwoPhase
from repro.simulator import (
    load_result,
    result_from_json,
    result_to_json,
    save_result,
    simulate,
)


@pytest.fixture
def traced_result(paper_platform):
    return simulate(OuterTwoPhase(12, beta=3.0, collect_ids=True), paper_platform, rng=1, collect_trace=True)


class TestRoundTrip:
    def test_scalar_fields(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        assert back.total_blocks == traced_result.total_blocks
        assert back.makespan == traced_result.makespan
        assert back.n_assignments == traced_result.n_assignments
        assert back.strategy_name == traced_result.strategy_name

    def test_arrays(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        assert np.array_equal(back.per_worker_blocks, traced_result.per_worker_blocks)
        assert np.array_equal(back.per_worker_tasks, traced_result.per_worker_tasks)

    def test_trace_records(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        assert len(back.trace) == len(traced_result.trace)
        for a, b in zip(back.trace, traced_result.trace):
            assert a.time == b.time
            assert a.worker == b.worker
            assert a.blocks == b.blocks
            assert a.phase == b.phase
            assert np.array_equal(a.task_ids, b.task_ids)

    def test_task_ids_dtype(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        ids = back.trace.all_task_ids()
        assert ids.dtype == np.int64
        assert np.array_equal(np.sort(ids), np.sort(traced_result.trace.all_task_ids()))

    def test_no_trace(self, paper_platform):
        r = simulate(OuterTwoPhase(8), paper_platform, rng=0)
        back = result_from_json(result_to_json(r))
        assert back.trace is None

    def test_file_roundtrip(self, traced_result, tmp_path):
        path = save_result(traced_result, str(tmp_path / "run.json"))
        back = load_result(path)
        assert back.total_blocks == traced_result.total_blocks

    def test_rejects_foreign_json(self):
        with pytest.raises(ValueError):
            result_from_json('{"hello": 1}')


class TestFaultRoundTrip:
    @pytest.fixture
    def faulty_result(self, paper_platform):
        from repro.faults import FaultSchedule, simulate_faulty

        schedule = FaultSchedule.draw(
            paper_platform.p, 0.5, rng=2, crash_rate=8.0, mean_downtime=0.02, loss_prob=0.05
        )
        return simulate_faulty(
            OuterTwoPhase(12, beta=3.0, collect_ids=True),
            paper_platform,
            schedule=schedule,
            rng=1,
            collect_trace=True,
        )

    def test_fault_stats(self, faulty_result):
        assert faulty_result.faults is not None
        assert faulty_result.faults.any_faults  # the schedule must bite
        back = result_from_json(result_to_json(faulty_result))
        assert back.faults == faulty_result.faults

    def test_fault_events(self, faulty_result):
        assert faulty_result.trace.faults  # at least one fault record
        back = result_from_json(result_to_json(faulty_result))
        assert len(back.trace.faults) == len(faulty_result.trace.faults)
        for a, b in zip(back.trace.faults, faulty_result.trace.faults):
            assert a == b

    def test_faultless_payload_stays_empty(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        assert back.faults is None
        assert back.trace.faults == []
