"""Fingerprint regression tests: pin the engine's exact outputs.

The fault-aware engine (:mod:`repro.faults`) promises bit-identical results
to :func:`repro.simulator.simulate` for an empty schedule, which is only
meaningful if the fault-free engine itself never drifts.  These values were
captured from the engine at the point the fault subsystem was introduced;
any change here means simulation semantics (or RNG consumption) changed,
which silently invalidates every recorded experiment.  Update the table
only for a deliberate, documented engine change.
"""

import numpy as np
import pytest

from repro.core.strategies.registry import make_strategy, strategy_names
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate

# (total_blocks, n_assignments, makespan, per_worker_blocks) for
# Platform(uniform_speeds(6, 10, 100, rng=123)), simulate(..., rng=321),
# n=16 for outer-product strategies and n=8 for matrix strategies.
FINGERPRINTS = {
    "RandomOuter": (164, 256, 1.0452342100021113, [32, 19, 28, 27, 26, 32]),
    "SortedOuter": (181, 256, 1.0452342100021113, [32, 26, 30, 30, 31, 32]),
    "DynamicOuter": (134, 67, 1.2126200037863648, [28, 18, 22, 18, 18, 30]),
    "DynamicOuter2Phases": (125, 68, 1.2126200037863648, [26, 18, 16, 18, 19, 28]),
    "MapReduceOuter": (512, 256, 1.0452342100021113, [144, 30, 62, 54, 54, 168]),
    "RandomMatrix": (787, 512, 2.0884011176320736, [181, 74, 123, 111, 113, 185]),
    "SortedMatrix": (886, 512, 2.0884011176320736, [185, 88, 147, 138, 137, 191]),
    "DynamicMatrix": (639, 35, 2.1783999928160416, [108, 48, 108, 75, 108, 192]),
    "DynamicMatrix2Phases": (555, 81, 2.105780660388833, [119, 54, 94, 75, 70, 143]),
    "MapReduceMatrix": (1536, 512, 2.0884011176320736, [435, 93, 183, 162, 159, 504]),
}


def test_every_registered_strategy_is_pinned():
    assert sorted(FINGERPRINTS) == sorted(strategy_names())


@pytest.mark.parametrize("name", sorted(FINGERPRINTS))
def test_engine_fingerprint(name):
    platform = Platform(uniform_speeds(6, 10, 100, rng=123))
    n = 8 if "Matrix" in name else 16
    result = simulate(make_strategy(name, n), platform, rng=321)
    blocks, assignments, makespan, per_worker = FINGERPRINTS[name]
    assert result.total_blocks == blocks
    assert result.n_assignments == assignments
    assert result.makespan == makespan
    assert np.array_equal(result.per_worker_blocks, np.array(per_worker))
