"""Additional engine edge cases."""

import pytest

from repro.core.strategies.base import Assignment, Strategy
from repro.platform import Platform
from repro.simulator import simulate


class PreDoneStrategy(Strategy):
    """Degenerate: done before the first assignment."""

    name = "PreDone"
    kernel = "outer"

    def __init__(self):
        super().__init__(1)

    def _setup(self):
        pass

    @property
    def total_tasks(self):
        return 0

    @property
    def done(self):
        return True

    def assign(self, worker, now):  # pragma: no cover - must never be called
        raise AssertionError("assign called on a done strategy")


class ZeroThenBatchStrategy(Strategy):
    """Emits zero-task assignments before finally handing out the batch."""

    name = "ZeroThenBatch"
    kernel = "outer"

    def __init__(self, zeros=5, batch=4):
        super().__init__(2)
        self._zeros_cfg = zeros
        self._batch = batch

    def _setup(self):
        self._zeros = self._zeros_cfg
        self._left = self._batch

    @property
    def total_tasks(self):
        return self._batch

    @property
    def done(self):
        return self._left == 0

    def assign(self, worker, now):
        if self._zeros > 0:
            self._zeros -= 1
            return Assignment(blocks=1, tasks=0)
        take = self._left
        self._left = 0
        return Assignment(blocks=0, tasks=take)


class TestEngineEdges:
    def test_pre_done_strategy(self, small_platform):
        result = simulate(PreDoneStrategy(), small_platform, rng=0)
        assert result.total_tasks == 0
        assert result.total_blocks == 0
        assert result.makespan == 0.0
        assert result.n_assignments == 0

    def test_zero_task_assignments_tolerated(self, small_platform):
        result = simulate(ZeroThenBatchStrategy(zeros=5, batch=4), small_platform, rng=0)
        assert result.total_tasks == 4
        assert result.total_blocks == 5  # the zero-task shipments
        assert result.makespan > 0

    def test_zero_task_assignments_in_trace(self, small_platform):
        result = simulate(
            ZeroThenBatchStrategy(zeros=3, batch=2), small_platform, rng=0, collect_trace=True
        )
        zero_recs = [r for r in result.trace if r.tasks == 0]
        assert len(zero_recs) == 3
        assert all(r.duration == 0.0 for r in zero_recs)

    def test_single_worker_single_task(self):
        from repro.core.strategies import OuterRandom

        pf = Platform([1.0])
        result = simulate(OuterRandom(1), pf, rng=0)
        assert result.total_tasks == 1
        assert result.makespan == pytest.approx(1.0)
