"""Tests for repro.simulator.engine — the demand-driven loop itself."""

import numpy as np
import pytest

from repro.core.strategies import OuterDynamic, OuterRandom
from repro.core.strategies.base import Assignment, Strategy
from repro.platform import DynamicSpeedModel, Platform
from repro.simulator import LivelockError, simulate


class FixedBatchStrategy(Strategy):
    """Test double: hands out batches of `batch` tasks until `total` is gone."""

    name = "FixedBatch"
    kernel = "outer"

    def __init__(self, n=4, total=12, batch=2, blocks_per=3):
        super().__init__(n)
        self._total = total
        self._batch = batch
        self._blocks_per = blocks_per

    def _setup(self):
        self._left = self._total

    @property
    def total_tasks(self):
        return self._total

    @property
    def done(self):
        return self._left == 0

    def assign(self, worker, now):
        take = min(self._batch, self._left)
        self._left -= take
        return Assignment(blocks=self._blocks_per, tasks=take)


class StarvingStrategy(Strategy):
    """Test double: never allocates anything -> must trip the livelock guard."""

    name = "Starving"
    kernel = "outer"

    def __init__(self):
        super().__init__(2)

    def _setup(self):
        pass

    @property
    def total_tasks(self):
        return 4

    @property
    def done(self):
        return False

    def assign(self, worker, now):
        return Assignment(blocks=0, tasks=0)


class TestEngineBasics:
    def test_all_tasks_processed(self, small_platform):
        s = FixedBatchStrategy(total=12, batch=2)
        r = simulate(s, small_platform, rng=0)
        assert r.total_tasks == 12
        assert r.per_worker_tasks.sum() == 12

    def test_blocks_accounted(self, small_platform):
        s = FixedBatchStrategy(total=12, batch=2, blocks_per=3)
        r = simulate(s, small_platform, rng=0)
        assert r.total_blocks == 6 * 3  # 6 assignments x 3 blocks
        assert r.n_assignments == 6

    def test_faster_workers_get_more_tasks(self):
        pf = Platform([1.0, 9.0])
        s = FixedBatchStrategy(total=100, batch=1, blocks_per=0)
        r = simulate(s, pf, rng=0)
        # Worker 1 is 9x faster; with demand-driven allocation it should
        # take roughly 90% of the tasks.
        assert r.per_worker_tasks[1] > 80

    def test_makespan_single_worker(self):
        pf = Platform([2.0])
        s = FixedBatchStrategy(total=10, batch=5)
        r = simulate(s, pf, rng=0)
        assert r.makespan == pytest.approx(5.0)  # 10 tasks at speed 2

    def test_deterministic_given_seed(self, paper_platform):
        r1 = simulate(OuterRandom(12), paper_platform, rng=42)
        r2 = simulate(OuterRandom(12), paper_platform, rng=42)
        assert r1.total_blocks == r2.total_blocks
        assert np.array_equal(r1.per_worker_tasks, r2.per_worker_tasks)
        assert r1.makespan == r2.makespan

    def test_strategy_reusable_across_runs(self, paper_platform):
        s = OuterDynamic(10)
        r1 = simulate(s, paper_platform, rng=0)
        r2 = simulate(s, paper_platform, rng=0)
        assert r1.total_tasks == r2.total_tasks == 100

    def test_trace_collection(self, small_platform):
        s = FixedBatchStrategy(total=6, batch=2)
        r = simulate(s, small_platform, rng=0, collect_trace=True)
        assert r.trace is not None
        assert len(r.trace) == r.n_assignments
        assert r.trace.total_tasks() == 6

    def test_no_trace_by_default(self, small_platform):
        r = simulate(FixedBatchStrategy(), small_platform, rng=0)
        assert r.trace is None

    def test_trace_times_monotone_per_worker(self, paper_platform):
        r = simulate(OuterDynamic(15), paper_platform, rng=3, collect_trace=True)
        for w in range(paper_platform.p):
            times = [rec.time for rec in r.trace.for_worker(w)]
            assert times == sorted(times)

    def test_livelock_guard(self, small_platform):
        with pytest.raises(LivelockError):
            simulate(StarvingStrategy(), small_platform, rng=0)

    def test_dynamic_speed_model(self, small_platform):
        s = FixedBatchStrategy(total=40, batch=4)
        r = simulate(s, small_platform, rng=0, speed_model=DynamicSpeedModel(0.05))
        assert r.total_tasks == 40
        assert r.makespan > 0


class TestResultInvariants:
    def test_normalized(self, small_platform):
        r = simulate(FixedBatchStrategy(total=8, batch=2, blocks_per=5), small_platform, rng=0)
        assert r.normalized(10.0) == pytest.approx(r.total_blocks / 10.0)
        with pytest.raises(ValueError):
            r.normalized(0.0)

    def test_load_imbalance_small_for_many_tasks(self, paper_platform):
        r = simulate(OuterDynamic(40), paper_platform, rng=1)
        # Demand-driven: each worker's share tracks its speed closely.
        assert r.load_imbalance(paper_platform.relative_speeds) < 0.25

    def test_makespan_close_to_ideal(self, paper_platform):
        """All workers busy until the end => makespan ~ total/sum(s).

        The ideal is a hard lower bound; the upper slack covers the tail
        effect where the last cross batches many tasks onto one worker.
        """
        n = 40
        r = simulate(OuterDynamic(n), paper_platform, rng=1)
        ideal = n * n / paper_platform.total_speed
        assert ideal <= r.makespan * (1 + 1e-12)
        assert r.makespan <= 1.4 * ideal
