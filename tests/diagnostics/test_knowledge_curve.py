"""Tests for repro.diagnostics — the ODE model validated at lemma level."""

import numpy as np
import pytest

from repro.diagnostics import (
    measure_matrix_knowledge_curves,
    measure_outer_knowledge_curves,
)
from repro.platform import Platform, uniform_speeds


@pytest.fixture(scope="module")
def platform():
    return Platform(uniform_speeds(30, 10, 100, rng=3))


@pytest.fixture(scope="module")
def outer_curves(platform):
    return measure_outer_knowledge_curves(150, platform, rng=5)


@pytest.fixture(scope="module")
def matrix_curves(platform):
    return measure_matrix_knowledge_curves(24, platform, rng=5)


class TestCurveStructure:
    def test_one_curve_per_active_worker(self, outer_curves, platform):
        assert 1 <= len(outer_curves) <= platform.p

    def test_x_monotone_nondecreasing(self, outer_curves):
        for c in outer_curves:
            assert np.all(np.diff(c.x) >= -1e-12)

    def test_t_monotone_nondecreasing(self, outer_curves):
        for c in outer_curves:
            assert np.all(np.diff(c.t) >= -1e-12)

    def test_x_in_unit_interval(self, outer_curves):
        for c in outer_curves:
            assert c.x.min() >= 0.0
            assert c.x.max() <= 1.0 + 1e-12

    def test_fresh_fraction_in_unit_interval(self, outer_curves):
        for c in outer_curves:
            g = c.g[~np.isnan(c.g)]
            assert np.all((g >= 0.0) & (g <= 1.0 + 1e-12))

    def test_alpha_matches_platform(self, outer_curves, platform):
        total = platform.speeds.sum()
        for c in outer_curves:
            expected = (total - platform.speeds[c.worker]) / platform.speeds[c.worker]
            assert c.alpha == pytest.approx(expected)


class TestMatrixCurveStructure:
    def test_one_curve_per_active_worker(self, matrix_curves, platform):
        assert 1 <= len(matrix_curves) <= platform.p

    def test_dimension_is_three(self, matrix_curves):
        assert all(c.d == 3 for c in matrix_curves)
        assert all(c.n == 24 for c in matrix_curves)

    def test_x_and_t_monotone(self, matrix_curves):
        for c in matrix_curves:
            assert np.all(np.diff(c.x) >= -1e-12)
            assert np.all(np.diff(c.t) >= -1e-12)

    def test_sample_arrays_aligned(self, matrix_curves, outer_curves):
        for c in list(matrix_curves) + list(outer_curves):
            assert c.x.shape == c.t.shape == c.g.shape
            assert c.x.size >= 1

    def test_measurement_is_deterministic(self, platform):
        a = measure_outer_knowledge_curves(40, platform, rng=5)
        b = measure_outer_knowledge_curves(40, platform, rng=5)
        assert len(a) == len(b)
        for ca, cb in zip(a, b):
            assert ca.worker == cb.worker
            assert np.array_equal(ca.x, cb.x)
            assert np.array_equal(ca.t, cb.t)
            assert np.array_equal(ca.g, cb.g, equal_nan=True)


class TestPredictions:
    def test_predicted_g_in_unit_interval(self, outer_curves):
        for c in outer_curves:
            pred = c.predicted_g()
            assert np.all((pred >= 0.0) & (pred <= 1.0 + 1e-12))

    def test_predicted_t_monotone_in_x(self, outer_curves, platform):
        c = outer_curves[0]
        pred = c.predicted_t(platform.total_speed)
        order = np.argsort(c.x)
        assert np.all(np.diff(pred[order]) >= -1e-9)

    def test_predicted_t_scales_inversely_with_speed(self, outer_curves, platform):
        c = outer_curves[0]
        slow = c.predicted_t(platform.total_speed)
        fast = c.predicted_t(2.0 * platform.total_speed)
        assert np.allclose(slow, 2.0 * fast)


class TestLemma1Validation:
    """Empirical g_k(x) follows (1 - x^2)^alpha_k (Lemma 1)."""

    def test_outer_g_rmse_small(self, outer_curves):
        rmses = [c.g_rmse(0.8) for c in outer_curves]
        assert np.nanmedian(rmses) < 0.12

    def test_matrix_g_rmse_small(self, matrix_curves):
        rmses = [c.g_rmse(0.8) for c in matrix_curves]
        assert np.nanmedian(rmses) < 0.15

    def test_predicted_g_decreases(self, outer_curves):
        c = outer_curves[0]
        pred = c.predicted_g()
        order = np.argsort(c.x)
        assert np.all(np.diff(pred[order]) <= 1e-12)


class TestLemma2Validation:
    """Empirical t_k(x) follows n^d (1-(1-x^d)^(a+1)) / sum(s) (Lemma 2/8)."""

    def test_outer_t_error_small(self, outer_curves, platform):
        errs = [c.t_relative_error(platform.total_speed, 0.8) for c in outer_curves]
        assert np.nanmedian(errs) < 0.15

    def test_matrix_t_error_small(self, matrix_curves, platform):
        errs = [c.t_relative_error(platform.total_speed, 0.8) for c in matrix_curves]
        assert np.nanmedian(errs) < 0.20

    def test_empty_mask_gives_nan(self, outer_curves, platform):
        c = outer_curves[0]
        assert np.isnan(c.t_relative_error(platform.total_speed, x_max=-1.0))
        assert np.isnan(c.g_rmse(x_max=-1.0))
