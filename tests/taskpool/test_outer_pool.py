"""Tests for repro.taskpool.outer_pool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taskpool.outer_pool import OuterTaskPool


def _empty():
    return np.empty(0, dtype=np.int64)


class TestBasics:
    def test_initial_state(self):
        pool = OuterTaskPool(4)
        assert pool.total == 16
        assert pool.remaining == 16
        assert not pool.done
        assert not pool.is_processed(0, 0)

    def test_mark_task(self):
        pool = OuterTaskPool(3)
        assert pool.mark_task(1, 2) is True
        assert pool.is_processed(1, 2)
        assert pool.remaining == 8
        assert pool.mark_task(1, 2) is False
        assert pool.remaining == 8

    def test_done_after_all(self):
        pool = OuterTaskPool(2)
        for i in range(2):
            for j in range(2):
                pool.mark_task(i, j)
        assert pool.done

    def test_unprocessed_ids(self):
        pool = OuterTaskPool(2)
        pool.mark_task(0, 1)
        ids = pool.unprocessed_ids()
        assert sorted(ids.tolist()) == [0, 2, 3]  # flat = i*2+j

    def test_processed_view_read_only(self):
        pool = OuterTaskPool(2)
        view = pool.processed_view()
        with pytest.raises(ValueError):
            view[0, 0] = True


class TestMarkCross:
    def test_first_cross_single_cell(self):
        pool = OuterTaskPool(4)
        count, _ = pool.mark_cross(1, 2, _empty(), _empty())
        assert count == 1
        assert pool.is_processed(1, 2)

    def test_full_cross(self):
        pool = OuterTaskPool(4)
        rows = np.array([0])
        cols = np.array([3])
        count, _ = pool.mark_cross(1, 2, rows, cols)
        # cells: (1,2), (1,3), (0,2)
        assert count == 3
        assert pool.is_processed(1, 2)
        assert pool.is_processed(1, 3)
        assert pool.is_processed(0, 2)
        assert not pool.is_processed(0, 3)

    def test_cross_skips_processed(self):
        pool = OuterTaskPool(4)
        pool.mark_task(1, 3)
        count, _ = pool.mark_cross(1, 2, _empty(), np.array([3]))
        assert count == 1  # only (1,2); (1,3) was already processed

    def test_row_only(self):
        pool = OuterTaskPool(4)
        count, _ = pool.mark_cross(2, None, _empty(), np.array([0, 1]))
        assert count == 2
        assert pool.is_processed(2, 0) and pool.is_processed(2, 1)

    def test_col_only(self):
        pool = OuterTaskPool(4)
        count, _ = pool.mark_cross(None, 1, np.array([0, 3]), _empty())
        assert count == 2
        assert pool.is_processed(0, 1) and pool.is_processed(3, 1)

    def test_remaining_consistent(self):
        pool = OuterTaskPool(5)
        pool.mark_cross(0, 0, _empty(), _empty())
        pool.mark_cross(1, 1, np.array([0]), np.array([0]))
        unmarked = np.count_nonzero(~pool.processed_view())
        assert pool.remaining == unmarked

    def test_collect_ids(self):
        pool = OuterTaskPool(4, collect_ids=True)
        count, ids = pool.mark_cross(1, 2, np.array([0]), np.array([3]))
        assert ids is not None
        assert count == ids.size == 3
        assert set(ids.tolist()) == {1 * 4 + 2, 1 * 4 + 3, 0 * 4 + 2}

    def test_collect_ids_empty(self):
        pool = OuterTaskPool(3, collect_ids=True)
        pool.mark_task(0, 0)
        count, ids = pool.mark_cross(0, 0, _empty(), _empty())
        assert count == 0
        assert ids is not None and ids.size == 0

    def test_no_ids_by_default(self):
        pool = OuterTaskPool(3)
        _, ids = pool.mark_cross(0, 0, _empty(), _empty())
        assert ids is None


class TestMarkAll:
    def test_marks_everything(self):
        pool = OuterTaskPool(3)
        pool.mark_task(1, 1)
        count, _ = pool.mark_all()
        assert count == 8
        assert pool.done
        assert pool.remaining == 0

    def test_collect_ids(self):
        pool = OuterTaskPool(2, collect_ids=True)
        pool.mark_task(0, 0)
        count, ids = pool.mark_all()
        assert count == 3
        assert sorted(ids.tolist()) == [1, 2, 3]


class TestPropertyExactlyOnce:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 2**32 - 1))
    def test_random_crosses_never_double_count(self, n, seed):
        """Marked-count accounting must equal the bitmap ground truth."""
        rng = np.random.default_rng(seed)
        pool = OuterTaskPool(n)
        total_counted = 0
        for _ in range(2 * n):
            def pick():
                new = int(rng.integers(n))
                others = np.setdiff1d(np.arange(n), [new])
                size = int(rng.integers(0, others.size + 1))
                return new, rng.choice(others, size=size, replace=False).astype(np.int64)

            i, rows = pick()
            j, cols = pick()
            count, _ = pool.mark_cross(i, j, rows, cols)
            total_counted += count
            assert pool.remaining == pool.total - total_counted
        assert np.count_nonzero(pool.processed_view()) == total_counted
