"""Tests for repro.taskpool.knowledge."""

import numpy as np
import pytest

from repro.taskpool.knowledge import BlockCache, CubeKnowledge, IndexKnowledge, VectorKnowledge


class TestIndexKnowledge:
    def test_starts_empty(self):
        k = IndexKnowledge(5)
        assert k.count == 0
        assert not k.complete
        assert k.known_indices().size == 0

    def test_add(self):
        k = IndexKnowledge(5)
        assert k.add(2) is True
        assert k.knows(2)
        assert k.count == 1
        assert k.add(2) is False

    def test_add_out_of_range(self):
        k = IndexKnowledge(5)
        with pytest.raises(ValueError):
            k.add(5)
        with pytest.raises(ValueError):
            k.add(-1)

    def test_draw_unknown_never_repeats(self, rng):
        k = IndexKnowledge(10)
        drawn = [k.draw_unknown(rng) for _ in range(10)]
        assert sorted(drawn) == list(range(10))
        assert k.complete

    def test_draw_unknown_respects_adds(self, rng):
        k = IndexKnowledge(4)
        k.add(1)
        k.add(3)
        drawn = {k.draw_unknown(rng) for _ in range(2)}
        assert drawn == {0, 2}

    def test_draw_exhausted_raises(self, rng):
        k = IndexKnowledge(2)
        k.add(0)
        k.add(1)
        with pytest.raises(IndexError):
            k.draw_unknown(rng)

    def test_known_indices_insertion_order(self, rng):
        k = IndexKnowledge(6)
        k.add(4)
        k.add(1)
        k.add(5)
        assert k.known_indices().tolist() == [4, 1, 5]

    def test_known_indices_view_stable_across_growth(self, rng):
        """The captured view must keep its length when knowledge grows.

        DynamicOuter relies on this: it captures I and J, then draws the new
        indices, then crosses against the *old* sets.
        """
        k = IndexKnowledge(6)
        k.add(2)
        k.add(0)
        view = k.known_indices()
        k.add(5)
        assert view.tolist() == [2, 0]

    def test_view_read_only(self):
        k = IndexKnowledge(3)
        k.add(1)
        view = k.known_indices()
        with pytest.raises(ValueError):
            view[0] = 2


class TestVectorKnowledge:
    def test_complete_requires_both(self):
        vk = VectorKnowledge(2)
        for i in range(2):
            vk.a.add(i)
        assert not vk.complete
        for j in range(2):
            vk.b.add(j)
        assert vk.complete

    def test_independent_dimensions(self):
        vk = VectorKnowledge(3)
        vk.a.add(1)
        assert not vk.b.knows(1)


class TestCubeKnowledge:
    def test_complete_requires_all_three(self):
        ck = CubeKnowledge(2)
        for dim in (ck.i, ck.j):
            dim.add(0)
            dim.add(1)
        assert not ck.complete
        ck.k.add(0)
        ck.k.add(1)
        assert ck.complete

    def test_dims_tuple(self):
        ck = CubeKnowledge(2)
        assert ck.dims() == (ck.i, ck.j, ck.k)


class TestBlockCache:
    def test_1d(self):
        c = BlockCache(4)
        assert c.count == 0
        assert c.add(2) is True
        assert c.has(2)
        assert c.add(2) is False
        assert c.count == 1

    def test_2d(self):
        c = BlockCache((3, 3))
        assert c.add(1, 2) is True
        assert c.has(1, 2)
        assert not c.has(2, 1)
        assert c.count == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BlockCache((0, 3))
        with pytest.raises(ValueError):
            BlockCache(-1)

    def test_add_product(self):
        c = BlockCache((4, 4))
        newly = c.add_product(np.array([0, 1]), np.array([2, 3]))
        assert newly == 4
        assert c.count == 4
        assert c.has(0, 2) and c.has(1, 3)
        # Overlapping product only counts fresh cells.
        newly = c.add_product(np.array([1, 2]), np.array([3]))
        assert newly == 1
        assert c.count == 5

    def test_add_product_requires_2d(self):
        c = BlockCache(4)
        with pytest.raises(ValueError):
            c.add_product(np.array([0]), np.array([1]))

    def test_add_indices(self):
        c = BlockCache(5)
        newly = c.add_indices(np.array([0, 2, 4]))
        assert newly == 3
        newly = c.add_indices(np.array([2, 3]))
        assert newly == 1
        assert c.count == 4

    def test_add_indices_requires_1d(self):
        c = BlockCache((2, 2))
        with pytest.raises(ValueError):
            c.add_indices(np.array([0]))

    def test_add_indices_empty(self):
        c = BlockCache(5)
        assert c.add_indices(np.empty(0, dtype=np.int64)) == 0
