"""Tests for repro.taskpool.sample_set — including uniformity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taskpool.sample_set import FastSampleSet, SampleSet


class TestConstruction:
    def test_full_by_default(self):
        s = SampleSet(10)
        assert len(s) == 10
        assert set(s) == set(range(10))

    def test_explicit_members(self):
        s = SampleSet(10, members=[2, 5, 7])
        assert len(s) == 3
        assert set(s) == {2, 5, 7}

    def test_empty_members(self):
        s = SampleSet(10, members=[])
        assert len(s) == 0
        assert not s

    def test_rejects_out_of_range_members(self):
        with pytest.raises(ValueError):
            SampleSet(5, members=[5])
        with pytest.raises(ValueError):
            SampleSet(5, members=[-1])

    def test_rejects_duplicate_members(self):
        with pytest.raises(ValueError):
            SampleSet(5, members=[1, 1])

    def test_rejects_zero_universe(self):
        with pytest.raises(ValueError):
            SampleSet(0)


class TestMembership:
    def test_contains(self):
        s = SampleSet(5, members=[1, 3])
        assert 1 in s and 3 in s
        assert 0 not in s and 2 not in s and 4 not in s

    def test_contains_out_of_universe(self):
        s = SampleSet(5)
        assert 7 not in s
        assert -1 not in s

    def test_contains_non_int(self):
        s = SampleSet(5)
        assert "a" not in s
        assert 1.5 not in s

    def test_members_array(self):
        s = SampleSet(6, members=[0, 2, 4])
        assert sorted(s.members().tolist()) == [0, 2, 4]


class TestMutation:
    def test_add_new(self):
        s = SampleSet(5, members=[])
        assert s.add(3) is True
        assert 3 in s and len(s) == 1

    def test_add_existing_noop(self):
        s = SampleSet(5)
        assert s.add(3) is False
        assert len(s) == 5

    def test_add_out_of_range(self):
        s = SampleSet(5)
        with pytest.raises(ValueError):
            s.add(5)

    def test_discard_present(self):
        s = SampleSet(5)
        assert s.discard(2) is True
        assert 2 not in s and len(s) == 4

    def test_discard_absent(self):
        s = SampleSet(5, members=[1])
        assert s.discard(2) is False
        assert len(s) == 1

    def test_discard_out_of_universe(self):
        s = SampleSet(5)
        assert s.discard(99) is False

    def test_add_after_discard(self):
        s = SampleSet(5)
        s.discard(2)
        assert s.add(2) is True
        assert set(s) == set(range(5))


class TestDraw:
    def test_draw_removes(self, rng):
        s = SampleSet(10)
        seen = set()
        for _ in range(10):
            v = s.draw(rng)
            assert v not in seen
            seen.add(v)
        assert seen == set(range(10))
        assert len(s) == 0

    def test_draw_empty_raises(self, rng):
        s = SampleSet(3, members=[])
        with pytest.raises(IndexError):
            s.draw(rng)

    def test_sample_keeps(self, rng):
        s = SampleSet(4)
        v = s.sample(rng)
        assert v in s
        assert len(s) == 4

    def test_sample_empty_raises(self, rng):
        s = SampleSet(3, members=[])
        with pytest.raises(IndexError):
            s.sample(rng)

    def test_draw_uniformity_chi2(self):
        """Draws from a fresh 8-element set must be uniform (chi^2 test)."""
        rng = np.random.default_rng(0)
        counts = np.zeros(8)
        trials = 8000
        for _ in range(trials):
            s = SampleSet(8)
            counts[s.draw(rng)] += 1
        expected = trials / 8
        chi2 = float(np.sum((counts - expected) ** 2 / expected))
        # 7 dof; 0.999 quantile ~ 24.3. Deterministic seed keeps this stable.
        assert chi2 < 24.3

    def test_first_draw_uniform_after_discards(self):
        """Uniformity must survive arbitrary interleaved discards."""
        rng = np.random.default_rng(1)
        counts = {1: 0, 3: 0, 4: 0}
        for _ in range(3000):
            s = SampleSet(6)
            s.discard(0)
            s.discard(2)
            s.discard(5)
            counts[s.draw(rng)] += 1
        vals = np.array(list(counts.values()), dtype=float)
        expected = 1000.0
        chi2 = float(np.sum((vals - expected) ** 2 / expected))
        assert chi2 < 13.8  # 2 dof, 0.999 quantile


@st.composite
def _ops(draw):
    universe = draw(st.integers(1, 40))
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["add", "discard", "draw"]), st.integers(0, 39)),
            max_size=120,
        )
    )
    return universe, ops


class TestAgainstModel:
    @settings(max_examples=120, deadline=None)
    @given(_ops())
    def test_matches_python_set(self, case):
        """SampleSet behaves exactly like a python set under random ops."""
        universe, ops = case
        rng = np.random.default_rng(99)
        s = SampleSet(universe)
        model = set(range(universe))
        for op, v in ops:
            v = v % universe
            if op == "add":
                assert s.add(v) == (v not in model)
                model.add(v)
            elif op == "discard":
                assert s.discard(v) == (v in model)
                model.discard(v)
            else:  # draw
                if model:
                    got = s.draw(rng)
                    assert got in model
                    model.remove(got)
                else:
                    with pytest.raises(IndexError):
                        s.draw(rng)
            assert len(s) == len(model)
            assert set(s.members().tolist()) == model


class TestFastDraw:
    def test_draw_many_matches_serial_draws(self):
        """Batched draws consume the RNG exactly like repeated draw()."""
        serial_set = SampleSet(500)
        fast_set = FastSampleSet(500)
        serial_rng = np.random.default_rng(7)
        fast_rng = np.random.default_rng(7)
        serial = [serial_set.draw(serial_rng) for _ in range(500)]
        fast = fast_set.draw_many(fast_rng, 500)
        assert fast == serial
        # Both generators must be in the same state afterwards.
        assert serial_rng.integers(1 << 30) == fast_rng.integers(1 << 30)

    def test_draw_many_split_batches_match_one_batch(self):
        one_rng = np.random.default_rng(3)
        split_rng = np.random.default_rng(3)
        one = FastSampleSet(100).draw_many(one_rng, 100)
        split_set = FastSampleSet(100)
        split = split_set.draw_many(split_rng, 40) + split_set.draw_many(split_rng, 60)
        assert split == one

    def test_invariants_survive_partial_batch(self):
        s = FastSampleSet(50)
        drawn = s.draw_many(np.random.default_rng(0), 20)
        assert len(s) == 30
        for v in drawn:
            assert v not in s
        assert sorted(drawn + s.members().tolist()) == list(range(50))
        # Remaining elements still draw fine via the scalar API.
        s.draw(np.random.default_rng(1))
        assert len(s) == 29

    def test_draw_many_validation(self):
        s = FastSampleSet(5)
        rng = np.random.default_rng(0)
        with pytest.raises(IndexError):
            s.draw_many(rng, 6)
        with pytest.raises(ValueError):
            s.draw_many(rng, -1)
        assert s.draw_many(rng, 0) == []
        assert len(s) == 5
