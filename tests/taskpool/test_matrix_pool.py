"""Tests for repro.taskpool.matrix_pool."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taskpool.matrix_pool import MatrixTaskPool


def _empty():
    return np.empty(0, dtype=np.int64)


def _flat(n, i, j, k):
    return (i * n + j) * n + k


class TestBasics:
    def test_initial_state(self):
        pool = MatrixTaskPool(3)
        assert pool.total == 27
        assert pool.remaining == 27
        assert not pool.done

    def test_mark_task(self):
        pool = MatrixTaskPool(3)
        assert pool.mark_task(0, 1, 2) is True
        assert pool.is_processed(0, 1, 2)
        assert pool.remaining == 26
        assert pool.mark_task(0, 1, 2) is False

    def test_unprocessed_ids_flat_layout(self):
        pool = MatrixTaskPool(2)
        pool.mark_task(1, 0, 1)
        ids = pool.unprocessed_ids()
        assert _flat(2, 1, 0, 1) not in ids.tolist()
        assert ids.size == 7

    def test_mark_all(self):
        pool = MatrixTaskPool(2)
        pool.mark_task(0, 0, 0)
        count, _ = pool.mark_all()
        assert count == 7
        assert pool.done


class TestMarkShell:
    def test_first_shell_single_task(self):
        pool = MatrixTaskPool(4)
        count, _ = pool.mark_shell(1, 2, 3, _empty(), _empty(), _empty())
        assert count == 1
        assert pool.is_processed(1, 2, 3)

    def test_shell_growth_from_unit_cube(self):
        """Growing a 1-cube to a 2-cube allocates its 7-task shell."""
        pool = MatrixTaskPool(4)
        pool.mark_shell(0, 0, 0, _empty(), _empty(), _empty())
        count, _ = pool.mark_shell(
            1, 1, 1, np.array([0]), np.array([0]), np.array([0])
        )
        # The 2x2x2 cube has 8 tasks; (0,0,0) was processed: shell = 7.
        assert count == 7
        for i in (0, 1):
            for j in (0, 1):
                for k in (0, 1):
                    assert pool.is_processed(i, j, k)

    def test_shell_excludes_interior(self):
        """Tasks strictly inside the old cube are never re-marked."""
        pool = MatrixTaskPool(5)
        # Manually build a known 2-cube with all tasks processed.
        rows = np.array([0, 1])
        for i in rows:
            for j in rows:
                for k in rows:
                    pool.mark_task(i, j, k)
        before = pool.remaining
        count, _ = pool.mark_shell(2, 2, 2, rows, rows, rows)
        # Grown cube is 3^3 = 27; interior 2^3 = 8 already done: shell = 19.
        assert count == 19
        assert pool.remaining == before - 19

    def test_shell_skips_processed(self):
        pool = MatrixTaskPool(4)
        pool.mark_task(1, 0, 0)  # a task another worker already did
        count, _ = pool.mark_shell(
            1, 1, 1, np.array([0]), np.array([0]), np.array([0])
        )
        # 2-cube shell of 7 tasks minus the stolen (1,0,0).
        assert count == 6

    def test_partial_growth_missing_i(self):
        pool = MatrixTaskPool(3)
        rows = np.array([0, 1, 2])  # I complete
        count, _ = pool.mark_shell(None, 1, 1, rows, np.array([0]), np.array([0]))
        # Tasks with j'=1: I x {1} x {0,1} = 6; plus k'=1 (j' != 1): I x {0} x {1} = 3.
        assert count == 9

    def test_partial_growth_only_k(self):
        pool = MatrixTaskPool(3)
        rows = np.array([0, 1])
        cols = np.array([2])
        count, _ = pool.mark_shell(None, None, 2, rows, cols, np.array([0]))
        # I x J x {2} = 2 * 1 = 2 tasks.
        assert count == 2
        assert pool.is_processed(0, 2, 2)
        assert pool.is_processed(1, 2, 2)

    def test_collect_ids_match_marks(self):
        pool = MatrixTaskPool(4, collect_ids=True)
        pool.mark_task(1, 0, 0)
        count, ids = pool.mark_shell(
            1, 1, 1, np.array([0]), np.array([0]), np.array([0])
        )
        assert ids is not None
        assert ids.size == count == 6
        n = 4
        decoded = {(f // (n * n), (f // n) % n, f % n) for f in ids.tolist()}
        assert (1, 0, 0) not in decoded
        assert (1, 1, 1) in decoded

    def test_remaining_consistent_with_bitmap(self):
        pool = MatrixTaskPool(4)
        pool.mark_shell(0, 1, 2, _empty(), _empty(), _empty())
        pool.mark_shell(1, 0, 3, np.array([0]), np.array([1]), np.array([2]))
        assert pool.remaining == np.count_nonzero(~pool.processed_view())


class TestPropertyExactlyOnce:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 2**32 - 1))
    def test_random_shells_never_double_count(self, n, seed):
        """Counting stays consistent with the bitmap under random shells."""
        rng = np.random.default_rng(seed)
        pool = MatrixTaskPool(n)
        total = 0
        for _ in range(n + 2):
            def pick():
                # A new index plus a known set that excludes it, mirroring
                # the invariant the Dynamic* strategies maintain.
                new = int(rng.integers(n))
                others = np.setdiff1d(np.arange(n), [new])
                size = int(rng.integers(0, others.size + 1))
                return new, rng.choice(others, size=size, replace=False).astype(np.int64)

            i, rows = pick()
            j, cols = pick()
            k, deps = pick()
            count, _ = pool.mark_shell(i, j, k, rows, cols, deps)
            total += count
            assert pool.remaining == pool.total - total
        assert np.count_nonzero(pool.processed_view()) == total
