"""Tests for repro.partition.column — the 7/4-approx static baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.column import partition_square


def _check_tiling(partition, tol=1e-9):
    """Rectangles must exactly tile the unit square (area + no overlap)."""
    total = sum(r.area for r in partition.rects)
    assert total == pytest.approx(1.0, abs=1e-9)
    # Column structure: group by x; each column spans full height.
    by_x = {}
    for r in partition.rects:
        by_x.setdefault(round(r.x, 12), []).append(r)
    x_edge = 0.0
    for x in sorted(by_x):
        col = sorted(by_x[x], key=lambda r: r.y)
        assert x == pytest.approx(x_edge, abs=tol)
        y_edge = 0.0
        width = col[0].width
        for r in col:
            assert r.width == pytest.approx(width, abs=tol)
            assert r.y == pytest.approx(y_edge, abs=tol)
            y_edge += r.height
        assert y_edge == pytest.approx(1.0, abs=1e-9)
        x_edge += width
    assert x_edge == pytest.approx(1.0, abs=1e-9)


class TestSingleAndUniform:
    def test_single_processor(self):
        part = partition_square([5.0])
        assert len(part.rects) == 1
        r = part.rects[0]
        assert r.width == pytest.approx(1.0)
        assert r.height == pytest.approx(1.0)
        assert part.half_perimeter_sum == pytest.approx(2.0)

    def test_perfect_square_counts(self):
        """p = q^2 equal speeds: optimal layout is a q x q grid."""
        p = 9
        part = partition_square(np.full(p, 1.0))
        assert part.column_sizes == [3, 3, 3]
        # Half-perimeter: 9 squares of side 1/3 -> 9 * 2/3 = 6 = 2*sqrt(p).
        assert part.half_perimeter_sum == pytest.approx(2 * np.sqrt(p))
        _check_tiling(part)

    def test_two_equal(self):
        part = partition_square([1.0, 1.0])
        # Either one column of two stacked halves, or two side-by-side:
        # both cost 3.0; the DP must find cost 3.
        assert part.half_perimeter_sum == pytest.approx(3.0)
        _check_tiling(part)


class TestAreasRespected:
    def test_areas_proportional_to_speeds(self):
        speeds = np.array([1.0, 2.0, 3.0, 4.0])
        part = partition_square(speeds)
        rel = speeds / speeds.sum()
        for r in part.rects:
            assert r.area == pytest.approx(rel[r.owner], abs=1e-12)

    def test_owner_permutation(self):
        speeds = [3.0, 1.0, 2.0]
        part = partition_square(speeds)
        assert sorted(r.owner for r in part.rects) == [0, 1, 2]


class TestApproximationGuarantee:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=40))
    def test_within_seven_fourths(self, speeds):
        """The column partition is within 7/4 of the LB (paper ref [2])."""
        part = partition_square(speeds)
        assert part.approximation_ratio() <= 7.0 / 4.0 + 1e-9
        assert part.approximation_ratio() >= 1.0 - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.05, 50.0), min_size=1, max_size=25))
    def test_valid_tiling(self, speeds):
        _check_tiling(partition_square(speeds))


class TestCommunicationVolume:
    def test_scaling_in_n(self):
        part = partition_square([1.0, 2.0])
        assert part.communication_volume(100) == pytest.approx(100 * part.half_perimeter_sum)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            partition_square([1.0]).communication_volume(0)

    def test_static_beats_random_dynamic(self, paper_platform):
        """With full speed knowledge, the static partition should beat
        RandomOuter (which ships ~2 blocks per task)."""
        from repro.core.strategies import OuterRandom
        from repro.simulator import simulate

        n = 40
        static_comm = partition_square(paper_platform.speeds).communication_volume(n)
        rnd = simulate(OuterRandom(n), paper_platform, rng=0)
        assert static_comm < rnd.total_blocks


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_square([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            partition_square([1.0, 0.0])
        with pytest.raises(ValueError):
            partition_square([-1.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            partition_square([[1.0, 2.0]])
