"""Tests for repro.partition.cuboid — the 3-D static extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.cuboid import partition_cube


class TestBasics:
    def test_single_processor(self):
        part = partition_cube([2.0])
        assert len(part.cuboids) == 1
        c = part.cuboids[0]
        assert c.volume == pytest.approx(1.0)
        assert c.face_sum == pytest.approx(3.0)

    def test_volumes_proportional(self):
        speeds = np.array([1.0, 2.0, 3.0])
        part = partition_cube(speeds)
        rel = speeds / speeds.sum()
        for c in part.cuboids:
            assert c.volume == pytest.approx(rel[c.owner], abs=1e-12)

    def test_total_volume_one(self):
        part = partition_cube(np.arange(1, 11, dtype=float))
        assert sum(c.volume for c in part.cuboids) == pytest.approx(1.0)

    def test_owner_permutation(self):
        part = partition_cube([3.0, 1.0, 2.0, 5.0])
        assert sorted(c.owner for c in part.cuboids) == [0, 1, 2, 3]

    def test_eight_equal_is_2x2x2(self):
        part = partition_cube(np.full(8, 1.0))
        # Perfect 2x2x2 grid: each cuboid is a 1/2-cube, face sum 3/4.
        assert part.face_sum_total == pytest.approx(8 * 0.75)
        assert part.approximation_ratio() == pytest.approx(1.0)


class TestQuality:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.1, 20.0), min_size=1, max_size=16))
    def test_above_lower_bound(self, volumes):
        part = partition_cube(volumes)
        assert part.approximation_ratio() >= 1.0 - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.2, 5.0), min_size=1, max_size=12))
    def test_heuristic_not_terrible(self, volumes):
        """Stay within 2.5x of the cube lower bound on mild heterogeneity."""
        part = partition_cube(volumes)
        assert part.approximation_ratio() <= 2.5

    def test_communication_volume_scaling(self):
        part = partition_cube([1.0, 1.0])
        assert part.communication_volume(10) == pytest.approx(100 * part.face_sum_total)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            partition_cube([1.0]).communication_volume(-1)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_cube([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            partition_cube([0.0, 1.0])
