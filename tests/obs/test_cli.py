"""The ``repro-report`` CLI: argument handling and end-to-end runs."""

import json

import pytest

from repro.obs.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "DynamicOuter"])
        assert args.command == "run"
        assert args.strategies == ["DynamicOuter"]
        assert args.n == 40
        assert args.p == 8
        assert args.seed == 0
        assert args.summary is None
        assert args.events is None
        assert not args.quiet

    def test_render_requires_summary_path(self):
        args = build_parser().parse_args(["render", "out.json"])
        assert args.command == "render"
        assert args.summary == "out.json"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_prints_report(self, capsys):
        assert main(["run", "DynamicOuter", "-n", "12", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "repro.obs run report" in out
        assert "strategy DynamicOuter" in out
        assert "normalized comm=" in out

    def test_quiet_suppresses_report(self, capsys):
        assert main(["run", "DynamicOuter", "-n", "12", "-p", "4", "--quiet"]) == 0
        assert "repro.obs run report" not in capsys.readouterr().out

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit, match="unknown strategy"):
            main(["run", "NoSuchStrategy", "-n", "12"])

    def test_writes_summary_and_events(self, tmp_path, capsys):
        summary_path = str(tmp_path / "run.json")
        events_path = str(tmp_path / "run.jsonl")
        code = main(
            [
                "run",
                "DynamicOuter",
                "SortedOuter",
                "-n",
                "12",
                "-p",
                "4",
                "--summary",
                summary_path,
                "--events",
                events_path,
                "--quiet",
            ]
        )
        assert code == 0
        summary = json.loads((tmp_path / "run.json").read_text())
        assert summary["format"] == "repro.obs/1"
        assert [r["strategy"] for r in summary["runs"]] == ["DynamicOuter", "SortedOuter"]
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)
        starts = [json.loads(line) for line in lines if '"run_start"' in line]
        assert len(starts) == 2

    def test_deterministic_given_seed(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            path = str(tmp_path / name)
            main(["run", "DynamicMatrix", "-n", "6", "-p", "3", "--seed", "9",
                  "--summary", path, "--quiet"])
            paths.append((tmp_path / name).read_text())
        assert paths[0] == paths[1]


class TestRender:
    def test_renders_saved_summary(self, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        main(["run", "DynamicOuter", "-n", "12", "-p", "4", "--summary", path, "--quiet"])
        capsys.readouterr()
        assert main(["render", path]) == 0
        out = capsys.readouterr().out
        assert "repro.obs run report" in out
        assert "strategy DynamicOuter" in out

    def test_render_matches_run_output(self, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        main(["run", "DynamicOuter", "-n", "12", "-p", "4", "--summary", path])
        run_out = capsys.readouterr().out
        main(["render", path])
        render_out = capsys.readouterr().out
        assert render_out.strip() in run_out
