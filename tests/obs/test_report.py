"""Run-report derivation: lower-bound normalization and per-strategy sections."""

import pytest

from repro.core.analysis.lower_bounds import lower_bound
from repro.core.strategies import OuterDynamic, OuterTwoPhase
from repro.faults import FaultSchedule, WorkerCrash, simulate_faulty
from repro.core.strategies.registry import make_strategy
from repro.obs import RecordingSink, build_report, render_report, summary_from_sink
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate


@pytest.fixture
def platform():
    return Platform(uniform_speeds(4, 10, 100, rng=11))


@pytest.fixture
def summary(platform):
    sink = RecordingSink()
    simulate(OuterDynamic(12), platform, rng=3, sink=sink)
    simulate(OuterTwoPhase(16, beta=2.0), platform, rng=4, sink=sink)
    return summary_from_sink(sink)


class TestBuildReport:
    def test_normalized_comm_uses_lower_bound(self, platform):
        sink = RecordingSink()
        result = simulate(OuterDynamic(12), platform, rng=3, sink=sink)
        report = build_report(summary_from_sink(sink))
        row = report["runs"][0]
        bound = lower_bound("outer", platform.relative_speeds, 12)
        assert row["lower_bound"] == pytest.approx(bound)
        assert row["normalized_comm"] == pytest.approx(result.total_blocks / bound)
        assert row["normalized_comm"] >= 1.0  # can never beat the bound

    def test_one_section_per_strategy(self, summary):
        report = build_report(summary)
        names = [s["strategy"] for s in report["strategies"]]
        assert names == ["DynamicOuter", "DynamicOuter2Phases"]
        assert names == sorted(names)

    def test_section_totals_match_run_metadata(self, summary):
        report = build_report(summary)
        by_name = {s["strategy"]: s for s in report["strategies"]}
        for run in summary["runs"]:
            section = by_name[run["strategy"]]
            assert section["total_blocks"] == run["total_blocks"]
            assert section["total_tasks"] == run["total_tasks"]
            assert section["assignments"] == run["n_assignments"]
            assert section["runs"] == 1
            assert section["last_makespan"] == run["makespan"]

    def test_phase_split_adds_up(self, summary):
        report = build_report(summary)
        by_name = {s["strategy"]: s for s in report["strategies"]}
        two_phase = by_name["DynamicOuter2Phases"]
        assert set(two_phase["phase_blocks"]) == {1, 2}
        assert sum(two_phase["phase_blocks"].values()) == two_phase["total_blocks"]
        assert sum(two_phase["phase_tasks"].values()) == two_phase["total_tasks"]
        assert "phase2_start_time" in two_phase
        single = by_name["DynamicOuter"]
        assert set(single["phase_blocks"]) == {1}
        assert "phase2_start_time" not in single

    def test_worker_rows_cover_all_workers(self, summary, platform):
        report = build_report(summary)
        for section in report["strategies"]:
            workers = [row["worker"] for row in section["workers"]]
            assert workers == list(range(platform.p))
            assert sum(row["blocks"] for row in section["workers"]) == section["total_blocks"]
            for row in section["workers"]:
                assert row["idle_gap"] >= 0.0

    def test_fault_summary(self, platform):
        sink = RecordingSink()
        simulate_faulty(
            make_strategy("DynamicOuter", 16, collect_ids=True),
            platform,
            schedule=FaultSchedule(crashes=(WorkerCrash(0, 0.05, 0.5),)),
            rng=3,
            sink=sink,
        )
        report = build_report(summary_from_sink(sink))
        faults = report["strategies"][0]["faults"]
        assert faults.get("crash") == 1
        assert "restart" in faults

    def test_empty_summary(self):
        report = build_report({"format": "repro.obs/1", "runs": [], "metrics": {}})
        assert report == {"runs": [], "strategies": [], "store": []}


class TestRenderReport:
    def test_contains_headline_numbers(self, summary):
        text = render_report(summary)
        assert text.startswith("repro.obs run report")
        assert "runs recorded: 2" in text
        assert "normalized comm=" in text
        assert "strategy DynamicOuter" in text
        assert "strategy DynamicOuter2Phases" in text
        assert "phase-2 switch at t=" in text
        assert "idle_gap" in text

    def test_fault_line_rendered(self, platform):
        sink = RecordingSink()
        simulate_faulty(
            make_strategy("DynamicOuter", 16, collect_ids=True),
            platform,
            schedule=FaultSchedule(crashes=(WorkerCrash(0, 0.05, 0.5),)),
            rng=3,
            sink=sink,
        )
        text = render_report(summary_from_sink(sink))
        assert "faults:" in text
        assert "crash=1" in text

    def test_empty_summary_renders(self):
        text = render_report({"format": "repro.obs/1", "runs": [], "metrics": {}})
        assert text.startswith("repro.obs run report")

    def test_deterministic(self, summary):
        assert render_report(summary) == render_report(summary)
