"""Fingerprints of the JSONL event export, one per strategy family.

The sha256 of the exported event stream pins *everything* at once: engine
event order and timing, the sink's event shapes, JSON key ordering and
float formatting.  A change here means either the simulation semantics or
the export format drifted — both silently invalidate saved event streams,
so update the table only for a deliberate, documented change (and bump
:data:`repro.obs.export.FORMAT` if the format itself changed).

Covers the outer/matrix × random/sorted/dynamic/two-phase families; the
MapReduce variants share the static strategies' event path.
"""

import hashlib

import pytest

from repro.core.strategies.registry import make_strategy
from repro.obs import RecordingSink
from repro.obs.export import events_to_jsonl
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate

# sha256 of events_to_jsonl(...) for Platform(uniform_speeds(4, 10, 100,
# rng=123)), simulate(..., rng=321), n=12 for outer / n=6 for matrix.
FINGERPRINTS = {
    "RandomOuter": "b1f085028d5c3b07db609429a1c07a94c12bed0794490eea0896d0a11973e81b",
    "SortedOuter": "8a1085c378215801448a5e8e88d03981b99f1c51f640bd6d60687abea512eb91",
    "DynamicOuter": "0fa9783c642b3e30a511f4334b380d109597fd2f1876db23deb7f8c73315c65d",
    "DynamicOuter2Phases": "83bd4d5dde8b183b3fdf4cfffc1f03adfe8891598c92565aa1b56c64cad65dad",
    "RandomMatrix": "657f6bca2839c4287f6542b0c035998dc4b8a0b58fb37cb33a3447970047dd15",
    "SortedMatrix": "5f431fdf9e41eaf8459f5ec4fc7a1753da1cb17a9c6f382988451ce88f116755",
    "DynamicMatrix": "77379160246d0891a5584b67e0bd269bed7e99d02f15f18b1b85366fd1943a4f",
    "DynamicMatrix2Phases": "b4e1cb80e0f8ad97a0e023c4692f87f66581ca46600ad8d76a5ba11bd37dd506",
}


def _export(name: str) -> str:
    n = 6 if "Matrix" in name else 12
    platform = Platform(uniform_speeds(4, 10, 100, rng=123))
    sink = RecordingSink(events=True)
    simulate(make_strategy(name, n), platform, rng=321, sink=sink)
    return events_to_jsonl(sink.events)


@pytest.mark.parametrize("name", sorted(FINGERPRINTS))
def test_event_export_fingerprint(name):
    digest = hashlib.sha256(_export(name).encode("utf-8")).hexdigest()
    assert digest == FINGERPRINTS[name], (
        f"JSONL export for {name} drifted; if the change is deliberate, "
        f"update FINGERPRINTS and consider bumping repro.obs.export.FORMAT"
    )


def test_export_is_reproducible():
    assert _export("DynamicOuter") == _export("DynamicOuter")
