"""StageProfiler: the one sanctioned wall-clock accumulator."""

import pytest

from repro.obs import StageProfiler, wall_time


class TestWallTime:
    def test_monotone_nondecreasing(self):
        a = wall_time()
        b = wall_time()
        assert b >= a


class TestStageProfiler:
    def test_stage_records_elapsed_time(self):
        prof = StageProfiler()
        with prof.stage("work"):
            wall_time()  # any amount of work
        assert prof.to_dict().keys() == {"work"}
        assert prof.to_dict()["work"] >= 0.0
        assert len(prof) == 1

    def test_reentry_accumulates(self):
        prof = StageProfiler()
        prof.add("s", 1.0)
        prof.add("s", 0.5)
        assert prof.to_dict() == {"s": 1.5}
        assert prof.total() == 1.5

    def test_first_seen_order_preserved(self):
        prof = StageProfiler()
        for name in ("z", "a", "m", "a"):
            prof.add(name, 1.0)
        assert [name for name, _ in prof.stages()] == ["z", "a", "m"]
        assert list(prof.to_dict()) == ["z", "a", "m"]

    def test_disabled_profiler_records_nothing(self):
        prof = StageProfiler(enabled=False)
        with prof.stage("work"):
            pass
        assert prof.to_dict() == {}
        assert prof.total() == 0.0
        assert len(prof) == 0

    def test_stage_records_on_exception(self):
        prof = StageProfiler()
        with pytest.raises(RuntimeError):
            with prof.stage("boom"):
                raise RuntimeError("x")
        assert "boom" in prof.to_dict()

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            StageProfiler().add("s", -0.1)

    def test_total_sums_stages(self):
        prof = StageProfiler()
        prof.add("a", 1.0)
        prof.add("b", 2.0)
        assert prof.total() == 3.0
