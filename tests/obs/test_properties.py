"""Property tests: recorded metrics are exactly the Trace's aggregates.

Two contracts the observability layer stands on:

* for **every registered strategy** and any seed, the sink's counters equal
  the aggregates recomputed from the engine's own ``Trace`` — the metrics
  are a lossless view, not an approximation;
* the replicate runner accumulates **bit-identical** metrics serially and
  under ``workers=`` process parallelism (same fold order, same floats).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.strategies.registry import make_strategy, strategy_names
from repro.experiments import average_normalized_comm
from repro.experiments.parallel import StrategySpec, UniformPlatformSpec
from repro.obs import ALL_PHASES, ALL_WORKERS, RecordingSink
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate

COMMON = dict(deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow])


def _size_for(name: str) -> int:
    return 6 if "Matrix" in name else 12


@pytest.mark.parametrize("name", sorted(strategy_names()))
class TestCountersMatchTrace:
    @settings(**COMMON)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_counters_equal_trace_aggregates(self, name, seed):
        platform = Platform(uniform_speeds(4, 10, 100, rng=seed))
        sink = RecordingSink()
        result = simulate(
            make_strategy(name, _size_for(name)),
            platform,
            rng=seed + 1,
            sink=sink,
            collect_trace=True,
        )
        trace = result.trace
        m = sink.metrics

        assert m.counter("blocks_shipped").total() == trace.total_blocks()
        assert m.counter("tasks_allocated").total() == trace.total_tasks()
        assert m.counter("assignments").total() == len(trace)
        assert m.counter("runs").get((name, ALL_WORKERS, ALL_PHASES)) == 1

        # Per-phase splits match the trace exactly.
        for phase in (1, 2):
            blocks = sum(
                v
                for (s, w, ph), v in m.counter("blocks_shipped").items()
                if ph == phase
            )
            tasks = sum(
                v
                for (s, w, ph), v in m.counter("tasks_allocated").items()
                if ph == phase
            )
            assert blocks == trace.phase_blocks(phase)
            assert tasks == trace.phase_tasks(phase)

        # Per-worker splits match the result vectors exactly.
        for worker in range(platform.p):
            blocks = sum(
                v for (s, w, _ph), v in m.counter("blocks_shipped").items() if w == worker
            )
            tasks = sum(
                v for (s, w, _ph), v in m.counter("tasks_allocated").items() if w == worker
            )
            assert blocks == result.per_worker_blocks[worker]
            assert tasks == result.per_worker_tasks[worker]

        assert m.gauge("makespan").get((name, ALL_WORKERS, ALL_PHASES)) == result.makespan


class TestSerialParallelIdentity:
    @settings(deadline=None, max_examples=5, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 2**31 - 1),
        name=st.sampled_from(["DynamicOuter", "DynamicMatrix2Phases"]),
    )
    def test_metrics_bit_identical_across_worker_counts(self, seed, name):
        n = _size_for(name)
        reps = 4

        def run(workers):
            sink = RecordingSink()
            summary = average_normalized_comm(
                StrategySpec(name, n),
                UniformPlatformSpec(4),
                n,
                reps,
                seed=seed,
                workers=workers,
                sink=sink,
            )
            return summary, sink

        serial_summary, serial_sink = run(workers=1)
        parallel_summary, parallel_sink = run(workers=2)

        assert serial_summary == parallel_summary
        # Bit-identical: the serialized snapshots are byte-equal.
        assert json.dumps(serial_sink.snapshot(), sort_keys=True) == json.dumps(
            parallel_sink.snapshot(), sort_keys=True
        )

    def test_sink_none_unchanged_by_worker_count(self):
        kwargs = dict(seed=7, n=12, reps=4)
        a = average_normalized_comm(
            StrategySpec("DynamicOuter", 12), UniformPlatformSpec(4),
            kwargs["n"], kwargs["reps"], seed=kwargs["seed"], workers=1,
        )
        b = average_normalized_comm(
            StrategySpec("DynamicOuter", 12), UniformPlatformSpec(4),
            kwargs["n"], kwargs["reps"], seed=kwargs["seed"], workers=2,
        )
        assert a == b

    def test_sink_does_not_perturb_values(self):
        """Attaching a sink never changes the simulated values themselves."""
        bare = average_normalized_comm(
            StrategySpec("DynamicOuter", 12), UniformPlatformSpec(4), 12, 5, seed=3
        )
        sink = RecordingSink()
        observed = average_normalized_comm(
            StrategySpec("DynamicOuter", 12), UniformPlatformSpec(4), 12, 5, seed=3, sink=sink
        )
        assert bare == observed
        assert sink.metrics.counter("runs").total() == 5
        assert len(sink.runs) == 5
