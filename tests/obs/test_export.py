"""Round-trip tests for the JSONL / JSON / CSV exporters."""

import json

import pytest

from repro.core.strategies import OuterDynamic, OuterTwoPhase
from repro.obs import (
    Metrics,
    RecordingSink,
    events_from_jsonl,
    events_to_jsonl,
    load_summary,
    metrics_from_csv,
    metrics_from_json,
    metrics_to_csv,
    metrics_to_json,
    save_summary,
    summary_from_sink,
    summary_to_json,
)
from repro.obs.export import FORMAT
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate


@pytest.fixture
def recorded():
    """A sink that saw two heterogeneous runs (incl. phase-2 and gauges)."""
    platform = Platform(uniform_speeds(4, 10, 100, rng=11))
    sink = RecordingSink(events=True)
    simulate(OuterDynamic(12), platform, rng=3, sink=sink)
    simulate(OuterTwoPhase(16, beta=2.0), platform, rng=4, sink=sink)
    return sink


class TestEventsJsonl:
    def test_round_trip(self, recorded):
        text = events_to_jsonl(recorded.events)
        assert events_from_jsonl(text) == recorded.events

    def test_one_object_per_line(self, recorded):
        lines = events_to_jsonl(recorded.events).splitlines()
        assert len(lines) == len(recorded.events)
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_keys_sorted_within_lines(self, recorded):
        first = events_to_jsonl(recorded.events).splitlines()[0]
        keys = list(json.loads(first))
        assert keys == sorted(keys)

    def test_blank_lines_skipped(self):
        assert events_from_jsonl('{"a": 1}\n\n  \n{"b": 2}') == [{"a": 1}, {"b": 2}]

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError, match="line 2"):
            events_from_jsonl('{"a": 1}\n[1, 2]')

    def test_empty_stream(self):
        assert events_to_jsonl([]) == ""
        assert events_from_jsonl("") == []


class TestMetricsJson:
    def test_round_trip_exact(self, recorded):
        restored = metrics_from_json(metrics_to_json(recorded.metrics))
        assert restored == recorded.metrics
        # Byte-stable: re-serializing the restored metrics is identical.
        assert metrics_to_json(restored) == metrics_to_json(recorded.metrics)

    def test_format_tag_embedded(self, recorded):
        payload = json.loads(metrics_to_json(recorded.metrics))
        assert payload["format"] == FORMAT

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="repro.obs/1"):
            metrics_from_json('{"format": "other/9", "metrics": {}}')

    def test_empty_metrics(self):
        assert metrics_from_json(metrics_to_json(Metrics())).is_empty()


class TestMetricsCsv:
    def test_round_trip_exact(self, recorded):
        restored = metrics_from_csv(metrics_to_csv(recorded.metrics))
        assert restored == recorded.metrics

    def test_round_trip_preserves_float_bits(self):
        m = Metrics()
        m.gauge("g").set(("S", -1, 0), 0.1 + 0.2)
        m.histogram("h", [1, 2]).observe(("S", 0, 1), 0.30000000000000004)
        restored = metrics_from_csv(metrics_to_csv(m))
        assert restored.gauge("g").get(("S", -1, 0)) == 0.1 + 0.2
        assert restored == m

    def test_byte_stable(self, recorded):
        text = metrics_to_csv(recorded.metrics)
        assert metrics_to_csv(metrics_from_csv(text)) == text

    def test_header_and_row_shape(self, recorded):
        lines = metrics_to_csv(recorded.metrics).splitlines()
        assert lines[0] == "metric,kind,strategy,worker,phase,field,value"
        assert all(line.count(",") == 6 for line in lines[1:])

    def test_histogram_rows_present(self, recorded):
        text = metrics_to_csv(recorded.metrics)
        assert "le_inf" in text
        assert "assignment_tasks" in text

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="not a metrics CSV"):
            metrics_from_csv("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="not a metrics CSV"):
            metrics_from_csv("")

    def test_unknown_kind_rejected(self):
        text = "metric,kind,strategy,worker,phase,field,value\nm,weird,S,0,1,value,1\n"
        with pytest.raises(ValueError, match="unknown metric kind"):
            metrics_from_csv(text)

    def test_malformed_row_rejected(self):
        text = "metric,kind,strategy,worker,phase,field,value\nm,counter,S,0\n"
        with pytest.raises(ValueError, match="malformed"):
            metrics_from_csv(text)


class TestSummaries:
    def test_summary_has_format_runs_metrics(self, recorded):
        summary = summary_from_sink(recorded)
        assert summary["format"] == FORMAT
        assert len(summary["runs"]) == 2
        assert Metrics.from_dict(summary["metrics"]) == recorded.metrics

    def test_save_load_round_trip(self, recorded, tmp_path):
        path = str(tmp_path / "summary.json")
        assert save_summary(recorded, path) == path
        assert load_summary(path) == summary_from_sink(recorded)

    def test_summary_to_json_is_valid(self, recorded):
        payload = json.loads(summary_to_json(recorded))
        assert payload == summary_from_sink(recorded)

    def test_load_rejects_foreign_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError, match="not a"):
            load_summary(str(path))
