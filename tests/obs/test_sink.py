"""RecordingSink semantics and its integration with both engines."""

import pytest

from repro.core.strategies import OuterDynamic, OuterTwoPhase
from repro.core.strategies.registry import make_strategy
from repro.faults import FaultSchedule, WorkerCrash, simulate_faulty
from repro.obs import ALL_PHASES, ALL_WORKERS, MetricsSink, NullSink, RecordingSink
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate


@pytest.fixture
def platform():
    return Platform(uniform_speeds(4, 10, 100, rng=11))


class TestBaseSink:
    def test_hooks_are_noops(self):
        sink = MetricsSink()
        sink.on_run_start("S", "outer", 4, 2, [0.5, 0.5])
        sink.on_assignment(0.0, 0, 1, 1, 0.1, 1)
        sink.on_fault(0.0, "crash", 0, 1, 1)
        sink.on_run_end(1.0, 1, 1, 1)
        assert sink.snapshot() == {}
        sink.absorb_snapshot({"anything": 1})

    def test_null_sink_accepted_by_engine(self, platform):
        base = simulate(OuterDynamic(10), platform, rng=5)
        nulled = simulate(OuterDynamic(10), platform, rng=5, sink=NullSink())
        assert nulled.total_blocks == base.total_blocks
        assert nulled.makespan == base.makespan


class TestRecordingSinkContract:
    def test_event_before_run_start_rejected(self):
        sink = RecordingSink()
        with pytest.raises(RuntimeError, match="before on_run_start"):
            sink.on_assignment(0.0, 0, 1, 1, 0.1, 1)
        with pytest.raises(RuntimeError, match="before on_run_start"):
            sink.on_fault(0.0, "crash", 0, 0, 0)
        with pytest.raises(RuntimeError, match="before on_run_start"):
            sink.on_run_end(1.0, 1, 1, 1)

    def test_run_end_closes_the_run(self, platform):
        sink = RecordingSink()
        simulate(OuterDynamic(8), platform, rng=1, sink=sink)
        with pytest.raises(RuntimeError):
            sink.on_assignment(0.0, 0, 1, 1, 0.1, 1)

    def test_events_disabled_by_default(self, platform):
        sink = RecordingSink()
        simulate(OuterDynamic(8), platform, rng=1, sink=sink)
        assert sink.events is None
        assert not sink.metrics.is_empty()


class TestEngineIntegration:
    def test_counters_match_trace_aggregates(self, platform):
        sink = RecordingSink()
        result = simulate(OuterDynamic(16), platform, rng=3, sink=sink, collect_trace=True)
        trace = result.trace
        m = sink.metrics
        assert m.counter("blocks_shipped").total() == trace.total_blocks() == result.total_blocks
        assert m.counter("tasks_allocated").total() == trace.total_tasks()
        assert m.counter("assignments").total() == len(trace) == result.n_assignments
        for worker in range(platform.p):
            expected = sum(r.blocks for r in trace.for_worker(worker))
            got = sum(
                v for (s, w, _ph), v in m.counter("blocks_shipped").items() if w == worker
            )
            assert got == expected == result.per_worker_blocks[worker]

    def test_makespan_and_idle_gauges(self, platform):
        sink = RecordingSink()
        result = simulate(OuterDynamic(16), platform, rng=3, sink=sink, collect_trace=True)
        key = ("DynamicOuter", ALL_WORKERS, ALL_PHASES)
        assert sink.metrics.gauge("makespan").get(key) == result.makespan
        for worker in range(platform.p):
            busy = sum(r.duration for r in result.trace.for_worker(worker))
            gap = sink.metrics.gauge("idle_gap").get(("DynamicOuter", worker, ALL_PHASES))
            assert gap == pytest.approx(max(0.0, result.makespan - busy))

    def test_phase2_gauge_set_for_two_phase_strategy(self, platform):
        sink = RecordingSink()
        result = simulate(
            OuterTwoPhase(20, beta=2.0), platform, rng=3, sink=sink, collect_trace=True
        )
        first_p2 = min(r.time for r in result.trace if r.phase == 2)
        key = ("DynamicOuter2Phases", ALL_WORKERS, 2)
        assert sink.metrics.gauge("phase2_start_time").get(key) == first_p2

    def test_phase2_gauge_absent_for_single_phase(self, platform):
        sink = RecordingSink()
        simulate(OuterDynamic(16), platform, rng=3, sink=sink)
        assert len(sink.metrics.gauge("phase2_start_time")) == 0

    def test_histogram_covers_every_assignment(self, platform):
        sink = RecordingSink()
        result = simulate(OuterDynamic(16), platform, rng=3, sink=sink, collect_trace=True)
        hist = sink.metrics.histogram("assignment_tasks")
        total_count = sum(count for _k, (_c, count, _s) in hist.items())
        total_sum = sum(s for _k, (_c, _count, s) in hist.items())
        assert total_count == result.n_assignments
        assert total_sum == result.trace.total_tasks()

    def test_zero_task_assignments_counted_separately(self, platform):
        sink = RecordingSink()
        result = simulate(OuterDynamic(16), platform, rng=3, sink=sink, collect_trace=True)
        zero = sum(1 for r in result.trace if r.tasks == 0)
        nonzero_assignments = sum(1 for r in result.trace if r.tasks > 0)
        assert sink.metrics.counter("zero_task_assignments").total() == zero
        # tasks_allocated only has keys where tasks were actually allocated
        assert sink.metrics.counter("assignments").total() == zero + nonzero_assignments

    def test_run_metadata_recorded(self, platform):
        sink = RecordingSink()
        result = simulate(OuterDynamic(12), platform, rng=3, sink=sink)
        assert len(sink.runs) == 1
        run = sink.runs[0]
        assert run["strategy"] == "DynamicOuter"
        assert run["kernel"] == "outer"
        assert run["n"] == 12
        assert run["p"] == platform.p
        assert run["relative_speeds"] == pytest.approx(list(platform.relative_speeds))
        assert run["makespan"] == result.makespan
        assert run["total_blocks"] == result.total_blocks
        assert run["n_assignments"] == result.n_assignments


class TestEventStream:
    def test_stream_structure(self, platform):
        sink = RecordingSink(events=True)
        result = simulate(OuterDynamic(12), platform, rng=3, sink=sink)
        events = sink.events
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"
        assignments = [e for e in events if e["event"] == "assignment"]
        assert len(assignments) == result.n_assignments
        assert [e["i"] for e in events] == list(range(len(events)))

    def test_phase_transition_emitted_once(self, platform):
        sink = RecordingSink(events=True)
        simulate(OuterTwoPhase(20, beta=2.0), platform, rng=3, sink=sink)
        transitions = [e for e in sink.events if e["event"] == "phase_transition"]
        assert len(transitions) == 1
        assert transitions[0]["phase"] == 2

    def test_run_end_totals_match_result(self, platform):
        sink = RecordingSink(events=True)
        result = simulate(OuterDynamic(12), platform, rng=3, sink=sink)
        end = sink.events[-1]
        assert end["blocks"] == result.total_blocks
        assert end["t"] == result.makespan


class TestFaultyEngineIntegration:
    def test_fault_counters_match_trace(self, platform):
        schedule = FaultSchedule(crashes=(WorkerCrash(0, 0.05, 0.5),))
        sink = RecordingSink(events=True)
        result = simulate_faulty(
            make_strategy("DynamicOuter", 16, collect_ids=True),
            platform,
            schedule=schedule,
            rng=3,
            sink=sink,
            collect_trace=True,
        )
        m = sink.metrics
        assert m.counter("fault_crash").total() == result.faults.n_crashes == 1
        assert m.counter("fault_restart").total() == result.faults.n_restarts
        for kind in ("crash", "restart"):
            assert m.counter(f"fault_{kind}").total() == len(
                result.trace.faults_of_kind(kind)
            )
        fault_events = [e for e in sink.events if e["event"] == "fault"]
        assert len(fault_events) == len(result.trace.faults)

    def test_empty_schedule_matches_fault_free_metrics(self, platform):
        base_sink, faulty_sink = RecordingSink(), RecordingSink()
        simulate(OuterDynamic(12), platform, rng=3, sink=base_sink)
        simulate_faulty(
            OuterDynamic(12), platform, schedule=FaultSchedule(), rng=3, sink=faulty_sink
        )
        assert base_sink.metrics == faulty_sink.metrics


class TestSnapshots:
    def test_absorb_equals_direct_recording(self, platform):
        direct = RecordingSink()
        simulate(OuterDynamic(10), platform, rng=1, sink=direct)
        simulate(OuterDynamic(12), platform, rng=2, sink=direct)

        combined = RecordingSink()
        for n, rng in ((10, 1), (12, 2)):
            rep = RecordingSink()
            simulate(OuterDynamic(n), platform, rng=rng, sink=rep)
            combined.absorb_snapshot(rep.snapshot())

        assert combined.metrics == direct.metrics
        assert combined.runs == direct.runs

    def test_snapshot_is_plain_data(self, platform):
        import json
        import pickle

        sink = RecordingSink()
        simulate(OuterDynamic(10), platform, rng=1, sink=sink)
        snap = sink.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        json.dumps(snap)  # JSON-ready too

    def test_events_not_absorbed(self, platform):
        rep = RecordingSink(events=True)
        simulate(OuterDynamic(10), platform, rng=1, sink=rep)
        target = RecordingSink(events=True)
        target.absorb_snapshot(rep.snapshot())
        assert target.events == []
        assert not target.metrics.is_empty()
