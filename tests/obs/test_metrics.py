"""Unit tests for the metrics primitives (counters, gauges, histograms)."""

import pytest

from repro.obs import (
    ALL_PHASES,
    ALL_WORKERS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    TASK_BUCKETS,
)

K1 = ("DynamicOuter", 0, 1)
K2 = ("DynamicOuter", 1, 1)
K3 = ("SortedMatrix", ALL_WORKERS, ALL_PHASES)


class TestCounter:
    def test_starts_at_zero(self):
        c = Counter()
        assert c.get(K1) == 0
        assert c.total() == 0
        assert len(c) == 0

    def test_inc_accumulates(self):
        c = Counter()
        c.inc(K1)
        c.inc(K1, 4)
        c.inc(K2, 2)
        assert c.get(K1) == 5
        assert c.get(K2) == 2
        assert c.total() == 7
        assert len(c) == 2

    def test_zero_amount_creates_key(self):
        c = Counter()
        c.inc(K1, 0)
        assert c.get(K1) == 0
        assert len(c) == 1

    def test_items_sorted_by_key(self):
        c = Counter()
        c.inc(K3)
        c.inc(K2)
        c.inc(K1)
        assert [k for k, _ in c.items()] == sorted([K1, K2, K3])

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter().inc(K1, -1)

    def test_non_integer_amount_rejected(self):
        with pytest.raises(TypeError):
            Counter().inc(K1, 1.5)
        with pytest.raises(TypeError):
            Counter().inc(K1, True)

    def test_bad_keys_rejected(self):
        c = Counter()
        for bad in [("s", 0), ("s", 0.5, 1), (1, 0, 1), ("s", True, 1), "s01"]:
            with pytest.raises(TypeError):
                c.inc(bad)

    def test_merge_adds_per_key(self):
        a, b = Counter(), Counter()
        a.inc(K1, 3)
        b.inc(K1, 4)
        b.inc(K2, 1)
        a.merge(b)
        assert a.get(K1) == 7
        assert a.get(K2) == 1
        assert b.get(K1) == 4  # other untouched

    def test_equality(self):
        a, b = Counter(), Counter()
        a.inc(K1, 2)
        b.inc(K1)
        assert a != b
        b.inc(K1)
        assert a == b
        assert a != "not a counter"

    def test_round_trip(self):
        a = Counter()
        a.inc(K1, 3)
        a.inc(K3, 9)
        assert Counter.from_list(a.to_list()) == a

    def test_round_trip_through_tuples_in_json(self):
        # JSON turns key tuples into lists; from_list must restore tuples.
        a = Counter()
        a.inc(K1, 1)
        raw = a.to_list()
        assert raw[0]["key"] == ["DynamicOuter", 0, 1]


class TestGauge:
    def test_get_default(self):
        g = Gauge()
        assert g.get(K1) is None
        assert g.get(K1, 7.0) == 7.0

    def test_last_value_wins(self):
        g = Gauge()
        g.set(K1, 1.5)
        g.set(K1, 2.5)
        assert g.get(K1) == 2.5
        assert len(g) == 1

    def test_merge_other_wins(self):
        a, b = Gauge(), Gauge()
        a.set(K1, 1.0)
        a.set(K2, 5.0)
        b.set(K1, 9.0)
        a.merge(b)
        assert a.get(K1) == 9.0
        assert a.get(K2) == 5.0

    def test_bad_key_rejected(self):
        with pytest.raises(TypeError):
            Gauge().set(("s",), 1.0)

    def test_round_trip(self):
        g = Gauge()
        g.set(K1, 0.1 + 0.2)  # not exactly representable in decimal
        g.set(K3, -3.75)
        restored = Gauge.from_list(g.to_list())
        assert restored == g

    def test_equality(self):
        a, b = Gauge(), Gauge()
        a.set(K1, 1.0)
        assert a != b
        b.set(K1, 1.0)
        assert a == b


class TestHistogram:
    def test_bucket_placement_inclusive_upper(self):
        h = Histogram([1, 2, 4])
        for value in (0, 1, 2, 3, 4, 5):
            h.observe(K1, value)
        counts, count, total = h.cell(K1)
        # <=1: {0,1}; <=2: {2}; <=4: {3,4}; overflow: {5}
        assert counts == [2, 1, 2, 1]
        assert count == 6
        assert total == 15.0

    def test_unseen_key_is_zero_cell(self):
        h = Histogram([1, 2])
        counts, count, total = h.cell(K1)
        assert counts == [0, 0, 0]
        assert count == 0
        assert total == 0.0

    def test_default_buckets(self):
        h = Histogram()
        assert h.buckets == tuple(float(b) for b in TASK_BUCKETS)

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([1, 1, 2])
        with pytest.raises(ValueError, match="at least one"):
            Histogram([])

    def test_merge_requires_same_buckets(self):
        with pytest.raises(ValueError, match="different buckets"):
            Histogram([1, 2]).merge(Histogram([1, 3]))

    def test_merge_adds_cells(self):
        a, b = Histogram([1, 2]), Histogram([1, 2])
        a.observe(K1, 0)
        b.observe(K1, 2)
        b.observe(K2, 99)
        a.merge(b)
        counts, count, total = a.cell(K1)
        assert counts == [1, 1, 0]
        assert count == 2
        assert total == 2.0
        assert a.cell(K2)[0] == [0, 0, 1]  # overflow

    def test_round_trip(self):
        h = Histogram([1, 4, 16])
        for v in (0, 3, 17, 1000):
            h.observe(K1, v)
        h.observe(K3, 2)
        restored = Histogram.from_dict(h.to_dict())
        assert restored == h

    def test_from_dict_validates_cell_width(self):
        raw = {"buckets": [1, 2], "cells": [{"key": ["s", 0, 1], "counts": [1], "count": 1, "sum": 1.0}]}
        with pytest.raises(ValueError, match="buckets"):
            Histogram.from_dict(raw)

    def test_equality_includes_buckets(self):
        a, b = Histogram([1, 2]), Histogram([1, 3])
        assert a != b


class TestMetrics:
    def test_families_created_lazily_and_cached(self):
        m = Metrics()
        assert m.counter("x") is m.counter("x")
        assert m.gauge("y") is m.gauge("y")
        assert m.histogram("z", [1, 2]) is m.histogram("z")

    def test_names_sorted(self):
        m = Metrics()
        m.counter("b")
        m.counter("a")
        m.gauge("g")
        m.histogram("h")
        assert m.counter_names() == ["a", "b"]
        assert list(m) == ["a", "b", "g", "h"]

    def test_is_empty_ignores_keyless_families(self):
        m = Metrics()
        m.counter("a")  # family exists but holds no key
        assert m.is_empty()
        m.counter("a").inc(K1)
        assert not m.is_empty()

    def test_merge_folds_all_families(self):
        a, b = Metrics(), Metrics()
        a.counter("c").inc(K1, 1)
        b.counter("c").inc(K1, 2)
        b.gauge("g").set(K1, 3.0)
        b.histogram("h", [1, 2]).observe(K1, 0)
        a.merge(b)
        assert a.counter("c").get(K1) == 3
        assert a.gauge("g").get(K1) == 3.0
        assert a.histogram("h").cell(K1)[1] == 1

    def test_merge_is_associative_on_disjoint_keys(self):
        def build(key, amount):
            m = Metrics()
            m.counter("c").inc(key, amount)
            return m

        left = build(K1, 1)
        left.merge(build(K2, 2))
        left.merge(build(K3, 3))
        right = build(K1, 1)
        tail = build(K2, 2)
        tail.merge(build(K3, 3))
        right.merge(tail)
        assert left == right

    def test_equality_ignores_empty_families(self):
        a, b = Metrics(), Metrics()
        a.counter("phantom")  # no keys
        assert a == b
        a.counter("c").inc(K1)
        assert a != b

    def test_round_trip(self):
        m = Metrics()
        m.counter("c").inc(K1, 5)
        m.gauge("g").set(K2, 1.25)
        m.histogram("h", [1, 2]).observe(K3, 2)
        assert Metrics.from_dict(m.to_dict()) == m

    def test_round_trip_empty(self):
        assert Metrics.from_dict(Metrics().to_dict()).is_empty()
