"""Tests for repro.core.analysis.lower_bounds."""

import numpy as np
import pytest

from repro.core.analysis.lower_bounds import lower_bound, matrix_lower_bound, outer_lower_bound


class TestOuterLowerBound:
    def test_single_worker(self):
        # One worker must receive both vectors: 2n blocks.
        assert outer_lower_bound(np.array([1.0]), 100) == pytest.approx(200.0)

    def test_homogeneous_formula(self):
        p, n = 16, 100
        rel = np.full(p, 1.0 / p)
        # 2 n p / sqrt(p) = 2 n sqrt(p)
        assert outer_lower_bound(rel, n) == pytest.approx(2 * n * np.sqrt(p))

    def test_grows_with_p(self):
        n = 50
        lbs = [outer_lower_bound(np.full(p, 1.0 / p), n) for p in (1, 4, 16, 64)]
        assert lbs == sorted(lbs)

    def test_concavity_prefers_heterogeneity(self):
        """sqrt is concave: an imbalanced platform has a *smaller* bound."""
        lb_even = outer_lower_bound(np.array([0.5, 0.5]), 10)
        lb_skew = outer_lower_bound(np.array([0.9, 0.1]), 10)
        assert lb_skew < lb_even

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            outer_lower_bound(np.array([0.5, 0.6]), 10)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            outer_lower_bound(np.array([1.5, -0.5]), 10)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            outer_lower_bound(np.array([1.0]), 0)


class TestMatrixLowerBound:
    def test_single_worker(self):
        # One worker needs all of A, B and C: 3 n^2 blocks.
        assert matrix_lower_bound(np.array([1.0]), 10) == pytest.approx(300.0)

    def test_homogeneous_formula(self):
        p, n = 27, 30
        rel = np.full(p, 1.0 / p)
        # 3 n^2 p^(1/3)
        assert matrix_lower_bound(rel, n) == pytest.approx(3 * n * n * p ** (1 / 3))

    def test_grows_with_p(self):
        n = 20
        lbs = [matrix_lower_bound(np.full(p, 1.0 / p), n) for p in (1, 8, 27, 64)]
        assert lbs == sorted(lbs)


class TestDispatch:
    def test_outer(self):
        rel = np.array([0.5, 0.5])
        assert lower_bound("outer", rel, 10) == outer_lower_bound(rel, 10)

    def test_matrix(self):
        rel = np.array([0.5, 0.5])
        assert lower_bound("matrix", rel, 10) == matrix_lower_bound(rel, 10)

    def test_unknown(self):
        with pytest.raises(ValueError):
            lower_bound("tensor", np.array([1.0]), 10)
