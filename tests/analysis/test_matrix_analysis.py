"""Tests for repro.core.analysis.matrix — the Section 4.2 analysis."""

import numpy as np
import pytest

from repro.core.analysis.matrix import (
    matrix_phase1_ratio,
    matrix_phase2_ratio,
    matrix_total_ratio,
    optimal_matrix_beta,
)
from repro.platform import uniform_speeds


def rel_uniform(p, seed=0):
    s = uniform_speeds(p, 10, 100, rng=seed)
    return s / s.sum()


class TestPhase1Ratio:
    def test_zero_beta(self):
        assert matrix_phase1_ratio(0.0, rel_uniform(20)) == 0.0

    def test_increasing_in_beta(self):
        rel = rel_uniform(50)
        betas = np.linspace(0.0, 6.0, 25)
        vals = [matrix_phase1_ratio(b, rel) for b in betas]
        assert all(np.diff(vals) >= 0)

    def test_homogeneous_closed_form(self):
        p, beta = 100, 2.0
        rel = np.full(p, 1.0 / p)
        x2 = (beta / p - beta**2 / (2 * p * p)) ** (2 / 3)
        expected = p * x2 / (p * (1.0 / p) ** (2 / 3))
        assert matrix_phase1_ratio(beta, rel) == pytest.approx(expected)

    def test_first_order_close_to_exact(self):
        rel = np.full(200, 1.0 / 200)
        for beta in (1.0, 3.0):
            exact = matrix_phase1_ratio(beta, rel, "exact")
            fo = matrix_phase1_ratio(beta, rel, "first_order")
            assert fo == pytest.approx(exact, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            matrix_phase1_ratio(-0.1, rel_uniform(5))
        with pytest.raises(ValueError):
            matrix_phase1_ratio(1.0, rel_uniform(5), "bogus")


class TestPhase2Ratio:
    def test_decreasing_in_beta(self):
        rel = rel_uniform(50)
        betas = np.linspace(0.5, 8.0, 20)
        vals = [matrix_phase2_ratio(b, rel, 40) for b in betas]
        assert all(np.diff(vals) <= 0)

    def test_beta_zero_cold_cache_cost(self):
        """beta=0: n^3 tasks at 3 blocks each over LB = 3 n^2 sum rs^(2/3)."""
        rel = rel_uniform(20)
        n = 40
        expected = 3 * n**3 / (3 * n * n * np.sum(rel ** (2 / 3)))
        assert matrix_phase2_ratio(0.0, rel, n) == pytest.approx(expected)

    def test_scales_with_n(self):
        rel = rel_uniform(20)
        assert matrix_phase2_ratio(2.0, rel, 80) == pytest.approx(
            2 * matrix_phase2_ratio(2.0, rel, 40), rel=1e-9
        )


class TestTotalRatioAndOptimum:
    def test_total_is_sum(self):
        rel = rel_uniform(30)
        assert matrix_total_ratio(2.5, rel, 40) == pytest.approx(
            matrix_phase1_ratio(2.5, rel) + matrix_phase2_ratio(2.5, rel, 40)
        )

    def test_paper_beta_value(self):
        """Paper Fig. 11: homogeneous beta ~ 2.92, heterogeneous ~ 2.95
        for p=100, n=40; our derivation lands within a few percent."""
        rel = np.full(100, 1.0 / 100)
        beta = optimal_matrix_beta(rel, 40)
        assert beta == pytest.approx(2.92, abs=0.15)

    def test_optimum_is_minimum(self):
        rel = rel_uniform(100, seed=2)
        n = 40
        b_star = optimal_matrix_beta(rel, n)
        v_star = matrix_total_ratio(b_star, rel, n)
        for b in (1.0, b_star - 0.4, b_star + 0.4, 7.0):
            if b > 0:
                assert v_star <= matrix_total_ratio(b, rel, n) + 1e-12

    def test_beta_grows_with_n(self):
        rel = np.full(50, 1.0 / 50)
        assert optimal_matrix_beta(rel, 100) > optimal_matrix_beta(rel, 40)

    def test_speed_agnosticism(self):
        betas = [optimal_matrix_beta(rel_uniform(100, seed=s), 40) for s in range(8)]
        assert (max(betas) - min(betas)) / np.mean(betas) < 0.05
