"""Tests for repro.core.analysis.outer — Lemmas 4-5, Theorem 6, optimal β."""

import numpy as np
import pytest

from repro.core.analysis.outer import (
    optimal_outer_beta,
    outer_phase1_ratio,
    outer_phase2_ratio,
    outer_total_ratio,
)
from repro.platform import uniform_speeds


def rel_uniform(p, seed=0):
    s = uniform_speeds(p, 10, 100, rng=seed)
    return s / s.sum()


class TestPhase1Ratio:
    def test_zero_beta_no_phase1(self):
        rel = rel_uniform(20)
        assert outer_phase1_ratio(0.0, rel) == 0.0

    def test_increasing_in_beta(self):
        rel = rel_uniform(20)
        betas = np.linspace(0.0, 6.0, 25)
        vals = [outer_phase1_ratio(b, rel) for b in betas]
        assert all(np.diff(vals) >= 0)

    def test_first_order_close_to_exact_small_rs(self):
        rel = np.full(200, 1.0 / 200)
        for beta in (1.0, 3.0, 5.0):
            exact = outer_phase1_ratio(beta, rel, "exact")
            fo = outer_phase1_ratio(beta, rel, "first_order")
            assert fo == pytest.approx(exact, rel=0.01)

    def test_homogeneous_closed_form(self):
        """Homogeneous: ratio = sum x_k / sum sqrt(rs) with x = sqrt(b/p - b^2/2p^2)."""
        p, beta = 50, 2.0
        rel = np.full(p, 1.0 / p)
        x = np.sqrt(beta / p - beta**2 / (2 * p * p))
        expected = p * x / (p * np.sqrt(1.0 / p))
        assert outer_phase1_ratio(beta, rel) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            outer_phase1_ratio(-1.0, rel_uniform(5))
        with pytest.raises(ValueError):
            outer_phase1_ratio(1.0, rel_uniform(5), "quadratic")


class TestPhase2Ratio:
    def test_decreasing_in_beta(self):
        rel = rel_uniform(20)
        betas = np.linspace(0.5, 8.0, 25)
        vals = [outer_phase2_ratio(b, rel, 100) for b in betas]
        assert all(np.diff(vals) <= 0)

    def test_beta_zero_pure_random_cost(self):
        """beta=0: all n^2 tasks in phase 2 at 2 blocks each (cold caches)."""
        rel = rel_uniform(20)
        n = 100
        lb = 2 * n * np.sum(np.sqrt(rel))
        expected = 2 * n * n / lb
        assert outer_phase2_ratio(0.0, rel, n) == pytest.approx(expected)

    def test_scales_with_n(self):
        rel = rel_uniform(20)
        r100 = outer_phase2_ratio(3.0, rel, 100)
        r1000 = outer_phase2_ratio(3.0, rel, 1000)
        assert r1000 == pytest.approx(10 * r100, rel=1e-9)

    def test_first_order_close_to_exact(self):
        rel = np.full(100, 0.01)
        for beta in (2.0, 4.0):
            exact = outer_phase2_ratio(beta, rel, 100, "exact")
            fo = outer_phase2_ratio(beta, rel, 100, "first_order")
            assert fo == pytest.approx(exact, rel=0.05)


class TestTotalRatioAndOptimum:
    def test_total_is_sum(self):
        rel = rel_uniform(20)
        t = outer_total_ratio(3.0, rel, 100)
        assert t == pytest.approx(outer_phase1_ratio(3.0, rel) + outer_phase2_ratio(3.0, rel, 100))

    def test_paper_beta_value_homogeneous(self):
        """Paper Section 3.6: first-order beta for p=20, n=100 is 4.1705."""
        rel = np.full(20, 1.0 / 20)
        beta = optimal_outer_beta(rel, 100, "first_order")
        assert beta == pytest.approx(4.1705, abs=0.01)

    def test_optimum_is_minimum(self):
        rel = rel_uniform(20, seed=3)
        n = 100
        b_star = optimal_outer_beta(rel, n)
        v_star = outer_total_ratio(b_star, rel, n)
        for b in (b_star - 0.5, b_star + 0.5, 1.0, 8.0):
            if b > 0:
                assert v_star <= outer_total_ratio(b, rel, n) + 1e-12

    def test_beta_grows_with_n(self):
        """Larger problems keep phase 1 longer (more tasks to amortize)."""
        rel = np.full(20, 1.0 / 20)
        b100 = optimal_outer_beta(rel, 100)
        b1000 = optimal_outer_beta(rel, 1000)
        assert b1000 > b100

    def test_section36_small_speed_sensitivity(self):
        """beta varies little across speed draws (Section 3.6)."""
        n = 100
        betas = [optimal_outer_beta(rel_uniform(20, seed=s), n) for s in range(10)]
        assert (max(betas) - min(betas)) / np.mean(betas) < 0.05

    def test_range_validation(self):
        rel = rel_uniform(5)
        with pytest.raises(ValueError):
            optimal_outer_beta(rel, 100, beta_range=(5.0, 1.0))
