"""Tests for repro.core.analysis.beta — Section 3.6 speed agnosticism."""

import numpy as np
import pytest

from repro.core.analysis.beta import agnostic_beta, beta_deviation
from repro.platform import uniform_speeds


def draws(p, count, lo=10, hi=100):
    out = []
    for s in range(count):
        v = uniform_speeds(p, lo, hi, rng=s)
        out.append(v / v.sum())
    return out


class TestAgnosticBeta:
    def test_outer_matches_homogeneous_optimum(self):
        beta = agnostic_beta("outer", 20, 100, "first_order")
        assert beta == pytest.approx(4.1705, abs=0.01)

    def test_matrix(self):
        beta = agnostic_beta("matrix", 100, 40)
        assert 2.0 < beta < 4.0

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            agnostic_beta("scalar", 10, 10)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            agnostic_beta("outer", 0, 10)


class TestBetaDeviation:
    def test_small_deviation_outer(self):
        """The paper's claim: beta_hom within ~5% of heterogeneous optima."""
        report = beta_deviation("outer", draws(20, 10), 100)
        assert report["max_beta_rel_dev"] < 0.07

    def test_tiny_volume_error(self):
        """Using beta_hom costs < 0.5% predicted volume (paper: 0.1%)."""
        report = beta_deviation("outer", draws(20, 10), 100)
        assert report["max_volume_rel_error"] < 0.005

    def test_matrix_kernel(self):
        report = beta_deviation("matrix", draws(50, 5), 40)
        assert report["max_beta_rel_dev"] < 0.08

    def test_report_fields(self):
        report = beta_deviation("outer", draws(10, 3), 50)
        assert set(report) == {
            "beta_hom",
            "betas_het",
            "max_beta_rel_dev",
            "mean_beta_het",
            "max_volume_rel_error",
        }
        assert report["betas_het"].shape == (3,)

    def test_empty_draws(self):
        with pytest.raises(ValueError):
            beta_deviation("outer", [], 50)

    def test_mismatched_p(self):
        with pytest.raises(ValueError):
            beta_deviation("outer", [np.full(5, 0.2), np.full(4, 0.25)], 50)

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            beta_deviation("conv", draws(5, 2), 50)
