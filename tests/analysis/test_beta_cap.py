"""The optimizer's validity cap: beta* <= 1 / max(rs_k).

Beyond that boundary the Lemma-3 expansion stops being monotone and the
exact objective degenerates (it would predict near-zero communication).
These tests pin the capped behaviour, especially for small p.
"""

import numpy as np
import pytest

from repro.core.analysis.matrix import optimal_matrix_beta
from repro.core.analysis.outer import optimal_outer_beta, outer_total_ratio
from repro.core.strategies import OuterTwoPhase
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate


class TestCap:
    def test_beta_never_exceeds_validity_bound(self):
        for p in (4, 10, 30):
            rel = np.full(p, 1.0 / p)
            assert optimal_outer_beta(rel, 100) <= p + 1e-9
            assert optimal_matrix_beta(rel, 40) <= p + 1e-9

    def test_heterogeneous_cap_uses_fastest(self):
        rel = np.array([0.5, 0.3, 0.2])
        assert optimal_outer_beta(rel, 100) <= 2.0 + 1e-9  # 1 / 0.5

    def test_degenerate_range_returns_cap(self):
        rel = np.array([0.9, 0.1])
        beta = optimal_outer_beta(rel, 100, beta_range=(2.0, 15.0))
        assert beta == pytest.approx(1.0 / 0.9)

    def test_large_p_unaffected(self):
        """For realistic p the cap is far above the optimum."""
        rel = np.full(100, 0.01)
        b_default = optimal_outer_beta(rel, 100)
        b_wide = optimal_outer_beta(rel, 100, beta_range=(1e-3, 50.0))
        assert b_default == pytest.approx(b_wide, abs=1e-3)

    def test_small_p_prediction_tracks_simulation(self):
        """The motivating regression: at p=10 the capped beta* yields a
        prediction within a few percent of the simulated volume."""
        n = 100
        pf = Platform(uniform_speeds(10, 10, 100, rng=0))
        rel = pf.relative_speeds
        beta = optimal_outer_beta(rel, n)
        from repro.core.analysis import outer_lower_bound

        lb = outer_lower_bound(rel, n)
        sims = [simulate(OuterTwoPhase(n, beta=beta), pf, rng=s).normalized(lb) for s in range(5)]
        assert outer_total_ratio(beta, rel, n) == pytest.approx(np.mean(sims), rel=0.05)
