"""Tests for the coupon-collector analysis of the Random* baselines."""

import numpy as np
import pytest

from repro.core.analysis.random_baseline import (
    expected_random_matrix_volume,
    expected_random_outer_volume,
)
from repro.core.strategies import MatrixRandom, OuterRandom
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate


def rel(p, seed=0):
    s = uniform_speeds(p, 10, 100, rng=seed)
    return s / s.sum()


class TestOuterFormula:
    def test_matches_simulation(self):
        n, p = 80, 30
        pf = Platform(uniform_speeds(p, 10, 100, rng=3))
        sims = [simulate(OuterRandom(n), pf, rng=s).total_blocks for s in range(5)]
        predicted = expected_random_outer_volume(pf.relative_speeds, n)
        assert predicted == pytest.approx(np.mean(sims), rel=0.03)

    def test_replication_limit_small_share(self):
        """Many workers, few tasks each: ~2 blocks per task."""
        p, n = 5000, 20
        r = np.full(p, 1.0 / p)
        v = expected_random_outer_volume(r, n)
        assert v == pytest.approx(2 * n * n, rel=0.05)

    def test_capacity_limit_single_worker(self):
        """One worker processing everything ends up with both vectors."""
        v = expected_random_outer_volume(np.array([1.0]), 50)
        assert v == pytest.approx(2 * 50, rel=1e-6)

    def test_monotone_in_p(self):
        n = 40
        vols = [expected_random_outer_volume(np.full(p, 1.0 / p), n) for p in (1, 4, 16, 64)]
        assert vols == sorted(vols)


class TestMatrixFormula:
    def test_matches_simulation(self):
        n, p = 16, 20
        pf = Platform(uniform_speeds(p, 10, 100, rng=4))
        sims = [simulate(MatrixRandom(n), pf, rng=s).total_blocks for s in range(4)]
        predicted = expected_random_matrix_volume(pf.relative_speeds, n)
        assert predicted == pytest.approx(np.mean(sims), rel=0.03)

    def test_replication_limit(self):
        p, n = 10000, 6
        v = expected_random_matrix_volume(np.full(p, 1.0 / p), n)
        assert v == pytest.approx(3 * n**3, rel=0.05)

    def test_capacity_limit(self):
        n = 12
        v = expected_random_matrix_volume(np.array([1.0]), n)
        assert v == pytest.approx(3 * n * n, rel=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_random_outer_volume(np.array([0.5, 0.6]), 10)
        with pytest.raises(ValueError):
            expected_random_matrix_volume(np.array([1.0]), 0)
