"""Tests for repro.core.analysis.ode — the Lemma 1/2/3/7/8 primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.ode import (
    alpha_of,
    stolen_tasks,
    switch_fraction,
    time_to_knowledge,
    unprocessed_fraction,
)


class TestAlpha:
    def test_homogeneous(self):
        # p equal workers: alpha = p - 1.
        assert alpha_of(1.0 / 10.0) == pytest.approx(9.0)

    def test_vectorized(self):
        rs = np.array([0.5, 0.25, 0.25])
        assert np.allclose(alpha_of(rs), [1.0, 3.0, 3.0])

    def test_single_processor(self):
        assert alpha_of(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_of(0.0)
        with pytest.raises(ValueError):
            alpha_of(1.5)


class TestUnprocessedFraction:
    def test_boundary_values(self):
        assert unprocessed_fraction(0.0, 5.0) == 1.0  # g(0) = 1
        assert unprocessed_fraction(1.0, 5.0) == 0.0  # g(1) = 0

    def test_alpha_zero_single_worker(self):
        # A lone worker: nothing is ever stolen, g == 1 for x < 1.
        assert unprocessed_fraction(0.7, 0.0) == 1.0

    def test_outer_formula(self):
        x, a = 0.3, 4.0
        assert unprocessed_fraction(x, a, d=2) == pytest.approx((1 - 0.09) ** 4)

    def test_matrix_formula(self):
        x, a = 0.3, 4.0
        assert unprocessed_fraction(x, a, d=3) == pytest.approx((1 - 0.027) ** 4)

    def test_monotone_decreasing_in_x(self):
        xs = np.linspace(0, 1, 50)
        g = unprocessed_fraction(xs, 7.0)
        assert np.all(np.diff(g) <= 0)

    def test_monotone_decreasing_in_alpha(self):
        # More competition (bigger alpha) -> more tasks stolen.
        assert unprocessed_fraction(0.5, 10.0) < unprocessed_fraction(0.5, 2.0)

    def test_bad_dimension(self):
        with pytest.raises(ValueError):
            unprocessed_fraction(0.5, 1.0, d=4)

    def test_bad_x(self):
        with pytest.raises(ValueError):
            unprocessed_fraction(1.5, 1.0)
        with pytest.raises(ValueError):
            unprocessed_fraction(-0.1, 1.0)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0, 1), st.floats(0, 500), st.sampled_from([2, 3]))
    def test_range(self, x, alpha, d):
        g = unprocessed_fraction(x, alpha, d)
        assert 0.0 <= g <= 1.0


class TestStolenTasks:
    def test_zero_at_origin(self):
        assert stolen_tasks(0.0, 5.0, n=100) == 0.0

    def test_single_worker_nothing_stolen(self):
        assert stolen_tasks(0.8, 0.0, n=50, d=2) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_x(self):
        xs = np.linspace(0, 1, 30)
        h = stolen_tasks(xs, 3.0, n=10)
        assert np.all(np.diff(h) >= -1e-9)

    def test_bounded_by_owned_domain(self):
        """h_k(x) <= x^d n^d: others cannot steal more than Pk's domain."""
        for x in np.linspace(0, 1, 11):
            h = stolen_tasks(x, 6.0, n=20, d=2)
            assert h <= (x**2) * 400 + 1e-9


class TestTimeToKnowledge:
    def test_zero_at_origin(self):
        assert time_to_knowledge(0.0, 3.0, n=10) == 0.0

    def test_full_knowledge_total_work(self):
        """At x=1, all n^d tasks have been processed (t * sum s = n^d)."""
        assert time_to_knowledge(1.0, 3.0, n=10, d=2) == pytest.approx(100.0)
        assert time_to_knowledge(1.0, 3.0, n=10, d=3) == pytest.approx(1000.0)

    def test_consistency_with_h_and_g(self):
        """x^d n^d = h_k(x) + t_k(x) s_k (the Lemma-2 bookkeeping identity).

        With t_k s_k = t_k sum(s) / (alpha+1).
        """
        n, alpha = 50, 7.0
        for x in (0.1, 0.4, 0.8):
            lhs = (x**2) * n**2
            t_norm = time_to_knowledge(x, alpha, n=n, d=2)
            rhs = stolen_tasks(x, alpha, n=n, d=2) + t_norm / (alpha + 1.0)
            assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_monotone_in_x(self):
        xs = np.linspace(0, 1, 40)
        t = time_to_knowledge(xs, 5.0, n=10)
        assert np.all(np.diff(t) >= 0)


class TestSwitchFraction:
    def test_lemma3_time_independent_of_k(self):
        """t_k(x_k) * sum(s) ~ n^d (1 - e^-beta) for every worker."""
        rng = np.random.default_rng(0)
        rel = rng.uniform(10, 100, size=50)
        rel = rel / rel.sum()
        beta = 4.0
        n = 1000
        alphas = alpha_of(rel)
        xs = switch_fraction(beta, rel, d=2)
        times = time_to_knowledge(xs, alphas, n=n, d=2)
        expected = n**2 * (1.0 - np.exp(-beta))
        assert np.allclose(times, expected, rtol=0.02)

    def test_matrix_variant(self):
        rel = np.full(100, 0.01)
        xs = switch_fraction(3.0, rel, d=3)
        expected = (3.0 * 0.01 - 4.5 * 0.0001) ** (1 / 3)
        assert np.allclose(xs, expected)

    def test_clipping(self):
        # beta*rs - beta^2/2 rs^2 < 0 for beta = 3, rs = 1: clipped to 0.
        assert switch_fraction(3.0, np.array([1.0]))[0] == 0.0

    def test_beta_zero(self):
        assert np.all(switch_fraction(0.0, np.array([0.1, 0.5])) == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            switch_fraction(-1.0, np.array([0.5]))
        with pytest.raises(ValueError):
            switch_fraction(1.0, np.array([0.0]))
