"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_nonnegative,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_speeds,
)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("x", 3) == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int("x", np.int64(7)) == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int("x", -2)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("x", 3.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("x", True)

    def test_error_mentions_name(self):
        with pytest.raises(ValueError, match="myparam"):
            check_positive_int("myparam", -1)


class TestCheckPositive:
    def test_accepts_float(self):
        assert check_positive("x", 2.5) == 2.5

    def test_accepts_int(self):
        assert check_positive("x", 2) == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -0.1)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", np.inf)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", np.nan)

    def test_rejects_string(self):
        with pytest.raises((TypeError, ValueError)):
            check_positive("x", "fast")


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("f", 1.0, inclusive=False)
        assert check_fraction("f", 0.5, inclusive=False) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.5)
        with pytest.raises(ValueError):
            check_fraction("f", -0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_fraction("f", float("nan"))


class TestCheckSpeeds:
    def test_returns_float_copy(self):
        src = [1, 2, 3]
        out = check_speeds(src)
        assert out.dtype == np.float64
        assert np.array_equal(out, [1.0, 2.0, 3.0])

    def test_copy_is_independent(self):
        src = np.array([1.0, 2.0])
        out = check_speeds(src)
        src[0] = 99.0
        assert out[0] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_speeds([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_speeds([[1.0, 2.0]])

    def test_rejects_zero_speed(self):
        with pytest.raises(ValueError, match="positive"):
            check_speeds([1.0, 0.0])

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            check_speeds([1.0, -1.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_speeds([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_speeds([np.inf])


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0.0

    def test_accepts_positive(self):
        assert check_nonnegative("x", 2.5) == 2.5

    def test_returns_float(self):
        assert isinstance(check_nonnegative("x", 3), float)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_nonnegative("x", -0.1)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", float("nan"))
        with pytest.raises(ValueError):
            check_nonnegative("x", float("inf"))

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_nonnegative("x", "fast")

    def test_error_mentions_name(self):
        with pytest.raises(ValueError, match="myparam"):
            check_nonnegative("myparam", -1)


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int("x", 0) == 0

    def test_accepts_numpy_int(self):
        assert check_nonnegative_int("x", np.int64(4)) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_nonnegative_int("x", -1)

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="integer"):
            check_nonnegative_int("x", 1.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_nonnegative_int("x", False)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0) == 0.0
        assert check_probability("p", 1) == 1.0

    def test_accepts_interior(self):
        assert check_probability("p", 0.25) == 0.25

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        with pytest.raises(ValueError):
            check_probability("p", -0.5)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_probability("p", object())
