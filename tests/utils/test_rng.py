"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_rngs


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 2**31, size=20)
        b = as_generator(2).integers(0, 2**31, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(99)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert len(spawn_rngs(0, 0)) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_independent(self):
        rngs = spawn_rngs(7, 3)
        draws = [g.integers(0, 2**31, size=10) for g in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_seed(self):
        a = [g.integers(0, 2**31, size=5) for g in spawn_rngs(3, 2)]
        b = [g.integers(0, 2**31, size=5) for g in spawn_rngs(3, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(0)
        rngs = spawn_rngs(g, 2)
        assert len(rngs) == 2

    def test_spawn_from_seed_sequence(self):
        rngs = spawn_rngs(np.random.SeedSequence(5), 4)
        assert len(rngs) == 4


class TestSpawnRngsContract:
    """PR 1 hardening: concrete list return, TypeError on non-int n."""

    def test_returns_concrete_list(self):
        out = spawn_rngs(0, 3)
        assert type(out) is list
        assert all(isinstance(g, np.random.Generator) for g in out)

    def test_list_is_indexable_and_sliceable(self):
        out = spawn_rngs(1, 4)
        assert isinstance(out[1:3], list)
        assert len(out[1:3]) == 2

    def test_rejects_float_n(self):
        with pytest.raises(TypeError, match="integer"):
            spawn_rngs(0, 2.0)

    def test_rejects_bool_n(self):
        with pytest.raises(TypeError, match="integer"):
            spawn_rngs(0, True)

    def test_rejects_none_n(self):
        with pytest.raises(TypeError):
            spawn_rngs(0, None)

    def test_accepts_numpy_int_n(self):
        assert len(spawn_rngs(0, np.int64(2))) == 2

    def test_negative_still_value_error(self):
        with pytest.raises(ValueError, match="negative"):
            spawn_rngs(0, -3)
