"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import RunningStats, summarize


class TestRunningStats:
    def test_single_value(self):
        rs = RunningStats()
        rs.add(4.0)
        assert rs.n == 1
        assert rs.mean == 4.0
        assert rs.variance == 0.0
        assert rs.std == 0.0
        assert rs.min == 4.0 and rs.max == 4.0

    def test_known_sample(self):
        rs = RunningStats()
        rs.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert rs.mean == pytest.approx(5.0)
        assert rs.variance == pytest.approx(32.0 / 7.0)

    def test_empty_raises(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            _ = rs.mean
        with pytest.raises(ValueError):
            _ = rs.std
        with pytest.raises(ValueError):
            _ = rs.min

    def test_nan_rejected(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            rs.add(float("nan"))

    def test_summary_snapshot(self):
        rs = RunningStats()
        rs.extend([1.0, 3.0])
        s = rs.summary()
        rs.add(100.0)
        assert s.n == 2
        assert s.mean == 2.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_matches_numpy(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert rs.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-6)
        assert rs.min == min(values)
        assert rs.max == max(values)

    @given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=50))
    def test_variance_nonnegative(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.variance >= 0.0
        assert not math.isnan(rs.std)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.min == 1.0
        assert s.max == 3.0

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean" in text and "n=2" in text
