"""Journal: append/replay roundtrips, corruption detection, repair, recovery."""

import json
import threading

import pytest

from repro.obs.metrics import ALL_PHASES, ALL_WORKERS
from repro.obs.sink import RecordingSink
from repro.store.cache import ResultStore
from repro.store.journal import JOURNAL_FORMAT, JOURNAL_STATES, Journal, JournalRecord


def make_journal(tmp_path, *, sink=None):
    store = ResultStore(str(tmp_path / "cache"))
    return store, Journal(store, sink=sink)


class TestRoundtrip:
    def test_append_replay_roundtrip(self, tmp_path):
        _, journal = make_journal(tmp_path)
        journal.append("accepted", "fp1", job="job-1", owner="w1")
        journal.append("claimed", "fp1", owner="w1")
        replay = journal.replay()
        assert replay.corrupt == 0
        assert replay.records == (
            JournalRecord(cell="fp1", state="accepted", job="job-1", owner="w1"),
            JournalRecord(cell="fp1", state="claimed", job=None, owner="w1"),
        )

    def test_append_many_counts_records(self, tmp_path):
        _, journal = make_journal(tmp_path)
        assert journal.append_many("accepted", ["a", "b", "c"], job="j") == 3
        assert len(journal.replay().records) == 3

    def test_empty_journal_replays_clean(self, tmp_path):
        _, journal = make_journal(tmp_path)
        replay = journal.replay()
        assert replay.records == () and replay.corrupt == 0

    def test_unknown_state_is_rejected(self, tmp_path):
        _, journal = make_journal(tmp_path)
        with pytest.raises(ValueError, match="state"):
            journal.append("exploded", "fp1")

    def test_states_cover_the_lifecycle(self):
        assert JOURNAL_STATES == ("accepted", "claimed", "computed", "flushed")


class TestCorruption:
    def seed(self, journal, count=3):
        for i in range(count):
            journal.append("accepted", f"fp{i}", job="j")

    def test_truncated_tail_is_detected_and_skipped(self, tmp_path):
        _, journal = make_journal(tmp_path)
        self.seed(journal)
        with open(journal.path) as fh:
            lines = fh.readlines()
        with open(journal.path, "w") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1][: len(lines[-1]) // 2])  # SIGKILL mid-append
        replay = journal.replay()
        assert replay.corrupt == 1
        assert [r.cell for r in replay.records] == ["fp0", "fp1"]

    def test_bit_flipped_checksum_is_detected(self, tmp_path):
        _, journal = make_journal(tmp_path)
        self.seed(journal)
        with open(journal.path) as fh:
            lines = fh.readlines()
        record = json.loads(lines[1])
        digest = record["sha256"]
        record["sha256"] = ("0" if digest[0] != "0" else "1") + digest[1:]
        lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with open(journal.path, "w") as fh:
            fh.writelines(lines)
        replay = journal.replay()
        assert replay.corrupt == 1
        assert [r.cell for r in replay.records] == ["fp0", "fp2"]

    def test_tampered_payload_fails_its_checksum(self, tmp_path):
        _, journal = make_journal(tmp_path)
        self.seed(journal, count=1)
        with open(journal.path) as fh:
            line = fh.readline()
        record = json.loads(line)
        record["cell"] = "fp-evil"  # checksum now disagrees
        with open(journal.path, "w") as fh:
            fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
        replay = journal.replay()
        assert replay.corrupt == 1 and replay.records == ()

    def test_wrong_format_tag_reads_as_corrupt(self, tmp_path):
        _, journal = make_journal(tmp_path)
        with open(journal.path, "w") as fh:
            fh.write('{"format": "someone-else/9", "cell": "x"}\n')
            fh.write("not json at all\n")
        replay = journal.replay()
        assert replay.corrupt == 2

    def test_replay_continues_past_interior_corruption(self, tmp_path):
        _, journal = make_journal(tmp_path)
        journal.append("accepted", "before", job="j")
        with open(journal.path, "a") as fh:
            fh.write("garbage{line\n")
        journal.append("accepted", "after", job="j")
        replay = journal.replay()
        assert replay.corrupt == 1
        assert [r.cell for r in replay.records] == ["before", "after"]

    def test_interleaved_concurrent_appends_stay_whole(self, tmp_path):
        store, _ = make_journal(tmp_path)
        journals = [Journal(store) for _ in range(4)]  # one per "process"

        def writer(journal, tag):
            for i in range(25):
                journal.append("accepted", f"{tag}-{i}", job=tag)

        threads = [
            threading.Thread(target=writer, args=(j, f"w{k}"))
            for k, j in enumerate(journals)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        replay = journals[0].replay()
        assert replay.corrupt == 0
        assert len(replay.records) == 100
        assert {r.cell for r in replay.records} == {
            f"w{k}-{i}" for k in range(4) for i in range(25)
        }


class TestRepair:
    def test_repair_quarantines_and_replay_converges(self, tmp_path):
        sink = RecordingSink()
        _, journal = make_journal(tmp_path, sink=sink)
        journal.append("accepted", "good-1", job="j")
        with open(journal.path, "a") as fh:
            fh.write("torn-line-no-json\n")
        journal.append("accepted", "good-2", job="j")

        assert journal.repair() == 1
        replay = journal.replay()
        assert replay.corrupt == 0
        assert [r.cell for r in replay.records] == ["good-1", "good-2"]
        with open(journal.quarantine_path) as fh:
            assert "torn-line-no-json" in fh.read()
        key = ("journal", ALL_WORKERS, ALL_PHASES)
        assert sink.metrics.counter("store_journal_corrupt").get(key) == 1

    def test_repair_on_clean_journal_is_a_noop(self, tmp_path):
        _, journal = make_journal(tmp_path)
        journal.append("accepted", "fp", job="j")
        assert journal.repair() == 0
        assert len(journal.replay().records) == 1

    def test_append_events_hit_the_sink(self, tmp_path):
        sink = RecordingSink()
        _, journal = make_journal(tmp_path, sink=sink)
        journal.append_many("accepted", ["a", "b"], job="j")
        key = ("journal", ALL_WORKERS, ALL_PHASES)
        assert sink.metrics.counter("store_journal_append").get(key) == 2


class TestJobRecovery:
    def test_unknown_job_is_none(self, tmp_path):
        _, journal = make_journal(tmp_path)
        assert journal.job_status("nope") is None

    def test_accepted_only_job_is_all_pending(self, tmp_path):
        _, journal = make_journal(tmp_path)
        journal.append_many("accepted", ["a", "b"], job="j1")
        status = journal.job_status("j1")
        assert status["pending"] == ["a", "b"] and not status["done"]

    def test_progress_records_advance_member_cells(self, tmp_path):
        _, journal = make_journal(tmp_path)
        journal.append_many("accepted", ["a", "b"], job="j1")
        for state in ("claimed", "computed", "flushed"):
            journal.append(state, "a", owner="w1")  # progress carries no job
        status = journal.job_status("j1")
        assert status["finished"] == ["a"]
        assert status["pending"] == ["b"]
        assert status["cells"] == {"a": "flushed", "b": "accepted"}

    def test_store_presence_counts_as_finished(self, tmp_path):
        store, journal = make_journal(tmp_path)
        fp = store.put({"probe": 1}, {"value": 2.0}, kind="probe")
        journal.append("accepted", fp, job="j1")
        # No flushed record (writer died post-put), but the entry exists.
        status = journal.job_status("j1", store=store)
        assert status["done"] and status["finished"] == [fp]

    def test_jobs_lists_accepted_job_ids(self, tmp_path):
        _, journal = make_journal(tmp_path)
        journal.append("accepted", "a", job="j2")
        journal.append("accepted", "b", job="j1")
        journal.append("claimed", "c", job="j9")  # not an acceptance
        assert journal.jobs() == ["j1", "j2"]

    def test_status_reports_corrupt_record_count(self, tmp_path):
        _, journal = make_journal(tmp_path)
        journal.append("accepted", "a", job="j1")
        with open(journal.path, "a") as fh:
            fh.write("zzz\n")
        assert journal.job_status("j1")["corrupt_records"] == 1

    def test_format_tag_is_stable(self, tmp_path):
        _, journal = make_journal(tmp_path)
        journal.append("accepted", "a", job="j1")
        with open(journal.path) as fh:
            record = json.loads(fh.readline())
        assert record["format"] == JOURNAL_FORMAT
