"""SweepOrchestrator: manifest lifecycle, checksum verification, resumability."""

import numpy as np
import pytest

from repro.store.cache import ResultStore
from repro.store.orchestrator import SweepOrchestrator, file_sha256


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "cache"))


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "fig01_ci.csv"
    path.write_text("figure,series,x\nfig01,A,1\n", encoding="utf-8")
    return str(path)


class TestFileSha256:
    def test_matches_known_digest(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"abc")
        assert file_sha256(str(path)) == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )


class TestLifecycle:
    def test_unknown_figure_is_incomplete(self, store, csv_path):
        orch = SweepOrchestrator(store, scale="ci", seed=0)
        assert not orch.completed_csv("fig01", csv_path)

    def test_mark_then_complete(self, store, csv_path):
        orch = SweepOrchestrator(store, scale="ci", seed=0)
        manifest = orch.mark_done("fig01", csv_path)
        assert manifest is not None
        assert orch.completed_csv("fig01", csv_path)

    def test_survives_a_new_orchestrator(self, store, csv_path):
        SweepOrchestrator(store, scale="ci", seed=0).mark_done("fig01", csv_path)
        fresh = SweepOrchestrator(store, scale="ci", seed=0)
        assert fresh.completed_csv("fig01", csv_path)

    def test_scale_and_seed_partition_manifests(self, store, csv_path):
        SweepOrchestrator(store, scale="ci", seed=0).mark_done("fig01", csv_path)
        assert not SweepOrchestrator(store, scale="paper", seed=0).completed_csv(
            "fig01", csv_path
        )
        assert not SweepOrchestrator(store, scale="ci", seed=1).completed_csv(
            "fig01", csv_path
        )

    def test_figure_ids_partition_manifests(self, store, csv_path):
        orch = SweepOrchestrator(store, scale="ci", seed=0)
        orch.mark_done("fig01", csv_path)
        assert not orch.completed_csv("fig02", csv_path)


class TestVerification:
    def test_edited_csv_invalidates(self, store, csv_path, tmp_path):
        orch = SweepOrchestrator(store, scale="ci", seed=0)
        orch.mark_done("fig01", csv_path)
        with open(csv_path, "a", encoding="utf-8") as fh:
            fh.write("tampered\n")
        assert not orch.completed_csv("fig01", csv_path)

    def test_deleted_csv_invalidates(self, store, csv_path, tmp_path):
        import os

        orch = SweepOrchestrator(store, scale="ci", seed=0)
        orch.mark_done("fig01", csv_path)
        os.unlink(csv_path)
        assert not orch.completed_csv("fig01", csv_path)

    def test_different_path_invalidates(self, store, csv_path, tmp_path):
        orch = SweepOrchestrator(store, scale="ci", seed=0)
        orch.mark_done("fig01", csv_path)
        other = tmp_path / "elsewhere.csv"
        other.write_text(open(csv_path, encoding="utf-8").read(), encoding="utf-8")
        assert not orch.completed_csv("fig01", str(other))


class TestResumability:
    def test_int_and_seedsequence_seeds_resume(self, store, csv_path):
        assert SweepOrchestrator(store, scale="ci", seed=0).resumable
        assert SweepOrchestrator(
            store, scale="ci", seed=np.random.SeedSequence(4)
        ).resumable

    def test_entropy_seed_never_resumes(self, store, csv_path):
        orch = SweepOrchestrator(store, scale="ci", seed=None)
        assert not orch.resumable
        assert orch.figure_key("fig01") is None
        assert orch.mark_done("fig01", csv_path) is None
        assert not orch.completed_csv("fig01", csv_path)
