"""Canonical JSON and fingerprinting: injectivity, strictness, seed tokens."""

import numpy as np
import pytest

from repro.store.fingerprint import (
    ENGINE_VERSION,
    canonical_json,
    fingerprint,
    seed_token,
    sha256_text,
    spec_token,
)


class TestCanonicalJson:
    def test_sorted_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_tuples_become_lists(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_numpy_scalars_and_arrays(self):
        assert canonical_json(np.int64(3)) == "3"
        assert canonical_json(np.float64(0.5)) == "0.5"
        assert canonical_json(np.array([1.0, 2.0])) == "[1.0,2.0]"

    def test_float_roundtrip_is_exact(self):
        # JSON uses shortest-repr encoding, so fingerprints of equal floats
        # are equal and distinct floats never collide via rounding.
        value = 0.1 + 0.2
        assert canonical_json(value) == repr(value)

    def test_bool_is_not_int(self):
        assert canonical_json(True) != canonical_json(1)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(TypeError, match="non-finite"):
            canonical_json({"x": bad})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="non-string"):
            canonical_json({1: "x"})

    def test_unknown_types_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical_json({"x": object()})


class TestFingerprint:
    def test_stable_across_key_order(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_distinct_keys_distinct_fingerprints(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_is_sha256_hex(self):
        fp = fingerprint({"a": 1})
        assert len(fp) == 64
        int(fp, 16)

    def test_sha256_text_matches(self):
        key = {"a": 1}
        assert fingerprint(key) == sha256_text(canonical_json(key))


class TestSeedToken:
    def test_int(self):
        assert seed_token(7) == ["int", 7]
        assert seed_token(np.int64(7)) == ["int", 7]

    def test_seedsequence(self):
        tok = seed_token(np.random.SeedSequence(42))
        assert tok == ["seedseq", [42], []]

    def test_spawned_seedsequence_differs(self):
        parent = np.random.SeedSequence(42)
        child = parent.spawn(1)[0]
        assert seed_token(child) != seed_token(parent)

    def test_uncacheable_seeds(self):
        assert seed_token(None) is None
        assert seed_token(True) is None
        assert seed_token(np.random.default_rng(0)) is None


class TestSpecToken:
    def test_object_without_token(self):
        assert spec_token(object()) is None
        assert spec_token(lambda: None) is None

    def test_object_with_token(self):
        class Spec:
            def cache_token(self):
                return ["spec", 1]

        assert spec_token(Spec()) == ["spec", 1]

    def test_unserializable_token_is_uncacheable(self):
        class Spec:
            def cache_token(self):
                return ["spec", object()]

        assert spec_token(Spec()) is None

    def test_none_token_is_uncacheable(self):
        class Spec:
            def cache_token(self):
                return None

        assert spec_token(Spec()) is None


def test_engine_version_tag_shape():
    assert ENGINE_VERSION.startswith("repro-engine/")
