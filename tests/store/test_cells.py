"""Replicate-cell keys and payloads: cacheability, round-trips, sink replay."""

import numpy as np
import pytest

from repro.experiments.parallel import StrategySpec, UniformPlatformSpec
from repro.obs.sink import RecordingSink
from repro.store.cache import ResultStore
from repro.store.cells import (
    CELL_KIND,
    load_cell,
    replicate_cell_key,
    save_cell,
    summary_from_payload,
    summary_to_payload,
)
from repro.utils.stats import RunningStats

STRATEGY = StrategySpec("RandomOuter", 12)
PLATFORM = UniformPlatformSpec(4)


def _key(**overrides):
    kwargs = dict(
        strategy_factory=STRATEGY,
        platform_factory=PLATFORM,
        n=12,
        reps=3,
        seed=0,
        metrics=False,
    )
    kwargs.update(overrides)
    return replicate_cell_key(**kwargs)


def _summary():
    stats = RunningStats()
    for v in (1.0, 1.5, 2.25):
        stats.add(v)
    return stats.summary()


class TestKey:
    def test_cacheable_inputs(self):
        key = _key()
        assert key is not None
        assert key["strategy"] == STRATEGY.cache_token()
        assert key["platform"] == PLATFORM.cache_token()
        assert key["seed"] == ["int", 0]

    def test_closure_factories_are_uncacheable(self):
        assert _key(strategy_factory=lambda: None) is None
        assert _key(platform_factory=lambda rng: None) is None

    def test_entropy_seed_is_uncacheable(self):
        assert _key(seed=None) is None
        assert _key(seed=np.random.default_rng(0)) is None

    def test_metrics_flag_changes_key(self):
        assert _key(metrics=False) != _key(metrics=True)

    def test_seedsequence_is_cacheable(self):
        key = _key(seed=np.random.SeedSequence(5))
        assert key is not None
        assert key["seed"][0] == "seedseq"


class TestPayloadRoundTrip:
    def test_summary_survives_exactly(self):
        summary = _summary()
        rebuilt, snapshots = summary_from_payload(summary_to_payload(summary, None))
        assert rebuilt == summary
        assert snapshots is None

    def test_snapshots_preserved(self):
        payload = summary_to_payload(_summary(), [{"metrics": {}}])
        _, snapshots = summary_from_payload(payload)
        assert snapshots == [{"metrics": {}}]

    def test_malformed_snapshots_rejected(self):
        payload = summary_to_payload(_summary(), None)
        payload["snapshots"] = "nope"
        with pytest.raises(TypeError):
            summary_from_payload(payload)


class TestStoreRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = _key()
        summary = _summary()
        save_cell(store, key, summary)
        assert load_cell(store, key) == summary

    def test_load_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert load_cell(store, _key()) is None

    def test_metrics_key_requires_snapshots(self, tmp_path):
        # An entry stored without snapshots must not satisfy a metrics
        # lookup: the caller needs the per-rep fold replayed.
        store = ResultStore(str(tmp_path))
        key = _key(metrics=True)
        save_cell(store, key, _summary(), snapshots=None)
        assert load_cell(store, key, sink=RecordingSink()) is None

    def test_snapshots_replay_into_sink(self, tmp_path):
        store = ResultStore(str(tmp_path))
        live = RecordingSink()
        live.metrics.counter("blocks_shipped").inc(("S", 0, 1), 5)
        snapshot = live.snapshot()

        key = _key(metrics=True)
        save_cell(store, key, _summary(), snapshots=[snapshot])
        replayed = RecordingSink()
        assert load_cell(store, key, sink=replayed) is not None
        assert replayed.snapshot()["metrics"] == snapshot["metrics"]

    def test_entry_kind(self, tmp_path):
        store = ResultStore(str(tmp_path))
        save_cell(store, _key(), _summary())
        assert [e.kind for e in store.entries()] == [CELL_KIND]
