"""ResultStore thread safety: concurrent get/put from many threads.

The serve executor calls the store from several threads at once; the
in-process mutex added for it must keep the counters and the on-disk
entries consistent under that load.
"""

import threading

from repro.store.cache import ResultStore

THREADS = 8
OPS = 40


def test_concurrent_get_put_hammer(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    barrier = threading.Barrier(THREADS)
    errors = []

    def hammer(worker):
        try:
            barrier.wait()
            for i in range(OPS):
                # Overlapping key space across threads: every key is both
                # written and read by several workers.
                key = {"schema": "hammer/1", "cell": (worker + i) % 16}
                payload = {"summary": {"cell": (worker + i) % 16}}
                if i % 2 == 0:
                    store.put(key, payload, kind="hammer")
                else:
                    got = store.get(key, kind="hammer")
                    assert got is None or got == payload
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []

    counts = store.counts
    assert counts.corrupt == 0
    assert counts.puts == THREADS * OPS // 2
    assert counts.hits + counts.misses == THREADS * OPS // 2
    # Every entry on disk decodes cleanly after the stampede.
    assert store.verify() == []
    for cell in range(16):
        got = store.get({"schema": "hammer/1", "cell": cell}, kind="hammer")
        assert got == {"summary": {"cell": cell}}


def test_concurrent_puts_same_key(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    barrier = threading.Barrier(THREADS)
    key = {"schema": "hammer/1", "cell": "contended"}

    def slam():
        barrier.wait()
        for _ in range(10):
            store.put(key, {"summary": {"v": 1}}, kind="hammer")

    threads = [threading.Thread(target=slam) for _ in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert store.get(key, kind="hammer") == {"summary": {"v": 1}}
    assert store.verify() == []
