"""ClaimRegistry / HeartbeatTicker / drain_cells: cross-process arbitration."""

import json
import os
import threading
import time

import pytest

from repro.obs.metrics import ALL_PHASES, ALL_WORKERS
from repro.obs.sink import RecordingSink
from repro.store.cache import ResultStore
from repro.store.claims import (
    ClaimRegistry,
    DrainTimeout,
    HeartbeatTicker,
    drain_cells,
)
from repro.store.fingerprint import fingerprint
from repro.store.journal import Journal


class FakeClock:
    """A settable clock shared by every registry in a test."""

    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t


def make_pair(tmp_path, *, stale_after=10.0, clock=None, sink=None):
    store = ResultStore(str(tmp_path / "cache"))
    clock = clock or FakeClock()
    a = ClaimRegistry(store, stale_after=stale_after, clock=clock, sink=sink)
    b = ClaimRegistry(store, stale_after=stale_after, clock=clock, sink=sink)
    return store, a, b, clock


class TestClaimBasics:
    def test_first_claim_wins_second_is_denied(self, tmp_path):
        _, a, b, _ = make_pair(tmp_path)
        assert a.try_claim("fp1") is True
        assert b.try_claim("fp1") is False
        assert a.counts["claimed"] == 1
        assert b.counts["claimed"] == 0

    def test_reclaim_of_own_cell_is_idempotent(self, tmp_path):
        _, a, _, _ = make_pair(tmp_path)
        assert a.try_claim("fp1") is True
        assert a.try_claim("fp1") is True
        assert a.counts["claimed"] == 1  # one claim, not two

    def test_distinct_cells_do_not_contend(self, tmp_path):
        _, a, b, _ = make_pair(tmp_path)
        assert a.try_claim("fp1") and b.try_claim("fp2")

    def test_release_lets_peer_claim(self, tmp_path):
        _, a, b, _ = make_pair(tmp_path)
        a.try_claim("fp1")
        assert a.release("fp1") is True
        assert b.try_claim("fp1") is True
        assert a.counts["released"] == 1

    def test_release_of_unheld_cell_counts_lost(self, tmp_path):
        _, a, b, _ = make_pair(tmp_path)
        b.try_claim("fp1")
        assert a.release("fp1") is False
        assert a.counts["lost"] == 1
        # b still holds it: the foreign release must not have unlinked it.
        info = b.read_claim("fp1")
        assert info is not None and info.owner == b.owner

    def test_owner_tokens_are_distinct(self, tmp_path):
        _, a, b, _ = make_pair(tmp_path)
        assert a.owner != b.owner

    def test_claim_file_shape(self, tmp_path):
        store, a, _, clock = make_pair(tmp_path)
        a.try_claim("fp1")
        info = a.read_claim("fp1")
        assert info.fingerprint == "fp1"
        assert info.owner == a.owner
        assert info.pid == os.getpid()
        assert info.heartbeat == clock.t
        assert not a.is_stale(info)

    def test_stale_after_must_be_positive(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        with pytest.raises(ValueError, match="stale_after"):
            ClaimRegistry(store, stale_after=0)


class TestStealing:
    def test_stale_claim_is_stolen(self, tmp_path):
        _, a, b, clock = make_pair(tmp_path, stale_after=10.0)
        a.try_claim("fp1")
        clock.t += 11.0
        assert b.try_claim("fp1") is True
        assert b.counts["stolen"] == 1
        assert b.read_claim("fp1").owner == b.owner

    def test_live_claim_is_not_stolen(self, tmp_path):
        _, a, b, clock = make_pair(tmp_path, stale_after=10.0)
        a.try_claim("fp1")
        clock.t += 9.0
        assert b.try_claim("fp1") is False

    def test_heartbeat_prevents_steal(self, tmp_path):
        _, a, b, clock = make_pair(tmp_path, stale_after=10.0)
        a.try_claim("fp1")
        clock.t += 9.0
        assert a.heartbeat("fp1") is True
        clock.t += 9.0  # 18s after claim, 9s after heartbeat
        assert b.try_claim("fp1") is False

    def test_victim_release_after_steal_counts_lost(self, tmp_path):
        _, a, b, clock = make_pair(tmp_path, stale_after=10.0)
        a.try_claim("fp1")
        clock.t += 11.0
        b.try_claim("fp1")
        assert a.release("fp1") is False
        assert a.counts["lost"] == 1

    def test_victim_heartbeat_after_steal_reports_loss(self, tmp_path):
        _, a, b, clock = make_pair(tmp_path, stale_after=10.0)
        a.try_claim("fp1")
        clock.t += 11.0
        b.try_claim("fp1")
        assert a.heartbeat("fp1") is False

    def test_break_stale_sweeps_only_stale_claims(self, tmp_path):
        _, a, b, clock = make_pair(tmp_path, stale_after=10.0)
        a.try_claim("old")
        clock.t += 11.0
        a.try_claim("fresh")
        assert b.break_stale() == 1
        assert b.read_claim("old") is None
        assert b.read_claim("fresh") is not None

    def test_corrupt_fresh_claim_is_respected(self, tmp_path):
        store, a, b, _ = make_pair(tmp_path, stale_after=10.0)
        path = os.path.join(store.root, "claims", "fp1.json")
        with open(path, "w") as fh:
            fh.write("torn{write")
        # A fresh unreadable file might be a peer's in-progress write:
        # staleness falls back to real mtime age, which is ~0 here.
        assert b.try_claim("fp1") is False

    def test_corrupt_old_claim_is_broken(self, tmp_path):
        store, a, b, _ = make_pair(tmp_path, stale_after=10.0)
        path = os.path.join(store.root, "claims", "fp1.json")
        with open(path, "w") as fh:
            fh.write("torn{write")
        old = time.time() - 60.0
        os.utime(path, (old, old))
        assert b.try_claim("fp1") is True
        assert b.counts["stolen"] == 1


class TestObservability:
    def test_claim_steal_release_hit_the_sink(self, tmp_path):
        sink = RecordingSink()
        _, a, b, clock = make_pair(tmp_path, stale_after=10.0, sink=sink)
        a.try_claim("fp1")
        a.release("fp1")
        b.try_claim("fp1")
        clock.t += 11.0
        a.try_claim("fp1")  # steal
        key = ("claim", ALL_WORKERS, ALL_PHASES)
        counters = sink.metrics
        assert counters.counter("store_claim").get(key) == 2
        assert counters.counter("store_release").get(key) == 1
        assert counters.counter("store_steal").get(key) == 1

    def test_active_lists_claims_sorted(self, tmp_path):
        _, a, _, _ = make_pair(tmp_path)
        for fp in ("b", "a", "c"):
            a.try_claim(fp)
        assert [i.fingerprint for i in a.active()] == ["a", "b", "c"]


class TestHeartbeatTicker:
    def test_ticker_refreshes_heartbeats(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        reg = ClaimRegistry(store, stale_after=10.0)  # real clock
        reg.try_claim("fp1")
        before = reg.read_claim("fp1").heartbeat
        with reg.ticker(["fp1"], interval=0.02):
            deadline = time.time() + 5.0
            while reg.read_claim("fp1").heartbeat == before:
                assert time.time() < deadline, "ticker never refreshed"
                time.sleep(0.01)
        assert reg.read_claim("fp1").heartbeat > before

    def test_ticker_with_no_cells_never_starts(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        reg = ClaimRegistry(store)
        with reg.ticker([]) as ticker:
            assert ticker._thread is None

    def test_ticker_rejects_nonpositive_interval(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        reg = ClaimRegistry(store)
        with pytest.raises(ValueError, match="interval"):
            HeartbeatTicker(reg, ["fp"], interval=0.0)


def _put_cell(store, key):
    store.put(key, {"value": 1.0}, kind="probe")


class TestDrainCells:
    def keys(self, count):
        return {fingerprint({"probe": i}): {"probe": i} for i in range(count)}

    def test_single_worker_computes_everything(self, tmp_path):
        store, a, _, _ = make_pair(tmp_path)
        cells = self.keys(4)
        stats = drain_cells(store, cells, lambda k: _put_cell(store, k), claims=a)
        assert stats.computed == 4 and stats.cached == 0
        assert all(store.has_fingerprint(fp) for fp in cells)
        assert a.active() == []  # every claim released

    def test_second_worker_sees_cached_cells(self, tmp_path):
        store, a, b, _ = make_pair(tmp_path)
        cells = self.keys(3)
        drain_cells(store, cells, lambda k: _put_cell(store, k), claims=a)
        stats = drain_cells(store, cells, lambda k: _put_cell(store, k), claims=b)
        assert stats.computed == 0 and stats.cached == 3
        assert stats.total() == 3

    def test_journal_records_full_lifecycle(self, tmp_path):
        store, a, _, _ = make_pair(tmp_path)
        journal = Journal(store)
        cells = self.keys(2)
        drain_cells(
            store, cells, lambda k: _put_cell(store, k),
            claims=a, journal=journal, job="job-1",
        )
        replay = journal.replay()
        states = {}
        for record in replay.records:
            states.setdefault(record.cell, []).append(record.state)
        assert all(v == ["claimed", "computed", "flushed"] for v in states.values())
        status = journal.job_status("job-1", store=store)
        assert status is None  # membership needs "accepted" records, none were journaled

    def test_compute_error_releases_claim_and_reraises(self, tmp_path):
        store, a, b, _ = make_pair(tmp_path)
        cells = self.keys(1)

        def boom(_key):
            raise RuntimeError("engine died")

        with pytest.raises(RuntimeError, match="engine died"):
            drain_cells(store, cells, boom, claims=a)
        # The claim was released, so a peer can pick the cell up.
        fp = next(iter(cells))
        assert b.try_claim(fp) is True

    def test_foreign_live_claim_times_out(self, tmp_path):
        store, a, b, _ = make_pair(tmp_path)
        cells = self.keys(1)
        fp = next(iter(cells))
        a.try_claim(fp)  # a holds it and never finishes (fake clock: no staleness)
        with pytest.raises(DrainTimeout):
            drain_cells(
                store, cells, lambda k: _put_cell(store, k),
                claims=b, poll_interval=0.01, timeout=0.1,
            )

    def test_stale_foreign_claim_is_stolen_and_finished(self, tmp_path):
        store, a, b, clock = make_pair(tmp_path, stale_after=10.0)
        cells = self.keys(1)
        fp = next(iter(cells))
        a.try_claim(fp)
        clock.t += 11.0
        stats = drain_cells(store, cells, lambda k: _put_cell(store, k), claims=b)
        assert stats.computed == 1
        assert b.counts["stolen"] == 1
        assert store.has_fingerprint(fp)

    def test_two_threads_split_a_grid_without_duplicates(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        a = ClaimRegistry(store, stale_after=30.0)
        b = ClaimRegistry(store, stale_after=30.0)
        cells = self.keys(8)
        computed = []
        lock = threading.Lock()

        def compute(key):
            with lock:
                computed.append(fingerprint(key))
            _put_cell(store, key)

        results = {}

        def worker(name, reg):
            results[name] = drain_cells(
                store, cells, compute, claims=reg, poll_interval=0.01
            )

        threads = [
            threading.Thread(target=worker, args=("a", a)),
            threading.Thread(target=worker, args=("b", b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(computed) == sorted(cells)  # each cell exactly once
        assert results["a"].total() == len(cells)
        assert results["b"].total() == len(cells)
        assert results["a"].computed + results["b"].computed == len(cells)

    def test_poll_interval_must_be_positive(self, tmp_path):
        store, a, _, _ = make_pair(tmp_path)
        with pytest.raises(ValueError, match="poll_interval"):
            drain_cells(store, {}, lambda k: None, claims=a, poll_interval=0)
