"""repro-store CLI: stats/ls/gc/verify against a real store directory."""

import pytest

from repro.store.cache import ResultStore
from repro.store.cli import main


@pytest.fixture
def root(tmp_path):
    store = ResultStore(str(tmp_path))
    store.put({"cell": 1}, {"v": 1}, kind="replicate-cell")
    store.put({"cell": 2}, {"v": 2}, kind="simulation")
    return str(tmp_path)


class TestStats:
    def test_counts_by_kind(self, root, capsys):
        assert main(["stats", root]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "replicate-cell" in out
        assert "simulation" in out

    def test_missing_directory_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no such cache"):
            main(["stats", str(tmp_path / "nope")])


class TestLs:
    def test_lists_all(self, root, capsys):
        assert main(["ls", root]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_kind_filter(self, root, capsys):
        assert main(["ls", root, "--kind", "simulation"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert "simulation" in lines[0]


class TestGc:
    def test_evicts_to_budget(self, root, capsys):
        assert main(["gc", root, "--max-bytes", "0"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert ResultStore(root).entries() == []

    def test_dry_run(self, root, capsys):
        assert main(["gc", root, "--max-bytes", "0", "--dry-run"]) == 0
        assert "would evict 2" in capsys.readouterr().out
        assert len(ResultStore(root).entries()) == 2

    def test_negative_budget_exits(self, root):
        with pytest.raises(SystemExit):
            main(["gc", root, "--max-bytes", "-1"])


class TestVerify:
    def test_clean(self, root, capsys):
        assert main(["verify", root]) == 0
        assert "entries verify" in capsys.readouterr().out

    def test_corrupt_exits_nonzero(self, root, capsys):
        store = ResultStore(root)
        victim = store.entries()[0]
        with open(victim.path, "w", encoding="utf-8") as fh:
            fh.write("junk")
        assert main(["verify", root]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_delete_removes_corrupt(self, root):
        import os

        store = ResultStore(root)
        victim = store.entries()[0]
        with open(victim.path, "w", encoding="utf-8") as fh:
            fh.write("junk")
        assert main(["verify", root, "--delete"]) == 1
        assert not os.path.exists(victim.path)
        assert main(["verify", root]) == 0


class TestClaims:
    def test_no_claims(self, root, capsys):
        assert main(["claims", root]) == 0
        assert "no claims" in capsys.readouterr().out

    def test_lists_live_and_stale(self, root, capsys):
        from repro.store.claims import ClaimRegistry

        store = ResultStore(root)
        live = ClaimRegistry(store, owner="w-live", stale_after=3600.0)
        live.try_claim("fresh-cell")
        dead = ClaimRegistry(store, owner="w-dead", stale_after=3600.0,
                             clock=lambda: 0.0)
        dead.try_claim("stale-cell")
        assert main(["claims", root]) == 0
        out = capsys.readouterr().out
        assert "fresh-cell  live" in out
        assert "stale-cell  stale" in out
        assert "owner=w-dead" in out

    def test_break_stale_unlinks_only_stale(self, root, capsys):
        from repro.store.claims import ClaimRegistry

        store = ResultStore(root)
        ClaimRegistry(store, owner="w-dead", stale_after=3600.0,
                      clock=lambda: 0.0).try_claim("stale-cell")
        assert main(["claims", root, "--break-stale"]) == 0
        assert "broke 1 stale claims" in capsys.readouterr().out
        assert ClaimRegistry(store).active() == []


class TestJournal:
    def test_empty_journal(self, root, capsys):
        assert main(["journal", root]) == 0
        assert "0 records, 0 corrupt" in capsys.readouterr().out

    def test_job_status_and_listing(self, root, capsys):
        from repro.store.journal import Journal

        journal = Journal(ResultStore(root))
        journal.append_many("accepted", ["cell-a", "cell-b"], job="job-x")
        journal.append("flushed", "cell-a")
        assert main(["journal", root]) == 0
        assert "job job-x" in capsys.readouterr().out
        assert main(["journal", root, "--job", "job-x"]) == 0
        out = capsys.readouterr().out
        assert "done=False finished=1 pending=1" in out
        assert "pending: cell-b" in out

    def test_unknown_job_exits_nonzero(self, root, capsys):
        assert main(["journal", root, "--job", "nope"]) == 1
        assert "unknown job" in capsys.readouterr().out

    def test_repair_quarantines(self, root, capsys):
        from repro.store.journal import Journal

        journal = Journal(ResultStore(root))
        journal.append("accepted", "cell-a", job="j")
        with open(journal.path, "a") as fh:
            fh.write("torn-line\n")
        assert main(["journal", root, "--repair"]) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 corrupt lines" in out
        assert "1 records, 0 corrupt" in out
