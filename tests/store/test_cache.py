"""ResultStore: round-trips, corruption handling, LRU gc, verify, counters."""

import json
import os

import pytest

from repro.obs.sink import RecordingSink
from repro.store.cache import STORE_FORMAT, ResultStore, StoreCounts

KEY = {"schema": "test/1", "cell": 1}
PAYLOAD = {"summary": {"mean": 1.5, "n": 4}}


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "cache"))


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        assert store.get(KEY, kind="cell") is None
        fp = store.put(KEY, PAYLOAD, kind="cell")
        assert len(fp) == 64
        assert store.get(KEY, kind="cell") == PAYLOAD
        assert store.counts == StoreCounts(hits=1, misses=1, puts=1, corrupt=0)

    def test_payload_floats_roundtrip_exactly(self, store):
        payload = {"x": 0.1 + 0.2, "y": 1e-17}
        store.put(KEY, payload, kind="cell")
        assert store.get(KEY, kind="cell") == payload

    def test_distinct_keys_distinct_entries(self, store):
        store.put({"cell": 1}, {"v": 1}, kind="cell")
        store.put({"cell": 2}, {"v": 2}, kind="cell")
        assert store.get({"cell": 1}, kind="cell") == {"v": 1}
        assert store.get({"cell": 2}, kind="cell") == {"v": 2}

    def test_kind_mismatch_is_corrupt_miss(self, store):
        store.put(KEY, PAYLOAD, kind="cell")
        assert store.get(KEY, kind="other") is None
        assert store.counts.corrupt == 1

    def test_overwrite_same_key(self, store):
        store.put(KEY, {"v": 1}, kind="cell")
        store.put(KEY, {"v": 2}, kind="cell")
        assert store.get(KEY, kind="cell") == {"v": 2}

    def test_envelope_is_self_describing(self, store):
        fp = store.put(KEY, PAYLOAD, kind="cell")
        [entry] = store.entries()
        with open(entry.path, encoding="utf-8") as fh:
            envelope = json.load(fh)
        assert envelope["format"] == STORE_FORMAT
        assert envelope["fingerprint"] == fp
        assert envelope["kind"] == "cell"
        assert envelope["key"] == KEY
        assert envelope["payload"] == PAYLOAD


class TestCorruption:
    def _entry_path(self, store):
        [entry] = store.entries()
        return entry.path

    def test_truncated_file_recovers(self, store):
        store.put(KEY, PAYLOAD, kind="cell")
        path = self._entry_path(store)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"format": "repro.store/1", "ki')
        assert store.get(KEY, kind="cell") is None
        assert store.counts.corrupt == 1
        assert not os.path.exists(path)

    def test_tampered_payload_fails_checksum(self, store):
        store.put(KEY, PAYLOAD, kind="cell")
        path = self._entry_path(store)
        with open(path, encoding="utf-8") as fh:
            envelope = json.load(fh)
        envelope["payload"]["summary"]["mean"] = 9.9
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh)
        assert store.get(KEY, kind="cell") is None
        assert store.counts.corrupt == 1

    def test_wrong_format_tag(self, store):
        store.put(KEY, PAYLOAD, kind="cell")
        path = self._entry_path(store)
        with open(path, encoding="utf-8") as fh:
            envelope = json.load(fh)
        envelope["format"] = "something-else/9"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh)
        assert store.get(KEY, kind="cell") is None

    def test_put_recovers_after_corruption(self, store):
        store.put(KEY, PAYLOAD, kind="cell")
        with open(self._entry_path(store), "w", encoding="utf-8") as fh:
            fh.write("garbage")
        assert store.get(KEY, kind="cell") is None
        store.put(KEY, PAYLOAD, kind="cell")
        assert store.get(KEY, kind="cell") == PAYLOAD


class TestVerify:
    def test_clean_store(self, store):
        store.put(KEY, PAYLOAD, kind="cell")
        assert store.verify() == []

    def test_detects_and_deletes(self, store):
        store.put({"cell": 1}, {"v": 1}, kind="cell")
        store.put({"cell": 2}, {"v": 2}, kind="cell")
        victim = store.entries()[0]
        with open(victim.path, "w", encoding="utf-8") as fh:
            fh.write("junk")
        corrupt = store.verify()
        assert [e.fingerprint for e in corrupt] == [victim.fingerprint]
        assert os.path.exists(victim.path)  # report-only by default
        store.verify(delete=True)
        assert not os.path.exists(victim.path)


class TestGc:
    def _fill(self, store, count):
        for i in range(count):
            fp = store.put({"cell": i}, {"v": i}, kind="cell")
            # Spread mtimes so LRU order is deterministic without sleeping.
            [entry] = [e for e in store.entries() if e.fingerprint == fp]
            os.utime(entry.path, (1000.0 + i, 1000.0 + i))

    def test_evicts_least_recently_used_first(self, store):
        self._fill(store, 4)
        sizes = [e.size for e in store.entries()]
        keep_two = sizes[-1] + sizes[-2]
        evicted = store.gc(keep_two)
        assert len(evicted) == 2
        assert store.get({"cell": 0}, kind="cell") is None
        assert store.get({"cell": 3}, kind="cell") == {"v": 3}

    def test_get_touches_mtime(self, store):
        self._fill(store, 2)
        store.get({"cell": 0}, kind="cell")  # cell 0 becomes most recent
        [entry] = store.gc(max(e.size for e in store.entries()))
        assert store.get({"cell": 0}, kind="cell") == {"v": 0}

    def test_dry_run_deletes_nothing(self, store):
        self._fill(store, 3)
        would = store.gc(0, dry_run=True)
        assert len(would) == 3
        assert len(store.entries()) == 3

    def test_zero_budget_clears_store(self, store):
        self._fill(store, 3)
        store.gc(0)
        assert store.entries() == []
        assert store.total_bytes() == 0

    def test_validates_max_bytes(self, store):
        with pytest.raises(ValueError):
            store.gc(-1)
        with pytest.raises(TypeError):
            store.gc(1.5)
        with pytest.raises(TypeError):
            store.gc(True)


class TestSinkEvents:
    def test_events_reach_the_sink(self, tmp_path):
        sink = RecordingSink()
        store = ResultStore(str(tmp_path), sink=sink)
        store.get(KEY, kind="cell")
        store.put(KEY, PAYLOAD, kind="cell")
        store.get(KEY, kind="cell")
        snap = sink.snapshot()
        counters = snap["metrics"]["counters"]
        assert any(name == "store_hit" for name in counters)
        assert any(name == "store_miss" for name in counters)
        assert any(name == "store_put" for name in counters)

    def test_iter_yields_entries(self, store):
        store.put(KEY, PAYLOAD, kind="cell")
        assert [e.kind for e in store] == ["cell"]
