"""FileLock: exclusion across processes, timeouts, fallback path."""

import multiprocessing as mp
import os

import pytest

from repro.store import lock as lock_module
from repro.store.lock import FileLock, LockTimeout


@pytest.fixture
def lock_path(tmp_path):
    return str(tmp_path / ".lock")


class TestBasics:
    def test_context_manager(self, lock_path):
        lock = FileLock(lock_path)
        assert not lock.held
        with lock:
            assert lock.held
        assert not lock.held

    def test_release_is_idempotent(self, lock_path):
        lock = FileLock(lock_path)
        lock.acquire()
        lock.release()
        lock.release()

    def test_reacquire_after_release(self, lock_path):
        lock = FileLock(lock_path)
        with lock:
            pass
        with lock:
            assert lock.held

    def test_double_acquire_rejected(self, lock_path):
        lock = FileLock(lock_path)
        with lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()

    def test_validates_parameters(self, lock_path):
        with pytest.raises(ValueError):
            FileLock(lock_path, timeout=0)
        with pytest.raises(ValueError):
            FileLock(lock_path, poll_interval=0)


class TestExclusion:
    def test_second_holder_times_out(self, lock_path):
        with FileLock(lock_path):
            other = FileLock(lock_path, timeout=0.1, poll_interval=0.01)
            with pytest.raises(LockTimeout):
                other.acquire()

    def test_acquire_succeeds_once_released(self, lock_path):
        first = FileLock(lock_path)
        first.acquire()
        first.release()
        with FileLock(lock_path, timeout=0.5):
            pass


class TestFallbackPath:
    """The O_EXCL code path used where fcntl is unavailable."""

    @pytest.fixture
    def no_fcntl(self, monkeypatch):
        monkeypatch.setattr(lock_module, "fcntl", None)

    def test_round_trip(self, no_fcntl, lock_path):
        with FileLock(lock_path):
            assert os.path.exists(lock_path)
        assert not os.path.exists(lock_path)  # released == unlinked

    def test_exclusion(self, no_fcntl, lock_path):
        with FileLock(lock_path):
            other = FileLock(lock_path, timeout=0.1, poll_interval=0.01)
            with pytest.raises(LockTimeout):
                other.acquire()

    def test_stale_lock_broken(self, no_fcntl, lock_path, monkeypatch):
        with open(lock_path, "w", encoding="utf-8"):
            pass
        old = os.path.getmtime(lock_path) - 2 * lock_module._STALE_AFTER
        os.utime(lock_path, (old, old))
        with FileLock(lock_path, timeout=1.0, poll_interval=0.01):
            pass  # the abandoned file must not block forever


def _hold_and_count(lock_path, counter_path, barrier):
    barrier.wait()
    for _ in range(20):
        with FileLock(lock_path, timeout=30.0):
            with open(counter_path, "r", encoding="utf-8") as fh:
                value = int(fh.read())
            with open(counter_path, "w", encoding="utf-8") as fh:
                fh.write(str(value + 1))


class TestCrossProcess:
    def test_counter_increments_are_not_lost(self, tmp_path):
        # A read-modify-write counter loses updates without mutual
        # exclusion; with the lock every one of 3*20 increments lands.
        lock_path = str(tmp_path / ".lock")
        counter_path = str(tmp_path / "counter")
        with open(counter_path, "w", encoding="utf-8") as fh:
            fh.write("0")
        ctx = mp.get_context("spawn")
        barrier = ctx.Barrier(3)
        procs = [
            ctx.Process(target=_hold_and_count, args=(lock_path, counter_path, barrier))
            for _ in range(3)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        with open(counter_path, encoding="utf-8") as fh:
            assert int(fh.read()) == 60
