"""The repo tooling (API-doc generator) stays runnable."""

import os
import subprocess
import sys


def test_api_doc_generator_runs(tmp_path, monkeypatch):
    root = os.path.join(os.path.dirname(__file__), "..")
    proc = subprocess.run(
        [sys.executable, os.path.join(root, "tools", "gen_api_docs.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    path = os.path.join(root, "docs", "API.md")
    assert os.path.exists(path)
    with open(path) as fh:
        text = fh.read()
    assert "# API reference" in text
    assert "repro.core.analysis" in text
    assert "simulate" in text
