"""The repo tooling (API-doc generator, coverage gate) stays runnable."""

import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

import coverage_gate  # noqa: E402


def test_api_doc_generator_runs(tmp_path, monkeypatch):
    root = os.path.join(os.path.dirname(__file__), "..")
    proc = subprocess.run(
        [sys.executable, os.path.join(root, "tools", "gen_api_docs.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    path = os.path.join(root, "docs", "API.md")
    assert os.path.exists(path)
    with open(path) as fh:
        text = fh.read()
    assert "# API reference" in text
    assert "repro.core.analysis" in text
    assert "simulate" in text


class TestCoverageGate:
    def test_source_files_cover_the_package(self):
        files = list(coverage_gate.iter_source_files())
        assert files == sorted(files)
        names = {os.path.relpath(f, coverage_gate.PACKAGE_DIR) for f in files}
        assert "simulator/engine.py" in {n.replace(os.sep, "/") for n in names}
        assert all(f.endswith(".py") for f in files)

    def test_executable_lines_from_code_objects(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "x = 1\n"
            "\n"
            "def f(flag):\n"
            "    if flag:\n"
            "        return 1\n"
            "    return 2\n"
        )
        lines = coverage_gate.executable_lines(str(path))
        assert {1, 4, 5, 6} <= lines
        assert 2 not in lines  # blank line is not executable

    def test_collector_records_only_watched_files(self, tmp_path):
        path = tmp_path / "traced.py"
        path.write_text("def g(a):\n    b = a + 1\n    return b\n")
        namespace = {}
        exec(compile(path.read_text(), str(path), "exec"), namespace)
        collector = coverage_gate.LineCollector({str(path)})
        collector.install()
        try:
            namespace["g"](1)
        finally:
            collector.uninstall()
        assert {2, 3} <= collector.hits[str(path)]
        assert set(collector.hits) == {str(path)}

    def test_floor_matches_pyproject(self):
        floor = coverage_gate.read_floor()
        assert 0.0 < floor < 100.0

    def test_summarize_totals(self, tmp_path, capsys):
        path = tmp_path / "m.py"
        path.write_text("a = 1\nb = 2\n")
        all_lines = coverage_gate.executable_lines(str(path))
        covered, executable, percent = coverage_gate.summarize(
            {str(path): set(all_lines)}, report=True
        )
        assert covered == executable == len(all_lines)
        assert percent == 100.0
        assert "m.py" in capsys.readouterr().out
        partial = coverage_gate.summarize({str(path): {min(all_lines)}})
        assert partial[0] == 1 and partial[2] < 100.0
