"""Fixture: impure strategy hooks (A-PURE)."""

from repro.core.strategies.base import Strategy

__all__ = ["Greedy", "HITS"]

HITS = []


class Greedy(Strategy):
    """Fixture stub."""

    def assign(self, worker):
        """Fixture stub: shared-state writes and I/O in a hook."""
        HITS.append(worker)
        print("assigned", worker)
        return self._pick(worker)

    def _pick(self, worker):
        """Fixture stub: class-attribute write reached from the hook."""
        Greedy.counter = worker
        return worker

    def release_tasks(self, count):
        """Fixture stub: module-global write via global statement."""
        global HITS
        HITS = HITS[:count]

    def forget_worker(self, worker):
        """Fixture stub: pure — self mutation stays legal."""
        self._queue = [w for w in getattr(self, "_queue", []) if w != worker]
