"""Fixture: the strategy contract's base class."""

__all__ = ["Strategy"]


class Strategy:
    """Fixture stub."""

    def assign(self, worker):
        """Fixture stub."""
        raise NotImplementedError

    def reset(self):
        """Fixture stub: pure — mutating self is the hooks' job."""
        self._queue = []
