"""Fixture: store mutations without lock discipline (A-LOCK, A-LOCK-HELD)."""

import os
import subprocess

__all__ = ["Store"]


class FileLock:
    """Fixture stub."""

    def __enter__(self):
        """Fixture stub."""
        return self

    def __exit__(self, *exc):
        """Fixture stub."""
        return None


class Store:
    """Fixture stub."""

    def lock(self):
        """Fixture stub."""
        return FileLock()

    def put(self, tmp, path):
        """Fixture stub: correctly locked mutation."""
        with self.lock():
            os.replace(tmp, path)
            self._commit(path)

    def _commit(self, path):
        """Fixture stub: only ever called under the lock — always-locked."""
        os.unlink(path + ".tmp")

    def evict(self, path):
        """Fixture stub: unlocked mutation — A-LOCK fires here."""
        os.unlink(path)

    def rebuild(self, path):
        """Fixture stub: slow work under the lock — A-LOCK-HELD fires here."""
        with self.lock():
            subprocess.run(["sync"])
            self._regen(path)

    def _regen(self, path):
        """Fixture stub: transitively slow under the caller's lock."""
        return subprocess.check_output(["du", path])
