"""Fixture: nondeterminism sources reachable from simulate (A-TAINT)."""

import os
import time

__all__ = ["simulate"]


def simulate(strategy, platform, rng):
    """Fixture stub: the taint root."""
    jitter = _jitter()
    names = _scan("runs")
    return jitter, names


def _jitter():
    """Fixture stub: direct wall-clock read, two calls deep."""
    return time.time()


def _scan(root):
    """Fixture stub: OS-ordered listing plus raw set iteration."""
    names = os.listdir(root)
    ok = sorted(os.listdir(root))
    tags = {"a", "b"}
    picked = [t for t in tags]
    return names, ok, picked
