"""Fixture: CLI modules are sanitized boundaries — no taint findings here."""

import time

from repro.simulator.engine import simulate

__all__ = ["main"]


def main():
    """Fixture stub: wall-clock use in a CLI is sanctioned."""
    started = time.time()
    simulate(None, None, None)
    return started
