"""Fixture: __all__ vs docs vs usage drift (A-DRIFT, A-DEAD)."""

__all__ = ["DISPATCH", "build", "orphan", "registered"]


def build(spec):
    """Fixture stub: documented, and used below."""
    return helper(spec)


def helper(spec):
    """Fixture stub: private-by-convention, called by build."""
    return spec


def orphan(spec):
    """Fixture stub: exported but never called, imported or registered."""
    return spec


def registered(spec):
    """Fixture stub: only referenced through the DISPATCH registry."""
    return spec


DISPATCH = {"registered": registered}
