"""Fixture: consumes widgets.build so only ``orphan`` is dead."""

from repro.utils.widgets import build

__all__ = ["make"]


def make(spec):
    """Fixture stub."""
    return build(spec)
