"""API drift and dead-public-code checks over the drift fixture."""

from repro.analyze import run_analysis
from repro.analyze.drift import parse_api_doc
from repro.lint import collect_modules

from tests.analyze.conftest import FIXTURES

#: A doc that documents `build`, a vanished `legacy`, and omits the rest.
_API_DOC = """\
# API reference

## `repro.utils.widgets`

Fixture module.

### `def build(spec)`

Documented and live.

### `def legacy(spec)`

Documented but long gone.
"""


def run_with_doc(tmp_path, doc_text):
    doc = tmp_path / "API.md"
    doc.write_text(doc_text, encoding="utf-8")
    modules = collect_modules([FIXTURES / "bad_drift"])
    return run_analysis(modules, api_doc=str(doc))


class TestParseApiDoc:
    def test_sections_and_members(self, tmp_path):
        doc = tmp_path / "API.md"
        doc.write_text(_API_DOC, encoding="utf-8")
        sections = parse_api_doc(doc)
        assert sections == {"repro.utils.widgets": {"build", "legacy"}}

    def test_missing_file_is_empty(self, tmp_path):
        assert parse_api_doc(tmp_path / "nope.md") == {}


class TestApiDrift:
    def test_both_drift_directions_flagged(self, tmp_path):
        findings = [f for f in run_with_doc(tmp_path, _API_DOC) if f.rule_id == "A-DRIFT"]
        drift_keys = {f.key for f in findings}
        # `orphan` and `registered` are exported but undocumented; `legacy`
        # is documented but gone.  `build` matches and is clean.
        assert "A-DRIFT:repro.utils.widgets.orphan:undocumented" in drift_keys
        assert "A-DRIFT:repro.utils.widgets.registered:undocumented" in drift_keys
        assert "A-DRIFT:repro.utils.widgets.legacy:documented-but-missing" in drift_keys
        assert not any("widgets.build" in k for k in drift_keys)

    def test_no_api_doc_no_drift_findings(self):
        modules = collect_modules([FIXTURES / "bad_drift"])
        findings = run_analysis(modules, api_doc=None)
        assert not any(f.rule_id == "A-DRIFT" for f in findings)


class TestDeadPublicCode:
    def test_only_true_orphan_flagged(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_drift") if f.rule_id == "A-DEAD"]
        assert {f.key for f in findings} == {"A-DEAD:repro.utils.widgets.orphan"}
        assert all(f.severity == "warning" for f in findings)

    def test_registry_reference_counts_as_use(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_drift") if f.rule_id == "A-DEAD"]
        assert not any("registered" in f.key for f in findings)

    def test_import_and_call_count_as_use(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_drift") if f.rule_id == "A-DEAD"]
        assert not any("build" in f.key for f in findings)

    def test_cli_modules_exempt(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_drift") if f.rule_id == "A-DEAD"]
        assert not any("cli" in f.key for f in findings)
