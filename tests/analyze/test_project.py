"""Project model: symbol table, imports, class hierarchy, registries."""

from repro.analyze import build_project
from repro.lint import collect_modules

from tests.analyze.conftest import FIXTURES, SRC_REPRO


def project_for(path):
    return build_project(collect_modules([path]))


class TestSymbolTable:
    def test_functions_and_methods_indexed(self):
        project = project_for(FIXTURES / "bad_pure")
        assert "repro.core.strategies.greedy.Greedy.assign" in project.functions
        assert "repro.core.strategies.base.Strategy" in project.classes
        symbol = project.functions["repro.core.strategies.greedy.Greedy._pick"]
        assert symbol.cls == "repro.core.strategies.greedy.Greedy"
        assert symbol.name == "_pick"
        assert symbol.module == "repro.core.strategies.greedy"

    def test_all_names_parsed(self):
        project = project_for(FIXTURES / "bad_drift")
        mod = project.modules["repro.utils.widgets"]
        assert mod.all_names == ["DISPATCH", "build", "orphan", "registered"]
        assert mod.all_node is not None

    def test_module_constants_indexed(self):
        project = project_for(FIXTURES / "bad_pure")
        assert "HITS" in project.modules["repro.core.strategies.greedy"].constants


class TestClassHierarchy:
    def test_bases_resolved_across_modules(self):
        project = project_for(FIXTURES / "bad_pure")
        greedy = project.classes["repro.core.strategies.greedy.Greedy"]
        assert greedy.bases == ("repro.core.strategies.base.Strategy",)

    def test_subclasses_and_is_subclass_of(self):
        project = project_for(FIXTURES / "bad_pure")
        base = "repro.core.strategies.base.Strategy"
        assert project.subclasses(base) == {"repro.core.strategies.greedy.Greedy"}
        assert project.is_subclass_of("repro.core.strategies.greedy.Greedy", base)
        assert project.is_subclass_of(base, base)
        assert not project.is_subclass_of(base, "repro.core.strategies.greedy.Greedy")

    def test_lookup_method_walks_bases(self):
        project = project_for(FIXTURES / "bad_pure")
        found = project.lookup_method("repro.core.strategies.greedy.Greedy", "reset")
        assert found == "repro.core.strategies.base.Strategy.reset"

    def test_real_strategy_hierarchy(self):
        project = project_for(SRC_REPRO)
        subs = project.subclasses("repro.core.strategies.base.Strategy")
        assert len(subs) >= 8  # the paper's strategy families


class TestRegistries:
    def test_function_registry_scanned(self):
        project = project_for(FIXTURES / "bad_drift")
        refs = project.registered_functions["repro.utils.widgets.DISPATCH"]
        assert refs == {"repro.utils.widgets.registered"}

    def test_real_strategies_registry_scanned(self):
        project = project_for(SRC_REPRO)
        registered = project.registered_classes[
            "repro.core.strategies.registry.STRATEGIES"
        ]
        assert len(registered) >= 8
        assert all(qual in project.classes for qual in registered)


class TestResolution:
    def test_import_resolution(self):
        project = project_for(FIXTURES / "bad_drift")
        mod = project.modules["repro.utils.cli"]
        assert project.resolve_name(mod, "build") == "repro.utils.widgets.build"

    def test_unknown_name_resolves_to_none(self):
        project = project_for(FIXTURES / "bad_drift")
        mod = project.modules["repro.utils.cli"]
        assert project.resolve_name(mod, "no_such_thing") is None

    def test_reexport_canonicalized(self):
        project = project_for(SRC_REPRO)
        mod = project.modules["repro.analyze.cli"]
        # cli imports collect_modules via the repro.lint package __init__.
        resolved = project.resolve_name(mod, "collect_modules")
        assert resolved == "repro.lint.framework.collect_modules"

    def test_import_graph_edges(self):
        project = project_for(FIXTURES / "bad_drift")
        graph = project.import_graph()
        assert "repro.utils.widgets" in graph["repro.utils.cli"]
        assert graph["repro.utils.widgets"] == set()
