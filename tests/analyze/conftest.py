"""Shared helpers for the analyzer's own test suite."""

from pathlib import Path

import pytest

from repro.analyze import build_model, run_analysis
from repro.lint import collect_modules

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture
def analyze_fixture():
    """Run the full analyzer check set over one fixture tree by name.

    ``api_doc`` defaults to ``None`` so fixture trees are never compared
    against the real ``docs/API.md`` (their module names deliberately
    shadow real ones).
    """

    def run(name, *, select=None, ignore=None, api_doc=None):
        modules = collect_modules([FIXTURES / name])
        return run_analysis(modules, select=select, ignore=ignore, api_doc=api_doc)

    return run


@pytest.fixture
def fixture_model():
    """Build the project + call-graph model for one fixture tree."""

    def build(name):
        return build_model(collect_modules([FIXTURES / name]))

    return build


@pytest.fixture(scope="session")
def src_model():
    """The analysis model for the real ``src/repro`` tree (built once)."""
    return build_model(collect_modules([SRC_REPRO]))
