"""The ``repro-analyze`` CLI: subcommands, exit codes, formats."""

import json
from pathlib import Path

from repro.analyze.baseline import BASELINE_FORMAT
from repro.analyze.cli import main

from tests.analyze.conftest import FIXTURES

ROOT = Path(__file__).resolve().parents[2]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCheck:
    def test_findings_exit_one(self, capsys):
        code, out, _ = run_cli(
            capsys, "check", str(FIXTURES / "bad_taint"), "--select", "A-TAINT"
        )
        assert code == 1
        assert "A-TAINT" in out
        assert "[A-TAINT:repro.simulator.engine._jitter:time.time]" in out

    def test_clean_exit_zero(self, capsys):
        code, out, _ = run_cli(
            capsys, "check", str(FIXTURES / "bad_taint"), "--select", "A-LOCK"
        )
        assert code == 0
        assert "repro-analyze: clean" in out

    def test_json_format_round_trips(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "check",
            str(FIXTURES / "bad_pure"),
            "--select",
            "A-PURE",
            "--format",
            "json",
        )
        assert code == 1
        doc = json.loads(out)
        assert doc["version"] == 1
        assert doc["counts"] == {"error": 4}
        keys = {f["key"] for f in doc["findings"]}
        assert "A-PURE:repro.core.strategies.greedy.Greedy.assign:I/O call print" in keys
        assert all("chain" in f for f in doc["findings"])

    def test_unknown_check_id_exit_two(self, capsys):
        code, _, err = run_cli(capsys, "check", str(FIXTURES / "bad_taint"), "--select", "A-NOPE")
        assert code == 2
        assert "unknown check id" in err

    def test_unreadable_path_exit_two(self, capsys):
        code, _, err = run_cli(capsys, "check", "no/such/tree")
        assert code == 2
        assert "repro-analyze:" in err

    def test_list_checks(self, capsys):
        code, out, _ = run_cli(capsys, "check", "--list-checks")
        assert code == 0
        for check_id in ("A-TAINT", "A-LOCK", "A-LOCK-HELD", "A-PURE", "A-DRIFT", "A-DEAD"):
            assert check_id in out


class TestBaselineFlow:
    def test_write_then_check_against_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, out, _ = run_cli(
            capsys,
            "check",
            str(FIXTURES / "bad_pure"),
            "--select",
            "A-PURE",
            "--write-baseline",
            str(baseline),
        )
        assert code == 0
        assert "wrote 4 key(s)" in out
        assert json.loads(baseline.read_text())["format"] == BASELINE_FORMAT

        code, out, _ = run_cli(
            capsys,
            "check",
            str(FIXTURES / "bad_pure"),
            "--select",
            "A-PURE",
            "--baseline",
            str(baseline),
        )
        assert code == 0
        assert "repro-analyze: clean" in out

    def test_stale_baseline_entry_fails(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps({"format": BASELINE_FORMAT, "keys": ["A-PURE:repro.gone.f:print"]})
        )
        code, _, err = run_cli(
            capsys,
            "check",
            str(FIXTURES / "bad_pure"),
            "--select",
            "A-LOCK",
            "--baseline",
            str(baseline),
        )
        assert code == 1
        assert "stale baseline entry" in err

    def test_malformed_baseline_exit_two(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        code, _, err = run_cli(
            capsys, "check", str(FIXTURES / "bad_pure"), "--baseline", str(baseline)
        )
        assert code == 2
        assert "not valid JSON" in err


class TestGraph:
    def test_summary(self, capsys):
        code, out, _ = run_cli(capsys, "graph", str(FIXTURES / "bad_taint"))
        assert code == 0
        assert "modules:" in out
        assert "call edges:" in out

    def test_callers_and_callees(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "graph",
            str(FIXTURES / "bad_taint"),
            "--callers",
            "repro.simulator.engine._jitter",
        )
        assert code == 0
        assert "repro.simulator.engine.simulate" in out

        code, out, _ = run_cli(
            capsys,
            "graph",
            str(FIXTURES / "bad_taint"),
            "--callees",
            "repro.simulator.engine.simulate",
        )
        assert code == 0
        assert "repro.simulator.engine._jitter" in out

    def test_unknown_function_exit_two(self, capsys):
        code, _, err = run_cli(
            capsys, "graph", str(FIXTURES / "bad_taint"), "--callers", "repro.nope.f"
        )
        assert code == 2
        assert "unknown function" in err


class TestExplain:
    def test_explain_prints_full_chain(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "explain",
            "A-TAINT:repro.simulator.engine._jitter:time.time",
            str(FIXTURES / "bad_taint"),
        )
        assert code == 0
        lines = out.splitlines()
        assert lines[0] == "A-TAINT:repro.simulator.engine._jitter:time.time"
        assert any("call chain:" in line for line in lines)
        assert any("repro.simulator.engine.simulate" in line for line in lines)
        assert any("time.time at line" in line for line in lines)

    def test_unknown_key_exit_two(self, capsys):
        code, _, err = run_cli(
            capsys, "explain", "A-TAINT:repro.nope:thing", str(FIXTURES / "bad_taint")
        )
        assert code == 2
        assert "no finding with key" in err
