"""Every analyzer check fires on its fixture tree — and only there."""

import pytest

from repro.analyze import run_analysis
from repro.lint import collect_modules

from tests.analyze.conftest import SRC_REPRO


def keys(findings):
    return {f.key for f in findings}


class TestDeterminismTaint:
    def test_sources_reachable_from_simulate_flagged(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_taint") if f.rule_id == "A-TAINT"]
        assert keys(findings) == {
            "A-TAINT:repro.simulator.engine._jitter:time.time",
            "A-TAINT:repro.simulator.engine._scan:os.listdir (unsorted)",
            "A-TAINT:repro.simulator.engine._scan:set-iteration",
        }
        assert all(f.severity == "error" for f in findings)

    def test_sorted_listdir_not_flagged(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_taint") if f.rule_id == "A-TAINT"]
        unsorted = [f for f in findings if "listdir" in f.key]
        assert len(unsorted) == 1  # the sorted(os.listdir(...)) twin is clean

    def test_cli_module_is_sanitized_boundary(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_taint") if f.rule_id == "A-TAINT"]
        assert not any(f.path.endswith("cli.py") for f in findings)

    def test_chain_runs_from_root_to_source(self, analyze_fixture):
        findings = [
            f
            for f in analyze_fixture("bad_taint")
            if f.key == "A-TAINT:repro.simulator.engine._jitter:time.time"
        ]
        (finding,) = findings
        assert "repro.simulator.engine.simulate" in finding.chain[0]
        assert finding.chain[-1].startswith("time.time at line")

    def test_real_tree_is_taint_clean(self):
        modules = collect_modules([SRC_REPRO])
        findings = run_analysis(modules, select=["A-TAINT"])
        rendered = "\n".join(f.render() for f in findings)
        assert not findings, f"src/repro has taint findings:\n{rendered}"


class TestLockDiscipline:
    def test_unlocked_mutation_flagged(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_lock") if f.rule_id == "A-LOCK"]
        assert keys(findings) == {"A-LOCK:repro.store.cache.Store.evict:os.unlink"}

    def test_locked_and_always_locked_mutations_clean(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_lock") if f.rule_id == "A-LOCK"]
        flagged = keys(findings)
        assert not any("put" in k for k in flagged)  # lexically locked
        assert not any("_commit" in k for k in flagged)  # locked on every path

    def test_slow_call_under_lock_flagged(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_lock") if f.rule_id == "A-LOCK-HELD"]
        assert keys(findings) == {
            "A-LOCK-HELD:repro.store.cache.Store.rebuild:subprocess.run",
            "A-LOCK-HELD:repro.store.cache.Store.rebuild:subprocess.check_output",
        }

    def test_transitive_slow_call_has_chain(self, analyze_fixture):
        findings = [
            f
            for f in analyze_fixture("bad_lock")
            if f.key == "A-LOCK-HELD:repro.store.cache.Store.rebuild:subprocess.check_output"
        ]
        (finding,) = findings
        assert "holds the lock" in finding.chain[0]
        assert any("_regen" in step for step in finding.chain)

    def test_real_tree_is_lock_clean(self):
        modules = collect_modules([SRC_REPRO])
        findings = run_analysis(modules, select=["A-LOCK", "A-LOCK-HELD"])
        rendered = "\n".join(f.render() for f in findings)
        assert not findings, f"src/repro has lock findings:\n{rendered}"


class TestStrategyPurity:
    def test_impure_hooks_flagged(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_pure") if f.rule_id == "A-PURE"]
        assert keys(findings) == {
            "A-PURE:repro.core.strategies.greedy.Greedy.assign:module-global mutation of HITS.append()",
            "A-PURE:repro.core.strategies.greedy.Greedy.assign:I/O call print",
            "A-PURE:repro.core.strategies.greedy.Greedy._pick:class-attribute write .counter",
            "A-PURE:repro.core.strategies.greedy.Greedy.release_tasks:global HITS",
        }

    def test_self_mutation_stays_legal(self, analyze_fixture):
        findings = [f for f in analyze_fixture("bad_pure") if f.rule_id == "A-PURE"]
        assert not any("forget_worker" in f.key for f in findings)
        assert not any("reset" in f.key for f in findings)

    def test_transitive_impurity_chains_through_helper(self, analyze_fixture):
        findings = [
            f
            for f in analyze_fixture("bad_pure")
            if f.key
            == "A-PURE:repro.core.strategies.greedy.Greedy._pick:class-attribute write .counter"
        ]
        (finding,) = findings
        assert "Greedy.assign" in finding.chain[0]  # hook root
        assert "_pick" in finding.chain[-2]

    def test_real_tree_is_purity_clean(self):
        modules = collect_modules([SRC_REPRO])
        findings = run_analysis(modules, select=["A-PURE"])
        rendered = "\n".join(f.render() for f in findings)
        assert not findings, f"src/repro has purity findings:\n{rendered}"


class TestNoqaSuppression:
    def test_per_line_noqa_suppresses_analysis_finding(self, tmp_path, analyze_fixture):
        root = tmp_path / "repro" / "store"
        root.mkdir(parents=True)
        (root / "cache.py").write_text(
            '"""Fixture."""\n'
            "import os\n\n"
            "__all__ = []\n\n\n"
            "def wipe(path):\n"
            '    """Fixture stub."""\n'
            "    os.unlink(path)  # repro: noqa[A-LOCK]\n"
        )
        findings = run_analysis(collect_modules([tmp_path]))
        assert not any(f.rule_id == "A-LOCK" for f in findings)


class TestSelection:
    def test_unknown_check_id_raises(self, analyze_fixture):
        with pytest.raises(ValueError, match="unknown check id"):
            analyze_fixture("bad_taint", select=["A-BOGUS"])

    def test_ignore_drops_check(self, analyze_fixture):
        findings = analyze_fixture("bad_taint", ignore=["A-TAINT"])
        assert not any(f.rule_id == "A-TAINT" for f in findings)
