"""Tier-1 gate: src/repro passes its own whole-program analyzer.

Mirrors ``tests/lint/test_self_clean.py`` one level up: any commit that
routes a wall-clock read into the simulation core, mutates the store
outside its FileLock, or makes a strategy hook impure fails the test
suite, not just an optional CI job.  The committed baseline may only
shrink — a baselined finding that stops firing must be deleted.
"""

from pathlib import Path

from repro.analyze import AnalysisFinding, apply_baseline, load_baseline, run_analysis
from repro.lint import collect_modules

ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = ROOT / "src" / "repro"
BASELINE = ROOT / "tools" / "analyze_baseline.json"


def current_findings():
    modules = collect_modules([SRC_REPRO])
    return run_analysis(modules, api_doc=str(ROOT / "docs" / "API.md"))


def test_source_tree_is_analysis_clean_modulo_baseline():
    findings = current_findings()
    split = apply_baseline(findings, load_baseline(BASELINE))
    rendered = "\n".join(f.render() for f in split.fresh)
    assert not split.fresh, f"src/repro has new analyzer findings:\n{rendered}"


def test_baseline_only_shrinks():
    """Every baselined key must still fire — paid-off debt must be deleted."""
    findings = current_findings()
    split = apply_baseline(findings, load_baseline(BASELINE))
    assert not split.stale, (
        "stale baseline entries (the finding no longer fires — delete them "
        f"from {BASELINE}): {split.stale}"
    )


def test_baseline_carries_no_errors():
    """Grandfathered debt may be warnings only; errors must be fixed."""
    findings = current_findings()
    split = apply_baseline(findings, load_baseline(BASELINE))
    assert all(f.severity == "warning" for f in split.known), [
        f.key for f in split.known if f.severity != "warning"
    ]


def test_every_finding_has_key_and_explainable_identity():
    findings = current_findings()
    for f in findings:
        assert isinstance(f, AnalysisFinding)
        assert f.key.startswith(f.rule_id + ":")
