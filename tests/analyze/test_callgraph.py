"""Call-graph construction: resolution, virtual dispatch, reachability."""


class TestEdges:
    def test_direct_module_call(self, fixture_model):
        model = fixture_model("bad_drift")
        targets = dict(model.graph.edges["repro.utils.widgets.build"])
        assert "repro.utils.widgets.helper" in targets

    def test_self_method_call(self, fixture_model):
        model = fixture_model("bad_pure")
        targets = [t for t, _ in model.graph.edges["repro.core.strategies.greedy.Greedy.assign"]]
        assert "repro.core.strategies.greedy.Greedy._pick" in targets

    def test_cross_module_import_call(self, fixture_model):
        model = fixture_model("bad_drift")
        targets = [t for t, _ in model.graph.edges["repro.utils.cli.make"]]
        assert targets == ["repro.utils.widgets.build"]

    def test_callers_is_reverse_of_edges(self, fixture_model):
        model = fixture_model("bad_drift")
        callers = [c for c, _ in model.graph.callers["repro.utils.widgets.build"]]
        assert callers == ["repro.utils.cli.make"]

    def test_external_calls_recorded(self, fixture_model):
        model = fixture_model("bad_taint")
        names = [n for n, _ in model.graph.external_calls("repro.simulator.engine._jitter")]
        assert names == ["time.time"]


class TestRealTreeDispatch:
    def test_engine_dispatches_to_strategy_overrides(self, src_model):
        """``strategy.assign`` in the engine fans out to every override."""
        targets = {
            t
            for t, _ in src_model.graph.edges.get("repro.simulator.engine.simulate", [])
        }
        assign_overrides = {t for t in targets if t.endswith(".assign")}
        assert len(assign_overrides) >= 5  # virtual dispatch over subclasses

    def test_store_put_reaches_lock(self, src_model):
        targets = {
            t for t, _ in src_model.graph.edges.get("repro.store.cache.ResultStore.put", [])
        }
        assert "repro.store.cache.ResultStore.lock" in targets

    def test_graph_scale(self, src_model):
        assert len(src_model.project.modules) > 100
        assert len(src_model.project.functions) > 500
        edge_count = sum(len(v) for v in src_model.graph.edges.values())
        assert edge_count > 1000


class TestReachability:
    def test_forward_reachable_with_chain(self, fixture_model):
        model = fixture_model("bad_taint")
        parents = model.graph.reachable(["repro.simulator.engine.simulate"])
        assert "repro.simulator.engine._jitter" in parents
        chain = model.graph.chain(parents, "repro.simulator.engine._jitter")
        assert "repro.simulator.engine.simulate" in chain[0]
        assert "_jitter" in chain[-1]

    def test_skip_modules_prunes_traversal(self, fixture_model):
        model = fixture_model("bad_taint")
        parents = model.graph.reachable(
            ["repro.simulator.cli.main"], skip_modules=["repro.simulator.engine"]
        )
        assert "repro.simulator.engine._jitter" not in parents

    def test_roots_have_no_parent_link(self, fixture_model):
        model = fixture_model("bad_taint")
        parents = model.graph.reachable(["repro.simulator.engine.simulate"])
        assert parents["repro.simulator.engine.simulate"] is None
