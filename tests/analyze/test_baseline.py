"""Baseline files: load/save round-trip, the ratchet, malformed input."""

import json

import pytest

from repro.analyze import (
    AnalysisFinding,
    BaselineError,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analyze.baseline import BASELINE_FORMAT
from repro.lint import Severity


def finding(key, rule_id="A-DEAD"):
    return AnalysisFinding(
        rule_id=rule_id,
        severity=Severity.WARNING,
        path="src/repro/x.py",
        line=3,
        col=0,
        message="m",
        key=key,
    )


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        written = save_baseline(path, [finding("A-DEAD:repro.x.b"), finding("A-DEAD:repro.x.a")])
        assert written == ["A-DEAD:repro.x.a", "A-DEAD:repro.x.b"]  # sorted, deduped
        assert load_baseline(path) == written
        doc = json.loads(path.read_text())
        assert doc["format"] == BASELINE_FORMAT

    def test_plain_findings_without_keys_are_skipped(self, tmp_path):
        from repro.lint import Finding

        plain = Finding(
            rule_id="R-X", severity=Severity.ERROR, path="p", line=1, col=0, message="m"
        )
        path = tmp_path / "baseline.json"
        assert save_baseline(path, [plain]) == []


class TestMalformed:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": "other/9", "keys": []}))
        with pytest.raises(BaselineError, match="unexpected format"):
            load_baseline(path)

    def test_non_string_keys(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": BASELINE_FORMAT, "keys": [1]}))
        with pytest.raises(BaselineError, match="list of strings"):
            load_baseline(path)


class TestRatchet:
    def test_known_findings_suppressed(self):
        split = apply_baseline([finding("A-DEAD:repro.x.a")], ["A-DEAD:repro.x.a"])
        assert split.fresh == ()
        assert len(split.known) == 1
        assert split.stale == ()

    def test_fresh_findings_surface(self):
        split = apply_baseline([finding("A-DEAD:repro.x.new")], ["A-DEAD:repro.x.old"])
        assert len(split.fresh) == 1
        assert split.stale == ("A-DEAD:repro.x.old",)

    def test_stale_entries_detected(self):
        split = apply_baseline([], ["A-DEAD:repro.x.gone"])
        assert split.stale == ("A-DEAD:repro.x.gone",)

    def test_keyless_findings_never_match_baseline(self):
        from repro.lint import Finding

        plain = Finding(
            rule_id="R-X", severity=Severity.ERROR, path="p", line=1, col=0, message="m"
        )
        split = apply_baseline([plain], [])
        assert len(split.fresh) == 1
