"""The documented quickstarts actually run.

These tests parse fenced code blocks out of the markdown they claim to
test — README.md and docs/CACHING.md — and execute them at smoke scale.
If a documented command sequence rots (renamed flag, dropped subcommand,
changed default), the failure points at the doc, not at a copy of it.
"""

import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]

#: Console-script name → (module, function), mirroring [project.scripts].
SCRIPTS = {
    "repro-analyze": ("repro.analyze.cli", "main"),
    "repro-bench": ("repro.experiments.bench", "main"),
    "repro-experiments": ("repro.experiments.cli", "main"),
    "repro-lint": ("repro.lint.cli", "main"),
    "repro-report": ("repro.obs.cli", "main"),
    "repro-serve": ("repro.serve.cli", "main"),
    "repro-store": ("repro.store.cli", "main"),
}

_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def fenced_blocks(markdown_path, language):
    """All fenced code blocks of *language* in a markdown file, in order."""
    text = (ROOT / markdown_path).read_text(encoding="utf-8")
    return [body for lang, body in _FENCE.findall(text) if lang == language]


def _subprocess_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_documented_command(line, cwd):
    """Run one quickstart shell line via the script's entry function."""
    argv = shlex.split(line)
    module, func = SCRIPTS[argv[0]]
    code = (
        "import sys; sys.argv = {argv!r}; "
        "from {module} import {func}; sys.exit({func}())"
    ).format(argv=argv, module=module, func=func)
    return subprocess.run(
        [sys.executable, "-c", code],
        cwd=cwd,
        env=_subprocess_env(),
        capture_output=True,
        text=True,
    )


def test_script_table_matches_pyproject():
    """The mapping above is the one pyproject installs — no silent drift."""
    text = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
    declared = dict(
        (name, tuple(target.split(":")))
        for name, target in re.findall(r'^(repro-[a-z]+) = "([\w.:]+)"', text, re.M)
    )
    assert declared == SCRIPTS


def test_caching_quickstart_runs(tmp_path):
    """Every line of the docs/CACHING.md quickstart exits 0, in order."""
    blocks = fenced_blocks("docs/CACHING.md", "bash")
    assert blocks, "docs/CACHING.md lost its quickstart block"
    lines = [
        ln.strip()
        for ln in blocks[0].splitlines()
        if ln.strip() and not ln.strip().startswith("#")
    ]
    assert any("repro-experiments run" in ln for ln in lines)
    for line in lines:
        proc = run_documented_command(line, cwd=tmp_path)
        assert proc.returncode == 0, f"{line!r} failed:\n{proc.stdout}{proc.stderr}"
    # The quickstart's own claims hold: the CSV exists and the second,
    # resumed run skipped the already-complete figure.
    assert (tmp_path / "results" / "fig01_ci.csv").is_file()
    assert (tmp_path / "cache").is_dir()
    resume_line = next(ln for ln in lines if "--resume" in ln)
    proc = run_documented_command(resume_line, cwd=tmp_path)
    assert proc.returncode == 0
    assert "already complete" in proc.stdout


def test_readme_python_quickstart_runs(tmp_path):
    """The README's first python block executes and prints the two values."""
    blocks = fenced_blocks("README.md", "python")
    assert blocks, "README.md lost its python quickstart"
    proc = subprocess.run(
        [sys.executable, "-c", blocks[0]],
        cwd=tmp_path,
        env=_subprocess_env(),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert len(proc.stdout.splitlines()) == 2


@pytest.mark.parametrize("doc", ["README.md", "docs/CACHING.md"])
def test_quickstart_commands_are_known_scripts(doc):
    """Bash blocks only invoke commands this repo installs (or stdlib)."""
    allowed = set(SCRIPTS) | {"python", "pip", "pytest", "REPRO_SCALE=medium"}
    for block in fenced_blocks(doc, "bash"):
        joined = re.sub(r"\\\n\s*", " ", block)  # fold line continuations
        for line in joined.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head = line.split()[0]
            assert head in allowed, f"{doc}: undocumented tool {head!r}"
