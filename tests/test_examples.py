"""Smoke tests: every example script runs to completion and prints sanely.

The examples are part of the public deliverable; each is executed in a
subprocess exactly as a user would run it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["DynamicOuter2Phases", "optimal beta"]),
    ("beta_tuning.py", ["Figure 6", "agnostic beta"]),
    ("heterogeneity_study.py", ["ranking does not depend", "static column partition"]),
    ("real_execution.py", ["exactly once", "matches NumPy matmul:  True"]),
    ("ode_validation.py", ["Lemma 1", "ODE model tracks"]),
    ("cholesky_extension.py", ["LocalityCholesky", "matches numpy.cholesky:  True"]),
    ("factorization_suite.py", ["Cholesky", "QR", "LU", "generalizes to dependent tasks"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), f"example {script} missing"
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr}"
    for token in expected:
        assert token in proc.stdout, f"{script} output missing {token!r}"
