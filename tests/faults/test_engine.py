"""Tests for the fault-aware simulation engine."""

import numpy as np
import pytest

from repro.core.strategies.registry import make_strategy, strategy_names
from repro.faults import (
    FaultSchedule,
    HeartbeatTimeout,
    ReplicateTail,
    simulate_faulty,
)
from repro.faults.models import AssignmentLoss, Slowdown, WorkerCrash
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate

EMPTY = FaultSchedule.empty()


def _paper_platform() -> Platform:
    return Platform(uniform_speeds(6, 10, 100, rng=123))


def _make(name: str, *, collect_ids: bool):
    n = 8 if "Matrix" in name else 16
    return make_strategy(name, n, collect_ids=collect_ids)


def _assert_identical(a, b):
    assert a.total_blocks == b.total_blocks
    assert a.makespan == b.makespan
    assert a.n_assignments == b.n_assignments
    assert np.array_equal(a.per_worker_blocks, b.per_worker_blocks)
    assert np.array_equal(a.per_worker_tasks, b.per_worker_tasks)


class TestFaultFreeReduction:
    """Empty schedule => bit-identical to the fault-free engine."""

    @pytest.mark.parametrize("name", strategy_names())
    @pytest.mark.parametrize("collect_ids", [False, True])
    def test_identical_to_simulate(self, name, collect_ids):
        platform = _paper_platform()
        base = simulate(_make(name, collect_ids=collect_ids), platform, rng=321)
        faulty = simulate_faulty(
            _make(name, collect_ids=collect_ids), platform, schedule=EMPTY, rng=321
        )
        _assert_identical(base, faulty)
        assert faulty.faults is not None
        assert not faulty.faults.any_faults
        assert faulty.faults.reexecuted_tasks == 0
        assert faulty.faults.duplicate_completions == 0

    @pytest.mark.parametrize("name", ["DynamicOuter", "DynamicMatrix2Phases"])
    def test_heartbeat_policy_is_inert_without_faults(self, name):
        """Deadlines arm but never fire on an on-time static platform."""
        platform = _paper_platform()
        base = simulate(_make(name, collect_ids=True), platform, rng=321)
        faulty = simulate_faulty(
            _make(name, collect_ids=True),
            platform,
            schedule=EMPTY,
            policy=HeartbeatTimeout(k=2.0),
            rng=321,
        )
        _assert_identical(base, faulty)
        assert faulty.faults is not None
        assert faulty.faults.n_timeouts == 0


class TestValidation:
    def test_rejects_non_schedule(self, small_platform):
        with pytest.raises(TypeError):
            simulate_faulty(
                _make("DynamicOuter", collect_ids=True), small_platform, schedule=None
            )

    def test_rejects_schedule_beyond_platform(self, small_platform):
        schedule = FaultSchedule(crashes=(WorkerCrash(9, 1.0, 1.0),))
        with pytest.raises(ValueError, match="worker 9"):
            simulate_faulty(
                _make("DynamicOuter", collect_ids=True), small_platform, schedule=schedule
            )

    def test_nonempty_schedule_requires_collect_ids(self, small_platform):
        schedule = FaultSchedule(crashes=(WorkerCrash(0, 1.0, 1.0),))
        with pytest.raises(ValueError, match="collect_ids"):
            simulate_faulty(
                _make("DynamicOuter", collect_ids=False), small_platform, schedule=schedule
            )

    def test_tracking_policy_requires_collect_ids(self, small_platform):
        with pytest.raises(ValueError, match="collect_ids"):
            simulate_faulty(
                _make("DynamicOuter", collect_ids=False),
                small_platform,
                schedule=EMPTY,
                policy=HeartbeatTimeout(),
            )


class TestCrashes:
    def test_single_crash_recovers(self, small_platform):
        schedule = FaultSchedule(crashes=(WorkerCrash(3, 0.05, 0.5),))
        result = simulate_faulty(
            _make("DynamicOuter", collect_ids=True),
            small_platform,
            schedule=schedule,
            rng=5,
            collect_trace=True,
        )
        stats = result.faults
        assert stats is not None
        assert stats.n_crashes == 1
        assert stats.n_restarts <= 1
        # Crash-only schedule: every released task is re-allocated exactly
        # once, and the dead copy can never produce a duplicate completion.
        assert stats.reexecuted_tasks == stats.released_tasks
        assert stats.duplicate_completions == 0
        assert result.trace is not None
        assert len(result.trace.faults_of_kind("crash")) == 1

    def test_crash_without_restart_still_completes(self, small_platform):
        """A worker that never returns must not block the run."""
        schedule = FaultSchedule(crashes=(WorkerCrash(0, 0.01, 1e9),))
        result = simulate_faulty(
            _make("DynamicOuter", collect_ids=True), small_platform, schedule=schedule, rng=5
        )
        assert result.faults is not None
        assert result.faults.n_crashes == 1
        assert result.faults.n_restarts == 0
        assert result.makespan < 1e9

    def test_all_workers_crash_and_return(self, small_platform):
        crashes = tuple(WorkerCrash(w, 0.05, 0.2) for w in range(4))
        result = simulate_faulty(
            _make("DynamicOuter", collect_ids=True),
            small_platform,
            schedule=FaultSchedule(crashes=crashes),
            rng=5,
        )
        assert result.faults is not None
        assert result.faults.n_crashes == 4
        assert result.faults.n_restarts == 4

    def test_crash_after_completion_never_fires(self, small_platform):
        base = simulate_faulty(
            _make("DynamicOuter", collect_ids=True), small_platform, schedule=EMPTY, rng=5
        )
        late = FaultSchedule(crashes=(WorkerCrash(0, base.makespan * 100, 1.0),))
        result = simulate_faulty(
            _make("DynamicOuter", collect_ids=True), small_platform, schedule=late, rng=5
        )
        _assert_identical(base, result)
        assert result.faults is not None
        assert result.faults.n_crashes == 0


class TestLossesAndSlowdowns:
    def test_first_request_lost_everywhere(self, small_platform):
        losses = tuple(AssignmentLoss(w, 0) for w in range(4))
        result = simulate_faulty(
            _make("DynamicOuter", collect_ids=True),
            small_platform,
            schedule=FaultSchedule(losses=losses),
            rng=5,
            collect_trace=True,
        )
        stats = result.faults
        assert stats is not None
        assert stats.n_lost_assignments == 4
        assert stats.wasted_blocks > 0
        assert stats.released_tasks > 0
        assert result.trace is not None
        assert len(result.trace.faults_of_kind("loss")) == 4

    def test_uniform_slowdown_scales_makespan_only(self, small_platform):
        base = simulate_faulty(
            _make("DynamicOuter", collect_ids=True), small_platform, schedule=EMPTY, rng=5
        )
        horizon = base.makespan * 10.0
        # Factor 2 scales every duration by a power of two, which commutes
        # exactly with float rounding: the whole timeline doubles bit for bit.
        slowdowns = tuple(Slowdown(w, 0.0, 100.0 * horizon, 2.0) for w in range(4))
        slowed = simulate_faulty(
            _make("DynamicOuter", collect_ids=True),
            small_platform,
            schedule=FaultSchedule(slowdowns=slowdowns),
            rng=5,
        )
        assert slowed.total_blocks == base.total_blocks
        assert slowed.n_assignments == base.n_assignments
        assert np.array_equal(slowed.per_worker_blocks, base.per_worker_blocks)
        assert slowed.makespan == 2.0 * base.makespan

    def test_partial_slowdown_delays_completion(self, small_platform):
        base = simulate_faulty(
            _make("DynamicOuter", collect_ids=True), small_platform, schedule=EMPTY, rng=5
        )
        slowdowns = (Slowdown(3, 0.0, base.makespan * 100.0, 50.0),)
        slowed = simulate_faulty(
            _make("DynamicOuter", collect_ids=True),
            small_platform,
            schedule=FaultSchedule(slowdowns=slowdowns),
            rng=5,
        )
        assert slowed.makespan > base.makespan


class TestPolicies:
    def test_heartbeat_fires_on_straggler(self, small_platform):
        base = simulate_faulty(
            _make("DynamicOuter", collect_ids=True), small_platform, schedule=EMPTY, rng=5
        )
        slowdowns = (Slowdown(3, 0.0, base.makespan * 1000.0, 50.0),)
        result = simulate_faulty(
            _make("DynamicOuter", collect_ids=True),
            small_platform,
            schedule=FaultSchedule(slowdowns=slowdowns),
            policy=HeartbeatTimeout(k=2.0),
            rng=5,
            collect_trace=True,
        )
        stats = result.faults
        assert stats is not None
        assert stats.n_timeouts >= 1
        assert result.trace is not None
        assert len(result.trace.faults_of_kind("timeout")) == stats.n_timeouts
        # Re-issuing the straggler's work beats waiting 50x for it.
        assert result.makespan < 50.0 * base.makespan

    def test_replicate_tail_masks_straggler(self, small_platform):
        base = simulate_faulty(
            _make("DynamicOuter", collect_ids=True), small_platform, schedule=EMPTY, rng=5
        )
        slowdowns = (Slowdown(3, 0.0, base.makespan * 1000.0, 50.0),)
        result = simulate_faulty(
            _make("DynamicOuter", collect_ids=True),
            small_platform,
            schedule=FaultSchedule(slowdowns=slowdowns),
            policy=ReplicateTail(beta=1.0),
            rng=5,
            collect_trace=True,
        )
        stats = result.faults
        assert stats is not None
        assert stats.replicated_tasks >= 1
        assert result.trace is not None
        assert len(result.trace.faults_of_kind("replicate")) >= 1
        assert result.makespan < 50.0 * base.makespan


class TestDeterminism:
    @pytest.mark.parametrize("name", ["DynamicOuter", "RandomOuter", "DynamicMatrix"])
    def test_same_seed_same_result(self, name):
        platform = Platform(uniform_speeds(8, 10, 100, rng=9))
        schedule = FaultSchedule.draw(
            8, 2.0, rng=17, crash_rate=3.0, mean_downtime=0.05, loss_prob=0.02
        )
        runs = [
            simulate_faulty(
                _make(name, collect_ids=True), platform, schedule=schedule, rng=77
            )
            for _ in range(2)
        ]
        _assert_identical(runs[0], runs[1])
        assert runs[0].faults == runs[1].faults

    def test_churn_run_all_strategies_terminate(self):
        platform = Platform(uniform_speeds(6, 10, 100, rng=3))
        schedule = FaultSchedule.draw(6, 2.0, rng=4, crash_rate=2.0, mean_downtime=0.05)
        for name in strategy_names():
            result = simulate_faulty(
                _make(name, collect_ids=True), platform, schedule=schedule, rng=11
            )
            assert result.faults is not None
            assert result.faults.n_restarts <= result.faults.n_crashes
