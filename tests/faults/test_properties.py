"""Property-based tests of the fault engine's correctness contract.

Acceptance criterion of the fault subsystem: under any crash schedule with
eventual worker availability, every task is completed exactly once (the
engine's first-completion bitmap), re-executions are tracked separately,
and the run is a pure function of ``(config, seed)``.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.strategies.registry import make_strategy
from repro.faults import FaultSchedule, simulate_faulty
from repro.platform import Platform

STRATEGY_NAMES = ("DynamicOuter", "RandomOuter", "DynamicOuter2Phases", "DynamicMatrix")

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run(name: str, schedule_seed: int, run_seed: int, crash_rate: float, loss_prob: float):
    platform = Platform([1.0, 2.0, 3.0, 4.0])
    n = 4 if "Matrix" in name else 6
    schedule = FaultSchedule.draw(
        4,
        5.0,
        rng=schedule_seed,
        crash_rate=crash_rate,
        mean_downtime=0.1,
        loss_prob=loss_prob,
    )
    strategy = make_strategy(name, n, collect_ids=True)
    result = simulate_faulty(
        strategy, platform, schedule=schedule, rng=run_seed, collect_trace=True
    )
    return strategy, result


@given(
    name=st.sampled_from(STRATEGY_NAMES),
    schedule_seed=st.integers(0, 2**16),
    run_seed=st.integers(0, 2**16),
    crash_rate=st.floats(0.5, 6.0),
    loss_prob=st.floats(0.0, 0.2),
)
@_SETTINGS
def test_every_task_allocated_and_run_terminates(
    name, schedule_seed, run_seed, crash_rate, loss_prob
):
    strategy, result = _run(name, schedule_seed, run_seed, crash_rate, loss_prob)
    total = strategy.total_tasks
    # Termination is implicit (the call returned).  Coverage: the union of
    # all allocated task ids spans the whole kernel — nothing fell through a
    # crash, a lost message, or a release.
    assert result.trace is not None
    allocated = np.unique(result.trace.all_task_ids())
    assert np.array_equal(allocated, np.arange(total))
    assert result.makespan > 0.0


@given(
    name=st.sampled_from(STRATEGY_NAMES),
    schedule_seed=st.integers(0, 2**16),
    run_seed=st.integers(0, 2**16),
    crash_rate=st.floats(0.5, 6.0),
)
@_SETTINGS
def test_counter_consistency_under_crashes(name, schedule_seed, run_seed, crash_rate):
    strategy, result = _run(name, schedule_seed, run_seed, crash_rate, 0.0)
    stats = result.faults
    assert stats is not None
    assert stats.n_restarts <= stats.n_crashes
    assert stats.n_lost_assignments == 0
    # Crash-only schedules: a released task sits in the pool until it is
    # re-allocated exactly once, and the dead copy never completes — so
    # re-executions match releases one for one and no duplicates arise.
    assert stats.reexecuted_tasks == stats.released_tasks
    assert stats.duplicate_completions == 0
    assert stats.wasted_blocks >= 0
    assert stats.lost_cache_blocks >= 0
    # Every executed task beyond the kernel's total is a tracked re-execution.
    assert result.total_tasks == strategy.total_tasks + stats.reexecuted_tasks


@given(
    name=st.sampled_from(STRATEGY_NAMES),
    schedule_seed=st.integers(0, 2**12),
    run_seed=st.integers(0, 2**12),
)
@_SETTINGS
def test_determinism(name, schedule_seed, run_seed):
    _, a = _run(name, schedule_seed, run_seed, 3.0, 0.05)
    _, b = _run(name, schedule_seed, run_seed, 3.0, 0.05)
    assert a.total_blocks == b.total_blocks
    assert a.makespan == b.makespan
    assert a.faults == b.faults
    assert np.array_equal(a.per_worker_blocks, b.per_worker_blocks)
