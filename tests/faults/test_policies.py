"""Tests for the recovery policies."""

import math

import numpy as np
import pytest

from repro.core.analysis.beta import agnostic_beta
from repro.core.strategies import OuterDynamic, OuterTwoPhase
from repro.faults.policies import (
    HeartbeatTimeout,
    ReassignLost,
    RecoveryPolicy,
    ReplicateTail,
)
from repro.platform import Platform


@pytest.fixture
def bound_strategy(small_platform, rng):
    strategy = OuterDynamic(6, collect_ids=True)
    strategy.reset(small_platform, rng)
    return strategy


class TestBaseAndReassign:
    def test_defaults_are_noops(self, bound_strategy, small_platform):
        policy = ReassignLost()
        policy.reset(bound_strategy, small_platform)
        assert policy.timeout_deadline(0, 1.0, 2.0) is None
        completed = np.zeros(36, dtype=bool)
        assert policy.tail_replicas(0, 1.0, [None] * 4, completed, 0) is None
        policy.register_timeout(0)  # no-op, must not raise

    def test_needs_task_ids_flags(self):
        assert RecoveryPolicy.needs_task_ids is False
        assert ReassignLost.needs_task_ids is False
        assert HeartbeatTimeout.needs_task_ids is True
        assert ReplicateTail.needs_task_ids is True


class TestHeartbeatTimeout:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatTimeout(k=1.0)
        with pytest.raises(ValueError):
            HeartbeatTimeout(k=0.5)
        with pytest.raises(ValueError):
            HeartbeatTimeout(backoff=0.5)
        HeartbeatTimeout(k=1.5, backoff=1.0)  # minimal legal values

    def test_deadline_math(self, bound_strategy, small_platform):
        policy = HeartbeatTimeout(k=3.0, backoff=2.0)
        policy.reset(bound_strategy, small_platform)
        assert policy.timeout_deadline(0, 10.0, 2.0) == 10.0 + 3.0 * 2.0
        policy.register_timeout(0)
        assert policy.timeout_deadline(0, 10.0, 2.0) == 10.0 + 6.0 * 2.0
        policy.register_timeout(0)
        assert policy.timeout_deadline(0, 10.0, 2.0) == 10.0 + 12.0 * 2.0
        # Other workers keep their own attempt count.
        assert policy.timeout_deadline(1, 10.0, 2.0) == 10.0 + 3.0 * 2.0

    def test_no_deadline_for_zero_duration(self, bound_strategy, small_platform):
        policy = HeartbeatTimeout()
        policy.reset(bound_strategy, small_platform)
        assert policy.timeout_deadline(0, 1.0, 0.0) is None

    def test_reset_clears_attempts(self, bound_strategy, small_platform):
        policy = HeartbeatTimeout(k=3.0, backoff=2.0)
        policy.reset(bound_strategy, small_platform)
        policy.register_timeout(0)
        policy.reset(bound_strategy, small_platform)
        assert policy.timeout_deadline(0, 0.0, 1.0) == 3.0


class TestReplicateTail:
    def test_beta_validation(self):
        with pytest.raises(ValueError):
            ReplicateTail(beta=0.0)
        with pytest.raises(ValueError):
            ReplicateTail(beta=-1.0)

    def test_threshold_from_explicit_beta(self, bound_strategy, small_platform):
        policy = ReplicateTail(beta=2.0)
        policy.reset(bound_strategy, small_platform)
        total = bound_strategy.total_tasks
        assert policy.threshold == max(1, round(math.exp(-2.0) * total))

    def test_threshold_defaults_to_agnostic_beta(self, small_platform, rng):
        strategy = OuterTwoPhase(8, collect_ids=True)
        strategy.reset(small_platform, rng)
        policy = ReplicateTail()
        policy.reset(strategy, small_platform)
        beta = agnostic_beta("outer", small_platform.p, 8)
        assert policy.threshold == max(1, round(math.exp(-beta) * 64))

    def test_use_before_reset_raises(self):
        policy = ReplicateTail(beta=1.0)
        with pytest.raises(RuntimeError):
            policy.tail_replicas(0, 0.0, [None], np.zeros(4, dtype=bool), 0)

    def test_replicates_largest_tail_once(self, bound_strategy, small_platform):
        policy = ReplicateTail(beta=1.0)
        policy.reset(bound_strategy, small_platform)
        total = bound_strategy.total_tasks
        completed = np.ones(total, dtype=bool)
        completed[:5] = False
        inflight = [None, np.array([0, 1]), np.array([2, 3, 4]), None]
        n_completed = total - 5
        got = policy.tail_replicas(0, 1.0, inflight, completed, n_completed)
        # Worker 2 holds the most uncompleted candidates (three vs two).
        assert got is not None
        assert sorted(got.tolist()) == [2, 3, 4]
        # Already-duplicated tasks are not offered again.
        again = policy.tail_replicas(3, 1.0, inflight, completed, n_completed)
        assert again is not None
        assert sorted(again.tolist()) == [0, 1]
        assert policy.tail_replicas(0, 1.0, inflight, completed, n_completed) is None

    def test_inert_above_threshold(self, bound_strategy, small_platform):
        policy = ReplicateTail(beta=3.0)
        policy.reset(bound_strategy, small_platform)
        total = bound_strategy.total_tasks
        completed = np.zeros(total, dtype=bool)
        inflight = [None, np.arange(5), None, None]
        assert policy.tail_replicas(0, 0.0, inflight, completed, 0) is None

    def test_never_offers_own_inflight(self, bound_strategy, small_platform):
        policy = ReplicateTail(beta=1.0)
        policy.reset(bound_strategy, small_platform)
        total = bound_strategy.total_tasks
        completed = np.ones(total, dtype=bool)
        completed[:2] = False
        inflight = [np.array([0, 1]), None, None, None]
        assert policy.tail_replicas(0, 0.0, inflight, completed, total - 2) is None
