"""Tests for the pre-drawn fault models."""

import pytest

from repro.faults.models import AssignmentLoss, FaultSchedule, Slowdown, WorkerCrash


class TestEventValidation:
    def test_crash_fields(self):
        c = WorkerCrash(3, 1.5, 0.5)
        assert c.restart_time == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"worker": -1, "time": 0.0, "downtime": 1.0},
            {"worker": 0, "time": -0.1, "downtime": 1.0},
            {"worker": 0, "time": 0.0, "downtime": 0.0},
            {"worker": 0, "time": 0.0, "downtime": -1.0},
        ],
    )
    def test_crash_rejects(self, kwargs):
        with pytest.raises(ValueError):
            WorkerCrash(**kwargs)

    def test_slowdown_fields(self):
        s = Slowdown(0, 1.0, 2.0, 3.0)
        assert s.end == 3.0

    @pytest.mark.parametrize("factor", [0.0, 0.5, -2.0])
    def test_slowdown_rejects_factor_below_one(self, factor):
        with pytest.raises(ValueError):
            Slowdown(0, 0.0, 1.0, factor)

    def test_loss_rejects_negative(self):
        with pytest.raises(ValueError):
            AssignmentLoss(0, -1)
        with pytest.raises(ValueError):
            AssignmentLoss(-1, 0)


class TestSchedule:
    def test_empty(self):
        s = FaultSchedule.empty()
        assert s.is_empty
        assert len(s) == 0
        assert s.max_worker == -1

    def test_normalizes_order(self):
        a = FaultSchedule(crashes=(WorkerCrash(1, 5.0, 1.0), WorkerCrash(0, 2.0, 1.0)))
        b = FaultSchedule(crashes=(WorkerCrash(0, 2.0, 1.0), WorkerCrash(1, 5.0, 1.0)))
        assert a == b
        assert a.crashes[0].worker == 0

    def test_rejects_overlapping_crashes(self):
        with pytest.raises(ValueError, match="already down"):
            FaultSchedule(crashes=(WorkerCrash(0, 1.0, 5.0), WorkerCrash(0, 3.0, 1.0)))

    def test_back_to_back_crashes_ok(self):
        s = FaultSchedule(crashes=(WorkerCrash(0, 1.0, 1.0), WorkerCrash(0, 2.0, 1.0)))
        assert len(s) == 2

    def test_rejects_duplicate_losses(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultSchedule(losses=(AssignmentLoss(0, 3), AssignmentLoss(0, 3)))

    def test_max_worker(self):
        s = FaultSchedule(
            crashes=(WorkerCrash(2, 1.0, 1.0),),
            slowdowns=(Slowdown(5, 0.0, 1.0, 2.0),),
            losses=(AssignmentLoss(1, 0),),
        )
        assert s.max_worker == 5


class TestDraw:
    def test_empty_rates_give_empty_schedule(self):
        assert FaultSchedule.draw(8, 10.0, rng=0).is_empty

    def test_deterministic_given_seed(self):
        a = FaultSchedule.draw(6, 50.0, rng=42, crash_rate=0.2, loss_prob=0.1, slowdown_rate=0.1)
        b = FaultSchedule.draw(6, 50.0, rng=42, crash_rate=0.2, loss_prob=0.1, slowdown_rate=0.1)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultSchedule.draw(6, 50.0, rng=1, crash_rate=0.5)
        b = FaultSchedule.draw(6, 50.0, rng=2, crash_rate=0.5)
        assert a != b

    def test_per_worker_streams_invariant_under_p(self):
        """Adding workers must not perturb existing workers' faults."""
        small = FaultSchedule.draw(4, 50.0, rng=7, crash_rate=0.3, slowdown_rate=0.2, loss_prob=0.05)
        big = FaultSchedule.draw(9, 50.0, rng=7, crash_rate=0.3, slowdown_rate=0.2, loss_prob=0.05)
        for w in range(4):
            assert [c for c in small.crashes if c.worker == w] == [
                c for c in big.crashes if c.worker == w
            ]
            assert [s for s in small.slowdowns if s.worker == w] == [
                s for s in big.slowdowns if s.worker == w
            ]
            assert [x for x in small.losses if x.worker == w] == [
                x for x in big.losses if x.worker == w
            ]

    def test_crashes_within_horizon(self):
        s = FaultSchedule.draw(5, 20.0, rng=3, crash_rate=1.0)
        assert s.crashes
        assert all(0.0 <= c.time < 20.0 for c in s.crashes)
        assert all(c.downtime > 0.0 for c in s.crashes)

    def test_no_overlap_in_drawn_crashes(self):
        # __post_init__ would raise if draw produced overlapping intervals.
        s = FaultSchedule.draw(3, 100.0, rng=11, crash_rate=5.0, mean_downtime=0.5)
        assert len(s.crashes) > 10

    def test_loss_prob_one_loses_everything(self):
        s = FaultSchedule.draw(2, 1.0, rng=0, loss_prob=1.0, max_requests=10)
        assert len(s.losses) == 20
        indices = sorted(x.request_index for x in s.losses if x.worker == 0)
        assert indices == list(range(10))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FaultSchedule.draw(0, 1.0)
        with pytest.raises(ValueError):
            FaultSchedule.draw(2, 0.0)
        with pytest.raises(ValueError):
            FaultSchedule.draw(2, 1.0, crash_rate=-1.0)
        with pytest.raises(ValueError):
            FaultSchedule.draw(2, 1.0, loss_prob=1.5)
        with pytest.raises(ValueError):
            FaultSchedule.draw(2, 1.0, slowdown_factor=0.5)


class TestScaled:
    def test_scales_times_not_indices(self):
        s = FaultSchedule(
            crashes=(WorkerCrash(0, 1.0, 2.0),),
            slowdowns=(Slowdown(1, 3.0, 1.0, 4.0),),
            losses=(AssignmentLoss(2, 5),),
        )
        doubled = s.scaled(2.0)
        assert doubled.crashes[0].time == 2.0
        assert doubled.crashes[0].downtime == 4.0
        assert doubled.slowdowns[0].start == 6.0
        assert doubled.slowdowns[0].factor == 4.0  # severity untouched
        assert doubled.losses == s.losses

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            FaultSchedule.empty().scaled(0.0)
