"""Tests for the dependency-aware Cholesky simulator and its schedulers."""

import numpy as np
import pytest

from repro.extensions.cholesky import (
    CholeskyDag,
    LocalityScheduler,
    RandomScheduler,
    replay_cholesky,
    simulate_cholesky,
    task_counts,
)
from repro.extensions.cholesky.numerics import random_spd
from repro.platform import Platform


@pytest.fixture
def platform():
    return Platform([10.0, 20.0, 30.0, 40.0])


class TestSimulation:
    @pytest.mark.parametrize("scheduler", [RandomScheduler(), LocalityScheduler()])
    def test_all_tasks_complete(self, platform, scheduler):
        n = 8
        result = simulate_cholesky(n, platform, scheduler, rng=0)
        assert result.total_tasks == sum(task_counts(n).values())

    def test_n1(self, platform):
        result = simulate_cholesky(1, platform, rng=0)
        assert result.total_tasks == 1
        assert result.total_blocks == 1  # the single tile reaches one worker

    def test_schedule_is_topological(self, platform):
        n = 7
        result = simulate_cholesky(n, platform, rng=1)
        dag = CholeskyDag(n)
        pos = {tid: i for i, (_, _, tid) in enumerate(result.schedule)}
        assert len(pos) == len(dag)
        for t, succs in enumerate(dag.successors):
            for s in succs:
                assert pos[t] < pos[s]

    def test_schedule_times_nondecreasing(self, platform):
        result = simulate_cholesky(6, platform, rng=1)
        times = [s[0] for s in result.schedule]
        assert times == sorted(times)

    def test_deterministic(self, platform):
        a = simulate_cholesky(8, platform, rng=3)
        b = simulate_cholesky(8, platform, rng=3)
        assert a.total_blocks == b.total_blocks
        assert a.makespan == b.makespan
        assert a.schedule == b.schedule

    def test_makespan_at_least_critical_path(self, platform):
        """Makespan >= critical path work / fastest speed."""
        n = 8
        result = simulate_cholesky(n, platform, rng=0)
        dag = CholeskyDag(n)
        cp = max(dag.priority)
        assert result.makespan >= cp / platform.speeds.max() - 1e-9

    def test_idle_time_nonnegative(self, platform):
        result = simulate_cholesky(8, platform, rng=0)
        assert result.idle_time >= 0.0

    def test_comm_lower_bound(self, platform):
        """Every lower-triangular tile must be fetched at least once."""
        n = 8
        result = simulate_cholesky(n, platform, rng=0)
        n_tiles = n * (n + 1) // 2
        assert result.total_blocks >= n_tiles


class TestSchedulerComparison:
    def test_locality_reduces_communication(self, platform):
        n = 12
        rnd = np.mean(
            [simulate_cholesky(n, platform, RandomScheduler(), rng=s).total_blocks for s in range(3)]
        )
        loc = np.mean(
            [simulate_cholesky(n, platform, LocalityScheduler(), rng=s).total_blocks for s in range(3)]
        )
        assert loc < rnd

    def test_single_worker_minimal_comm(self):
        """One worker fetches each tile exactly once: n(n+1)/2 blocks."""
        pf = Platform([5.0])
        n = 6
        result = simulate_cholesky(n, pf, LocalityScheduler(), rng=0)
        assert result.total_blocks == n * (n + 1) // 2


class TestNumericalReplay:
    @pytest.mark.parametrize("scheduler", [RandomScheduler(), LocalityScheduler()])
    def test_factorization_correct(self, platform, scheduler):
        n, l = 6, 4
        a = random_spd(n * l, rng=7)
        replay = replay_cholesky(a, n, platform, scheduler, rng=1)
        assert replay.max_abs_error < 1e-8
        assert replay.max_factor_error < 1e-8
        assert np.allclose(replay.factor @ replay.factor.T, a)

    def test_factor_lower_triangular(self, platform):
        a = random_spd(24, rng=8)
        replay = replay_cholesky(a, 4, platform, rng=0)
        assert np.allclose(replay.factor, np.tril(replay.factor))

    def test_shape_validation(self, platform):
        with pytest.raises(ValueError):
            replay_cholesky(np.eye(10), 3, platform)  # 10 not divisible by 3
        with pytest.raises(ValueError):
            replay_cholesky(np.ones((4, 5)), 2, platform)
