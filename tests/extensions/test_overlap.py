"""Tests for the bandwidth-limited overlap extension."""

import math

import numpy as np
import pytest

from repro.core.strategies import OuterDynamic, OuterRandom, OuterTwoPhase
from repro.extensions.overlap import (
    critical_bandwidth,
    overlap_study,
    simulate_with_bandwidth,
)
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate


@pytest.fixture
def platform():
    return Platform(uniform_speeds(10, 10, 100, rng=0))


class TestEngineBasics:
    def test_all_tasks_processed(self, platform):
        n = 20
        r = simulate_with_bandwidth(OuterDynamic(n), platform, bandwidth=50.0, rng=1)
        assert r.total_tasks == n * n
        assert r.per_worker_tasks.sum() == n * n

    def test_infinite_bandwidth_volume_matches_paper_engine(self, platform):
        """With B = inf the shipped volume equals the volume-only engine's
        (same strategy dynamics; only event interleaving differs)."""
        n = 24
        vol = simulate(OuterRandom(n), platform, rng=2).total_blocks
        ovl = simulate_with_bandwidth(OuterRandom(n), platform, bandwidth=math.inf, rng=2).total_blocks
        # RandomOuter totals depend on who processes what; allow small drift.
        assert ovl == pytest.approx(vol, rel=0.10)

    def test_deterministic(self, platform):
        a = simulate_with_bandwidth(OuterDynamic(16), platform, bandwidth=30.0, rng=5)
        b = simulate_with_bandwidth(OuterDynamic(16), platform, bandwidth=30.0, rng=5)
        assert a.total_blocks == b.total_blocks
        assert a.makespan == b.makespan

    def test_makespan_at_least_ideal(self, platform):
        r = simulate_with_bandwidth(OuterDynamic(16), platform, bandwidth=10.0, rng=0)
        assert r.makespan >= r.ideal_makespan - 1e-9
        assert r.slowdown >= 1.0

    def test_link_busy_time_accounting(self, platform):
        b = 25.0
        r = simulate_with_bandwidth(OuterDynamic(16), platform, bandwidth=b, rng=0)
        assert r.link_busy_time == pytest.approx(r.total_blocks / b)

    def test_makespan_at_least_transfer_time(self, platform):
        """The serial link is a hard floor: makespan >= V / B."""
        b = 5.0
        r = simulate_with_bandwidth(OuterDynamic(16), platform, bandwidth=b, rng=0)
        assert r.makespan >= r.total_blocks / b - 1e-9

    def test_idle_fraction_bounds(self, platform):
        r = simulate_with_bandwidth(OuterDynamic(16), platform, bandwidth=20.0, rng=0)
        assert 0.0 <= r.mean_idle_fraction <= 1.0

    def test_validation(self, platform):
        with pytest.raises(ValueError):
            simulate_with_bandwidth(OuterDynamic(4), platform, bandwidth=0.0)
        with pytest.raises(ValueError):
            simulate_with_bandwidth(OuterDynamic(4), platform, bandwidth=-1.0)
        with pytest.raises(ValueError):
            simulate_with_bandwidth(OuterDynamic(4), platform, bandwidth=1.0, prefetch_tasks=-1)


class TestBandwidthRegimes:
    def test_communication_bound_below_critical(self, platform):
        """At B = B*/2 the run must be ~2x slower than the compute ideal."""
        n = 40
        b_star = critical_bandwidth(lambda: OuterTwoPhase(n), platform, rng=1)
        r = simulate_with_bandwidth(
            OuterTwoPhase(n), platform, bandwidth=0.5 * b_star, prefetch_tasks=2, rng=1
        )
        assert r.slowdown >= 1.8

    def test_overlap_achievable_above_critical(self, platform):
        """At B = 4 B* with a small prefetch, slowdown is close to the
        volume-only engine's own tail (< ~1.4)."""
        n = 40
        b_star = critical_bandwidth(lambda: OuterTwoPhase(n), platform, rng=1)
        r = simulate_with_bandwidth(
            OuterTwoPhase(n), platform, bandwidth=4.0 * b_star, prefetch_tasks=2, rng=1
        )
        assert r.slowdown < 1.5

    def test_small_prefetch_suffices(self, platform):
        """The paper's observation: going beyond a tiny prefetch depth buys
        nothing once bandwidth is adequate."""
        n = 40
        b_star = critical_bandwidth(lambda: OuterTwoPhase(n), platform, rng=1)
        run = lambda depth: simulate_with_bandwidth(  # noqa: E731
            OuterTwoPhase(n), platform, bandwidth=2.0 * b_star, prefetch_tasks=depth, rng=1
        ).slowdown
        assert run(2) <= run(0) * 1.25
        # Over-prefetching commits work too early and hurts the tail.
        assert run(64) >= run(2) * 0.9


class TestStarTopology:
    def test_slow_downlink_slows_run(self, platform):
        """One crippled worker downlink must not speed anything up."""
        n = 24
        uniform = simulate_with_bandwidth(OuterDynamic(n), platform, bandwidth=100.0, rng=3)
        slow = np.full(platform.p, 1e9)
        slow[0] = 1.0  # worker 0 nearly cut off
        star = simulate_with_bandwidth(
            OuterDynamic(n), platform, bandwidth=100.0, worker_bandwidths=slow, rng=3
        )
        assert star.makespan >= uniform.makespan * 0.99

    def test_fast_downlinks_equivalent_to_bus(self, platform):
        """Downlinks faster than the NIC change nothing."""
        n = 20
        bus = simulate_with_bandwidth(OuterDynamic(n), platform, bandwidth=50.0, rng=4)
        star = simulate_with_bandwidth(
            OuterDynamic(n),
            platform,
            bandwidth=50.0,
            worker_bandwidths=np.full(platform.p, 1e12),
            rng=4,
        )
        assert star.makespan == pytest.approx(bus.makespan)
        assert star.total_blocks == bus.total_blocks

    def test_validation(self, platform):
        with pytest.raises(ValueError, match="one entry per worker"):
            simulate_with_bandwidth(
                OuterDynamic(4), platform, bandwidth=1.0, worker_bandwidths=np.ones(3)
            )
        with pytest.raises(ValueError, match="positive"):
            simulate_with_bandwidth(
                OuterDynamic(4),
                platform,
                bandwidth=1.0,
                worker_bandwidths=np.zeros(platform.p),
            )


class TestStudy:
    def test_critical_bandwidth_positive(self, platform):
        assert critical_bandwidth(lambda: OuterDynamic(16), platform, rng=0) > 0

    def test_study_structure(self, platform):
        study = overlap_study(
            lambda: OuterDynamic(16),
            platform,
            bandwidth_factors=(1.0, 2.0),
            prefetch_depths=(0, 2),
            rng=0,
        )
        assert set(study) == {1.0, 2.0}
        for row in study.values():
            assert len(row) == 2
            assert all(r.total_tasks == 256 for r in row)

    def test_study_bandwidth_ordering(self, platform):
        """More bandwidth never makes the best-over-depths slowdown worse."""
        study = overlap_study(
            lambda: OuterTwoPhase(30),
            platform,
            bandwidth_factors=(0.5, 4.0),
            prefetch_depths=(0, 2, 4),
            rng=3,
        )
        best_low = min(r.slowdown for r in study[0.5])
        best_high = min(r.slowdown for r in study[4.0])
        assert best_high <= best_low
