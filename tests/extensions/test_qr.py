"""Tests for the tiled-QR extension."""

import numpy as np
import pytest

from repro.extensions.qr import (
    LocalityScheduler,
    QrDag,
    QrTaskType,
    RandomScheduler,
    qr_task_counts,
    replay_qr,
    simulate_qr,
)
from repro.platform import Platform


@pytest.fixture
def platform():
    return Platform([10.0, 25.0, 40.0, 55.0])


class TestDag:
    @pytest.mark.parametrize("n", [1, 2, 3, 6])
    def test_counts(self, n):
        counts = qr_task_counts(n)
        assert counts[QrTaskType.GEQRT] == n
        assert counts[QrTaskType.UNMQR] == n * (n - 1) // 2
        assert counts[QrTaskType.TSQRT] == n * (n - 1) // 2
        assert counts[QrTaskType.TSMQR] == (n - 1) * n * (2 * n - 1) // 6
        assert len(QrDag(n)) == sum(counts.values())

    def test_n1(self):
        dag = QrDag(1)
        assert len(dag) == 1
        assert dag.tasks[0].kind is QrTaskType.GEQRT

    def test_only_first_geqrt_ready(self):
        dag = QrDag(5)
        ready = dag.initial_ready()
        assert len(ready) == 1
        assert dag.tasks[ready[0]].kind is QrTaskType.GEQRT
        assert dag.tasks[ready[0]].k == 0

    def test_acyclic_and_edges_consistent(self):
        dag = QrDag(5)
        order = dag._topological_order()
        assert sorted(order) == list(range(len(dag)))
        assert sum(len(s) for s in dag.successors) == sum(dag.n_deps)

    def test_tsqrt_writes_two_tiles(self):
        dag = QrDag(4)
        t = dag.tasks[dag.task_id(QrTaskType.TSQRT, 2, 0, 0)]
        assert t.writes == (2, 0)
        assert t.extra_writes == ((0, 0),)

    def test_tsmqr_reads_and_writes(self):
        dag = QrDag(5)
        t = dag.tasks[dag.task_id(QrTaskType.TSMQR, 3, 2, 1)]
        assert set(t.reads) == {(3, 1), (1, 2), (3, 2)}
        assert t.writes == (3, 2)
        assert t.extra_writes == ((1, 2),)

    def test_priorities_decrease_along_edges(self):
        dag = QrDag(5)
        for t, succs in enumerate(dag.successors):
            for s in succs:
                assert dag.priority[t] > dag.priority[s]


class TestSimulation:
    @pytest.mark.parametrize("scheduler", [RandomScheduler(), LocalityScheduler()])
    def test_all_tasks_complete(self, platform, scheduler):
        n = 7
        result = simulate_qr(n, platform, scheduler, rng=0)
        assert result.total_tasks == sum(qr_task_counts(n).values())

    def test_schedule_is_topological(self, platform):
        n = 6
        result = simulate_qr(n, platform, rng=1)
        dag = QrDag(n)
        pos = {tid: i for i, (_, _, tid) in enumerate(result.schedule)}
        for t, succs in enumerate(dag.successors):
            for s in succs:
                assert pos[t] < pos[s]

    def test_deterministic(self, platform):
        a = simulate_qr(6, platform, rng=4)
        b = simulate_qr(6, platform, rng=4)
        assert a.total_blocks == b.total_blocks
        assert a.schedule == b.schedule

    def test_locality_reduces_communication(self, platform):
        n = 10
        rnd = np.mean([simulate_qr(n, platform, RandomScheduler(), rng=s).total_blocks for s in range(3)])
        loc = np.mean([simulate_qr(n, platform, LocalityScheduler(), rng=s).total_blocks for s in range(3)])
        assert loc < rnd

    def test_single_worker_minimal_comm(self):
        """One worker fetches each of the n^2 tiles exactly once."""
        pf = Platform([3.0])
        n = 5
        result = simulate_qr(n, pf, LocalityScheduler(), rng=0)
        assert result.total_blocks == n * n


class TestNumericalReplay:
    @pytest.mark.parametrize("scheduler", [RandomScheduler(), LocalityScheduler()])
    def test_factorization_correct(self, platform, scheduler):
        n, l = 6, 4
        a = np.random.default_rng(9).normal(size=(n * l, n * l))
        replay = replay_qr(a, n, platform, scheduler, rng=1)
        assert replay.gram_error < 1e-12
        assert replay.triangularity_error < 1e-12
        assert replay.r_match_error < 1e-10

    def test_r_matches_reference_up_to_signs(self, platform):
        n, l = 4, 3
        a = np.random.default_rng(10).normal(size=(n * l, n * l))
        replay = replay_qr(a, n, platform, rng=0)
        r_ref = np.linalg.qr(a, mode="reduced")[1]
        assert np.allclose(np.abs(np.triu(replay.r_factor)), np.abs(r_ref))

    def test_shape_validation(self, platform):
        with pytest.raises(ValueError):
            replay_qr(np.eye(10), 3, platform)
        with pytest.raises(ValueError):
            replay_qr(np.ones((4, 6)), 2, platform)
