"""Focused unit tests of the generic DAG engine's cache semantics."""

from repro.extensions.dagsched import LocalityScheduler, RandomScheduler, simulate_dag
from repro.platform import Platform


class T:
    """Minimal task: reads/writes tiles, unit work."""

    __slots__ = ("reads", "writes", "extra_writes", "work")

    def __init__(self, reads, writes, extra=(), work=1.0):
        self.reads = tuple(reads)
        self.writes = writes
        self.extra_writes = tuple(extra)
        self.work = work


class Dag:
    def __init__(self, tasks, edges):
        self.tasks = tasks
        self.successors = [[] for _ in tasks]
        self.n_deps = [0] * len(tasks)
        for s, d in edges:
            self.successors[s].append(d)
            self.n_deps[d] += 1
        self.priority = [1.0] * len(tasks)

    def initial_ready(self):
        return [t for t, d in enumerate(self.n_deps) if d == 0]


class TestCacheSemantics:
    def test_fork_join_fetch_count(self):
        """Two parallel writers + a joiner: the joiner must fetch the tile
        it does not hold plus its own output tile."""
        tasks = [
            T(reads=[], writes="X"),
            T(reads=[], writes="Y"),
            T(reads=["X", "Y"], writes="Z"),
        ]
        dag = Dag(tasks, [(0, 2), (1, 2)])
        pf = Platform([1.0, 1.0])
        result = simulate_dag(dag, pf, RandomScheduler(), rng=0)
        # Writers fetch X and Y (1 each); the joiner holds exactly one of
        # X/Y (it executed one of the writers) and fetches the other + Z.
        assert result.total_blocks == 4
        assert result.total_tasks == 3

    def test_write_invalidation_forces_refetch(self):
        """A reader on another worker must re-fetch a tile after a write.

        Chain on one tile: T0 writes X (worker A), T1 rewrites X.  With a
        single worker there is exactly one fetch; the invalidation path is
        exercised by the chain landing on the same worker (no refetch) —
        and the fork case above covers the cross-worker fetch.
        """
        tasks = [T(reads=[], writes="X"), T(reads=["X"], writes="X")]
        dag = Dag(tasks, [(0, 1)])
        pf = Platform([1.0])
        result = simulate_dag(dag, pf, LocalityScheduler(), rng=0)
        assert result.total_blocks == 1  # X fetched once, then resident

    def test_extra_writes_fetched_and_owned(self):
        """A task with extra_writes must have both tiles resident."""
        tasks = [T(reads=[], writes="A", extra=("B",))]
        dag = Dag(tasks, [])
        pf = Platform([1.0])
        result = simulate_dag(dag, pf, rng=0)
        assert result.total_blocks == 2  # A and B both fetched

    def test_chain_rotates_under_fifo_demand(self):
        """A pure chain over one tile *rotates* across workers.

        The engine is FIFO demand-driven: workers idle since t=0 hold
        older requests than the just-finished worker, so each chain link
        goes to the longest-idle worker and the tile is re-fetched every
        hop (write-invalidate).  The locality *policy* cannot prevent this
        — it picks the task for a given worker, not the worker for a task
        — which is exactly the kind of effect the paper's demand-driven
        model exhibits on dependency chains.
        """
        tasks = [T(reads=["X"], writes="X") for _ in range(6)]
        edges = [(i, i + 1) for i in range(5)]
        dag = Dag(tasks, edges)
        pf = Platform([1.0, 1.0, 1.0])
        result = simulate_dag(dag, pf, LocalityScheduler(), rng=0)
        assert result.total_blocks == 6  # one fetch per hop
        assert [w for _, w, _ in result.schedule] == [0, 1, 2, 0, 1, 2]

    def test_chain_stays_local_single_worker(self):
        """With one worker the chain is resident: a single fetch."""
        tasks = [T(reads=["X"], writes="X") for _ in range(6)]
        dag = Dag(tasks, [(i, i + 1) for i in range(5)])
        result = simulate_dag(dag, Platform([1.0]), LocalityScheduler(), rng=0)
        assert result.total_blocks == 1

    def test_prefer_finishing_worker_keeps_chain_local(self):
        """The engine knob: serving the finisher first keeps chains local."""
        tasks = [T(reads=["X"], writes="X") for _ in range(6)]
        dag = Dag(tasks, [(i, i + 1) for i in range(5)])
        pf = Platform([1.0, 1.0, 1.0])
        result = simulate_dag(
            dag, pf, LocalityScheduler(), rng=0, prefer_finishing_worker=True
        )
        assert result.total_blocks == 1
        assert len({w for _, w, _ in result.schedule}) == 1

    def test_prefer_finishing_worker_on_cholesky(self):
        """On a real factorization the knob must not lose tasks and should
        not increase communication."""
        from repro.extensions.cholesky import CholeskyDag

        dag = CholeskyDag(10)
        pf = Platform([10.0, 20.0, 30.0])
        fifo = simulate_dag(dag, pf, LocalityScheduler(), rng=1)
        warm = simulate_dag(
            CholeskyDag(10), pf, LocalityScheduler(), rng=1, prefer_finishing_worker=True
        )
        assert warm.total_tasks == fifo.total_tasks
        assert warm.total_blocks <= fifo.total_blocks * 1.05

    def test_idle_workers_wake_fifo(self):
        """Workers idle since t=0 are woken in FIFO order on a fan-out."""
        tasks = [T(reads=[], writes="R")] + [T(reads=["R"], writes=f"o{i}") for i in range(3)]
        dag = Dag(tasks, [(0, i + 1) for i in range(3)])
        pf = Platform([1.0, 1.0, 1.0, 1.0])
        result = simulate_dag(dag, pf, RandomScheduler(), rng=0)
        # Root runs on worker 0; fan-out tasks wake idle workers 1, 2, 3.
        fan_workers = [w for _, w, tid in result.schedule if tid != 0]
        assert sorted(fan_workers) == [1, 2, 3]
        assert result.idle_time > 0
