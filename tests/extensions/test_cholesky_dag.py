"""Tests for the blocked-Cholesky task DAG."""

import pytest

from repro.extensions.cholesky.dag import CholeskyDag, TaskType, task_counts


class TestTaskCounts:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10])
    def test_closed_forms(self, n):
        counts = task_counts(n)
        assert counts[TaskType.POTRF] == n
        assert counts[TaskType.TRSM] == n * (n - 1) // 2
        assert counts[TaskType.SYRK] == n * (n - 1) // 2
        assert counts[TaskType.GEMM] == n * (n - 1) * (n - 2) // 6

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_dag_matches_counts(self, n):
        dag = CholeskyDag(n)
        counts = task_counts(n)
        assert len(dag) == sum(counts.values())
        by_kind = {}
        for t in dag.tasks:
            by_kind[t.kind] = by_kind.get(t.kind, 0) + 1
        assert by_kind == {k: v for k, v in counts.items() if v > 0}

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            task_counts(0)
        with pytest.raises(ValueError):
            CholeskyDag(-1)


class TestStructure:
    def test_n1_single_task(self):
        dag = CholeskyDag(1)
        assert len(dag) == 1
        assert dag.tasks[0].kind is TaskType.POTRF
        assert dag.initial_ready() == [0]

    def test_only_first_potrf_initially_ready(self):
        dag = CholeskyDag(6)
        ready = dag.initial_ready()
        assert len(ready) == 1
        assert dag.tasks[ready[0]].kind is TaskType.POTRF
        assert dag.tasks[ready[0]].k == 0

    def test_dependency_counts_consistent(self):
        dag = CholeskyDag(5)
        # Total edges out == total in-degrees.
        assert sum(len(s) for s in dag.successors) == sum(dag.n_deps)

    def test_acyclic_topological_order(self):
        dag = CholeskyDag(6)
        order = dag._topological_order()
        assert sorted(order) == list(range(len(dag)))
        pos = {t: i for i, t in enumerate(order)}
        for t, succs in enumerate(dag.successors):
            for s in succs:
                assert pos[t] < pos[s]

    def test_trsm_depends_on_potrf(self):
        dag = CholeskyDag(4)
        potrf0 = dag.task_id(TaskType.POTRF, 0, 0, 0)
        trsm = dag.task_id(TaskType.TRSM, 2, 0, 0)
        assert trsm in dag.successors[potrf0]

    def test_gemm_reads_and_writes(self):
        dag = CholeskyDag(5)
        t = dag.tasks[dag.task_id(TaskType.GEMM, 3, 2, 1)]
        assert set(t.reads) == {(3, 1), (2, 1), (3, 2)}
        assert t.writes == (3, 2)

    def test_priorities_decrease_along_edges(self):
        """Upward ranks must strictly decrease from predecessor to successor."""
        dag = CholeskyDag(5)
        for t, succs in enumerate(dag.successors):
            for s in succs:
                assert dag.priority[t] > dag.priority[s]

    def test_first_potrf_on_critical_path(self):
        dag = CholeskyDag(6)
        first = dag.task_id(TaskType.POTRF, 0, 0, 0)
        assert dag.priority[first] == max(dag.priority)
