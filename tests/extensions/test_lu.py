"""Tests for the tiled-LU extension."""

import numpy as np
import pytest

from repro.extensions.lu import (
    LocalityScheduler,
    LuDag,
    LuTaskType,
    RandomScheduler,
    lu_task_counts,
    random_dd,
    replay_lu,
    simulate_lu,
)
from repro.platform import Platform


@pytest.fixture
def platform():
    return Platform([15.0, 30.0, 45.0])


class TestDag:
    @pytest.mark.parametrize("n", [1, 2, 3, 6])
    def test_counts(self, n):
        counts = lu_task_counts(n)
        assert counts[LuTaskType.GETRF] == n
        assert counts[LuTaskType.TRSM_U] == n * (n - 1) // 2
        assert counts[LuTaskType.TRSM_L] == n * (n - 1) // 2
        assert counts[LuTaskType.GEMM] == (n - 1) * n * (2 * n - 1) // 6
        assert len(LuDag(n)) == sum(counts.values())

    def test_n1(self):
        dag = LuDag(1)
        assert len(dag) == 1
        assert dag.tasks[0].kind is LuTaskType.GETRF

    def test_only_first_getrf_ready(self):
        dag = LuDag(5)
        ready = dag.initial_ready()
        assert len(ready) == 1
        assert dag.tasks[ready[0]].kind is LuTaskType.GETRF

    def test_acyclic(self):
        dag = LuDag(5)
        order = dag._topological_order()
        assert sorted(order) == list(range(len(dag)))

    def test_gemm_chain_over_panels(self):
        dag = LuDag(4)
        g1 = dag.task_id(LuTaskType.GEMM, 3, 2, 0)
        g2 = dag.task_id(LuTaskType.GEMM, 3, 2, 1)
        assert g2 in dag.successors[g1]

    def test_priorities_decrease_along_edges(self):
        dag = LuDag(5)
        for t, succs in enumerate(dag.successors):
            for s in succs:
                assert dag.priority[t] > dag.priority[s]


class TestSimulation:
    @pytest.mark.parametrize("scheduler", [RandomScheduler(), LocalityScheduler()])
    def test_all_tasks_complete(self, platform, scheduler):
        n = 7
        result = simulate_lu(n, platform, scheduler, rng=0)
        assert result.total_tasks == sum(lu_task_counts(n).values())

    def test_schedule_is_topological(self, platform):
        n = 6
        result = simulate_lu(n, platform, rng=1)
        dag = LuDag(n)
        pos = {tid: i for i, (_, _, tid) in enumerate(result.schedule)}
        for t, succs in enumerate(dag.successors):
            for s in succs:
                assert pos[t] < pos[s]

    def test_locality_reduces_communication(self, platform):
        n = 10
        rnd = np.mean([simulate_lu(n, platform, RandomScheduler(), rng=s).total_blocks for s in range(3)])
        loc = np.mean([simulate_lu(n, platform, LocalityScheduler(), rng=s).total_blocks for s in range(3)])
        assert loc < rnd

    def test_single_worker_minimal_comm(self):
        pf = Platform([2.0])
        n = 5
        result = simulate_lu(n, pf, LocalityScheduler(), rng=0)
        assert result.total_blocks == n * n


class TestNumericalReplay:
    @pytest.mark.parametrize("scheduler", [RandomScheduler(), LocalityScheduler()])
    def test_factorization_correct(self, platform, scheduler):
        n, l = 6, 4
        a = random_dd(n * l, rng=5)
        replay = replay_lu(a, n, platform, scheduler, rng=1)
        assert replay.max_abs_error < 1e-10
        assert np.allclose(replay.l_factor @ replay.u_factor, a)

    def test_factor_shapes(self, platform):
        a = random_dd(24, rng=6)
        replay = replay_lu(a, 4, platform, rng=0)
        assert np.allclose(np.diag(replay.l_factor), 1.0)
        assert np.allclose(replay.l_factor, np.tril(replay.l_factor))
        assert np.allclose(replay.u_factor, np.triu(replay.u_factor))

    def test_matches_scipy_lu(self, platform):
        """For DD matrices partial pivoting is a no-op, so the factors
        must match scipy's (up to its permutation being identity)."""
        from scipy import linalg as sla

        a = random_dd(20, rng=7)
        replay = replay_lu(a, 4, platform, rng=0)
        p, l_ref, u_ref = sla.lu(a)
        if np.allclose(p, np.eye(20)):
            assert np.allclose(replay.l_factor, l_ref)
            assert np.allclose(replay.u_factor, u_ref)

    def test_shape_validation(self, platform):
        with pytest.raises(ValueError):
            replay_lu(np.eye(10), 3, platform)
        with pytest.raises(ValueError):
            replay_lu(np.ones((3, 5)), 1, platform)
