"""Integration tests: the paper's quantitative claims at realistic scale.

These use moderately large instances (seconds each) and assert the numbers
the paper reports — the reproduction's acceptance tests.
"""

import numpy as np
import pytest

from repro.core.analysis import (
    matrix_lower_bound,
    matrix_total_ratio,
    optimal_matrix_beta,
    optimal_outer_beta,
    outer_lower_bound,
    outer_total_ratio,
)
from repro.core.strategies import (
    MatrixTwoPhase,
    OuterDynamic,
    OuterRandom,
    OuterSorted,
    OuterTwoPhase,
)
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate


def paper_platform(p, seed):
    return Platform(uniform_speeds(p, 10, 100, rng=seed))


class TestOuterAnalysisAccuracy:
    """Figures 4-6: the ODE analysis overlays DynamicOuter2Phases."""

    @pytest.mark.parametrize("p", [20, 100])
    def test_prediction_within_3_percent(self, p):
        n = 100
        pf = paper_platform(p, seed=p)
        rel = pf.relative_speeds
        lb = outer_lower_bound(rel, n)
        beta = optimal_outer_beta(rel, n)
        sims = [simulate(OuterTwoPhase(n, beta=beta), pf, rng=s).normalized(lb) for s in range(6)]
        predicted = outer_total_ratio(beta, rel, n)
        assert predicted == pytest.approx(np.mean(sims), rel=0.03)

    def test_paper_beta_4_17_in_simulated_valley(self):
        """Fig 6: beta* ~ 4.17 must sit in the flat simulated optimum [3, 6]."""
        n = 100
        pf = paper_platform(20, seed=0)
        rel = pf.relative_speeds
        beta_star = optimal_outer_beta(rel, n, "first_order")
        assert 3.0 <= beta_star <= 6.0
        lb = outer_lower_bound(rel, n)

        def mean_comm(beta):
            return np.mean(
                [simulate(OuterTwoPhase(n, beta=beta), pf, rng=s).normalized(lb) for s in range(4)]
            )

        at_star = mean_comm(beta_star)
        assert at_star < mean_comm(0.5)  # too-early switch is worse
        assert at_star < mean_comm(10.0)  # too-late switch is worse

    def test_phase1_fraction_at_optimum(self):
        """Fig 6 commentary: beta* = 4.17 => ~98.5% of tasks in phase 1."""
        beta = 4.17
        assert 1.0 - np.exp(-beta) == pytest.approx(0.985, abs=0.003)


class TestMatrixAnalysisAccuracy:
    """Figures 9-11: the matmul analysis and its beta."""

    def test_prediction_within_4_percent(self):
        n, p = 40, 100
        pf = paper_platform(p, seed=11)
        rel = pf.relative_speeds
        lb = matrix_lower_bound(rel, n)
        beta = optimal_matrix_beta(rel, n)
        sims = [simulate(MatrixTwoPhase(n, beta=beta), pf, rng=s).normalized(lb) for s in range(4)]
        assert matrix_total_ratio(beta, rel, n) == pytest.approx(np.mean(sims), rel=0.04)

    def test_paper_beta_2_95(self):
        """Fig 11: beta* ~ 2.95 (2.92 agnostic) for p=100, n=40."""
        pf = paper_platform(100, seed=1)
        beta = optimal_matrix_beta(pf.relative_speeds, 40)
        assert beta == pytest.approx(2.95, abs=0.25)
        # ~94.7% of tasks in phase 1 at the optimum.
        assert 1.0 - np.exp(-beta) == pytest.approx(0.947, abs=0.02)


class TestRankingAtScale:
    """Figure 1/4: ordering and rough magnitudes at p=100, n=100."""

    @pytest.fixture(scope="class")
    def results(self):
        n = 100
        pf = paper_platform(100, seed=42)
        lb = outer_lower_bound(pf.relative_speeds, n)
        out = {}
        for cls in (OuterRandom, OuterSorted, OuterDynamic, OuterTwoPhase):
            out[cls.name] = simulate(cls(n), pf, rng=7).normalized(lb)
        return out

    def test_full_ordering(self, results):
        assert results["DynamicOuter2Phases"] < results["DynamicOuter"]
        assert results["DynamicOuter"] < results["RandomOuter"]
        assert results["DynamicOuter"] < results["SortedOuter"]

    def test_magnitudes_match_paper(self, results):
        """Fig 4 at p=100: Random/Sorted ~ 4-7x LB, 2Phases ~ 2-2.5x."""
        assert 3.0 <= results["RandomOuter"] <= 8.0
        assert 1.5 <= results["DynamicOuter2Phases"] <= 3.0

    def test_factor_between_random_and_data_aware(self, results):
        assert results["RandomOuter"] / results["DynamicOuter2Phases"] > 1.8


class TestPerWorkerPrediction:
    """Lemma 3 predicts per-worker volumes, not just totals."""

    def test_phase1_comm_proportional_to_sqrt_speed(self):
        """At the switch, worker k holds ~ sqrt(beta rs_k) n blocks of each
        vector, so per-worker received blocks should scale like sqrt(rs_k)."""
        n, p = 100, 50
        pf = paper_platform(p, seed=3)
        rel = pf.relative_speeds
        per_worker = np.zeros(p)
        reps = 5
        for s in range(reps):
            result = simulate(OuterTwoPhase(n), pf, rng=s)
            per_worker += result.per_worker_blocks
        per_worker /= reps
        predicted = np.sqrt(rel)
        corr = np.corrcoef(per_worker, predicted)[0, 1]
        assert corr > 0.97

    def test_tasks_proportional_to_speed(self):
        """Demand-driven: per-worker task counts track relative speeds."""
        n, p = 100, 50
        pf = paper_platform(p, seed=3)
        result = simulate(OuterTwoPhase(n), pf, rng=0)
        shares = result.per_worker_tasks / result.total_tasks
        assert np.max(np.abs(shares - pf.relative_speeds)) < 0.01


class TestLargeVectorGap:
    def test_gap_widens_with_n(self):
        """Fig 5: the random/data-aware gap grows with n."""
        pf = paper_platform(50, seed=5)
        gaps = []
        for n in (50, 200):
            lb = outer_lower_bound(pf.relative_speeds, n)
            rnd = simulate(OuterRandom(n), pf, rng=1).normalized(lb)
            two = simulate(OuterTwoPhase(n), pf, rng=1).normalized(lb)
            gaps.append(rnd / two)
        assert gaps[1] > gaps[0]

    def test_random_comm_matches_coupon_collector(self):
        """RandomOuter's volume follows the coupon-collector expectation.

        Worker k processes T_k ~ rs_k n^2 uniformly random tasks and ends
        up holding n (1 - (1 - 1/n)^{T_k}) blocks of each input vector.
        """
        pf = paper_platform(50, seed=5)
        n = 200
        lb = outer_lower_bound(pf.relative_speeds, n)
        rnd = simulate(OuterRandom(n), pf, rng=1).normalized(lb)
        t_k = pf.relative_speeds * n * n
        expected_blocks = np.sum(2 * n * (1.0 - (1.0 - 1.0 / n) ** t_k))
        assert rnd == pytest.approx(expected_blocks / lb, rel=0.05)
