"""The paper's concentration claim, tested directly.

Section 3.2: "Each point in this figure and the following ones is the
average over 10 or more simulations.  The standard deviation is always
very small, typically smaller than 0.1 for any point, and never impacts
the ranking of the strategies."
"""

import numpy as np
import pytest

from repro.core.analysis import outer_lower_bound
from repro.core.strategies import make_strategy, strategies_for_kernel
from repro.platform import Platform, uniform_speeds
from repro.simulator import simulate


class TestConcentration:
    @pytest.mark.parametrize("name", ["RandomOuter", "DynamicOuter", "DynamicOuter2Phases"])
    def test_std_below_point_one(self, name):
        """Normalized-communication std over re-runs stays below ~0.1."""
        n, p = 100, 50
        pf = Platform(uniform_speeds(p, 10, 100, rng=0))
        lb = outer_lower_bound(pf.relative_speeds, n)
        values = [simulate(make_strategy(name, n), pf, rng=s).normalized(lb) for s in range(10)]
        assert np.std(values) < 0.12

    def test_ranking_never_flips(self):
        """Across 10 independent platform draws the ordering is invariant."""
        n, p = 60, 30
        for seed in range(10):
            pf = Platform(uniform_speeds(p, 10, 100, rng=100 + seed))
            lb = outer_lower_bound(pf.relative_speeds, n)
            vals = {
                name: simulate(make_strategy(name, n), pf, rng=seed).normalized(lb)
                for name in ("RandomOuter", "DynamicOuter", "DynamicOuter2Phases")
            }
            assert vals["DynamicOuter2Phases"] < vals["RandomOuter"]
            assert vals["DynamicOuter"] < vals["RandomOuter"]

    def test_all_outer_strategies_concentrate(self):
        """Weaker bound across every outer strategy incl. baselines."""
        n, p = 60, 30
        pf = Platform(uniform_speeds(p, 10, 100, rng=5))
        lb = outer_lower_bound(pf.relative_speeds, n)
        for name in strategies_for_kernel("outer"):
            values = [simulate(make_strategy(name, n), pf, rng=s).normalized(lb) for s in range(6)]
            mean = np.mean(values)
            assert np.std(values) < 0.05 * mean + 0.1
