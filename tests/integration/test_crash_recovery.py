"""Crash recovery: a SIGKILLed worker's cell is stolen and the CSV still matches.

A real subprocess (``tools/claims_smoke.py hold``) claims the first cell
of fig01's CI grid over a shared store and parks mid-cell; the test
SIGKILLs it, then drains the grid as a second worker with a short
staleness window.  The dead worker's claim must be stolen, every cell
computed exactly once, and the assembled CSV byte-identical to an
uninterrupted single-process run.
"""

import os
import signal
import subprocess
import sys

from repro.experiments.external import drain_figure, external_job_id
from repro.experiments.figures import generate
from repro.experiments.io import write_csv
from repro.store.cache import ResultStore
from repro.store.claims import ClaimRegistry
from repro.store.journal import Journal

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SMOKE = os.path.join(ROOT, "tools", "claims_smoke.py")

FIGURE, SCALE, SEED = "fig01", "ci", 0


def spawn_holder(root):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(ROOT, "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, SMOKE, "hold", root, "--figure", FIGURE, "--scale", SCALE],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def test_sigkilled_worker_is_stolen_from_and_csv_matches(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))

    holder = spawn_holder(store.root)
    try:
        line = holder.stdout.readline()
        assert line.startswith("holding "), f"holder never claimed: {line!r}"
        held_fp = line.split()[1]
        holder.send_signal(signal.SIGKILL)
        holder.wait(timeout=30)
    finally:
        if holder.poll() is None:
            holder.kill()
            holder.wait()

    # The kill left a claim file behind — nobody will ever release it.
    claims = ClaimRegistry(store, stale_after=0.5)
    assert claims.read_claim(held_fp) is not None

    journal = Journal(store)
    stats = drain_figure(
        FIGURE,
        scale=SCALE,
        seed=SEED,
        store=store,
        claims=claims,
        journal=journal,
        poll_interval=0.05,
        timeout=120.0,
    )
    assert stats.computed == stats.total() > 0  # cold store: we computed all
    assert claims.counts["stolen"] >= 1, "dead worker's claim was never stolen"
    assert claims.active() == []

    # Journal: every cell computed exactly once, job fully recovered.
    replay = journal.replay()
    assert replay.corrupt == 0
    computed = [r.cell for r in replay.records if r.state == "computed"]
    assert sorted(computed) == sorted(set(computed)), "duplicate engine work"
    status = journal.job_status(
        external_job_id(FIGURE, scale=SCALE, seed=SEED), store=store
    )
    assert status is not None and status["done"] and not status["pending"]

    # Assemble from the store and compare to an uninterrupted reference.
    recovered = generate(FIGURE, scale=SCALE, seed=SEED, cache=store)
    reference = generate(FIGURE, scale=SCALE, seed=SEED)
    recovered_csv = write_csv(recovered, str(tmp_path / "recovered.csv"))
    reference_csv = write_csv(reference, str(tmp_path / "reference.csv"))
    with open(recovered_csv, "rb") as a, open(reference_csv, "rb") as b:
        assert a.read() == b.read(), "recovered CSV differs from reference"
