"""Tests for repro.execution.replay — schedules compute the right answer."""

import numpy as np
import pytest

from repro.core.strategies import OuterDynamic, OuterTwoPhase
from repro.execution.replay import execute_matrix, execute_outer
from repro.platform import Platform


@pytest.fixture
def data(rng):
    n, l = 8, 3
    a = rng.normal(size=n * l)
    b = rng.normal(size=n * l)
    return n, a, b


class TestExecuteOuter:
    @pytest.mark.parametrize(
        "name", ["RandomOuter", "SortedOuter", "DynamicOuter", "DynamicOuter2Phases"]
    )
    def test_all_strategies_exact(self, name, data, small_platform):
        n, a, b = data
        report = execute_outer(a, b, n, small_platform, name, rng=0)
        assert report.tasks_executed == n * n
        assert report.max_abs_error == 0.0  # sums of identical products
        assert report.exact
        assert np.allclose(report.result, np.outer(a, b))

    def test_per_worker_totals(self, data, small_platform):
        n, a, b = data
        report = execute_outer(a, b, n, small_platform, "DynamicOuter", rng=1)
        assert report.per_worker_tasks.sum() == n * n
        assert np.array_equal(report.per_worker_tasks, report.simulation.per_worker_tasks)

    def test_prebuilt_strategy(self, data, small_platform):
        n, a, b = data
        s = OuterTwoPhase(n, beta=2.0, collect_ids=True)
        report = execute_outer(a, b, n, small_platform, s, rng=0)
        assert report.exact

    def test_requires_collect_ids(self, data, small_platform):
        n, a, b = data
        with pytest.raises(ValueError, match="collect_ids"):
            execute_outer(a, b, n, small_platform, OuterDynamic(n), rng=0)

    def test_wrong_kernel_rejected(self, data, small_platform):
        n, a, b = data
        with pytest.raises(ValueError, match="matrix strategy"):
            execute_outer(a, b, n, small_platform, "DynamicMatrix", rng=0)

    def test_wrong_n_rejected(self, data, small_platform):
        n, a, b = data
        s = OuterDynamic(n + 1, collect_ids=True)
        with pytest.raises(ValueError, match="n="):
            execute_outer(a, b, n, small_platform, s, rng=0)

    def test_length_mismatch(self, small_platform, rng):
        a = rng.normal(size=8)
        b = rng.normal(size=12)
        with pytest.raises(ValueError):
            execute_outer(a, b, 4, small_platform, rng=0)

    def test_integer_data_exact(self, small_platform):
        n, l = 5, 2
        a = np.arange(n * l, dtype=np.int64)
        b = np.arange(n * l, dtype=np.int64) + 3
        report = execute_outer(a, b, n, small_platform, "DynamicOuter", rng=0)
        assert np.array_equal(report.result, np.outer(a, b))


class TestExecuteMatrix:
    @pytest.mark.parametrize(
        "name", ["RandomMatrix", "SortedMatrix", "DynamicMatrix", "DynamicMatrix2Phases"]
    )
    def test_all_strategies_correct(self, name, small_platform, rng):
        n, l = 5, 2
        a = rng.normal(size=(n * l, n * l))
        b = rng.normal(size=(n * l, n * l))
        report = execute_matrix(a, b, n, small_platform, name, rng=0)
        assert report.tasks_executed == n**3
        # Summation order differs from np.matmul: allow fp associativity.
        assert report.max_abs_error < 1e-10
        assert np.allclose(report.result, a @ b)

    def test_integer_data_bit_exact(self, small_platform, rng):
        n, l = 4, 2
        a = rng.integers(-5, 5, size=(n * l, n * l))
        b = rng.integers(-5, 5, size=(n * l, n * l))
        report = execute_matrix(a, b, n, small_platform, "DynamicMatrix", rng=0)
        assert np.array_equal(report.result, a @ b)
        assert report.exact

    def test_shape_validation(self, small_platform, rng):
        with pytest.raises(ValueError):
            execute_matrix(rng.normal(size=(6, 6)), rng.normal(size=(8, 8)), 3, small_platform, rng=0)
        with pytest.raises(ValueError):
            execute_matrix(rng.normal(size=(7, 7)), rng.normal(size=(7, 7)), 3, small_platform, rng=0)

    def test_single_worker(self, rng):
        pf = Platform([1.0])
        n, l = 4, 2
        a = rng.normal(size=(n * l, n * l))
        b = rng.normal(size=(n * l, n * l))
        report = execute_matrix(a, b, n, pf, "DynamicMatrix", rng=0)
        assert np.allclose(report.result, a @ b)
