"""Tests for the live threaded runtime."""

import numpy as np
import pytest

from repro.core.strategies import MatrixDynamic, OuterDynamic
from repro.execution.live import run_matrix_live, run_outer_live


class TestOuterLive:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_correct_result(self, workers, rng):
        n, l = 10, 4
        a = rng.normal(size=n * l)
        b = rng.normal(size=n * l)
        report = run_outer_live(a, b, n, n_workers=workers, rng=0)
        assert report.max_abs_error == 0.0
        assert np.allclose(report.result, np.outer(a, b))
        assert report.total_tasks == n * n
        assert report.n_workers == workers

    @pytest.mark.parametrize(
        "name", ["RandomOuter", "SortedOuter", "DynamicOuter", "DynamicOuter2Phases", "MapReduceOuter"]
    )
    def test_all_strategies(self, name, rng):
        n, l = 6, 3
        a = rng.normal(size=n * l)
        b = rng.normal(size=n * l)
        report = run_outer_live(a, b, n, n_workers=3, strategy=name, rng=1)
        assert report.max_abs_error == 0.0
        assert report.strategy_name == name

    def test_wall_time_positive(self, rng):
        a = rng.normal(size=20)
        b = rng.normal(size=20)
        report = run_outer_live(a, b, 5, n_workers=2, rng=0)
        assert report.wall_time > 0

    def test_task_conservation_on_large_runs(self, rng):
        """Total work is conserved across threads.  (Whether every thread
        gets a share depends on OS scheduling, so only the sum is exact.)"""
        n, l = 24, 8
        a = rng.normal(size=n * l)
        b = rng.normal(size=n * l)
        report = run_outer_live(a, b, n, n_workers=2, rng=0)
        assert report.per_worker_tasks.sum() == n * n
        assert np.all(report.per_worker_tasks >= 0)

    def test_requires_collect_ids(self, rng):
        a = rng.normal(size=12)
        b = rng.normal(size=12)
        with pytest.raises(ValueError, match="collect_ids"):
            run_outer_live(a, b, 4, strategy=OuterDynamic(4), rng=0)

    def test_wrong_kernel(self, rng):
        a = rng.normal(size=12)
        b = rng.normal(size=12)
        with pytest.raises(ValueError, match="matrix strategy"):
            run_outer_live(a, b, 4, strategy="DynamicMatrix", rng=0)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            run_outer_live(rng.normal(size=8), rng.normal(size=12), 4, rng=0)


class TestMatrixLive:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_correct_result(self, workers, rng):
        n, l = 6, 4
        a = rng.normal(size=(n * l, n * l))
        b = rng.normal(size=(n * l, n * l))
        report = run_matrix_live(a, b, n, n_workers=workers, rng=0)
        assert report.max_abs_error < 1e-10
        assert np.allclose(report.result, a @ b)
        assert report.total_tasks == n**3

    @pytest.mark.parametrize("name", ["RandomMatrix", "DynamicMatrix", "DynamicMatrix2Phases"])
    def test_all_strategies(self, name, rng):
        n, l = 4, 3
        a = rng.normal(size=(n * l, n * l))
        b = rng.normal(size=(n * l, n * l))
        report = run_matrix_live(a, b, n, n_workers=2, strategy=name, rng=2)
        assert np.allclose(report.result, a @ b)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            run_matrix_live(rng.normal(size=(6, 6)), rng.normal(size=(8, 8)), 2, rng=0)
        with pytest.raises(ValueError):
            run_matrix_live(rng.normal(size=(7, 7)), rng.normal(size=(7, 7)), 2, rng=0)

    def test_requires_collect_ids(self, rng):
        m = rng.normal(size=(8, 8))
        with pytest.raises(ValueError):
            run_matrix_live(m, m, 4, strategy=MatrixDynamic(4), rng=0)
