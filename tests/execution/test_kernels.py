"""Tests for repro.execution.kernels."""

import numpy as np
import pytest

from repro.execution.kernels import (
    assemble_outer,
    block_gemm_update,
    block_outer,
    reference_matmul,
    reference_outer,
    split_into_blocks,
)


class TestBlockOuter:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=4)
        b = rng.normal(size=4)
        assert np.array_equal(block_outer(a, b), np.outer(a, b))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            block_outer(np.ones((2, 2)), np.ones(2))


class TestBlockGemm:
    def test_inplace_update(self, rng):
        a = rng.normal(size=(3, 3))
        b = rng.normal(size=(3, 3))
        c = np.ones((3, 3))
        block_gemm_update(c, a, b)
        assert np.allclose(c, 1.0 + a @ b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            block_gemm_update(np.zeros((2, 2)), np.zeros((3, 3)), np.zeros((3, 3)))


class TestSplitAssemble:
    def test_split(self):
        v = np.arange(12.0)
        blocks = split_into_blocks(v, 4)
        assert blocks.shape == (4, 3)
        assert np.array_equal(blocks[1], [3.0, 4.0, 5.0])

    def test_split_indivisible(self):
        with pytest.raises(ValueError):
            split_into_blocks(np.arange(10.0), 4)

    def test_split_rejects_2d(self):
        with pytest.raises(ValueError):
            split_into_blocks(np.ones((2, 2)), 2)

    def test_assemble_roundtrip(self, rng):
        n, l = 3, 2
        a = rng.normal(size=n * l)
        b = rng.normal(size=n * l)
        ab = split_into_blocks(a, n)
        bb = split_into_blocks(b, n)
        tiles = np.empty((n, n, l, l))
        for i in range(n):
            for j in range(n):
                tiles[i, j] = np.outer(ab[i], bb[j])
        assert np.allclose(assemble_outer(tiles), reference_outer(a, b))

    def test_assemble_bad_shape(self):
        with pytest.raises(ValueError):
            assemble_outer(np.zeros((2, 3, 2, 2)))
        with pytest.raises(ValueError):
            assemble_outer(np.zeros((2, 2, 2)))


class TestReferences:
    def test_reference_outer(self):
        assert np.array_equal(reference_outer([1, 2], [3, 4]), [[3, 4], [6, 8]])

    def test_reference_matmul(self, rng):
        a = rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 5))
        assert np.allclose(reference_matmul(a, b), a @ b)
