"""Fixture: public constructor with unvalidated numeric config (R-VALIDATE)."""

__all__ = ["Widget"]


class Widget:
    """Fixture stub."""
    def __init__(self, n, beta):
        self.n = n
        self.beta = beta
