"""Fixture: a concrete Strategy subclass nobody registered (R-REGISTRY)."""

from repro.core.strategies.base import Strategy

__all__ = ["RogueStrategy"]


class RogueStrategy(Strategy):
    """Fixture stub."""
    name = "Rogue"
