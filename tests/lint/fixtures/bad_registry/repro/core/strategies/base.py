"""Fixture base module: the Strategy root class."""

__all__ = ["Strategy"]


class Strategy:
    """Fixture stub."""
    name = "abstract"
