"""Fixture registry: empty STRATEGIES mapping."""

__all__ = ["STRATEGIES"]

STRATEGIES = {}
