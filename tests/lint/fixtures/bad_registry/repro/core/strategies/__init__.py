"""Fixture package init: RogueStrategy missing from __all__."""

from repro.core.strategies.base import Strategy
from repro.core.strategies.registry import STRATEGIES

__all__ = ["STRATEGIES", "Strategy"]
