"""Fixture: exported definitions without docstrings (R-DOCSTRING)."""

__all__ = ["Documented", "Undocumented", "documented", "undocumented", "CONSTANT"]

CONSTANT = 1


class Documented:
    """Fixture stub."""


class Undocumented:
    pass


def documented(rng=None):
    """Fixture stub."""
    return 1


def undocumented(rng=None):
    return 2


def _private_without_docstring(rng=None):
    return 3


def unlisted_without_docstring(rng=None):  # repro: noqa[R-ALL-EXPORT]
    return 4
