"""Fixture: __all__ lists a name the module never binds (R-ALL-EXISTS)."""

__all__ = ["exists", "phantom"]


def exists(rng=None):
    return 1
