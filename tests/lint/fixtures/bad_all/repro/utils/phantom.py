"""Fixture: __all__ lists a name the module never binds (R-ALL-EXISTS)."""

__all__ = ["exists", "phantom"]


def exists(rng=None):
    """Fixture stub."""
    return 1
