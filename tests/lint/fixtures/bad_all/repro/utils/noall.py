"""Fixture: public defs but no __all__ at all (R-ALL-MISSING)."""


def orphan(rng=None):
    return 3
