"""Fixture: public def missing from __all__ (R-ALL-EXPORT)."""

__all__ = ["listed"]


def listed(rng=None):
    """Fixture stub."""
    return 1


def unlisted(rng=None):
    return 2
