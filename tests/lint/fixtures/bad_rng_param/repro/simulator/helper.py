"""Fixture: randomized function without a rng/seed parameter (R-RNG-PARAM)."""

from repro.utils.rng import as_generator

__all__ = ["draw_speeds"]


def draw_speeds(p):
    """Fixture stub."""
    gen = as_generator(1234)
    return gen.uniform(size=p)
