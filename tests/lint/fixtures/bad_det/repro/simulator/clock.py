"""Fixture: wall-clock and OS entropy in the deterministic core (R-DET)."""

import os
import time
from datetime import datetime

__all__ = ["stamp"]


def stamp(rng=None):
    """Fixture stub."""
    started = time.time()
    label = datetime.now()
    token = os.urandom(8)
    return started, label, token
