"""Fixture: violations silenced with repro: noqa comments."""

import time

__all__ = ["stamp", "stamp_any"]


def stamp(rng=None):
    """Fixture stub."""
    return time.time()  # repro: noqa[R-DET]


def stamp_any(rng=None):
    """Fixture stub."""
    return time.perf_counter()  # repro: noqa
