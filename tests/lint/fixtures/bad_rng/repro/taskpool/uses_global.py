"""Fixture: global RNG state in a core module (R-RNG)."""

import random

import numpy as np

__all__ = ["draw"]


def draw(n, rng=None):
    """Fixture stub."""
    np.random.seed(0)
    jitter = random.random()
    return np.random.rand(n) + jitter
