"""Fixture: bare and silent exception handlers (R-EXCEPT, R-SILENT)."""

__all__ = ["swallow", "quiet"]


def swallow(fn, rng=None):
    """Fixture stub."""
    try:
        return fn()
    except:
        pass


def quiet(fn, rng=None):
    """Fixture stub."""
    try:
        return fn()
    except ValueError:
        pass
