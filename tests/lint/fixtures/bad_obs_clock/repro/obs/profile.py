"""Fixture: the profiler module itself is exempt from R-OBS-CLOCK."""

import time

__all__ = ["wall_time"]


def wall_time():
    """Fixture stub."""
    return time.perf_counter()
