"""Fixture: direct wall-clock reads in the observability layer (R-OBS-CLOCK)."""

import time
from time import perf_counter

__all__ = ["bad_metric", "bad_bare"]


def bad_metric():
    return time.time()


def bad_bare():
    return perf_counter()
