"""Fixture: direct wall-clock reads in the observability layer (R-OBS-CLOCK)."""

import time
from time import perf_counter

__all__ = ["bad_metric", "bad_bare"]


def bad_metric():
    """Fixture stub."""
    return time.time()


def bad_bare():
    """Fixture stub."""
    return perf_counter()
