"""Fixture: an experiment driver timing work with the wall clock (R-OBS-CLOCK)."""

import time

__all__ = ["timed_run"]


def timed_run():
    """Fixture stub."""
    start = time.monotonic()
    return time.monotonic() - start
