"""Fixture: exact float equality in analysis code (R-FLOATEQ)."""

__all__ = ["converged", "ratio_is_unit"]


def converged(x, rng=None):
    """Fixture stub."""
    return x == 1.0


def ratio_is_unit(a, b, rng=None):
    """Fixture stub."""
    return a / b != 1
