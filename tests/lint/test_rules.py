"""Every rule fires on its fixture tree, and only where expected."""


def ids(findings):
    return {f.rule_id for f in findings}


class TestRngDiscipline:
    def test_global_rng_flagged(self, lint_fixture):
        findings = [f for f in lint_fixture("bad_rng") if f.rule_id == "R-RNG"]
        assert len(findings) >= 3  # import random, np.random.seed, np.random.rand
        messages = " ".join(f.message for f in findings)
        assert "random" in messages
        assert all(f.severity == "error" for f in findings)

    def test_randomized_function_needs_rng_param(self, lint_fixture):
        findings = [
            f for f in lint_fixture("bad_rng_param") if f.rule_id == "R-RNG-PARAM"
        ]
        assert len(findings) == 1
        assert "draw_speeds" in findings[0].message

    def test_positions_are_plausible(self, lint_fixture):
        for f in lint_fixture("bad_rng"):
            assert f.line >= 1
            assert f.col >= 0
            assert f.path.endswith("uses_global.py")


class TestDeterminism:
    def test_wall_clock_flagged(self, lint_fixture):
        findings = [f for f in lint_fixture("bad_det") if f.rule_id == "R-DET"]
        flagged = {f.message.split()[2] for f in findings}
        assert "time.time" in flagged
        assert "datetime.now" in flagged
        assert "os.urandom" in flagged


class TestObsWallclock:
    def test_wall_clock_in_obs_and_experiments_flagged(self, lint_fixture):
        findings = [
            f for f in lint_fixture("bad_obs_clock") if f.rule_id == "R-OBS-CLOCK"
        ]
        # time.time + bare perf_counter in repro.obs, 2x time.monotonic in
        # repro.experiments; the profiler module itself must not fire.
        assert len(findings) == 4
        assert all(f.severity == "error" for f in findings)
        assert not any(f.path.endswith("profile.py") for f in findings)
        flagged = {f.message.split()[2] for f in findings}
        assert flagged == {"time.time", "perf_counter", "time.monotonic"}

    def test_profiler_module_exempt(self, lint_fixture):
        findings = lint_fixture("bad_obs_clock")
        profile_findings = [f for f in findings if f.path.endswith("profile.py")]
        assert profile_findings == []


class TestFloatEquality:
    def test_float_literal_comparison_flagged(self, lint_fixture):
        findings = [
            f for f in lint_fixture("bad_floateq") if f.rule_id == "R-FLOATEQ"
        ]
        assert len(findings) == 2  # == 1.0 and a/b != 1


class TestValidationBoundary:
    def test_unvalidated_constructor_flagged(self, lint_fixture):
        findings = [
            f for f in lint_fixture("bad_validate") if f.rule_id == "R-VALIDATE"
        ]
        assert len(findings) == 1
        assert "Widget.__init__" in findings[0].message
        assert "beta" in findings[0].message


class TestRegistryContract:
    def test_unregistered_strategy_flagged(self, lint_fixture):
        findings = lint_fixture("bad_registry")
        assert ids(findings) == {"R-REGISTRY"}
        assert len(findings) == 2  # missing from STRATEGIES and from __all__
        assert all("RogueStrategy" in f.message for f in findings)


class TestAllConsistency:
    def test_phantom_name_flagged(self, lint_fixture):
        findings = lint_fixture("bad_all")
        by_id = {f.rule_id: f for f in findings}
        assert "R-ALL-EXISTS" in by_id
        assert "phantom" in by_id["R-ALL-EXISTS"].message

    def test_unlisted_public_def_is_warning(self, lint_fixture):
        findings = [
            f for f in lint_fixture("bad_all") if f.rule_id == "R-ALL-EXPORT"
        ]
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "unlisted" in findings[0].message

    def test_missing_all_flagged(self, lint_fixture):
        findings = [
            f for f in lint_fixture("bad_all") if f.rule_id == "R-ALL-MISSING"
        ]
        assert len(findings) == 1
        assert findings[0].path.endswith("noall.py")
        assert findings[0].severity == "error"


class TestDocstrings:
    def test_undocumented_exports_flagged(self, lint_fixture):
        findings = [
            f for f in lint_fixture("bad_docstring") if f.rule_id == "R-DOCSTRING"
        ]
        assert {m for f in findings for m in ("Undocumented", "undocumented") if m in f.message} == {
            "Undocumented",
            "undocumented",
        }
        assert len(findings) == 2  # documented, private and unlisted defs pass

    def test_constants_are_out_of_scope(self, lint_fixture):
        # CONSTANT is exported without a docstring; the rule only judges
        # defs (constants are documented with #: comments the AST drops).
        findings = [
            f for f in lint_fixture("bad_docstring") if f.rule_id == "R-DOCSTRING"
        ]
        assert not any("CONSTANT" in f.message for f in findings)


class TestExceptions:
    def test_bare_except_flagged(self, lint_fixture):
        findings = [f for f in lint_fixture("bad_except") if f.rule_id == "R-EXCEPT"]
        assert len(findings) == 1

    def test_silent_handlers_flagged(self, lint_fixture):
        findings = [f for f in lint_fixture("bad_except") if f.rule_id == "R-SILENT"]
        assert len(findings) == 2


class TestSuppression:
    def test_noqa_comments_silence_findings(self, lint_fixture):
        assert lint_fixture("suppressed") == []
