"""Tier-1 gate: the shipped source tree passes its own linter.

This is the pytest integration the tentpole asks for — any commit that
introduces a global RNG call, a wall-clock read in the simulator, an
unvalidated constructor or an ``__all__`` drift fails the test suite, not
just an optional CI step.
"""

from pathlib import Path

from repro.lint import collect_modules, default_rules, run_lint

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_is_lint_clean():
    modules = collect_modules([SRC_REPRO])
    findings = run_lint(modules, default_rules())
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"src/repro has lint findings:\n{rendered}"


def test_source_tree_scan_covers_the_whole_package():
    modules = collect_modules([SRC_REPRO])
    names = {m.name for m in modules}
    # Spot-check every layer the rules are scoped to.
    for expected in (
        "repro",
        "repro.simulator.engine",
        "repro.core.strategies.registry",
        "repro.taskpool.knowledge",
        "repro.core.analysis.ode",
        "repro.experiments.runner",
        "repro.execution.live",
        "repro.extensions.lu.scheduler",
        "repro.lint.framework",
    ):
        assert expected in names, f"{expected} missing from the scan"
    assert len(modules) > 60
