"""Unit tests for the lint framework itself (parsing, noqa, selection)."""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, collect_modules, select_rules
from repro.lint.framework import (
    Finding,
    LintError,
    dotted_name,
    parse_noqa,
)


class TestDottedName:
    def test_anchors_at_repro_component(self):
        assert dotted_name(Path("src/repro/utils/rng.py")) == "repro.utils.rng"

    def test_fixture_trees_mirror_the_package(self):
        path = Path("tests/lint/fixtures/bad_det/repro/simulator/clock.py")
        assert dotted_name(path) == "repro.simulator.clock"

    def test_init_maps_to_package(self):
        assert dotted_name(Path("src/repro/taskpool/__init__.py")) == "repro.taskpool"

    def test_non_repro_path_uses_root(self):
        assert dotted_name(Path("pkg/mod.py"), root=Path("pkg")) == "mod"


class TestParseNoqa:
    def test_specific_rule(self):
        noqa = parse_noqa("x = 1  # repro: noqa[R-DET]\n")
        assert noqa == {1: frozenset({"R-DET"})}

    def test_multiple_rules_and_spaces(self):
        noqa = parse_noqa("x = 1  # repro: noqa[R-DET, R-RNG]\n")
        assert noqa[1] == frozenset({"R-DET", "R-RNG"})

    def test_blanket(self):
        noqa = parse_noqa("y = 2\nx = 1  # repro: noqa\n")
        assert noqa == {2: frozenset({"*"})}

    def test_plain_comment_is_not_noqa(self):
        assert parse_noqa("x = 1  # repro is great\n") == {}

    def test_case_insensitive_marker(self):
        assert parse_noqa("x = 1  # REPRO: NOQA[r-det]\n")[1] == frozenset({"R-DET"})


class TestFinding:
    def test_to_dict_schema(self):
        f = Finding("R-X", "error", "a.py", 3, 7, "boom")
        assert f.to_dict() == {
            "rule": "R-X",
            "severity": "error",
            "path": "a.py",
            "line": 3,
            "col": 7,
            "message": "boom",
        }

    def test_render_is_grep_friendly(self):
        f = Finding("R-X", "error", "a.py", 3, 7, "boom")
        assert f.render() == "a.py:3:7: error R-X boom"


class TestCollectModules:
    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such file"):
            collect_modules([Path("does/not/exist")])

    def test_unparsable_file_raises(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(LintError, match="cannot parse"):
            collect_modules([bad])

    def test_directory_walk_is_sorted(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("")
        modules = collect_modules([tmp_path])
        assert [m.path.name for m in modules] == ["a.py", "b.py", "c.py"]


class TestSelectRules:
    def test_default_is_full_set(self):
        assert len(select_rules()) == len(ALL_RULES)

    def test_select_subset(self):
        rules = select_rules(select=["R-DET"])
        assert [r.id for r in rules] == ["R-DET"]

    def test_ignore_subset(self):
        rules = select_rules(ignore=["R-DET"])
        assert "R-DET" not in [r.id for r in rules]

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            select_rules(select=["R-NOPE"])
