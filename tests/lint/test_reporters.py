"""Reporter behaviour: JSON round-trips, text prog labels, noqa edge cases."""

import json

from repro.lint import Severity, collect_modules, default_rules, run_lint
from repro.lint.framework import Finding, parse_noqa
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
    summary_counts,
)

from tests.lint.conftest import FIXTURES


def sample_findings():
    return [
        Finding("R-A", Severity.ERROR, "a.py", 3, 7, "boom"),
        Finding("R-B", Severity.WARNING, "b.py", 1, 0, "meh"),
    ]


class TestJsonRoundTrip:
    def test_document_round_trips_through_json(self):
        doc = json.loads(render_json(sample_findings()))
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["counts"] == {"error": 1, "warning": 1}
        rebuilt = [
            Finding(
                rule_id=f["rule"],
                severity=f["severity"],
                path=f["path"],
                line=f["line"],
                col=f["col"],
                message=f["message"],
            )
            for f in doc["findings"]
        ]
        assert rebuilt == sample_findings()

    def test_real_findings_round_trip(self):
        findings = run_lint(
            collect_modules([FIXTURES / "bad_det"]), default_rules()
        )
        assert findings
        doc = json.loads(render_json(findings))
        assert len(doc["findings"]) == len(findings)
        for original, emitted in zip(findings, doc["findings"]):
            assert emitted["line"] == original.line
            assert emitted["rule"] == original.rule_id

    def test_empty_report(self):
        doc = json.loads(render_json([]))
        assert doc["findings"] == []
        assert doc["counts"] == {}


class TestRenderText:
    def test_summary_line_counts_by_severity(self):
        text = render_text(sample_findings())
        assert text.splitlines()[-1] == "repro-lint: 1 error(s), 1 warning(s)"

    def test_clean_summary(self):
        assert render_text([]) == "repro-lint: clean"

    def test_prog_label_is_configurable(self):
        assert render_text([], prog="repro-analyze") == "repro-analyze: clean"
        text = render_text(sample_findings(), prog="repro-analyze")
        assert text.splitlines()[-1].startswith("repro-analyze:")

    def test_summary_counts_only_present_severities(self):
        assert summary_counts([sample_findings()[0]]) == {"error": 1}


class TestNoqaEdgeCases:
    def test_noqa_with_trailing_comment_text(self):
        noqa = parse_noqa("x = 1  # repro: noqa[R-DET]  (legacy clock)\n")
        assert noqa[1] == frozenset({"R-DET"})

    def test_noqa_inside_string_literal_still_matches_line(self):
        # The scanner is line-based by design: a noqa marker anywhere on the
        # line (even inside a string) suppresses that line.
        noqa = parse_noqa('x = "# repro: noqa[R-DET]"\n')
        assert noqa[1] == frozenset({"R-DET"})

    def test_empty_rule_list_is_blanket(self):
        noqa = parse_noqa("x = 1  # repro: noqa[]\n")
        assert noqa[1] == frozenset({"*"})

    def test_multiple_noqa_lines_tracked_independently(self):
        source = (
            "a = 1  # repro: noqa[R-A]\n"
            "b = 2\n"
            "c = 3  # repro: noqa[R-B, R-C]\n"
        )
        noqa = parse_noqa(source)
        assert noqa == {
            1: frozenset({"R-A"}),
            3: frozenset({"R-B", "R-C"}),
        }

    def test_unrelated_rule_id_does_not_suppress(self, lint_fixture):
        # The suppressed fixture uses targeted noqa markers; they must not
        # blanket-suppress other rules on the same tree.
        findings = lint_fixture("suppressed")
        suppressed_path_findings = [
            f for f in findings if f.path.endswith("allowed.py")
        ]
        assert suppressed_path_findings == []
