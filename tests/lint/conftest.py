"""Shared helpers for the linter's own test suite."""

from pathlib import Path

import pytest

from repro.lint import collect_modules, default_rules, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture
def lint_fixture():
    """Run the full default rule set over one fixture tree by name."""

    def run(name):
        modules = collect_modules([FIXTURES / name])
        return run_lint(modules, default_rules())

    return run
