"""The strict-typing gate: ``mypy --strict src/repro`` must pass.

The mypy configuration (including the checked-in per-module ignore
baseline) lives in ``pyproject.toml``.  The test skips when mypy is not
installed — the dev container ships without it — but runs the real gate
wherever the ``dev`` extra is available (CI installs it).
"""

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


def test_mypy_strict_passes():
    pytest.importorskip("mypy", reason="mypy not installed (pip install -e .[dev])")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", str(ROOT / "src" / "repro")],
        capture_output=True,
        text=True,
        cwd=str(ROOT),
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_ignore_baseline_is_bounded():
    """The per-module ignore baseline may not silently grow past 5 modules."""
    try:
        import tomllib
    except ModuleNotFoundError:  # Python < 3.11
        pytest.skip("tomllib unavailable")
    config = tomllib.loads((ROOT / "pyproject.toml").read_text())
    overrides = config.get("tool", {}).get("mypy", {}).get("overrides", [])
    modules = []
    for entry in overrides:
        if not entry.get("ignore_errors", False):
            continue
        mod = entry.get("module", [])
        modules.extend([mod] if isinstance(mod, str) else list(mod))
    assert len(modules) <= 5, f"mypy ignore baseline grew to {modules}"
