"""The strict-typing gate: ``mypy --strict src/repro`` must pass.

The mypy configuration (including the checked-in per-module ignore
baseline) lives in ``pyproject.toml``.  The test skips when mypy is not
installed — the dev container ships without it — but runs the real gate
wherever the ``dev`` extra is available (CI installs it).
"""

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


def test_mypy_strict_passes():
    pytest.importorskip("mypy", reason="mypy not installed (pip install -e .[dev])")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", str(ROOT / "src" / "repro")],
        capture_output=True,
        text=True,
        cwd=str(ROOT),
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


#: The frozen ignore baseline: these modules (and only these) may still
#: carry ``ignore_errors``.  Entries may be removed, never added.
_IGNORE_BASELINE = frozenset(
    {
        "repro.experiments.figures",
        "repro.experiments.ext_figures",
        "repro.experiments.svgplot",
        "repro.extensions.dagsched.engine",
        "repro.execution.replay",
    }
)

#: Packages the strict gate fully covers — they must never (re)enter the
#: ignore baseline.  repro.store and repro.obs earned strict coverage in
#: earlier PRs; repro.analyze and repro.lint ship strict-clean.
_STRICT_ENFORCED_PREFIXES = ("repro.store", "repro.obs", "repro.analyze", "repro.lint")


def _ignored_modules():
    try:
        import tomllib
    except ModuleNotFoundError:  # Python < 3.11
        pytest.skip("tomllib unavailable")
    config = tomllib.loads((ROOT / "pyproject.toml").read_text())
    overrides = config.get("tool", {}).get("mypy", {}).get("overrides", [])
    modules = []
    for entry in overrides:
        if not entry.get("ignore_errors", False):
            continue
        mod = entry.get("module", [])
        modules.extend([mod] if isinstance(mod, str) else list(mod))
    return modules


def test_ignore_baseline_only_shrinks():
    """The per-module ignore baseline is frozen: shrink it, never grow it."""
    modules = _ignored_modules()
    unexpected = sorted(set(modules) - _IGNORE_BASELINE)
    assert not unexpected, f"mypy ignore baseline grew: {unexpected}"
    assert len(modules) == len(set(modules)), f"duplicate entries: {modules}"


def test_strict_packages_never_enter_ignore_baseline():
    """store/obs/analyze/lint are strict-enforced; no override may cover them."""
    for mod in _ignored_modules():
        bad = any(
            mod == prefix or mod.startswith(prefix + ".")
            for prefix in _STRICT_ENFORCED_PREFIXES
        )
        assert not bad, f"strict-enforced package in ignore baseline: {mod}"
