"""The repro-lint CLI: exit codes, reporters, rule selection."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.reporters import JSON_SCHEMA_VERSION

HERE = Path(__file__).parent
ROOT = HERE.resolve().parents[1]
FIXTURES = HERE / "fixtures"


def run_cli(*args):
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=str(ROOT),
        timeout=120,
        env=env,
    )


class TestExitCodes:
    def test_clean_tree_exits_zero(self):
        proc = run_cli(str(ROOT / "src" / "repro"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_fixture_violations_exit_one(self):
        proc = run_cli(str(FIXTURES / "bad_det"))
        assert proc.returncode == 1
        assert "R-DET" in proc.stdout

    def test_bad_path_exits_two(self):
        proc = run_cli(str(FIXTURES / "no_such_dir"))
        assert proc.returncode == 2
        assert "repro-lint" in proc.stderr

    def test_unknown_rule_id_exits_two(self):
        proc = run_cli("--select", "R-NOPE", str(FIXTURES / "bad_det"))
        assert proc.returncode == 2


class TestReporters:
    def test_text_report_lines_are_grep_friendly(self):
        proc = run_cli(str(FIXTURES / "bad_except"))
        lines = proc.stdout.strip().splitlines()
        assert any(":" in line and "R-SILENT" in line for line in lines)
        assert lines[-1].startswith("repro-lint:")

    def test_json_report_schema(self):
        proc = run_cli("--format", "json", str(FIXTURES / "bad_det"))
        doc = json.loads(proc.stdout)
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["counts"].get("error", 0) >= 1
        assert doc["findings"], "expected findings on the fixture tree"
        for finding in doc["findings"]:
            assert set(finding) == {
                "rule",
                "severity",
                "path",
                "line",
                "col",
                "message",
            }

    def test_json_on_clean_tree(self):
        proc = run_cli("--format", "json", str(ROOT / "src" / "repro" / "lint"))
        doc = json.loads(proc.stdout)
        assert doc["findings"] == []
        assert proc.returncode == 0


class TestSelection:
    def test_select_limits_rules(self):
        proc = run_cli("--select", "R-EXCEPT", str(FIXTURES / "bad_except"))
        assert proc.returncode == 1
        assert "R-EXCEPT" in proc.stdout
        assert "R-SILENT" not in proc.stdout

    def test_ignore_drops_rules(self):
        proc = run_cli(
            "--ignore", "R-EXCEPT", "--ignore", "R-SILENT", str(FIXTURES / "bad_except")
        )
        assert proc.returncode == 0

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("R-RNG", "R-DET", "R-FLOATEQ", "R-VALIDATE", "R-REGISTRY"):
            assert rule_id in proc.stdout
