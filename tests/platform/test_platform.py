"""Tests for repro.platform.platform."""

import numpy as np
import pytest

from repro.platform import Platform, Processor


class TestProcessor:
    def test_fields(self):
        p = Processor(3, 2.5)
        assert p.pid == 3
        assert p.speed == 2.5

    def test_negative_pid(self):
        with pytest.raises(ValueError):
            Processor(-1, 1.0)

    def test_nonpositive_speed(self):
        with pytest.raises(ValueError):
            Processor(0, 0.0)
        with pytest.raises(ValueError):
            Processor(0, -3.0)

    def test_frozen(self):
        p = Processor(0, 1.0)
        with pytest.raises(AttributeError):
            p.speed = 2.0


class TestPlatform:
    def test_basic(self):
        pf = Platform([1.0, 3.0])
        assert pf.p == 2
        assert len(pf) == 2
        assert pf.total_speed == 4.0
        assert np.allclose(pf.relative_speeds, [0.25, 0.75])

    def test_relative_speeds_sum_to_one(self, paper_platform):
        assert paper_platform.relative_speeds.sum() == pytest.approx(1.0)

    def test_immutability(self):
        pf = Platform([1.0, 2.0])
        with pytest.raises(ValueError):
            pf.speeds[0] = 5.0
        with pytest.raises(ValueError):
            pf.relative_speeds[0] = 0.9

    def test_source_mutation_does_not_leak(self):
        src = np.array([1.0, 2.0])
        pf = Platform(src)
        src[0] = 100.0
        assert pf.speeds[0] == 1.0

    def test_homogeneous(self):
        pf = Platform.homogeneous(5, speed=3.0)
        assert pf.p == 5
        assert np.allclose(pf.speeds, 3.0)
        assert np.allclose(pf.relative_speeds, 0.2)

    def test_homogeneous_invalid_p(self):
        with pytest.raises(ValueError):
            Platform.homogeneous(0)

    def test_processor_accessor(self):
        pf = Platform([1.0, 2.0])
        proc = pf.processor(1)
        assert proc.pid == 1
        assert proc.speed == 2.0

    def test_iteration(self):
        pf = Platform([1.0, 2.0, 3.0])
        procs = list(pf)
        assert [q.pid for q in procs] == [0, 1, 2]
        assert [q.speed for q in procs] == [1.0, 2.0, 3.0]

    def test_rejects_bad_speeds(self):
        with pytest.raises(ValueError):
            Platform([])
        with pytest.raises(ValueError):
            Platform([1.0, 0.0])
