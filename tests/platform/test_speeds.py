"""Tests for repro.platform.speeds."""

import numpy as np
import pytest

from repro.platform import (
    SCENARIO_NAMES,
    DynamicSpeedModel,
    Platform,
    StaticSpeedModel,
    heterogeneity_speeds,
    make_scenario,
    set_speeds,
    uniform_speeds,
)


class TestUniformSpeeds:
    def test_range(self):
        s = uniform_speeds(1000, 10, 100, rng=0)
        assert s.size == 1000
        assert s.min() >= 10 and s.max() <= 100

    def test_reproducible(self):
        assert np.array_equal(uniform_speeds(10, rng=5), uniform_speeds(10, rng=5))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            uniform_speeds(5, 100, 10)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            uniform_speeds(0)


class TestHeterogeneitySpeeds:
    def test_zero_h_homogeneous(self):
        s = heterogeneity_speeds(7, 0.0, rng=0)
        assert np.allclose(s, 100.0)

    def test_range(self):
        s = heterogeneity_speeds(500, 40.0, rng=1)
        assert s.min() >= 60.0 and s.max() <= 140.0

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            heterogeneity_speeds(5, 100.0)
        with pytest.raises(ValueError):
            heterogeneity_speeds(5, -1.0)


class TestSetSpeeds:
    def test_values_from_set(self):
        classes = (80.0, 100.0, 150.0)
        s = set_speeds(200, classes, rng=0)
        assert set(np.unique(s)).issubset(set(classes))

    def test_all_classes_appear(self):
        s = set_speeds(500, (40, 80, 100, 150, 200), rng=0)
        assert set(np.unique(s)) == {40.0, 80.0, 100.0, 150.0, 200.0}

    def test_rejects_bad_classes(self):
        with pytest.raises(ValueError):
            set_speeds(5, ())
        with pytest.raises(ValueError):
            set_speeds(5, (1.0, -2.0))


class TestStaticSpeedModel:
    def test_duration(self, small_platform, rng):
        m = StaticSpeedModel()
        m.reset(small_platform, rng)
        assert m.duration(0, 10) == pytest.approx(10.0)  # speed 1
        assert m.duration(3, 10) == pytest.approx(2.5)  # speed 4
        assert m.duration(2, 0) == 0.0

    def test_use_before_reset(self):
        m = StaticSpeedModel()
        with pytest.raises(RuntimeError):
            m.duration(0, 1)
        with pytest.raises(RuntimeError):
            m.current_speed(0)

    def test_negative_tasks(self, small_platform, rng):
        m = StaticSpeedModel()
        m.reset(small_platform, rng)
        with pytest.raises(ValueError):
            m.duration(0, -1)

    def test_current_speed(self, small_platform, rng):
        m = StaticSpeedModel()
        m.reset(small_platform, rng)
        assert m.current_speed(1) == 2.0


class TestDynamicSpeedModel:
    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            DynamicSpeedModel(0.0)
        with pytest.raises(ValueError):
            DynamicSpeedModel(1.0)
        with pytest.raises(ValueError):
            DynamicSpeedModel(-0.1)

    def test_first_task_at_base_speed(self, rng):
        pf = Platform([10.0])
        m = DynamicSpeedModel(0.05)
        m.reset(pf, rng)
        d = m.duration(0, 1)
        assert d == pytest.approx(0.1)  # first task before any perturbation

    def test_speed_evolves(self, rng):
        pf = Platform([10.0])
        m = DynamicSpeedModel(0.2)
        m.reset(pf, rng)
        m.duration(0, 50)
        assert m.current_speed(0) != 10.0

    def test_duration_bounds(self, rng):
        """m tasks at jitter j must take between the extreme-walk bounds."""
        pf = Platform([10.0])
        m = DynamicSpeedModel(0.05)
        m.reset(pf, rng)
        n_tasks = 20
        d = m.duration(0, n_tasks)
        fastest = sum(1.0 / (10.0 * 1.05**t) for t in range(n_tasks))
        slowest = sum(1.0 / (10.0 * 0.95**t) for t in range(n_tasks))
        assert fastest <= d <= slowest

    def test_zero_tasks_free(self, rng):
        pf = Platform([10.0])
        m = DynamicSpeedModel(0.05)
        m.reset(pf, rng)
        assert m.duration(0, 0) == 0.0
        assert m.current_speed(0) == 10.0  # no perturbation applied

    def test_reset_restores_base(self, rng):
        pf = Platform([10.0])
        m = DynamicSpeedModel(0.2)
        m.reset(pf, rng)
        m.duration(0, 100)
        m.reset(pf, rng)
        assert m.current_speed(0) == 10.0

    def test_platform_not_mutated(self, rng):
        pf = Platform([10.0, 20.0])
        m = DynamicSpeedModel(0.2)
        m.reset(pf, rng)
        m.duration(0, 200)
        assert pf.speeds[0] == 10.0

    def test_use_before_reset(self):
        m = DynamicSpeedModel(0.1)
        with pytest.raises(RuntimeError):
            m.duration(0, 1)


class TestScenarios:
    def test_names(self):
        assert set(SCENARIO_NAMES) == {"unif.1", "unif.2", "set.3", "set.5", "dyn.5", "dyn.20"}

    @pytest.mark.parametrize("name", ["unif.1", "unif.2", "set.3", "set.5", "dyn.5", "dyn.20"])
    def test_build(self, name):
        pf, model = make_scenario(name, 20, rng=0)
        assert pf.p == 20
        if name.startswith("dyn"):
            assert isinstance(model, DynamicSpeedModel)
        else:
            assert isinstance(model, StaticSpeedModel)

    def test_speed_ranges(self):
        pf, _ = make_scenario("unif.1", 300, rng=0)
        assert pf.speeds.min() >= 80 and pf.speeds.max() <= 120
        pf, _ = make_scenario("unif.2", 300, rng=0)
        assert pf.speeds.min() >= 50 and pf.speeds.max() <= 150

    def test_set_classes(self):
        pf, _ = make_scenario("set.3", 300, rng=0)
        assert set(np.unique(pf.speeds)).issubset({80.0, 100.0, 150.0})

    def test_dyn_jitters(self):
        _, m5 = make_scenario("dyn.5", 5, rng=0)
        _, m20 = make_scenario("dyn.20", 5, rng=0)
        assert m5.jitter == 0.05
        assert m20.jitter == 0.20

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("nope", 5)
