"""Behavioural tests of the four outer-product strategies."""

import numpy as np
import pytest

from repro.core.analysis import outer_lower_bound
from repro.core.strategies import OuterDynamic, OuterRandom, OuterSorted, OuterTwoPhase
from repro.platform import Platform
from repro.simulator import simulate

ALL_OUTER = [OuterRandom, OuterSorted, OuterDynamic]


def run(strategy, platform, seed=0, **kw):
    return simulate(strategy, platform, rng=seed, **kw)


class TestCompletion:
    @pytest.mark.parametrize("cls", ALL_OUTER + [OuterTwoPhase])
    def test_all_tasks_done(self, cls, paper_platform):
        n = 12
        r = run(cls(n), paper_platform)
        assert r.total_tasks == n * n

    @pytest.mark.parametrize("cls", ALL_OUTER + [OuterTwoPhase])
    def test_single_worker(self, cls):
        pf = Platform([3.0])
        n = 6
        r = run(cls(n), pf)
        assert r.total_tasks == n * n

    @pytest.mark.parametrize("cls", ALL_OUTER + [OuterTwoPhase])
    def test_n_equals_one(self, cls, small_platform):
        r = run(cls(1), small_platform)
        assert r.total_tasks == 1
        # One task needs both its blocks.
        assert r.total_blocks == 2

    @pytest.mark.parametrize("cls", ALL_OUTER)
    def test_more_workers_than_tasks(self, cls):
        pf = Platform(np.full(30, 1.0))
        r = run(cls(3), pf)  # 9 tasks, 30 workers
        assert r.total_tasks == 9


class TestExactlyOnce:
    @pytest.mark.parametrize("cls", ALL_OUTER + [OuterTwoPhase])
    def test_every_task_exactly_once(self, cls, paper_platform):
        n = 10
        r = run(cls(n, collect_ids=True), paper_platform, collect_trace=True)
        ids = r.trace.all_task_ids()
        assert ids.size == n * n
        assert np.unique(ids).size == n * n
        assert ids.min() == 0 and ids.max() == n * n - 1


class TestCommunicationAccounting:
    def test_random_blocks_bounded(self, paper_platform):
        """Each task ships at most 2 blocks and >= 1 for a new worker."""
        n = 10
        r = run(OuterRandom(n), paper_platform, collect_trace=True)
        for rec in r.trace:
            assert 0 <= rec.blocks <= 2
            assert rec.tasks == 1

    def test_random_comm_upper_bound(self, paper_platform):
        n = 10
        r = run(OuterRandom(n), paper_platform)
        assert r.total_blocks <= 2 * n * n

    def test_comm_at_least_lower_bound_heuristic(self, paper_platform):
        """Total communication can never be below 2n (someone must see all data)."""
        n = 10
        for cls in ALL_OUTER:
            r = run(cls(n), paper_platform)
            assert r.total_blocks >= 2 * n

    def test_dynamic_ships_two_blocks_per_request(self, paper_platform):
        n = 10
        r = run(OuterDynamic(n), paper_platform, collect_trace=True)
        for rec in r.trace:
            assert rec.blocks in (0, 1, 2)

    def test_dynamic_comm_bounded_by_knowledge_capacity(self, paper_platform):
        """No worker can receive more than 2n blocks total."""
        n = 10
        r = run(OuterDynamic(n), paper_platform)
        assert np.all(r.per_worker_blocks <= 2 * n)

    def test_sorted_single_worker_comm(self):
        """One worker, sorted order: a_i sent once per row, b_j once per col."""
        pf = Platform([1.0])
        n = 5
        r = run(OuterSorted(n), pf)
        assert r.total_blocks == 2 * n

    def test_single_worker_dynamic_comm_minimal(self):
        """One worker must receive each block exactly once: 2n total."""
        pf = Platform([1.0])
        n = 7
        r = run(OuterDynamic(n), pf)
        assert r.total_blocks == 2 * n


class TestRanking:
    def test_dynamic_beats_random(self, paper_platform):
        """The paper's headline ordering on a mid-size instance (Fig. 1)."""
        n = 50
        random_r = run(OuterRandom(n), paper_platform, seed=1)
        dynamic_r = run(OuterDynamic(n), paper_platform, seed=1)
        assert dynamic_r.total_blocks < random_r.total_blocks

    def test_two_phases_beats_dynamic(self, paper_platform):
        n = 50
        lb = outer_lower_bound(paper_platform.relative_speeds, n)
        dyn = np.mean([run(OuterDynamic(n), paper_platform, seed=s).normalized(lb) for s in range(5)])
        two = np.mean([run(OuterTwoPhase(n), paper_platform, seed=s).normalized(lb) for s in range(5)])
        assert two < dyn

    def test_normalized_above_one(self, paper_platform):
        """No strategy can beat the lower bound."""
        n = 30
        lb = outer_lower_bound(paper_platform.relative_speeds, n)
        for cls in ALL_OUTER + [OuterTwoPhase]:
            r = run(cls(n), paper_platform)
            assert r.normalized(lb) >= 1.0


class TestDynamicKnowledge:
    def test_knowledge_grows_balanced(self, paper_platform):
        s = OuterDynamic(20)
        run(s, paper_platform)
        for w in range(paper_platform.p):
            kn = s.knowledge_of(w)
            # DynamicOuter ships one a and one b per request: |I| ~ |J|.
            assert abs(kn.a.count - kn.b.count) <= 1

    def test_faster_worker_knows_more(self):
        pf = Platform([1.0, 20.0])
        s = OuterDynamic(30)
        run(s, pf, seed=2)
        assert s.knowledge_of(1).a.count > s.knowledge_of(0).a.count


class TestTwoPhaseConfiguration:
    def test_threshold_from_beta(self, paper_platform, rng):
        n = 20
        s = OuterTwoPhase(n, beta=2.0)
        s.reset(paper_platform, rng)
        assert s.threshold == round(np.exp(-2.0) * n * n)
        assert s.beta == 2.0

    def test_threshold_from_fraction(self, paper_platform, rng):
        n = 20
        s = OuterTwoPhase(n, phase1_fraction=0.9)
        s.reset(paper_platform, rng)
        assert s.threshold == round(0.1 * n * n)

    def test_threshold_from_tasks(self, paper_platform, rng):
        s = OuterTwoPhase(20, threshold_tasks=37)
        s.reset(paper_platform, rng)
        assert s.threshold == 37

    def test_threshold_capped_at_total(self, paper_platform, rng):
        s = OuterTwoPhase(5, threshold_tasks=10**6)
        s.reset(paper_platform, rng)
        assert s.threshold == 25

    def test_auto_beta_resolved(self, paper_platform, rng):
        s = OuterTwoPhase(30)
        s.reset(paper_platform, rng)
        assert s.beta is not None and 0.5 < s.beta < 10

    def test_agnostic_beta(self, paper_platform, rng):
        s = OuterTwoPhase(30, agnostic=True)
        s.reset(paper_platform, rng)
        het = OuterTwoPhase(30)
        het.reset(paper_platform, rng)
        # Section 3.6: homogeneous beta within ~5% of the heterogeneous one.
        assert s.beta == pytest.approx(het.beta, rel=0.10)

    def test_mutually_exclusive_options(self):
        with pytest.raises(ValueError):
            OuterTwoPhase(10, beta=2.0, phase1_fraction=0.5)
        with pytest.raises(ValueError):
            OuterTwoPhase(10, beta=2.0, threshold_tasks=5)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            OuterTwoPhase(10, beta=-1.0)
        with pytest.raises(ValueError):
            OuterTwoPhase(10, phase1_fraction=1.5)
        with pytest.raises(ValueError):
            OuterTwoPhase(10, threshold_tasks=-1)

    def test_threshold_before_reset_raises(self):
        with pytest.raises(RuntimeError):
            _ = OuterTwoPhase(10, beta=1.0).threshold


class TestTwoPhaseBehaviour:
    def test_phases_in_trace(self, paper_platform):
        n = 30
        r = run(OuterTwoPhase(n, beta=3.0), paper_platform, collect_trace=True)
        phases = {rec.phase for rec in r.trace}
        assert phases == {1, 2}
        # Phase-2 records come last.
        seen2 = False
        for rec in r.trace:
            if rec.phase == 2:
                seen2 = True
            elif seen2:
                pytest.fail("phase-1 record after phase 2 started")

    def test_phase2_task_count_near_threshold(self, paper_platform):
        n = 30
        beta = 3.0
        r = run(OuterTwoPhase(n, beta=beta), paper_platform, collect_trace=True)
        expected = round(np.exp(-beta) * n * n)
        # Phase 1 overshoots by at most one cross worth of tasks.
        assert expected - 2 * n <= r.trace.phase_tasks(2) <= expected

    def test_zero_threshold_is_pure_dynamic(self, paper_platform):
        n = 20
        r_two = run(OuterTwoPhase(n, threshold_tasks=0), paper_platform, seed=3, collect_trace=True)
        assert all(rec.phase == 1 for rec in r_two.trace)
        r_dyn = run(OuterDynamic(n), paper_platform, seed=3)
        assert r_two.total_blocks == r_dyn.total_blocks

    def test_full_threshold_is_pure_random(self, paper_platform):
        n = 20
        r_two = run(OuterTwoPhase(n, phase1_fraction=0.0), paper_platform, seed=3, collect_trace=True)
        assert all(rec.phase == 2 for rec in r_two.trace)
        r_rnd = run(OuterRandom(n), paper_platform, seed=3)
        assert r_two.total_blocks == r_rnd.total_blocks

    def test_phase2_ships_at_most_two(self, paper_platform):
        r = run(OuterTwoPhase(25, beta=2.0), paper_platform, collect_trace=True)
        for rec in r.trace:
            if rec.phase == 2:
                assert 0 <= rec.blocks <= 2
                assert rec.tasks == 1
