"""Edge-case tests across strategies and results."""

import numpy as np
import pytest

from repro.core.strategies import (
    MatrixTwoPhase,
    OuterDynamic,
    OuterRandom,
    OuterTwoPhase,
)
from repro.platform import Platform
from repro.simulator import simulate


class TestStrategyReuse:
    def test_reset_across_platform_sizes(self, rng):
        """One instance must be reusable across platforms of different p."""
        s = OuterDynamic(8)
        small = Platform([1.0, 2.0])
        large = Platform(np.full(10, 3.0))
        r1 = simulate(s, small, rng=0)
        r2 = simulate(s, large, rng=0)
        assert r1.total_tasks == r2.total_tasks == 64
        assert r2.per_worker_tasks.size == 10

    def test_assign_after_done_raises(self, small_platform, rng):
        s = OuterRandom(1)
        s.reset(small_platform, rng)
        s.assign(0, 0.0)
        with pytest.raises(RuntimeError):
            s.assign(0, 0.0)

    def test_dynamic_assign_after_done_raises(self, small_platform, rng):
        s = OuterDynamic(1)
        s.reset(small_platform, rng)
        s.assign(0, 0.0)
        assert s.done
        with pytest.raises(RuntimeError):
            s.assign(0, 0.0)


class TestTwoPhaseBoundaries:
    def test_beta_zero_is_all_random(self, paper_platform):
        """e^0 = 1: the threshold equals the total, phase 1 never runs."""
        n = 10
        r = simulate(OuterTwoPhase(n, beta=0.0), paper_platform, rng=0, collect_trace=True)
        assert all(rec.phase == 2 for rec in r.trace)

    def test_huge_beta_is_all_dynamic(self, paper_platform):
        n = 10
        r = simulate(OuterTwoPhase(n, beta=50.0), paper_platform, rng=0, collect_trace=True)
        assert all(rec.phase == 1 for rec in r.trace)

    def test_threshold_one_task(self, paper_platform):
        """Switching with a single task left must still terminate cleanly."""
        n = 10
        r = simulate(OuterTwoPhase(n, threshold_tasks=1), paper_platform, rng=0, collect_trace=True)
        assert r.total_tasks == 100
        assert r.trace.phase_tasks(2) <= 1

    def test_matrix_beta_property_before_resolution(self):
        s = MatrixTwoPhase(5, beta=2.5)
        assert s.beta == 2.5
        s2 = MatrixTwoPhase(5)
        assert s2.beta is None

    def test_matrix_threshold_before_reset(self):
        with pytest.raises(RuntimeError):
            _ = MatrixTwoPhase(5, beta=1.0).threshold

    def test_matrix_agnostic_close_to_tuned(self, paper_platform, rng):
        tuned = MatrixTwoPhase(10)
        tuned.reset(paper_platform, rng)
        agnostic = MatrixTwoPhase(10, agnostic=True)
        agnostic.reset(paper_platform, rng)
        assert agnostic.beta == pytest.approx(tuned.beta, rel=0.10)

    def test_phase_property_transitions(self, paper_platform, rng):
        s = OuterTwoPhase(6, threshold_tasks=30)
        s.reset(paper_platform, rng)
        assert s.phase == 1
        while not s.done:
            s.assign(0, 0.0)
        assert s.phase == 2


class TestResultAccessors:
    def test_total_tasks(self, small_platform):
        r = simulate(OuterRandom(4), small_platform, rng=0)
        assert r.total_tasks == 16

    def test_load_imbalance_zero_for_exact_split(self):
        from repro.simulator.results import SimulationResult

        r = SimulationResult(
            total_blocks=0,
            per_worker_blocks=np.zeros(2, dtype=np.int64),
            per_worker_tasks=np.array([30, 10], dtype=np.int64),
            makespan=1.0,
            n_assignments=40,
            strategy_name="x",
        )
        assert r.load_imbalance(np.array([0.75, 0.25])) == pytest.approx(0.0)

    def test_load_imbalance_detects_skew(self):
        from repro.simulator.results import SimulationResult

        r = SimulationResult(
            total_blocks=0,
            per_worker_blocks=np.zeros(2, dtype=np.int64),
            per_worker_tasks=np.array([40, 0], dtype=np.int64),
            makespan=1.0,
            n_assignments=40,
            strategy_name="x",
        )
        assert r.load_imbalance(np.array([0.5, 0.5])) == pytest.approx(1.0)
