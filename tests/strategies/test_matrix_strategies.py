"""Behavioural tests of the four matrix-multiplication strategies."""

import numpy as np
import pytest

from repro.core.analysis import matrix_lower_bound
from repro.core.strategies import MatrixDynamic, MatrixRandom, MatrixSorted, MatrixTwoPhase
from repro.platform import Platform
from repro.simulator import simulate

ALL_MATRIX = [MatrixRandom, MatrixSorted, MatrixDynamic]


def run(strategy, platform, seed=0, **kw):
    return simulate(strategy, platform, rng=seed, **kw)


class TestCompletion:
    @pytest.mark.parametrize("cls", ALL_MATRIX + [MatrixTwoPhase])
    def test_all_tasks_done(self, cls, paper_platform):
        n = 6
        r = run(cls(n), paper_platform)
        assert r.total_tasks == n**3

    @pytest.mark.parametrize("cls", ALL_MATRIX + [MatrixTwoPhase])
    def test_single_worker(self, cls):
        pf = Platform([2.0])
        r = run(cls(4), pf)
        assert r.total_tasks == 64

    @pytest.mark.parametrize("cls", ALL_MATRIX + [MatrixTwoPhase])
    def test_n_equals_one(self, cls, small_platform):
        r = run(cls(1), small_platform)
        assert r.total_tasks == 1
        assert r.total_blocks == 3  # A, B and C blocks all needed

    @pytest.mark.parametrize("cls", ALL_MATRIX)
    def test_more_workers_than_tasks(self, cls):
        pf = Platform(np.full(40, 1.0))
        r = run(cls(2), pf)  # 8 tasks, 40 workers
        assert r.total_tasks == 8


class TestExactlyOnce:
    @pytest.mark.parametrize("cls", ALL_MATRIX + [MatrixTwoPhase])
    def test_every_task_exactly_once(self, cls, paper_platform):
        n = 5
        r = run(cls(n, collect_ids=True), paper_platform, collect_trace=True)
        ids = r.trace.all_task_ids()
        assert ids.size == n**3
        assert np.unique(ids).size == n**3


class TestCommunicationAccounting:
    def test_random_blocks_bounded(self, paper_platform):
        r = run(MatrixRandom(5), paper_platform, collect_trace=True)
        for rec in r.trace:
            assert 0 <= rec.blocks <= 3
            assert rec.tasks == 1

    def test_single_worker_dynamic_minimal(self):
        """One worker ends up owning all of A, B, C: 3 n^2 blocks."""
        pf = Platform([1.0])
        n = 5
        r = run(MatrixDynamic(n), pf)
        assert r.total_blocks == 3 * n * n

    def test_dynamic_block_count_formula(self, small_platform):
        """Each full growth step from size y ships 3(2y+1) blocks."""
        r = run(MatrixDynamic(8), small_platform, collect_trace=True)
        for rec in r.trace:
            if rec.blocks > 0:
                # blocks = 3(2y+1) for some y >= 0 when all dims grow.
                assert rec.blocks % 3 == 0
                q = rec.blocks // 3
                assert q % 2 == 1  # 2y+1 is odd

    def test_dynamic_comm_bounded_by_capacity(self, paper_platform):
        n = 6
        r = run(MatrixDynamic(n), paper_platform)
        assert np.all(r.per_worker_blocks <= 3 * n * n)


class TestRanking:
    def test_dynamic_beats_random(self, paper_platform):
        n = 12
        rnd = run(MatrixRandom(n), paper_platform, seed=1)
        dyn = run(MatrixDynamic(n), paper_platform, seed=1)
        assert dyn.total_blocks < rnd.total_blocks

    def test_two_phases_beats_dynamic(self, paper_platform):
        n = 12
        lb = matrix_lower_bound(paper_platform.relative_speeds, n)
        dyn = np.mean([run(MatrixDynamic(n), paper_platform, seed=s).normalized(lb) for s in range(5)])
        two = np.mean([run(MatrixTwoPhase(n), paper_platform, seed=s).normalized(lb) for s in range(5)])
        assert two < dyn

    def test_normalized_above_one(self, paper_platform):
        n = 8
        lb = matrix_lower_bound(paper_platform.relative_speeds, n)
        for cls in ALL_MATRIX + [MatrixTwoPhase]:
            r = run(cls(n), paper_platform)
            assert r.normalized(lb) >= 1.0


class TestDynamicKnowledge:
    def test_knowledge_balanced_across_dims(self, paper_platform):
        s = MatrixDynamic(8)
        run(s, paper_platform)
        for w in range(paper_platform.p):
            kn = s.knowledge_of(w)
            counts = [kn.i.count, kn.j.count, kn.k.count]
            assert max(counts) - min(counts) <= 1


class TestTwoPhase:
    def test_threshold_from_beta(self, paper_platform, rng):
        n = 8
        s = MatrixTwoPhase(n, beta=2.0)
        s.reset(paper_platform, rng)
        assert s.threshold == round(np.exp(-2.0) * n**3)

    def test_auto_beta(self, paper_platform, rng):
        s = MatrixTwoPhase(10)
        s.reset(paper_platform, rng)
        assert 0.5 < s.beta < 10

    def test_mutually_exclusive_options(self):
        with pytest.raises(ValueError):
            MatrixTwoPhase(5, beta=1.0, threshold_tasks=3)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            MatrixTwoPhase(5, beta=-0.5)
        with pytest.raises(ValueError):
            MatrixTwoPhase(5, phase1_fraction=-0.2)

    def test_phases_ordered(self, paper_platform):
        r = run(MatrixTwoPhase(8, beta=2.5), paper_platform, collect_trace=True)
        seen2 = False
        for rec in r.trace:
            if rec.phase == 2:
                seen2 = True
            elif seen2:
                pytest.fail("phase-1 record after phase 2 started")
        assert seen2

    def test_phase2_ships_at_most_three(self, paper_platform):
        r = run(MatrixTwoPhase(8, beta=2.0), paper_platform, collect_trace=True)
        for rec in r.trace:
            if rec.phase == 2:
                assert 0 <= rec.blocks <= 3
                assert rec.tasks == 1

    def test_zero_threshold_is_pure_dynamic(self, paper_platform):
        n = 7
        r_two = run(MatrixTwoPhase(n, threshold_tasks=0), paper_platform, seed=4, collect_trace=True)
        assert all(rec.phase == 1 for rec in r_two.trace)
        r_dyn = run(MatrixDynamic(n), paper_platform, seed=4)
        assert r_two.total_blocks == r_dyn.total_blocks

    def test_full_threshold_is_pure_random(self, paper_platform):
        n = 7
        r_two = run(MatrixTwoPhase(n, phase1_fraction=0.0), paper_platform, seed=4, collect_trace=True)
        assert all(rec.phase == 2 for rec in r_two.trace)
        r_rnd = run(MatrixRandom(n), paper_platform, seed=4)
        assert r_two.total_blocks == r_rnd.total_blocks

    def test_phase2_cache_seeded_from_phase1(self, paper_platform):
        """Phase-2 comm must benefit from phase-1 rectangles.

        With a fairly early switch, phase-2 per-task cost must be clearly
        below the cold-cache cost of 3 blocks/task.
        """
        n = 10
        r = run(MatrixTwoPhase(n, beta=1.0), paper_platform, collect_trace=True)
        p2 = [rec.blocks for rec in r.trace if rec.phase == 2]
        assert len(p2) > 0
        assert np.mean(p2) < 3.0
