"""Tests for the MapReduce full-replication baselines."""

import numpy as np
import pytest

from repro.core.strategies import (
    MatrixMapReduce,
    OuterMapReduce,
    OuterRandom,
)
from repro.simulator import simulate


class TestOuterMapReduce:
    def test_exact_replication_volume(self, paper_platform):
        """Stateless workers: exactly 2 blocks per task, always."""
        n = 15
        r = simulate(OuterMapReduce(n), paper_platform, rng=0)
        assert r.total_blocks == 2 * n * n
        assert r.total_tasks == n * n

    def test_every_task_once(self, paper_platform):
        n = 8
        r = simulate(OuterMapReduce(n, collect_ids=True), paper_platform, rng=0, collect_trace=True)
        ids = r.trace.all_task_ids()
        assert np.unique(ids).size == n * n

    def test_worse_than_cached_random(self, paper_platform):
        """The intro's point: caching alone (RandomOuter) already beats
        full replication once tasks-per-worker ~ blocks-per-vector."""
        n = 30
        mr = simulate(OuterMapReduce(n), paper_platform, rng=1)
        rnd = simulate(OuterRandom(n), paper_platform, rng=1)
        assert rnd.total_blocks < mr.total_blocks

    def test_assign_after_done_raises(self, small_platform, rng):
        s = OuterMapReduce(1)
        s.reset(small_platform, rng)
        s.assign(0, 0.0)
        with pytest.raises(RuntimeError):
            s.assign(0, 0.0)


class TestMatrixMapReduce:
    def test_exact_replication_volume(self, paper_platform):
        n = 6
        r = simulate(MatrixMapReduce(n), paper_platform, rng=0)
        assert r.total_blocks == 3 * n**3
        assert r.total_tasks == n**3

    def test_replication_factor_vs_lower_bound(self, paper_platform):
        """Replication factor grows linearly in n against the lower bound."""
        from repro.core.analysis import matrix_lower_bound

        rel = paper_platform.relative_speeds
        n1, n2 = 6, 12
        f1 = 3 * n1**3 / matrix_lower_bound(rel, n1)
        f2 = 3 * n2**3 / matrix_lower_bound(rel, n2)
        assert f2 == pytest.approx(2 * f1, rel=1e-9)
