"""Tests for repro.core.strategies.base and the registry."""

import pytest

from repro.core.strategies import (
    STRATEGIES,
    Assignment,
    OuterDynamic,
    make_strategy,
    strategies_for_kernel,
    strategy_names,
)


class TestAssignment:
    def test_fields(self):
        a = Assignment(blocks=2, tasks=5)
        assert a.blocks == 2
        assert a.tasks == 5
        assert a.phase == 1
        assert a.task_ids is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Assignment(blocks=-1, tasks=0)
        with pytest.raises(ValueError):
            Assignment(blocks=0, tasks=-1)
        with pytest.raises(ValueError):
            Assignment(blocks=0, tasks=0, phase=3)

    def test_frozen(self):
        a = Assignment(blocks=0, tasks=0)
        with pytest.raises(AttributeError):
            a.blocks = 5


class TestStrategyLifecycle:
    def test_use_before_reset(self):
        s = OuterDynamic(5)
        with pytest.raises(RuntimeError):
            _ = s.platform
        with pytest.raises(RuntimeError):
            _ = s.rng

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            OuterDynamic(0)
        with pytest.raises(TypeError):
            OuterDynamic(2.5)

    def test_reset_binds(self, small_platform, rng):
        s = OuterDynamic(5)
        s.reset(small_platform, rng)
        assert s.platform is small_platform
        assert s.rng is rng
        assert not s.done


class TestRegistry:
    def test_all_registered(self):
        assert len(STRATEGIES) == 10
        assert set(strategy_names()) == {
            "RandomOuter",
            "SortedOuter",
            "DynamicOuter",
            "DynamicOuter2Phases",
            "MapReduceOuter",
            "RandomMatrix",
            "SortedMatrix",
            "DynamicMatrix",
            "DynamicMatrix2Phases",
            "MapReduceMatrix",
        }

    def test_kernel_split(self):
        outer = strategies_for_kernel("outer")
        matrix = strategies_for_kernel("matrix")
        assert len(outer) == 5 and len(matrix) == 5
        assert all("Outer" in n for n in outer)
        assert all("Matrix" in n for n in matrix)

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            strategies_for_kernel("vector")

    def test_make_strategy(self):
        s = make_strategy("DynamicOuter", 10)
        assert isinstance(s, OuterDynamic)
        assert s.n == 10

    def test_make_strategy_kwargs(self):
        s = make_strategy("DynamicOuter2Phases", 10, beta=3.0)
        assert s._beta == 3.0

    def test_make_strategy_unknown(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("FancyPants", 10)

    def test_names_match_classes(self):
        for name, cls in STRATEGIES.items():
            assert cls.name == name
            assert cls.kernel in ("outer", "matrix")
