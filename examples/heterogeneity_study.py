#!/usr/bin/env python
"""Robustness of the schedulers to platform heterogeneity (Figures 7 and 8).

Two experiments on the outer product with p = 20 workers:

1. sweep the heterogeneity level h (speeds uniform in [100-h, 100+h]) and
   show that the strategy ranking is essentially invariant;
2. run the six named scenarios of Figure 8 — including the *dynamic*
   scenarios dyn.5 / dyn.20 where a worker's speed drifts by up to 5% / 20%
   after every task — and show the same conclusion.

Also demonstrates the static 7/4-approximation baseline (the paper's
reference [2]), which needs perfect speed knowledge yet is only mildly
better than the fully dynamic, speed-agnostic DynamicOuter2Phases.

Run:  python examples/heterogeneity_study.py
"""

import numpy as np

import repro
from repro.partition import partition_square

N = 100
P = 20
REPS = 5
STRATEGIES = ("RandomOuter", "SortedOuter", "DynamicOuter", "DynamicOuter2Phases")


def mean_normalized(strategy_name: str, platform_factory, reps: int = REPS) -> float:
    values = []
    for rep in range(reps):
        platform, model = platform_factory(rep)
        strategy = repro.make_strategy(strategy_name, N)
        result = repro.simulate(strategy, platform, rng=rep, speed_model=model)
        lb = repro.outer_lower_bound(platform.relative_speeds, N)
        values.append(result.normalized(lb))
    return float(np.mean(values))


def heterogeneity_sweep() -> None:
    print(f"--- Heterogeneity sweep (p={P}, n={N}): speeds in [100-h, 100+h] ---")
    header = f"{'h':>5}" + "".join(f"{s:>22}" for s in STRATEGIES)
    print(header)
    for h in (0.0, 25.0, 50.0, 75.0, 99.0):
        def factory(rep, h=h):
            speeds = repro.heterogeneity_speeds(P, h, rng=1000 * rep + int(h))
            return repro.Platform(speeds), None

        row = f"{h:>5.0f}"
        for name in STRATEGIES:
            row += f"{mean_normalized(name, factory):>22.3f}"
        print(row)
    print("=> the ranking does not depend on the heterogeneity level.\n")


def scenario_study() -> None:
    print(f"--- Scenario study (p={P}, n={N}): Figure 8 ---")
    header = f"{'scenario':>9}" + "".join(f"{s:>22}" for s in STRATEGIES)
    print(header)
    from repro.platform import SCENARIO_NAMES

    for scenario in SCENARIO_NAMES:
        def factory(rep, scenario=scenario):
            return repro.make_scenario(scenario, P, rng=rep)

        row = f"{scenario:>9}"
        for name in STRATEGIES:
            row += f"{mean_normalized(name, factory):>22.3f}"
        print(row)
    print("=> neither speed classes nor dynamic drift change the conclusions.\n")


def static_baseline() -> None:
    print("--- Static 7/4-approximation baseline (needs exact speeds) ---")
    platform = repro.Platform(repro.uniform_speeds(P, 10, 100, rng=0))
    lb = repro.outer_lower_bound(platform.relative_speeds, N)
    part = partition_square(platform.speeds)
    static_norm = part.communication_volume(N) / lb
    two = repro.simulate(repro.OuterTwoPhase(N), platform, rng=1).normalized(lb)
    print(f"static column partition: {static_norm:.3f} x LB "
          f"(guaranteed <= 1.75, here ratio {part.approximation_ratio():.3f})")
    print(f"DynamicOuter2Phases:     {two:.3f} x LB (speed-agnostic, dynamic)")
    print("=> the dynamic scheduler is competitive without knowing any speed.")


if __name__ == "__main__":
    heterogeneity_sweep()
    scenario_study()
    static_baseline()
