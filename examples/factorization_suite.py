#!/usr/bin/env python
"""The dense-factorization trio under data-aware dynamic scheduling.

The paper's conclusion calls dense factorizations "a promising first step"
for extending the analysis to tasks with precedence dependencies.  This
example runs all three extension kernels — blocked Cholesky, flat-tree
tiled QR and pivot-free tiled LU — through the generic dependency-aware
engine, comparing random vs locality-aware ready-task selection, and
verifies every schedule numerically.

Run:  python examples/factorization_suite.py
"""

import numpy as np

import repro
from repro.extensions import cholesky, lu, qr
from repro.extensions.cholesky.numerics import random_spd
from repro.extensions.lu.numerics import random_dd

N_TILES = 14
P = 10
SEED = 21


def main() -> None:
    platform = repro.Platform(repro.uniform_speeds(P, 10, 100, rng=SEED))
    print(f"Factorizations of {N_TILES} x {N_TILES} tile matrices on {P} workers\n")

    kernels = {
        "Cholesky": (
            cholesky.simulate_cholesky,
            cholesky.RandomScheduler,
            cholesky.LocalityScheduler,
        ),
        "QR": (qr.simulate_qr, qr.RandomScheduler, qr.LocalityScheduler),
        "LU": (lu.simulate_lu, lu.RandomScheduler, lu.LocalityScheduler),
    }

    print(f"{'kernel':<10} {'tasks':>6} {'random blk/task':>16} {'locality blk/task':>18} {'gain':>6}")
    for name, (run, rnd_cls, loc_cls) in kernels.items():
        rnd = np.mean(
            [r.total_blocks / r.total_tasks for r in (run(N_TILES, platform, rnd_cls(), rng=s) for s in range(5))]
        )
        loc_results = [run(N_TILES, platform, loc_cls(), rng=s) for s in range(5)]
        loc = np.mean([r.total_blocks / r.total_tasks for r in loc_results])
        print(
            f"{name:<10} {loc_results[0].total_tasks:>6} {rnd:>16.3f} {loc:>18.3f} "
            f"{1 - loc / rnd:>6.0%}"
        )

    size = N_TILES * 4
    print(f"\nnumerical verification (size {size}, locality schedules):")
    rep = cholesky.replay_cholesky(random_spd(size, rng=SEED), N_TILES, platform, rng=SEED)
    print(f"  Cholesky  || L L^T - A ||_max = {rep.max_abs_error:.2e}")
    repq = qr.replay_qr(np.random.default_rng(SEED).normal(size=(size, size)), N_TILES, platform, rng=SEED)
    print(f"  QR        || R^T R - A^T A || / ||A^T A|| = {repq.gram_error:.2e}")
    repl = lu.replay_lu(random_dd(size, rng=SEED), N_TILES, platform, rng=SEED)
    print(f"  LU        || L U - A ||_max / ||A||_max   = {repl.max_abs_error:.2e}")
    print("\n=> data-aware dynamic scheduling generalizes to dependent tasks,")
    print("   cutting communication roughly in half on all three kernels.")


if __name__ == "__main__":
    main()
