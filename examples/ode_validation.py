#!/usr/bin/env python
"""Validate the ODE model at lemma level (beyond the figure-level overlap).

The paper proves (Lemma 1) that during DynamicOuter the fraction of
unprocessed tasks seen by a worker when it knows a fraction x of each input
vector is ``g_k(x) = (1 - x^2)^alpha_k``, and (Lemma 2) that the time to
reach knowledge x is ``t_k(x) = n^2 (1 - (1-x^2)^(alpha_k+1)) / sum(s)``.

This example instruments a real simulation, measures both quantities for a
fast and a slow worker, and prints them against the closed forms.

Run:  python examples/ode_validation.py
"""

import numpy as np

import repro
from repro.diagnostics import measure_outer_knowledge_curves

P, N, SEED = 40, 200, 11


def show_curve(curve, total_speed: float, label: str) -> None:
    print(f"\n{label} (worker {curve.worker}, alpha = {curve.alpha:.1f})")
    print(f"{'x':>6} {'g measured':>11} {'g Lemma 1':>10} {'t measured':>11} {'t Lemma 2':>10}")
    pred_g = curve.predicted_g()
    pred_t = curve.predicted_t(total_speed)
    targets = np.linspace(0.05, min(0.85, curve.x.max()), 6)
    for xt in targets:
        idx = int(np.argmin(np.abs(curve.x - xt)))
        g = curve.g[idx]
        g_str = f"{g:11.3f}" if not np.isnan(g) else "        nan"
        print(f"{curve.x[idx]:>6.2f} {g_str} {pred_g[idx]:>10.3f} {curve.t[idx]:>11.4f} {pred_t[idx]:>10.4f}")
    print(f"g RMSE (x <= 0.8):            {curve.g_rmse(0.8):.4f}")
    print(f"t max relative err (x <= 0.8): {curve.t_relative_error(total_speed, 0.8):.2%}")


def main() -> None:
    platform = repro.Platform(repro.uniform_speeds(P, 10, 100, rng=SEED))
    print(f"DynamicOuter on {P} workers, n = {N} blocks ({N * N} tasks)")
    curves = measure_outer_knowledge_curves(N, platform, rng=SEED + 1)

    by_speed = sorted(curves, key=lambda c: platform.speeds[c.worker])
    show_curve(by_speed[0], platform.total_speed, "slowest worker")
    show_curve(by_speed[-1], platform.total_speed, "fastest worker")

    med_g = np.nanmedian([c.g_rmse(0.8) for c in curves])
    med_t = np.nanmedian([c.t_relative_error(platform.total_speed, 0.8) for c in curves])
    print(f"\nacross all {len(curves)} workers: median g RMSE = {med_g:.3f}, "
          f"median t error = {med_t:.2%}")
    print("=> the continuous ODE model tracks the discrete randomized process.")


if __name__ == "__main__":
    main()
