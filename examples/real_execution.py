#!/usr/bin/env python
"""Execute a scheduled computation on real data (execution replay).

The paper measures schedulers by simulated communication counts.  This
example closes the loop: it runs DynamicOuter2Phases and DynamicMatrix
through the simulator *and then actually performs every block task with
NumPy*, verifying the assembled result against the reference kernels.

This is the reproduction's stand-in for a real heterogeneous cluster run:
the exact same scheduling decisions drive real arithmetic, proving that

* every block task is computed exactly once,
* the per-worker work shares follow the speeds,
* the assembled result equals a b^t / A @ B.

Run:  python examples/real_execution.py
"""

import numpy as np

import repro
from repro.execution import execute_matrix, execute_outer

SEED = 99


def outer_demo() -> None:
    n, l = 20, 8  # 20 blocks of 8 elements -> vectors of 160
    rng = np.random.default_rng(SEED)
    a = rng.normal(size=n * l)
    b = rng.normal(size=n * l)
    platform = repro.Platform(repro.uniform_speeds(6, 10, 100, rng=SEED))

    report = execute_outer(a, b, n, platform, "DynamicOuter2Phases", rng=SEED)
    sim = report.simulation
    print(f"--- Outer product: {n} x {n} blocks of {l} elements on {platform.p} workers ---")
    print(f"tasks executed:        {report.tasks_executed} (exactly once each)")
    print(f"communication:         {sim.total_blocks} blocks")
    print(f"per-worker tasks:      {report.per_worker_tasks.tolist()}")
    print(f"relative speeds:       {np.round(platform.relative_speeds, 3).tolist()}")
    print(f"max |error| vs outer:  {report.max_abs_error:.2e}  (exact: {report.exact})\n")


def matrix_demo() -> None:
    n, l = 10, 6  # 10 x 10 blocks of 6 x 6 -> matrices of 60 x 60
    rng = np.random.default_rng(SEED + 1)
    a = rng.normal(size=(n * l, n * l))
    b = rng.normal(size=(n * l, n * l))
    platform = repro.Platform(repro.uniform_speeds(6, 10, 100, rng=SEED + 1))

    report = execute_matrix(a, b, n, platform, "DynamicMatrix", rng=SEED + 1)
    sim = report.simulation
    print(f"--- Matrix product: {n} x {n} blocks of {l} x {l} on {platform.p} workers ---")
    print(f"tasks executed:        {report.tasks_executed} (= n^3 = {n ** 3})")
    print(f"communication:         {sim.total_blocks} blocks")
    print(f"makespan:              {sim.makespan:.4f} time units")
    print(f"max |error| vs A @ B:  {report.max_abs_error:.2e}")
    ok = np.allclose(report.result, a @ b)
    print(f"matches NumPy matmul:  {ok}")
    if not ok:  # pragma: no cover - sanity
        raise SystemExit("replay mismatch!")


if __name__ == "__main__":
    outer_demo()
    matrix_demo()
