#!/usr/bin/env python
"""Quickstart: simulate the four outer-product schedulers on one platform.

Reproduces the experience of Figure 1/4 at a glance:

* build a heterogeneous platform (speeds uniform in [10, 100]);
* run RandomOuter, SortedOuter, DynamicOuter and DynamicOuter2Phases;
* normalize the communication volume by the paper's lower bound;
* compare against the closed-form prediction of the ODE analysis.

Run:  python examples/quickstart.py
"""

import repro
from repro.core.analysis.outer import optimal_outer_beta, outer_total_ratio

P = 50  # workers
N = 100  # blocks per input vector  ->  N*N tasks
SEED = 2014


def main() -> None:
    platform = repro.Platform(repro.uniform_speeds(P, 10, 100, rng=SEED))
    rel = platform.relative_speeds
    lb = repro.outer_lower_bound(rel, N)

    print(f"Platform: {P} workers, speeds in [{platform.speeds.min():.0f}, {platform.speeds.max():.0f}]")
    print(f"Problem:  outer product of two {N}-block vectors ({N * N} tasks)")
    print(f"Lower bound on communication: {lb:.0f} blocks\n")

    print(f"{'strategy':<22} {'blocks':>9} {'x lower bound':>14}")
    for name in repro.strategies_for_kernel("outer"):
        strategy = repro.make_strategy(name, N)
        result = repro.simulate(strategy, platform, rng=SEED + 1)
        print(f"{name:<22} {result.total_blocks:>9d} {result.normalized(lb):>14.3f}")

    beta = optimal_outer_beta(rel, N)
    predicted = outer_total_ratio(beta, rel, N)
    print(f"\nODE analysis: optimal beta = {beta:.3f} "
          f"(switch when {100 * (1 - 2.718281828 ** -beta):.1f}% of tasks are done)")
    print(f"Predicted normalized communication at beta*: {predicted:.3f}")
    print("Compare with the DynamicOuter2Phases row above — the analysis is the")
    print("curve labeled 'Analysis' in Figures 4-6 of the paper.")


if __name__ == "__main__":
    main()
