#!/usr/bin/env python
"""When does the paper's overlap assumption hold?  (the out-of-scope model)

The paper counts communication volume and *assumes* transfers hide behind
computation, noting that the prefetch threshold needed "has been observed
to be small" but that "a rigorous algorithm to estimate it is still
missing".  This example runs the extension that fills that gap:

* computes the critical bandwidth B* = volume / ideal-makespan;
* sweeps the master-uplink bandwidth around B* and the worker prefetch
  depth θ, reporting the slowdown vs the compute-bound ideal.

Expected picture: below B* the run is communication-bound (slowdown ~
B*/B); above B*, θ of 0-2 batches already achieves the overlap the paper
assumes, and *over*-prefetching hurts by committing tasks to workers too
early (load imbalance at the tail).

Run:  python examples/overlap_bandwidth.py
"""

import repro
from repro.extensions.overlap import critical_bandwidth, overlap_study

P, N, SEED = 20, 60, 3


def main() -> None:
    platform = repro.Platform(repro.uniform_speeds(P, 10, 100, rng=SEED))
    factory = lambda: repro.OuterTwoPhase(N)  # noqa: E731

    b_star = critical_bandwidth(factory, platform, rng=SEED)
    print(f"DynamicOuter2Phases, p={P}, n={N}")
    print(f"critical bandwidth B* = volume / ideal makespan = {b_star:.1f} blocks per time unit\n")

    depths = (0, 1, 2, 4, 16, 64)
    factors = (0.25, 0.5, 1.0, 2.0, 4.0)
    study = overlap_study(
        factory, platform, bandwidth_factors=factors, prefetch_depths=depths, rng=SEED
    )

    print("slowdown vs compute-bound ideal (rows: link bandwidth, cols: prefetch depth)")
    print(f"{'B/B*':>6} " + "".join(f"{f'θ={d}':>8}" for d in depths))
    for factor in factors:
        row = study[factor]
        print(f"{factor:>6.2f} " + "".join(f"{r.slowdown:>8.3f}" for r in row))

    print("\nreading the table:")
    print(" * B < B*: communication-bound — slowdown ~ B*/B regardless of θ;")
    print(" * B >= B*: θ of 0-2 already overlaps (the paper's 'small' threshold);")
    print(" * large θ backfires: tasks committed to slow workers too early.")


if __name__ == "__main__":
    main()
