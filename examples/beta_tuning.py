#!/usr/bin/env python
"""Tune the two-phase threshold β for *your* platform (Figures 6 and 11).

This is the paper's headline workflow: use the ODE analysis to pick the
instant at which the scheduler should abandon data-aware allocation and
finish with purely random allocation.

The script:

1. sweeps β for DynamicOuter2Phases on a fixed 20-worker platform and
   prints simulation vs analysis side by side (Figure 6);
2. shows that the *speed-agnostic* β (computed assuming homogeneous
   workers — Section 3.6) is essentially as good, so a runtime needs only
   p and the matrix size to set its threshold;
3. repeats the exercise for matrix multiplication (Figure 11).

Run:  python examples/beta_tuning.py
"""

import numpy as np

import repro
from repro.core.analysis.matrix import matrix_total_ratio, optimal_matrix_beta
from repro.core.analysis.outer import optimal_outer_beta, outer_total_ratio

SEED = 7
REPS = 5


def sweep_outer() -> None:
    p, n = 20, 100
    platform = repro.Platform(repro.uniform_speeds(p, 10, 100, rng=SEED))
    rel = platform.relative_speeds
    lb = repro.outer_lower_bound(rel, n)

    print(f"--- Outer product, p={p}, n={n} (Figure 6) ---")
    print(f"{'beta':>6} {'phase-1 %':>10} {'simulated':>10} {'analysis':>9}")
    for beta in (1.0, 2.0, 3.0, 4.0, 4.17, 5.0, 6.0, 8.0):
        sims = [
            repro.simulate(repro.OuterTwoPhase(n, beta=beta), platform, rng=s).normalized(lb)
            for s in range(REPS)
        ]
        pred = outer_total_ratio(beta, rel, n)
        print(f"{beta:>6.2f} {100 * (1 - np.exp(-beta)):>9.1f}% {np.mean(sims):>10.3f} {pred:>9.3f}")

    beta_het = optimal_outer_beta(rel, n)
    beta_hom = repro.agnostic_beta("outer", p, n)
    print(f"\noptimal beta (knows speeds):      {beta_het:.4f}")
    print(f"agnostic beta (homogeneous, 3.6): {beta_hom:.4f}")
    print(f"relative difference:              {abs(beta_het - beta_hom) / beta_het:.2%}")


def sweep_matrix() -> None:
    p, n = 100, 40
    platform = repro.Platform(repro.uniform_speeds(p, 10, 100, rng=SEED))
    rel = platform.relative_speeds
    lb = repro.matrix_lower_bound(rel, n)

    print(f"\n--- Matrix multiplication, p={p}, n={n} (Figure 11) ---")
    print(f"{'beta':>6} {'phase-1 %':>10} {'simulated':>10} {'analysis':>9}")
    for beta in (1.0, 2.0, 2.95, 4.0, 6.0):
        sims = [
            repro.simulate(repro.MatrixTwoPhase(n, beta=beta), platform, rng=s).normalized(lb)
            for s in range(3)
        ]
        pred = matrix_total_ratio(beta, rel, n)
        print(f"{beta:>6.2f} {100 * (1 - np.exp(-beta)):>9.1f}% {np.mean(sims):>10.3f} {pred:>9.3f}")

    beta_het = optimal_matrix_beta(rel, n)
    beta_hom = repro.agnostic_beta("matrix", p, n)
    print(f"\noptimal beta (knows speeds):      {beta_het:.4f}")
    print(f"agnostic beta (homogeneous):      {beta_hom:.4f}")


if __name__ == "__main__":
    sweep_outer()
    sweep_matrix()
