#!/usr/bin/env python
"""Extension: dynamic data-aware scheduling of a blocked Cholesky DAG.

The paper's conclusion names dense factorizations (Cholesky, QR) as the
next step for this style of analysis — tasks now carry *precedence
dependencies* on top of data reuse.  This example runs the extension
package :mod:`repro.extensions.cholesky`:

* builds the POTRF/TRSM/SYRK/GEMM task DAG for an n x n tile matrix;
* schedules it demand-driven with (a) random ready-task selection and
  (b) locality-aware selection (fewest fetched tiles, critical-path
  tie-break), under a write-invalidate tile-cache model;
* replays the locality schedule on a real SPD matrix and verifies the
  factor against ``numpy.linalg.cholesky``.

Run:  python examples/cholesky_extension.py
"""

import numpy as np

import repro
from repro.extensions.cholesky import (
    LocalityScheduler,
    RandomScheduler,
    replay_cholesky,
    simulate_cholesky,
    task_counts,
)
from repro.extensions.cholesky.numerics import random_spd

N_TILES = 16
P = 8
SEED = 5


def main() -> None:
    platform = repro.Platform(repro.uniform_speeds(P, 10, 100, rng=SEED))
    counts = task_counts(N_TILES)
    total = sum(counts.values())
    print(f"Blocked Cholesky, {N_TILES} x {N_TILES} tiles on {P} workers")
    print("tasks: " + ", ".join(f"{k.value}={v}" for k, v in counts.items()) + f"  (total {total})\n")

    print(f"{'scheduler':<18} {'blocks':>8} {'makespan':>9} {'idle':>7}")
    results = {}
    for scheduler in (RandomScheduler(), LocalityScheduler()):
        samples = [simulate_cholesky(N_TILES, platform, scheduler, rng=s) for s in range(5)]
        blocks = np.mean([r.total_blocks for r in samples])
        makespan = np.mean([r.makespan for r in samples])
        idle = np.mean([r.idle_time for r in samples])
        results[scheduler.name] = blocks
        print(f"{scheduler.name:<18} {blocks:>8.0f} {makespan:>9.3f} {idle:>7.2f}")

    gain = 1 - results["LocalityCholesky"] / results["RandomCholesky"]
    print(f"\n=> locality-aware selection ships {gain:.0%} fewer blocks, as the")
    print("   paper's data-aware principle predicts for dependent tasks too.\n")

    size = N_TILES * 8
    a = random_spd(size, rng=SEED)
    replay = replay_cholesky(a, N_TILES, platform, LocalityScheduler(), rng=SEED)
    print(f"numerical replay on a {size} x {size} SPD matrix:")
    print(f"  || L L^T - A ||_max      = {replay.max_abs_error:.2e}")
    print(f"  || L - chol(A) ||_max    = {replay.max_factor_error:.2e}")
    print(f"  matches numpy.cholesky:  {np.allclose(replay.factor, np.linalg.cholesky(a))}")


if __name__ == "__main__":
    main()
