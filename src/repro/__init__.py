"""repro — dynamic scheduling strategies for matrix multiplication on
heterogeneous platforms.

A from-scratch, production-quality reproduction of

    Olivier Beaumont, Loris Marchal.
    "Analysis of Dynamic Scheduling Strategies for Matrix Multiplication
    on Heterogeneous Platforms", HPDC 2014.

Quickstart::

    import repro

    platform = repro.Platform(repro.uniform_speeds(20, 10, 100, rng=0))
    strategy = repro.OuterTwoPhase(100)           # beta auto-tuned from the analysis
    result = repro.simulate(strategy, platform, rng=1)
    lb = repro.outer_lower_bound(platform.relative_speeds, 100)
    print(result.normalized(lb))                  # paper's y-axis value

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every figure.
"""

from repro.core.analysis import (
    agnostic_beta,
    lower_bound,
    matrix_lower_bound,
    matrix_total_ratio,
    optimal_matrix_beta,
    optimal_outer_beta,
    outer_lower_bound,
    outer_total_ratio,
)
from repro.core.strategies import (
    Assignment,
    MatrixDynamic,
    MatrixRandom,
    MatrixSorted,
    MatrixTwoPhase,
    OuterDynamic,
    OuterRandom,
    OuterSorted,
    OuterTwoPhase,
    Strategy,
    make_strategy,
    strategies_for_kernel,
    strategy_names,
)
from repro.platform import (
    DynamicSpeedModel,
    Platform,
    Processor,
    StaticSpeedModel,
    heterogeneity_speeds,
    make_scenario,
    set_speeds,
    uniform_speeds,
)
from repro.faults import (
    FaultSchedule,
    HeartbeatTimeout,
    ReassignLost,
    RecoveryPolicy,
    ReplicateTail,
    simulate_faulty,
)
from repro.simulator import FaultStats, SimulationResult, Trace, simulate

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # platform
    "Platform",
    "Processor",
    "StaticSpeedModel",
    "DynamicSpeedModel",
    "uniform_speeds",
    "heterogeneity_speeds",
    "set_speeds",
    "make_scenario",
    # simulator
    "simulate",
    "SimulationResult",
    "Trace",
    # faults
    "simulate_faulty",
    "FaultSchedule",
    "FaultStats",
    "RecoveryPolicy",
    "ReassignLost",
    "HeartbeatTimeout",
    "ReplicateTail",
    # strategies
    "Strategy",
    "Assignment",
    "OuterRandom",
    "OuterSorted",
    "OuterDynamic",
    "OuterTwoPhase",
    "MatrixRandom",
    "MatrixSorted",
    "MatrixDynamic",
    "MatrixTwoPhase",
    "make_strategy",
    "strategy_names",
    "strategies_for_kernel",
    # analysis
    "outer_lower_bound",
    "matrix_lower_bound",
    "lower_bound",
    "outer_total_ratio",
    "matrix_total_ratio",
    "optimal_outer_beta",
    "optimal_matrix_beta",
    "agnostic_beta",
]
