"""Core machinery of the :mod:`repro.lint` static-analysis framework.

The linter parses every Python file under the given paths into an
:class:`ast.Module`, wraps each in a :class:`ModuleInfo` (which also carries
the module's dotted name and its ``# repro: noqa`` suppressions), and runs a
set of :class:`Rule` objects over the collection.  Rules yield structured
:class:`Finding` objects carrying the rule id, severity, position and
message; suppressed findings are dropped before reporting.

Two rule granularities are supported: :meth:`Rule.check_module` runs once
per file (most rules), while :meth:`Rule.check_package` runs once over the
whole module set and is used for cross-file contracts such as the strategy
registry (R-REGISTRY).

Suppression syntax, modelled on flake8's ``noqa`` but namespaced so the two
tools cannot collide::

    risky_line()  # repro: noqa[R-DET]      suppress one rule on this line
    risky_line()  # repro: noqa[R-DET,R-RNG]
    risky_line()  # repro: noqa             suppress every rule on this line
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintError",
    "ModuleInfo",
    "Rule",
    "Severity",
    "collect_modules",
    "dotted_name",
    "parse_noqa",
    "run_lint",
]

#: Marker meaning "every rule is suppressed on this line".
_ALL_RULES = frozenset({"*"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_\-, ]+)\])?", re.IGNORECASE
)


class Severity:
    """Finding severities, ordered from advisory to blocking."""

    WARNING = "warning"
    ERROR = "error"


class LintError(RuntimeError):
    """Raised when a target file cannot be read or parsed."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source position."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (the JSON reporter's schema)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable representation (``path:line:col: ...``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.severity} {self.rule_id} {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus the metadata rules need to scope themselves."""

    path: Path
    name: str
    tree: ast.Module
    source: str
    noqa: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @property
    def name_parts(self) -> Tuple[str, ...]:
        """The dotted name split on dots (``("repro", "utils", "rng")``)."""
        return tuple(self.name.split("."))

    def in_package(self, *prefixes: str) -> bool:
        """True if the module's dotted name starts with any given prefix."""
        return any(
            self.name == prefix or self.name.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`, :attr:`severity` and :attr:`description`, and
    override :meth:`check_module` (per-file rules) and/or
    :meth:`check_package` (cross-file rules).  Both default to yielding
    nothing so a rule only implements the granularity it needs.
    """

    id: str = "R-ABSTRACT"
    severity: str = Severity.ERROR
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for a single module."""
        return iter(())

    def check_package(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        """Yield findings that depend on the whole module set."""
        return iter(())

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` for *node* inside *module*."""
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line.

    A blanket ``# repro: noqa`` maps to the ``{"*"}`` sentinel.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = _ALL_RULES
        else:
            ids = frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
            if ids:
                suppressions[lineno] = suppressions.get(lineno, frozenset()) | ids
    return suppressions


def dotted_name(path: Path, root: Optional[Path] = None) -> str:
    """Infer a module's dotted name from its file path.

    If a path component is literally ``repro`` the name is rooted there, so
    ``src/repro/utils/rng.py`` and a test fixture laid out as
    ``fixtures/bad_rng/repro/utils/rng.py`` both map to ``repro.utils.rng``
    — which is what lets scoped rules fire on fixture trees that mirror the
    package layout.  Otherwise the name is the path relative to *root*.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    elif root is not None:
        try:
            rel = path.with_suffix("").relative_to(root)
        except ValueError:
            rel = Path(parts[-1]) if parts else Path("module")
        parts = [p for p in rel.parts if p != "__init__"]
    if not parts:
        return "module"
    return ".".join(parts)


def _load_module(path: Path, root: Optional[Path]) -> ModuleInfo:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    return ModuleInfo(
        path=path,
        name=dotted_name(path, root),
        tree=tree,
        source=source,
        noqa=parse_noqa(source),
    )


def collect_modules(paths: Iterable[Path]) -> List[ModuleInfo]:
    """Parse every ``.py`` file under *paths* (files or directories).

    Directories are walked recursively in sorted order so runs are
    deterministic; unreadable or syntactically invalid files raise
    :class:`LintError` (a linter that silently skips files is worse than no
    linter).
    """
    modules: List[ModuleInfo] = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            files = sorted(p for p in base.rglob("*.py") if p.is_file())
            root = base
        elif base.is_file():
            files = [base]
            root = base.parent
        else:
            raise LintError(f"no such file or directory: {base}")
        for file in files:
            modules.append(_load_module(file, root))
    return modules


def _suppressed(finding: Finding, module: ModuleInfo) -> bool:
    ids = module.noqa.get(finding.line)
    if ids is None:
        return False
    return "*" in ids or finding.rule_id.upper() in ids


def run_lint(
    modules: Sequence[ModuleInfo], rules: Sequence[Rule]
) -> List[Finding]:
    """Run *rules* over *modules* and return unsuppressed findings, sorted."""
    by_path = {str(m.path): m for m in modules}
    findings: List[Finding] = []
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_package(modules))
    kept = [
        f
        for f in findings
        if f.path not in by_path or not _suppressed(f, by_path[f.path])
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept
