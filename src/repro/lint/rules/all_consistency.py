"""``__all__`` consistency rules (R-ALL-EXISTS, R-ALL-EXPORT, R-ALL-MISSING).

The API-doc generator (``tools/gen_api_docs.py``), the public-surface test
(``tests/test_api.py``) and star-import hygiene all key off ``__all__``.
Three invariants keep it truthful:

* every name listed in ``__all__`` is actually bound at module top level;
* every public top-level definition is either listed or renamed with a
  leading underscore (no accidental API);
* every module with public definitions declares an ``__all__`` at all.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set

from repro.lint.framework import Finding, ModuleInfo, Rule, Severity
from repro.lint.rules._common import public_toplevel_names, toplevel_all

__all__ = ["AllNamesExist", "PublicNamesExported"]

#: Module basenames exempt from ``__all__`` bookkeeping.
_EXEMPT_BASENAMES = frozenset({"__main__", "conftest", "setup"})


def _bound_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level, including inside top-level
    ``if``/``try`` blocks (the optional-dependency import idiom)."""

    names: Set[str] = set()

    def visit(body: Sequence[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    names.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                visit(node.orelse)
                visit(node.finalbody)
                for handler in node.handlers:
                    visit(handler.body)

    visit(tree.body)
    return names


def _exempt(module: ModuleInfo) -> bool:
    return module.name_parts[-1] in _EXEMPT_BASENAMES


class AllNamesExist(Rule):
    """Every ``__all__`` entry resolves to a top-level binding."""

    id = "R-ALL-EXISTS"
    description = "names listed in __all__ must be defined or imported"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package("repro") or _exempt(module):
            return
        listed = toplevel_all(module.tree)
        if listed is None:
            return
        bound = _bound_names(module.tree)
        for name in listed:
            if name not in bound:
                yield self.finding(
                    module,
                    module.tree.body[0] if module.tree.body else module.tree,
                    f"__all__ lists {name!r} but the module never binds it",
                )


class PublicNamesExported(Rule):
    """Public definitions are listed in ``__all__`` (which must exist)."""

    id = "R-ALL-EXPORT"
    severity = Severity.WARNING
    description = (
        "public top-level definitions must appear in __all__ or be "
        "underscore-private; modules with public defs must declare __all__"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package("repro") or _exempt(module):
            return
        public = public_toplevel_names(module.tree)
        listed = toplevel_all(module.tree)
        if listed is None:
            if public:
                yield Finding(
                    rule_id="R-ALL-MISSING",
                    severity=Severity.ERROR,
                    path=str(module.path),
                    line=1,
                    col=0,
                    message=(
                        f"module defines {len(public)} public name(s) but "
                        "declares no __all__"
                    ),
                )
            return
        for name, node in public:
            if name not in listed:
                yield self.finding(
                    module,
                    node,
                    f"public name {name!r} is not in __all__; list it or "
                    "rename with a leading underscore",
                )
