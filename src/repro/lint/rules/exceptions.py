"""Exception-handling rules (R-EXCEPT, R-SILENT).

A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and masks
engine bugs as scheduling noise; a handler whose whole body is ``pass``
swallows the evidence entirely.  In a statistics-producing codebase either
one can quietly turn a crash into a wrong number, which is worse than the
crash.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.framework import Finding, ModuleInfo, Rule

__all__ = ["NoBareExcept", "NoSilentExcept"]


def _is_silent(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            # Docstrings / ellipsis placeholders are still silent.
            continue
        return False
    return True


class NoBareExcept(Rule):
    """Ban ``except:`` with no exception type."""

    id = "R-EXCEPT"
    description = "bare except: catches SystemExit/KeyboardInterrupt; name the exception"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:'; catch a specific exception type",
                )


class NoSilentExcept(Rule):
    """Ban handlers that swallow exceptions with a bare ``pass`` body."""

    id = "R-SILENT"
    description = "except handlers must not silently pass; log, re-raise or handle"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and _is_silent(node.body):
                yield self.finding(
                    module,
                    node,
                    "exception handler silently passes; handle the error "
                    "or let it propagate",
                )
