"""Observability clock rule (R-OBS-CLOCK): wall time only in the profiler.

The observability layer records *simulated* time — metric values arrive
from the engines already stamped with event time, and a wall-clock read
anywhere in :mod:`repro.obs` or the experiment drivers would silently turn
deterministic, machine-independent metrics into timing noise.  The single
sanctioned clock boundary is :mod:`repro.obs.profile` (backing
``repro-bench --profile``); everything else in ``repro.obs`` and
``repro.experiments`` must route wall-clock reads through its
``wall_time()`` / ``StageProfiler`` helpers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, ModuleInfo, Rule
from repro.lint.rules._common import attr_chain

__all__ = ["ObsNoWallclock"]

#: Packages whose metrics/driver code must not read the clock directly.
_WATCHED_PACKAGES = ("repro.obs", "repro.experiments")

#: The one module allowed to read the clock: the bench profiler itself.
_EXEMPT_MODULES = frozenset({"repro.obs.profile"})

#: Dotted call targets that read the wall clock.
_FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

#: Bare names (from-imports) with the same meaning.
_FORBIDDEN_BARE = frozenset({"perf_counter", "monotonic", "process_time"})


class ObsNoWallclock(Rule):
    """Ban direct wall-clock reads outside :mod:`repro.obs.profile`."""

    id = "R-OBS-CLOCK"
    description = (
        "repro.obs and repro.experiments must not read the wall clock "
        "directly; use repro.obs.profile (wall_time/StageProfiler) instead"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.name in _EXEMPT_MODULES:
            return
        if not module.in_package(*_WATCHED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            if chain in _FORBIDDEN_CALLS or (
                "." not in chain and chain in _FORBIDDEN_BARE
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to {chain} reads the wall clock; route timing "
                    "through repro.obs.profile (the bench profiler) so "
                    "metrics stay simulated-time only",
                )
