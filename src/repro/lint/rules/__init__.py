"""The repo-specific rule set, and helpers to select subsets of it.

Rule ids are stable identifiers used on the command line
(``--select``/``--ignore``) and in suppression comments
(``# repro: noqa[R-DET]``); renaming one is an API break.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.lint.framework import Rule
from repro.lint.rules.all_consistency import AllNamesExist, PublicNamesExported
from repro.lint.rules.determinism import SimulatedClockOnly
from repro.lint.rules.docstrings import PublicApiHasDocstring
from repro.lint.rules.exceptions import NoBareExcept, NoSilentExcept
from repro.lint.rules.float_equality import NoFloatEquality
from repro.lint.rules.obs_wallclock import ObsNoWallclock
from repro.lint.rules.registry_contract import StrategyRegistryComplete
from repro.lint.rules.rng_discipline import (
    ForbiddenGlobalRng,
    RandomizedFunctionTakesRng,
)
from repro.lint.rules.validation_boundary import ConstructorsValidateInputs

__all__ = ["ALL_RULES", "default_rules", "rule_index", "select_rules"]

#: Every rule class, in reporting-priority order.
ALL_RULES: List[Type[Rule]] = [
    ForbiddenGlobalRng,
    RandomizedFunctionTakesRng,
    SimulatedClockOnly,
    ObsNoWallclock,
    NoFloatEquality,
    ConstructorsValidateInputs,
    StrategyRegistryComplete,
    AllNamesExist,
    PublicNamesExported,
    PublicApiHasDocstring,
    NoBareExcept,
    NoSilentExcept,
]


def rule_index() -> Dict[str, Type[Rule]]:
    """Map rule id to rule class (``R-ALL-MISSING`` shares R-ALL-EXPORT)."""
    return {cls.id: cls for cls in ALL_RULES}


def default_rules() -> List[Rule]:
    """Fresh instances of the full rule set."""
    return [cls() for cls in ALL_RULES]


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate the rule set filtered by id.

    *select* keeps only the named rules; *ignore* drops the named rules.
    Unknown ids raise ``ValueError`` so typos fail loudly.
    """
    index = rule_index()
    chosen = list(index)
    if select is not None:
        wanted = [s.upper() for s in select]
        unknown = sorted(set(wanted) - set(index))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        chosen = [rid for rid in chosen if rid in wanted]
    if ignore is not None:
        dropped = [s.upper() for s in ignore]
        unknown = sorted(set(dropped) - set(index))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        chosen = [rid for rid in chosen if rid not in dropped]
    return [index[rid]() for rid in chosen]
