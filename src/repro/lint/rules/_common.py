"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Union

__all__ = [
    "FunctionNode",
    "attr_chain",
    "call_name",
    "iter_functions",
    "param_names",
    "public_toplevel_names",
    "toplevel_all",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def attr_chain(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as dotted text.

    ``np.random.default_rng`` becomes ``"np.random.default_rng"``; chains
    involving calls or subscripts (``foo().bar``) return ``None`` since the
    rules here only match plain module-attribute access.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, or ``None`` for dynamic callees."""
    return attr_chain(node.func)


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[FunctionNode, Optional[ast.ClassDef]]]:
    """Yield every function/method with its enclosing class (or ``None``).

    Nested functions are attributed to the class of their enclosing method,
    which is the right granularity for boundary rules.
    """

    def walk(node: ast.AST, owner: Optional[ast.ClassDef]) -> Iterator[
        Tuple[FunctionNode, Optional[ast.ClassDef]]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner
                yield from walk(child, owner)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            else:
                yield from walk(child, owner)

    yield from walk(tree, None)


def param_names(func: FunctionNode) -> List[str]:
    """All parameter names of *func*, positional, keyword-only and starred."""
    args = func.args
    params = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    return params


def toplevel_all(tree: ast.Module) -> Optional[List[str]]:
    """The module's literal ``__all__`` list, or ``None`` if absent/dynamic."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        value = node.value
        assert value is not None
        try:
            names = ast.literal_eval(value)
        except ValueError:
            return None
        if isinstance(names, (list, tuple)) and all(
            isinstance(n, str) for n in names
        ):
            return list(names)
        return None
    return None


def public_toplevel_names(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """Publicly-named top-level defs: ``(name, node)`` pairs.

    Covers classes, functions and simple constant assignments; imports are
    excluded (re-exports are judged by R-ALL-EXISTS, not R-ALL-PUBLIC).
    """
    names: List[Tuple[str, ast.AST]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                names.append((node.name, node))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and not target.id.startswith("_")
                    and target.id != "__all__"
                ):
                    names.append((target.id, node))
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                names.append((target.id, node))
    return names
