"""Determinism rule (R-DET): simulated time only in the hot core.

The simulator, the scheduling strategies and the task pools must be pure
functions of ``(config, seed)``: the engine owns *simulated* time, and any
leak of wall-clock time, OS entropy or process identity into those modules
makes runs non-replayable and the paper's figures non-reproducible.
Wall-clock timing is fine in the CLI and benchmark layers, which is why the
rule is scoped to the deterministic core packages only.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, ModuleInfo, Rule
from repro.lint.rules._common import attr_chain

__all__ = ["SimulatedClockOnly"]

#: Packages that must be deterministic given (config, seed).
_DETERMINISTIC_PACKAGES = (
    "repro.simulator",
    "repro.core.strategies",
    "repro.taskpool",
    "repro.faults",
)

#: Dotted call targets that read wall-clock time or OS entropy.
_FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "os.urandom",
        "os.getpid",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
    }
)

#: Bare names (from-imports) with the same meaning.
_FORBIDDEN_BARE = frozenset({"perf_counter", "monotonic", "urandom", "uuid4"})


class SimulatedClockOnly(Rule):
    """Ban wall-clock/entropy calls inside the deterministic core."""

    id = "R-DET"
    description = (
        "simulator/strategy/taskpool modules must use simulated clocks; "
        "wall-clock time and OS entropy are banned there"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*_DETERMINISTIC_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            if chain in _FORBIDDEN_CALLS or (
                "." not in chain and chain in _FORBIDDEN_BARE
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to {chain} in a deterministic module; the "
                    "simulation clock is the engine's event time, not the "
                    "wall clock",
                )
