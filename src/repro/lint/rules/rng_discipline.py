"""RNG discipline rules (R-RNG, R-RNG-PARAM).

The paper's statistical claims (normalized makespan distributions, the
two-phase β threshold) only reproduce when every random draw flows from one
:class:`numpy.random.Generator` seeded at the top of a run.  Global RNG
state (``np.random.seed``, the legacy ``np.random.*`` sampling functions,
the stdlib ``random`` module) breaks that: draws become order-dependent and
cross-test contamination silently changes the statistics.  The only module
allowed to construct generators is :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, ModuleInfo, Rule
from repro.lint.rules._common import attr_chain, iter_functions, param_names

__all__ = ["ForbiddenGlobalRng", "RandomizedFunctionTakesRng"]

#: The one module allowed to touch ``np.random`` constructors directly.
_RNG_MODULE = "repro.utils.rng"

#: ``np.random`` attributes that create or mutate global/ad-hoc RNG state.
_FORBIDDEN_NP_RANDOM = frozenset(
    {
        "default_rng",
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "get_state",
        "set_state",
    }
)

#: Parameter names that mark a function as explicitly seedable.
_SEED_PARAMS = frozenset({"rng", "seed", "rngs", "seeds"})


class ForbiddenGlobalRng(Rule):
    """Ban global/ad-hoc NumPy RNG state and the stdlib ``random`` module."""

    id = "R-RNG"
    description = (
        "only repro.utils.rng may construct numpy generators; the stdlib "
        "random module and legacy np.random.* functions are banned"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.name == _RNG_MODULE or not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random":
                        yield self.finding(
                            module,
                            node,
                            "stdlib 'random' is banned; thread a "
                            "numpy.random.Generator via repro.utils.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is None:
                    continue
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        module,
                        node,
                        "stdlib 'random' is banned; thread a "
                        "numpy.random.Generator via repro.utils.rng",
                    )
                elif node.module in ("numpy.random", "np.random"):
                    for alias in node.names:
                        if alias.name in _FORBIDDEN_NP_RANDOM:
                            yield self.finding(
                                module,
                                node,
                                f"importing numpy.random.{alias.name} is "
                                "banned outside repro.utils.rng; accept a "
                                "rng/seed parameter instead",
                            )
            elif isinstance(node, ast.Attribute):
                chain = attr_chain(node)
                if chain is None:
                    continue
                parts = chain.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] in _FORBIDDEN_NP_RANDOM
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{chain} is banned outside repro.utils.rng; "
                        "accept a rng/seed parameter and use "
                        "repro.utils.rng.as_generator",
                    )


class RandomizedFunctionTakesRng(Rule):
    """Randomized functions must expose a ``rng``/``seed`` parameter.

    A function that coerces a generator via
    :func:`repro.utils.rng.as_generator` is by definition randomized; if it
    does not accept the generator (or a seed) from its caller, the draw
    cannot be reproduced from the experiment config.
    """

    id = "R-RNG-PARAM"
    description = (
        "functions calling as_generator must accept a rng/seed parameter"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.name == _RNG_MODULE or not module.in_package("repro"):
            return
        for func, _owner in iter_functions(module.tree):
            params = set(param_names(func))
            if params & _SEED_PARAMS:
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                if chain is not None and chain.split(".")[-1] == "as_generator":
                    yield self.finding(
                        module,
                        node,
                        f"'{func.name}' calls as_generator but takes no "
                        "rng/seed parameter; callers cannot reproduce its "
                        "draws",
                    )
                    break
