"""Float-equality rule (R-FLOATEQ): no ``==``/``!=`` on float expressions.

The analysis layer integrates ODEs and evaluates closed-form ratios; exact
equality between floating-point expressions there is almost always a latent
bug (the β-threshold comparisons in particular must be tolerance-based, or
the "constant factor of the lower bound" claim flips on rounding noise).
The rule is heuristic — static analysis cannot fully type expressions — and
flags ``==``/``!=`` comparisons in which either operand *syntactically*
involves a float: a float literal, a ``float(...)`` call, or a division.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, ModuleInfo, Rule
from repro.lint.rules._common import attr_chain

__all__ = ["NoFloatEquality"]

#: Packages where exact float comparison is treated as an error.
_NUMERIC_PACKAGES = ("repro.core.analysis", "repro.extensions")

#: Call targets that always produce floats.
_FLOAT_CALLS = frozenset(
    {"float", "math.sqrt", "math.exp", "math.log", "np.sqrt", "numpy.sqrt"}
)


def _is_floaty(node: ast.expr) -> bool:
    """Heuristic: does this expression syntactically involve a float?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if isinstance(sub, ast.Call):
            chain = attr_chain(sub.func)
            if chain in _FLOAT_CALLS:
                return True
    return False


class NoFloatEquality(Rule):
    """Flag exact equality between float-valued expressions."""

    id = "R-FLOATEQ"
    description = (
        "analysis/extension code must not compare floats with ==/!=; use "
        "math.isclose or an explicit tolerance"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*_NUMERIC_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floaty(left) or _is_floaty(right):
                    yield self.finding(
                        module,
                        node,
                        "exact ==/!= on a float-valued expression; use "
                        "math.isclose or an explicit tolerance",
                    )
                    break
