"""Registry contract rule (R-REGISTRY).

Experiments, benchmarks and the CLI construct strategies by paper name via
``repro.core.strategies.registry.STRATEGIES``; the package ``__init__``
re-exports every class for direct use.  A strategy that subclasses
:class:`~repro.core.strategies.base.Strategy` but is missing from either
place silently disappears from name-driven sweeps — exactly the kind of
drift that made the original figures hard to regenerate.  This is a
cross-file contract, so the rule runs at package granularity.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.lint.framework import Finding, ModuleInfo, Rule
from repro.lint.rules._common import toplevel_all

__all__ = ["StrategyRegistryComplete"]

_PACKAGE = "repro.core.strategies"
_ROOT_CLASS = "Strategy"


def _class_defs(module: ModuleInfo) -> List[Tuple[str, List[str], ast.ClassDef]]:
    """Top-level classes as ``(name, base_names, node)`` triples."""
    out: List[Tuple[str, List[str], ast.ClassDef]] = []
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        out.append((node.name, bases, node))
    return out


def _registered_names(registry: ModuleInfo) -> Set[str]:
    """Every class name referenced inside the ``STRATEGIES`` assignment."""
    names: Set[str] = set()
    for node in registry.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "STRATEGIES" for t in targets
        ):
            continue
        if node.value is None:
            continue
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
    return names


class StrategyRegistryComplete(Rule):
    """Every concrete Strategy subclass is registered and re-exported."""

    id = "R-REGISTRY"
    description = (
        "Strategy subclasses in core/strategies must appear in "
        "registry.STRATEGIES and the package __all__"
    )

    def check_package(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        package = [m for m in modules if m.in_package(_PACKAGE)]
        if not package:
            return
        registry = next(
            (m for m in package if m.name == f"{_PACKAGE}.registry"), None
        )
        init = next((m for m in package if m.name == _PACKAGE), None)
        if registry is None or init is None:
            # Partial scan (e.g. a single file): the contract is undecidable.
            return

        # Transitive subclasses of Strategy across the package.
        bases_of: Dict[str, List[str]] = {}
        node_of: Dict[str, Tuple[ModuleInfo, ast.ClassDef]] = {}
        for module in package:
            for name, bases, node in _class_defs(module):
                bases_of[name] = bases
                node_of[name] = (module, node)

        subclasses: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, bases in bases_of.items():
                if name in subclasses or name == _ROOT_CLASS:
                    continue
                if any(b == _ROOT_CLASS or b in subclasses for b in bases):
                    subclasses.add(name)
                    changed = True

        registered = _registered_names(registry)
        exported = set(toplevel_all(init.tree) or ())

        for name in sorted(subclasses):
            module, node = node_of[name]
            if name.startswith("_"):
                continue
            # Abstract intermediates (explicit ABC/abstractmethod) are
            # infrastructure, not schedulable strategies.
            if _is_abstract(node):
                continue
            if name not in registered:
                yield self.finding(
                    module,
                    node,
                    f"strategy class {name} is not registered in "
                    f"{_PACKAGE}.registry.STRATEGIES",
                )
            if name not in exported:
                yield self.finding(
                    module,
                    node,
                    f"strategy class {name} is not exported via "
                    f"{_PACKAGE}.__all__",
                )


def _is_abstract(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id == "ABC":
            return True
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in sub.decorator_list:
                name = deco.attr if isinstance(deco, ast.Attribute) else getattr(
                    deco, "id", None
                )
                if name in ("abstractmethod", "abstractproperty"):
                    return True
    return False
