"""Validation-at-boundary rule (R-VALIDATE).

The simulator is driven by user-supplied sizes, speeds and fractions, and
the repo's convention (see :mod:`repro.utils.validation`) is that *public
constructors validate their numeric inputs* so misuse fails loudly at the
boundary rather than corrupting a long simulation.  This rule flags public
``__init__`` methods that accept size/speed/fraction-like parameters but
contain no validation at all — no ``check_*`` helper call, no explicit
``raise``, and no delegation to ``super().__init__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, ModuleInfo, Rule
from repro.lint.rules._common import attr_chain, iter_functions, param_names

__all__ = ["ConstructorsValidateInputs"]

#: Parameter names that denote sizes, speeds or fractions.
_WATCHED_PARAMS = frozenset(
    {
        "n",
        "p",
        "size",
        "speeds",
        "speed",
        "beta",
        "fraction",
        "phase1_fraction",
        "n_tasks",
        "prefetch_tasks",
        "reps",
        "capacity",
    }
)


def _validates(func: ast.AST) -> bool:
    """Does this function body contain any recognizable validation?"""
    for node in ast.walk(func):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Assert):
            return True
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is None:
                # ``super().__init__(...)`` delegates validation upward.
                inner = node.func
                if (
                    isinstance(inner, ast.Attribute)
                    and inner.attr == "__init__"
                    and isinstance(inner.value, ast.Call)
                    and attr_chain(inner.value.func) == "super"
                ):
                    return True
                continue
            leaf = chain.split(".")[-1]
            if leaf.startswith("check_"):
                return True
    return False


class ConstructorsValidateInputs(Rule):
    """Public constructors taking numeric config must validate it."""

    id = "R-VALIDATE"
    description = (
        "public __init__ methods taking size/speed/fraction parameters must "
        "validate them (repro.utils.validation helpers or an explicit raise)"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package("repro") or module.in_package("repro.lint"):
            return
        for func, owner in iter_functions(module.tree):
            if func.name != "__init__" or owner is None:
                continue
            if owner.name.startswith("_"):
                continue
            watched = sorted(set(param_names(func)) & _WATCHED_PARAMS)
            if not watched:
                continue
            if _validates(func):
                continue
            yield self.finding(
                module,
                func,
                f"{owner.name}.__init__ takes {', '.join(watched)} but "
                "performs no validation; use repro.utils.validation "
                "checkers at the boundary",
            )
