"""Command-line entry point: ``repro-lint`` / ``python -m repro.lint``.

Exit codes: 0 when the tree is clean, 1 when findings were reported, 2 for
usage or I/O errors — mirroring the convention of grep-like tools so CI can
distinguish "violations" from "the linter itself broke".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.framework import LintError, collect_modules, run_lint
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_RULES, select_rules

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro scheduler codebase: "
            "RNG discipline, determinism, validation-at-boundary, registry "
            "and __all__ contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE-ID",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE-ID",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for cls in ALL_RULES:
        lines.append(f"{cls.id:14s} [{cls.severity}] {cls.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        rules = select_rules(select=args.select, ignore=args.ignore)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    paths: List[Path] = [Path(p) for p in args.paths]
    try:
        modules = collect_modules(paths)
        findings = run_lint(modules, rules)
    except LintError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0
