"""repro.lint — AST-based invariant linter for the scheduler codebase.

The paper's claims are statistical: they only reproduce when every
randomized path is seeded through one :class:`numpy.random.Generator` and
every simulation is deterministic given ``(config, seed)``.  This package
turns those conventions — previously enforced by docstring and review — into
machine-checked rules (see :mod:`repro.lint.rules`), with a CLI
(``repro-lint`` / ``python -m repro.lint``) and pytest integration
(``tests/lint/``) that run them over ``src/`` as part of tier 1.

Programmatic use::

    from repro.lint import collect_modules, default_rules, run_lint

    findings = run_lint(collect_modules(["src/repro"]), default_rules())
    assert not findings
"""

from repro.lint.framework import (
    Finding,
    LintError,
    ModuleInfo,
    Rule,
    Severity,
    collect_modules,
    run_lint,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_RULES, default_rules, select_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintError",
    "ModuleInfo",
    "Rule",
    "Severity",
    "collect_modules",
    "default_rules",
    "render_json",
    "render_text",
    "run_lint",
    "select_rules",
]
