"""Finding reporters: plain text for humans, JSON for CI tooling.

The JSON document is versioned so CI consumers can detect schema changes::

    {
      "version": 1,
      "counts": {"error": 2, "warning": 1},
      "findings": [
        {"rule": "R-DET", "severity": "error", "path": "...",
         "line": 10, "col": 4, "message": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.lint.framework import Finding

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text", "summary_counts"]

JSON_SCHEMA_VERSION = 1


def summary_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    """Number of findings per severity (only severities that occur)."""
    return dict(Counter(f.severity for f in findings))


def render_text(findings: Sequence[Finding], *, prog: str = "repro-lint") -> str:
    """One line per finding plus a trailing summary line."""
    lines: List[str] = [f.render() for f in findings]
    counts = summary_counts(findings)
    if findings:
        summary = ", ".join(f"{n} {sev}(s)" for sev, n in sorted(counts.items()))
        lines.append(f"{prog}: {summary}")
    else:
        lines.append(f"{prog}: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The versioned JSON report document."""
    doc = {
        "version": JSON_SCHEMA_VERSION,
        "counts": summary_counts(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
