"""Strategy-hook purity check (A-PURE).

The vectorized multi-replicate engine (:mod:`repro.simulator.batch`) and
the multi-host sweep service both assume strategy hooks can be *batched
and replayed*: called any number of times, in any process, with only the
strategy instance's own state changing.  That holds iff the hooks —
``assign``, ``release_tasks``, ``forget_worker``, ``on_worker_lost``,
``reset``/``_setup`` — never write shared state or perform I/O.  The same
contract binds the batch engine's vector kernels: every ``run`` override
on a :class:`repro.simulator.vector_kernels.VectorKernel` subclass must
stay free of global writes, or lockstep replicates would observe each
other through module state.

The check walks the call graph forward from every hook override on every
project subclass of :class:`repro.core.strategies.base.Strategy` (and
every ``run`` on a vector-kernel subclass) and flags, anywhere in the
closure:

* ``global`` declarations (module-global writes);
* mutation of module-level containers (``_CACHE[k] = v``,
  ``_REGISTRY.append(...)`` on a module-level name);
* writes to class attributes (``type(self).x = ...``, ``Cls.attr = ...``);
* I/O externals: ``print``/``open``/``input``, writing ``os.*`` calls,
  ``subprocess``/``shutil``, ``sys.stdout``/``sys.stderr``, ``logging``,
  ``time.sleep``.

Mutating ``self`` (and objects the strategy owns, like its task pool) is
the hooks' job and stays legal.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analyze.checks import AnalysisModel, AnalyzeCheck
from repro.analyze.findings import AnalysisFinding
from repro.analyze.project import FunctionSymbol
from repro.lint.framework import Severity

__all__ = ["StrategyPurity", "STRATEGY_HOOKS", "VECTOR_KERNEL_HOOKS"]

#: The strategy contract's engine-facing hooks.
STRATEGY_HOOKS = frozenset(
    {"assign", "release_tasks", "forget_worker", "on_worker_lost", "reset", "_setup"}
)

#: The vector-kernel contract's engine-facing hooks (the batch engine's
#: analogue of the strategy hooks: one ``run`` per (strategy, platform)
#: cell, possibly in a worker process).
VECTOR_KERNEL_HOOKS = frozenset({"run"})

_STRATEGY_BASE = "repro.core.strategies.base.Strategy"
_VECTOR_KERNEL_BASE = "repro.simulator.vector_kernels.VectorKernel"

_IO_CALLS = frozenset(
    {
        "print",
        "open",
        "input",
        "os.replace",
        "os.unlink",
        "os.rename",
        "os.remove",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "os.system",
        "os.chmod",
        "os.utime",
        "os.fdopen",
        "time.sleep",
    }
)
_IO_PREFIXES: Tuple[str, ...] = (
    "subprocess.",
    "shutil.",
    "sys.stdout",
    "sys.stderr",
    "logging.",
)

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "write",
    }
)


class StrategyPurity(AnalyzeCheck):
    """Strategy hooks must not write shared state or perform I/O."""

    id = "A-PURE"
    severity = Severity.ERROR
    description = (
        "strategy hooks (assign/release_tasks/forget_worker/on_worker_lost/"
        "reset/_setup) and vector-kernel run() hooks, plus everything they "
        "reach, must not write module or class globals nor perform I/O, so "
        "batched/replayed execution stays safe"
    )

    def analyze(self, model: AnalysisModel) -> Iterator[AnalysisFinding]:
        roots = self._hook_roots(model)
        if not roots:
            return
        parents = model.graph.reachable(sorted(roots))
        seen: Set[str] = set()
        for qual in sorted(parents):
            symbol = model.project.functions.get(qual)
            if symbol is None:  # pragma: no cover - roots are real functions
                continue
            for op, node in self._impure_ops(model, symbol):
                key = f"A-PURE:{qual}:{op}"
                if key in seen:
                    continue
                seen.add(key)
                chain = tuple(model.graph.chain(parents, qual)) + (
                    f"{op} at line {getattr(node, 'lineno', 1)}",
                )
                yield self.analysis_finding(
                    model,
                    symbol.module,
                    node,
                    f"impure operation ({op}) reachable from strategy hook "
                    f"{chain[0].split(' ')[0]}; hooks must be batchable and "
                    "replayable without side effects",
                    key=key,
                    chain=chain,
                )

    def _hook_roots(self, model: AnalysisModel) -> Set[str]:
        roots: Set[str] = set()
        for base, hooks in (
            (_STRATEGY_BASE, STRATEGY_HOOKS),
            (_VECTOR_KERNEL_BASE, VECTOR_KERNEL_HOOKS),
        ):
            if base not in model.project.classes:
                continue
            classes = {base} | model.project.subclasses(base)
            for class_qual in classes:
                symbol = model.project.classes[class_qual]
                for name, method_qual in symbol.methods.items():
                    if name in hooks:
                        roots.add(method_qual)
        return roots

    # -- impure-operation detection ----------------------------------------

    def _impure_ops(
        self, model: AnalysisModel, symbol: FunctionSymbol
    ) -> List[Tuple[str, ast.AST]]:
        mod = model.project.modules[symbol.module]
        module_data = set(mod.constants)
        local_names = _local_names(symbol.node)
        ops: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(symbol.node):
            if isinstance(node, ast.Global):
                ops.append((f"global {', '.join(node.names)}", node))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    op = self._store_target_op(target, module_data, local_names)
                    if op is not None:
                        ops.append((op, node))
            elif isinstance(node, ast.Call):
                op = self._call_op(model, symbol.qualname, node, module_data, local_names)
                if op is not None:
                    ops.append((op, node))
        ops.sort(key=lambda o: (getattr(o[1], "lineno", 1), getattr(o[1], "col_offset", 0)))
        return ops

    def _store_target_op(
        self, target: ast.expr, module_data: Set[str], local_names: Set[str]
    ) -> Optional[str]:
        # _CACHE[k] = v / _CACHE.attr = v on a module-level name.
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name):
            if base is target:
                return None  # plain local rebinding (module writes need `global`)
            if base.id in module_data and base.id not in local_names:
                return f"module-global mutation of {base.id}"
        # type(self).x = ... / self.__class__.x = ... / Cls.attr = ...
        if (
            isinstance(target, ast.Attribute)
            and _is_class_object(target.value)
            and not (
                isinstance(target.value, ast.Name)
                and target.value.id in local_names
            )
        ):
            return f"class-attribute write .{target.attr}"
        return None

    def _call_op(
        self,
        model: AnalysisModel,
        qual: str,
        node: ast.Call,
        module_data: Set[str],
        local_names: Set[str],
    ) -> Optional[str]:
        site = model.graph.site_for_node(qual, node)
        if site is not None and site.external is not None:
            name = site.external
            if name in _IO_CALLS or any(name.startswith(p) for p in _IO_PREFIXES):
                return f"I/O call {name}"
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in module_data
            and func.value.id not in local_names
        ):
            return f"module-global mutation of {func.value.id}.{func.attr}()"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Attribute)
            and _is_class_object(func.value.value)
        ):
            return f"class-attribute mutation .{func.value.attr}.{func.attr}()"
        return None


def _is_class_object(expr: ast.expr) -> bool:
    """``type(self)`` / ``self.__class__`` / ``SomeClass`` heads (heuristic)."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "type"
    ):
        return True
    if isinstance(expr, ast.Attribute) and expr.attr == "__class__":
        return True
    if isinstance(expr, ast.Name) and expr.id[:1].isupper():
        return True
    return False


def _local_names(node: ast.AST) -> Set[str]:
    """Names bound locally in a function (params, assignments, loops, withs)."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = child.args
            names.update(
                a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            )
            if args.vararg is not None:
                names.add(args.vararg.arg)
            if args.kwarg is not None:
                names.add(args.kwarg.arg)
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                names.update(_names_in_target(target))
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
            names.update(_names_in_target(child.target))
        elif isinstance(child, ast.For):
            names.update(_names_in_target(child.target))
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    names.update(_names_in_target(item.optional_vars))
        elif isinstance(child, ast.comprehension):
            names.update(_names_in_target(child.target))
        elif isinstance(child, ast.Global):
            names.difference_update(child.names)
    return names


def _names_in_target(target: ast.expr) -> Set[str]:
    """Names *bound* by an assignment target (``x.attr = v`` binds nothing)."""
    out: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
    return out
