"""Approximate whole-program call graph over a :class:`~repro.analyze.project.Project`.

The builder resolves, per function, every ``ast.Call`` (and bare
method/function reference) to either a set of *internal* targets (project
function qualnames) or a canonical *external* dotted name (``time.time``,
``os.replace``, ...).  Resolution is a deliberately modest abstract
interpretation:

* module-level functions and classes resolve through the import table;
* ``self.method()`` resolves through the class and its project bases;
* instance methods dispatch *virtually*: an edge to ``Strategy.assign``
  also fans out to every project subclass override, which is how the
  engine's ``strategy.assign(...)`` reaches all registered strategies;
* local variables pick up types from constructor calls, parameter/return
  annotations and ``self.<attr>`` assignments, so hoisted bound methods
  (``assign = strategy.assign``) and ``store.lock()`` context managers
  resolve correctly;
* subscripts into module-level registries of classes (``STRATEGIES[name]``)
  resolve to *every* registered class, so ``make_strategy`` edges into each
  strategy constructor.

Unresolvable callees (``fh.write``, numpy internals, dynamic dispatch the
model cannot see) are counted, not guessed — the checks built on top treat
absence of an edge as "not proven", and the fixture tests pin the cases
that must resolve.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.analyze.project import FunctionNode, FunctionSymbol, ModuleSymbols, Project

__all__ = ["CallGraph", "CallSite", "ChainLink", "build_call_graph"]


# -- value references -------------------------------------------------------
# The tiny abstract domain local variables and expressions resolve into.


@dataclass(frozen=True)
class _ModuleRef:
    name: str


@dataclass(frozen=True)
class _ClassRef:
    qualname: str


@dataclass(frozen=True)
class _InstanceRef:
    qualname: str


@dataclass(frozen=True)
class _FuncRef:
    qualname: str
    virtual: bool = False


@dataclass(frozen=True)
class _ClassSetRef:
    qualnames: Tuple[str, ...]


@dataclass(frozen=True)
class _ExternalRef:
    dotted: str


@dataclass(frozen=True)
class _SuperRef:
    qualname: str  # class whose bases to search


_Ref = Union[_ModuleRef, _ClassRef, _InstanceRef, _FuncRef, _ClassSetRef, _ExternalRef, _SuperRef]

#: Builtin callables treated as externals under their bare name.
_BUILTINS = frozenset(
    {
        "print",
        "open",
        "input",
        "sorted",
        "set",
        "frozenset",
        "list",
        "tuple",
        "dict",
        "iter",
        "next",
        "super",
        "getattr",
        "setattr",
        "vars",
        "eval",
        "exec",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call (or bound-method reference) inside a function."""

    caller: str
    lineno: int
    col: int
    targets: Tuple[str, ...] = ()
    external: Optional[str] = None
    #: True for bare attribute references (properties, hoisted bound
    #: methods) as opposed to syntactic calls.
    is_ref: bool = False


@dataclass(frozen=True)
class ChainLink:
    """One step of an explanation chain: who called, from where."""

    parent: str
    lineno: int


@dataclass
class _FunctionFacts:
    sites: List[CallSite] = field(default_factory=list)
    #: id(ast.Call) -> CallSite, so checks walking the AST themselves can
    #: recover the resolution of a specific node.
    by_node: Dict[int, CallSite] = field(default_factory=dict)


class CallGraph:
    """Call edges, reverse edges and reachability over a project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._facts: Dict[str, _FunctionFacts] = {}
        self.unresolved: int = 0
        self._build()
        self.edges: Dict[str, List[Tuple[str, int]]] = {}
        self.callers: Dict[str, List[Tuple[str, int]]] = {}
        for qual, facts in self._facts.items():
            for site in facts.sites:
                for target in site.targets:
                    self.edges.setdefault(qual, []).append((target, site.lineno))
                    self.callers.setdefault(target, []).append((qual, site.lineno))

    # -- public accessors --------------------------------------------------

    def sites(self, qualname: str) -> List[CallSite]:
        """All resolved call sites of one function (empty if none)."""
        facts = self._facts.get(qualname)
        return list(facts.sites) if facts is not None else []

    def site_for_node(self, qualname: str, node: ast.AST) -> Optional[CallSite]:
        """The resolution of a specific ``ast.Call`` node, if any."""
        facts = self._facts.get(qualname)
        if facts is None:
            return None
        return facts.by_node.get(id(node))

    def external_calls(self, qualname: str) -> List[Tuple[str, CallSite]]:
        """``(canonical_name, site)`` for each external call of a function."""
        return [(s.external, s) for s in self.sites(qualname) if s.external is not None]

    def reachable(
        self,
        roots: Iterable[str],
        *,
        skip_modules: Iterable[str] = (),
        reverse: bool = False,
    ) -> Dict[str, Optional[ChainLink]]:
        """BFS closure from *roots*; maps each reached qualname to its parent link.

        Functions living in a ``skip_modules`` module (sanitized boundaries)
        are neither expanded nor reported.  Roots map to ``None``.
        """
        skip = tuple(skip_modules)
        graph = self.callers if reverse else self.edges
        parents: Dict[str, Optional[ChainLink]] = {}
        queue: List[str] = []
        for root in roots:
            if root not in parents and not self._skipped(root, skip):
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for target, lineno in graph.get(current, ()):
                if target in parents or self._skipped(target, skip):
                    continue
                parents[target] = ChainLink(parent=current, lineno=lineno)
                queue.append(target)
        return parents

    def _skipped(self, qualname: str, skip: Tuple[str, ...]) -> bool:
        symbol = self.project.functions.get(qualname)
        if symbol is None:
            return False
        return any(
            symbol.module == prefix or symbol.module.startswith(prefix + ".")
            for prefix in skip
        )

    def chain(self, parents: Mapping[str, Optional[ChainLink]], qualname: str) -> List[str]:
        """Root-to-*qualname* call chain as rendered ``qual (path:line)`` steps."""
        steps: List[Tuple[str, Optional[ChainLink]]] = []
        current: Optional[str] = qualname
        while current is not None:
            link = parents.get(current)
            steps.append((current, link))
            current = link.parent if link is not None else None
        steps.reverse()
        out: List[str] = []
        for qual, link in steps:
            symbol = self.project.functions.get(qual)
            where = str(symbol.module) if symbol is not None else "?"
            if link is None:
                out.append(f"{qual} [{where}]")
            else:
                out.append(f"{qual} [{where}] (called from {link.parent} line {link.lineno})")
        return out

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        self._attr_type_prepass()
        for symbol in self.project.iter_functions():
            self._facts[symbol.qualname] = self._analyze_function(symbol)
        for mod in sorted(self.project.modules):
            self._analyze_module_level(self.project.modules[mod])

    def _attr_type_prepass(self) -> None:
        """Record ``self.<attr> = ProjectClass(...)`` instance-attribute types."""
        for symbol in self.project.iter_functions():
            if symbol.cls is None:
                continue
            cls = self.project.classes[symbol.cls]
            mod = self.project.modules[symbol.module]
            for node in ast.walk(symbol.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    annotated = Project._annotation_name(node.annotation)
                    if (
                        annotated is not None
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        resolved = self.project.resolve_name(mod, annotated)
                        if resolved is not None and resolved in self.project.classes:
                            cls.attr_types.setdefault(target.attr, resolved)
                        continue
                if (
                    target is None
                    or value is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                    or not isinstance(value, ast.Call)
                ):
                    continue
                callee = Project._annotation_name(value.func)
                if callee is None:
                    continue
                resolved = self.project.resolve_name(mod, callee)
                if resolved is not None and resolved in self.project.classes:
                    cls.attr_types.setdefault(target.attr, resolved)

    def _analyze_module_level(self, mod: ModuleSymbols) -> None:
        """Resolve calls in module-level statements under a synthetic caller."""
        qual = f"{mod.name}:<module>"
        facts = _FunctionFacts()
        env: Dict[str, _Ref] = {}
        toplevel = [
            node
            for node in mod.info.tree.body
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        for node in toplevel:
            for call in ast.walk(node):
                if isinstance(call, ast.Call):
                    self._resolve_call_site(qual, mod, None, env, call, facts)
        if facts.sites:
            self._facts[qual] = facts

    def _analyze_function(self, symbol: FunctionSymbol) -> _FunctionFacts:
        mod = self.project.modules[symbol.module]
        env = self._build_env(symbol, mod)
        facts = _FunctionFacts()
        call_funcs = set()
        for node in ast.walk(symbol.node):
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                self._resolve_call_site(symbol.qualname, mod, symbol, env, node, facts)
        # Bare references to project methods/functions (properties, hoisted
        # bound methods, callbacks) count as edges too — a reference that is
        # never invoked is rarer than a callback we would otherwise miss.
        for node in ast.walk(symbol.node):
            if not isinstance(node, ast.Attribute) or id(node) in call_funcs:
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            ref = self._resolve_value(node, mod, symbol, env)
            if isinstance(ref, _FuncRef):
                targets = self._expand_virtual(ref)
                site = CallSite(
                    caller=symbol.qualname,
                    lineno=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    targets=targets,
                    is_ref=True,
                )
                facts.sites.append(site)
        return facts

    # -- environments ------------------------------------------------------

    def _build_env(self, symbol: FunctionSymbol, mod: ModuleSymbols) -> Dict[str, _Ref]:
        env: Dict[str, _Ref] = {}
        if symbol.cls is not None:
            env["self"] = _InstanceRef(symbol.cls)
        args = symbol.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            annotated = Project._annotation_name(arg.annotation)
            if annotated is None:
                continue
            resolved = self.project.resolve_name(mod, annotated)
            if resolved is not None and resolved in self.project.classes:
                env[arg.arg] = _InstanceRef(resolved)
        # Flow-insensitive local binding collection; two passes so chained
        # assignments (``a = C(); b = a.method``) settle.
        for _ in range(2):
            for node in ast.walk(symbol.node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if not names:
                    continue
                ref = self._resolve_value(value, mod, symbol, env)
                if ref is None:
                    continue
                bound = self._as_binding(ref)
                if bound is not None:
                    for name in names:
                        env[name] = bound
        return env

    @staticmethod
    def _as_binding(ref: _Ref) -> Optional[_Ref]:
        """What a local variable assigned this value should resolve to."""
        if isinstance(ref, (_InstanceRef, _FuncRef, _ClassRef, _ClassSetRef, _ModuleRef)):
            return ref
        return None

    # -- expression resolution ---------------------------------------------

    def _resolve_value(
        self,
        expr: ast.expr,
        mod: ModuleSymbols,
        symbol: Optional[FunctionSymbol],
        env: Dict[str, _Ref],
    ) -> Optional[_Ref]:
        if isinstance(expr, ast.Name):
            return self._resolve_name_ref(expr.id, mod, env)
        if isinstance(expr, ast.Attribute):
            base = self._resolve_value(expr.value, mod, symbol, env)
            return self._resolve_attr(base, expr.attr)
        if isinstance(expr, ast.Call):
            callee = self._resolve_value(expr.func, mod, symbol, env)
            if isinstance(callee, _ExternalRef) and callee.dotted == "super":
                if symbol is not None and symbol.cls is not None:
                    return _SuperRef(symbol.cls)
                return None
            if isinstance(callee, _ClassRef):
                return _InstanceRef(callee.qualname)
            if isinstance(callee, _FuncRef):
                return self._return_ref(callee.qualname)
            return None
        if isinstance(expr, ast.Subscript):
            base = self._resolve_value(expr.value, mod, symbol, env)
            if isinstance(base, _ClassSetRef):
                return base
            return None
        return None

    def _resolve_name_ref(self, name: str, mod: ModuleSymbols, env: Dict[str, _Ref]) -> Optional[_Ref]:
        if name in env:
            return env[name]
        if name in mod.functions:
            return _FuncRef(mod.functions[name])
        if name in mod.classes:
            return _ClassRef(mod.classes[name])
        registry = f"{mod.name}.{name}"
        if registry in self.project.registered_classes:
            return _ClassSetRef(tuple(sorted(self.project.registered_classes[registry])))
        if name in mod.imports:
            return self._import_ref(mod.imports[name])
        if name in _BUILTINS:
            return _ExternalRef(name)
        return None

    def _import_ref(self, dotted: str) -> _Ref:
        canonical = self.project._canonicalize(dotted)
        if canonical is None:
            return _ExternalRef(dotted)
        if canonical in self.project.modules:
            return _ModuleRef(canonical)
        if canonical in self.project.classes:
            return _ClassRef(canonical)
        return _FuncRef(canonical)

    def _resolve_attr(self, base: Optional[_Ref], attr: str) -> Optional[_Ref]:
        if base is None:
            return None
        if isinstance(base, _ExternalRef):
            return _ExternalRef(f"{base.dotted}.{attr}")
        if isinstance(base, _ModuleRef):
            target = self.project.modules.get(base.name)
            if target is None:  # pragma: no cover - module names always indexed
                return None
            if attr in target.functions:
                return _FuncRef(target.functions[attr])
            if attr in target.classes:
                return _ClassRef(target.classes[attr])
            registry = f"{base.name}.{attr}"
            if registry in self.project.registered_classes:
                return _ClassSetRef(tuple(sorted(self.project.registered_classes[registry])))
            if f"{base.name}.{attr}" in self.project.modules:
                return _ModuleRef(f"{base.name}.{attr}")
            if attr in target.imports:
                return self._import_ref(target.imports[attr])
            return None
        if isinstance(base, _InstanceRef):
            method = self.project.lookup_method(base.qualname, attr)
            if method is not None:
                return _FuncRef(method, virtual=True)
            attr_type = self.project.lookup_attr_type(base.qualname, attr)
            if attr_type is not None:
                return _InstanceRef(attr_type)
            return None
        if isinstance(base, _ClassRef):
            method = self.project.lookup_method(base.qualname, attr)
            if method is not None:
                return _FuncRef(method, virtual=False)
            return None
        if isinstance(base, _SuperRef):
            cls = self.project.classes.get(base.qualname)
            if cls is not None:
                for parent in cls.bases:
                    method = self.project.lookup_method(parent, attr)
                    if method is not None:
                        return _FuncRef(method, virtual=False)
            return None
        return None

    def _return_ref(self, qualname: str) -> Optional[_Ref]:
        """Instance type implied by a project function's return annotation."""
        symbol = self.project.functions.get(qualname)
        if symbol is None:
            return None
        annotated = Project._annotation_name(symbol.node.returns)
        if annotated is None:
            return None
        resolved = self.project.resolve_name(self.project.modules[symbol.module], annotated)
        if resolved is not None and resolved in self.project.classes:
            return _InstanceRef(resolved)
        return None

    # -- call-site resolution ----------------------------------------------

    def _expand_virtual(self, ref: _FuncRef) -> Tuple[str, ...]:
        targets = {ref.qualname}
        if ref.virtual:
            symbol = self.project.functions.get(ref.qualname)
            if symbol is not None and symbol.cls is not None:
                name = symbol.name
                for sub in self.project.subclasses(symbol.cls):
                    override = self.project.classes[sub].methods.get(name)
                    if override is not None:
                        targets.add(override)
        return tuple(sorted(targets))

    def _constructor_targets(self, qualnames: Sequence[str]) -> Tuple[str, ...]:
        targets: Set[str] = set()
        for qual in qualnames:
            init = self.project.lookup_method(qual, "__init__")
            if init is not None:
                targets.add(init)
        return tuple(sorted(targets))

    def _resolve_call_site(
        self,
        caller: str,
        mod: ModuleSymbols,
        symbol: Optional[FunctionSymbol],
        env: Dict[str, _Ref],
        node: ast.Call,
        facts: _FunctionFacts,
    ) -> None:
        ref = self._resolve_value(node.func, mod, symbol, env)
        targets: Tuple[str, ...] = ()
        external: Optional[str] = None
        if isinstance(ref, _FuncRef):
            targets = self._expand_virtual(ref)
        elif isinstance(ref, _ClassRef):
            targets = self._constructor_targets([ref.qualname])
        elif isinstance(ref, _ClassSetRef):
            targets = self._constructor_targets(ref.qualnames)
        elif isinstance(ref, _ExternalRef):
            external = ref.dotted
        elif ref is None:
            self.unresolved += 1
        site = CallSite(
            caller=caller,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            targets=targets,
            external=external,
        )
        if targets or external is not None:
            facts.sites.append(site)
            facts.by_node[id(node)] = site


def build_call_graph(project: Project) -> CallGraph:
    """Construct the :class:`CallGraph` for *project*."""
    return CallGraph(project)
