"""Project model: symbol table and import graph over a module set.

This is the ground layer of :mod:`repro.analyze`: it turns the flat list of
parsed modules produced by :func:`repro.lint.framework.collect_modules` into
a *whole-program* view — which dotted qualname defines which function or
class, what every imported local name resolves to, how classes inherit from
each other, and which classes are wired into module-level registries (the
``STRATEGIES``-style dicts that drive name-based construction).

The model is purely syntactic (no imports are executed), so it works on
test fixture trees exactly like on ``src/repro`` — the same property the
linter's fixture suite relies on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.framework import ModuleInfo

__all__ = [
    "ClassSymbol",
    "FunctionNode",
    "FunctionSymbol",
    "ModuleSymbols",
    "Project",
    "build_project",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionSymbol:
    """One top-level function or method, addressed by dotted qualname."""

    qualname: str
    module: str
    node: FunctionNode
    cls: Optional[str] = None  # owning class qualname for methods

    @property
    def name(self) -> str:
        """The bare function name (last qualname component)."""
        return self.qualname.rsplit(".", 1)[1]


@dataclass
class ClassSymbol:
    """One class definition: bases, methods and attribute types."""

    qualname: str
    module: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()  # resolved dotted names where possible
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    #: ``self.<attr>`` assignments whose value is a project-class
    #: constructor call (or annotated as a project class): attr -> class
    #: qualname.  Filled by the call-graph builder's type pre-pass.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSymbols:
    """Per-module name bindings: imports, definitions, ``__all__``."""

    info: ModuleInfo
    imports: Dict[str, str] = field(default_factory=dict)  # local -> dotted
    functions: Dict[str, str] = field(default_factory=dict)  # local -> qualname
    classes: Dict[str, str] = field(default_factory=dict)  # local -> qualname
    constants: Dict[str, ast.AST] = field(default_factory=dict)  # top-level data
    all_names: Optional[List[str]] = None
    all_node: Optional[ast.AST] = None

    @property
    def name(self) -> str:
        """The module's dotted name."""
        return self.info.name


class Project:
    """The resolved whole-program view the interprocedural checks run on."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}
        #: Class qualnames referenced from module-level registry data
        #: structures (dicts/tuples of classes, e.g. ``STRATEGIES``).
        self.registered_classes: Dict[str, Set[str]] = {}
        #: Function qualnames referenced the same way (e.g. ``FIGURES``).
        self.registered_functions: Dict[str, Set[str]] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        for info in modules:
            self._index_module(info)
        self._resolve_bases()

    # -- construction ------------------------------------------------------

    def _index_module(self, info: ModuleInfo) -> None:
        mod = ModuleSymbols(info=info)
        self.modules[info.name] = mod
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    mod.imports.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info.name, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports.setdefault(local, f"{base}.{alias.name}")
        for node in info.tree.body:
            self._index_toplevel(mod, node)

    @staticmethod
    def _import_base(module: str, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base of a ``from X import ...`` statement."""
        if node.level == 0:
            return node.module
        parts = module.split(".")
        # Drop the module's own name, then climb one package per extra dot.
        anchor = len(parts) - node.level
        if anchor < 0:
            return None
        base_parts = parts[:anchor]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def _index_toplevel(self, mod: ModuleSymbols, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{mod.name}.{node.name}"
            mod.functions[node.name] = qual
            self.functions[qual] = FunctionSymbol(qualname=qual, module=mod.name, node=node)
        elif isinstance(node, ast.ClassDef):
            qual = f"{mod.name}.{node.name}"
            mod.classes[node.name] = qual
            symbol = ClassSymbol(qualname=qual, module=mod.name, node=node)
            self.classes[qual] = symbol
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_qual = f"{qual}.{item.name}"
                    symbol.methods[item.name] = method_qual
                    self.functions[method_qual] = FunctionSymbol(
                        qualname=method_qual, module=mod.name, node=item, cls=qual
                    )
                elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    annotated = self._annotation_name(item.annotation)
                    if annotated is not None:
                        symbol.attr_types.setdefault(item.target.id, annotated)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__":
                    mod.all_node = node
                    value = node.value
                    if value is not None:
                        try:
                            names = ast.literal_eval(value)
                        except ValueError:
                            names = None
                        if isinstance(names, (list, tuple)):
                            mod.all_names = [str(n) for n in names]
                else:
                    mod.constants[target.id] = node

    @staticmethod
    def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
        """Render an annotation's class-naming part as raw dotted text."""
        if annotation is None:
            return None
        node: ast.expr = annotation
        # Optional[X] / "X" / List[X]: dig for the interesting name.
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            head = Project._annotation_name(node.value)
            if head in ("Optional", "typing.Optional"):
                return Project._annotation_name(node.slice)
            return None
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def _resolve_bases(self) -> None:
        for symbol in self.classes.values():
            resolved: List[str] = []
            mod = self.modules[symbol.module]
            for base in symbol.node.bases:
                raw = self._annotation_name(base)
                if raw is None:
                    continue
                target = self.resolve_name(mod, raw)
                resolved.append(target if target is not None else raw)
            symbol.bases = tuple(resolved)
        for symbol in self.classes.values():
            for base in symbol.bases:
                if base in self.classes:
                    self._subclasses.setdefault(base, set()).add(symbol.qualname)
        # Registry scan: module-level data structures holding class or
        # function refs (``STRATEGIES``-/``FIGURES``-style dispatch tables).
        for mod in self.modules.values():
            for name, node in mod.constants.items():
                class_refs, func_refs = self._symbol_refs_in(mod, node)
                if class_refs:
                    self.registered_classes[f"{mod.name}.{name}"] = class_refs
                if func_refs:
                    self.registered_functions[f"{mod.name}.{name}"] = func_refs

    def _symbol_refs_in(
        self, mod: ModuleSymbols, node: ast.AST
    ) -> Tuple[Set[str], Set[str]]:
        """Project classes/functions referenced inside a module-level value."""
        class_refs: Set[str] = set()
        func_refs: Set[str] = set()
        for child in ast.walk(node):
            raw: Optional[str] = None
            if isinstance(child, ast.Name):
                raw = child.id
            elif isinstance(child, ast.Attribute):
                raw = self._annotation_name(child)
            if raw is None:
                continue
            target = self.resolve_name(mod, raw)
            if target is None:
                continue
            if target in self.classes:
                class_refs.add(target)
            elif target in self.functions:
                func_refs.add(target)
        return class_refs, func_refs

    # -- resolution --------------------------------------------------------

    def resolve_name(self, mod: ModuleSymbols, raw: str) -> Optional[str]:
        """Resolve dotted text written inside *mod* to a project qualname.

        Follows local definitions, then imports (including imports of whole
        project modules, so ``base.Strategy`` resolves through ``import
        repro.core.strategies.base as base``).  Returns ``None`` when the
        name leads outside the project.
        """
        head, _, rest = raw.partition(".")
        target: Optional[str] = None
        if head in mod.classes:
            target = mod.classes[head]
        elif head in mod.functions:
            target = mod.functions[head]
        elif head in mod.imports:
            target = mod.imports[head]
        elif head in self.modules:
            target = head
        if target is None:
            return None
        dotted = f"{target}.{rest}" if rest else target
        return self._canonicalize(dotted)

    def _canonicalize(self, dotted: str) -> Optional[str]:
        """Map a dotted path to the project symbol it denotes, if any."""
        if dotted in self.classes or dotted in self.functions or dotted in self.modules:
            return dotted
        # Re-exports: ``repro.lint.Finding`` -> follow the package import.
        head, _, rest = dotted.rpartition(".")
        if head in self.modules and rest:
            mod = self.modules[head]
            for table in (mod.classes, mod.functions, mod.imports):
                if rest in table:
                    return self._canonicalize(table[rest])
        return None

    def lookup_method(self, class_qual: str, name: str) -> Optional[str]:
        """Find *name* on *class_qual* or (depth-first) its project bases."""
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen or qual not in self.classes:
                continue
            seen.add(qual)
            symbol = self.classes[qual]
            if name in symbol.methods:
                return symbol.methods[name]
            stack.extend(symbol.bases)
        return None

    def lookup_attr_type(self, class_qual: str, name: str) -> Optional[str]:
        """The project-class type of ``self.<name>`` on *class_qual*, if known."""
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen or qual not in self.classes:
                continue
            seen.add(qual)
            symbol = self.classes[qual]
            if name in symbol.attr_types:
                resolved = self.resolve_name(self.modules[symbol.module], symbol.attr_types[name])
                if resolved is not None and resolved in self.classes:
                    return resolved
                if symbol.attr_types[name] in self.classes:
                    return symbol.attr_types[name]
                return None
            stack.extend(symbol.bases)
        return None

    def subclasses(self, class_qual: str) -> Set[str]:
        """All transitive project subclasses of *class_qual*."""
        out: Set[str] = set()
        stack = list(self._subclasses.get(class_qual, ()))
        while stack:
            qual = stack.pop()
            if qual in out:
                continue
            out.add(qual)
            stack.extend(self._subclasses.get(qual, ()))
        return out

    def is_subclass_of(self, class_qual: str, base_qual: str) -> bool:
        """Whether *class_qual* is *base_qual* or inherits from it."""
        return class_qual == base_qual or class_qual in self.subclasses(base_qual)

    def iter_functions(self) -> Iterator[FunctionSymbol]:
        """All indexed functions and methods, in deterministic order."""
        for qual in sorted(self.functions):
            yield self.functions[qual]

    def import_graph(self) -> Dict[str, Set[str]]:
        """Module-level import edges restricted to project modules."""
        graph: Dict[str, Set[str]] = {}
        for mod in self.modules.values():
            edges: Set[str] = set()
            for target in mod.imports.values():
                resolved = self._canonicalize(target)
                owner: Optional[str] = None
                if resolved is None:
                    continue
                if resolved in self.modules:
                    owner = resolved
                elif resolved in self.functions:
                    owner = self.functions[resolved].module
                elif resolved in self.classes:
                    owner = self.classes[resolved].module
                if owner is not None and owner != mod.name:
                    edges.add(owner)
            graph[mod.name] = edges
        return graph


def build_project(modules: Sequence[ModuleInfo]) -> Project:
    """Build the :class:`Project` symbol table for *modules*."""
    return Project(modules)
