"""``python -m repro.analyze`` — delegate to the CLI."""

from __future__ import annotations

import sys

from repro.analyze.cli import main

if __name__ == "__main__":
    sys.exit(main())
