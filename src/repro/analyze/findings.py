"""Analysis findings: lint findings plus a stable key and a call chain.

:class:`AnalysisFinding` extends :class:`repro.lint.framework.Finding` so
the existing text/JSON reporters render analyzer output unchanged, while
adding the two pieces interprocedural findings need:

* ``key`` — a stable identity (``A-TAINT:repro.x.f:time.time``) that does
  not embed line numbers, so the committed baseline survives unrelated
  edits and ``repro-analyze explain <key>`` can address one finding;
* ``chain`` — the root-to-offender call chain, rendered one step per
  entry, which ``explain`` prints in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.lint.framework import Finding

__all__ = ["AnalysisFinding"]


@dataclass(frozen=True)
class AnalysisFinding(Finding):
    """One interprocedural finding with identity and provenance."""

    key: str = ""
    chain: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON form: the lint schema plus ``key`` and ``chain``."""
        doc = super().to_dict()
        doc["key"] = self.key
        doc["chain"] = list(self.chain)
        return doc

    def render(self) -> str:
        """The lint one-liner with the finding's key appended."""
        base = super().render()
        return f"{base} [{self.key}]" if self.key else base

    def render_chain(self) -> str:
        """Multi-line ``explain`` output: key, message, then the chain."""
        lines = [self.key, f"  {self.severity}: {self.message}", f"  at {self.path}:{self.line}"]
        if self.chain:
            lines.append("  call chain:")
            for i, step in enumerate(self.chain):
                prefix = "    " + ("-> " if i else "   ")
                lines.append(f"{prefix}{step}")
        return "\n".join(lines)
