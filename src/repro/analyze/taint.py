"""Determinism taint check (A-TAINT).

The paper's results only reproduce when every function reachable from the
simulation engines and the exporter/fingerprint paths is a pure function of
``(config, seed)``.  This check walks the call graph *forward* from those
roots and flags any reached function that contains a nondeterminism
source:

* wall-clock and OS-entropy reads (``time.time``, ``datetime.now``,
  ``os.urandom``, ``uuid.uuid4``, stdlib ``random.*``, ``secrets.*``);
* filesystem enumeration whose order the OS chooses (``os.listdir``,
  ``glob.glob``, ``os.scandir``, ``os.walk``) unless directly wrapped in
  ``sorted(...)``;
* iteration over a raw ``set``/``frozenset`` value (hash order is salted
  per process) unless wrapped in ``sorted(...)``.

Declared *sanitized boundaries* are not traversed: :mod:`repro.obs.profile`
(the one sanctioned wall-clock module), :mod:`repro.utils.rng` (the one
sanctioned entropy boundary — fresh entropy only ever enters through an
explicit ``seed=None``), the :mod:`repro.serve` service layer (request
latencies and quota refill are wall-clock by nature; simulation results it
returns come from the deterministic engine through the store), and CLI
entry-point modules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analyze.checks import AnalysisModel, AnalyzeCheck
from repro.analyze.findings import AnalysisFinding
from repro.lint.framework import Severity

__all__ = ["ENTRY_ROOT_PATTERNS", "DeterminismTaint", "entry_roots", "sanitized_modules"]

#: Call-graph roots: the deterministic core every source must stay out of.
#: Exact qualnames, or ``module.*`` for every public function of a module.
ENTRY_ROOT_PATTERNS: Tuple[str, ...] = (
    "repro.simulator.engine.simulate",
    "repro.simulator.batch.simulate_batch",
    "repro.faults.engine.simulate_faulty",
    "repro.store.fingerprint.*",
    "repro.obs.export.*",
)

#: Exact external names that read a clock or entropy pool.
_SOURCE_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Prefixes covering whole nondeterministic namespaces.
_SOURCE_PREFIXES: Tuple[str, ...] = ("random.", "secrets.", "np.random.", "numpy.random.")

#: Filesystem enumeration in OS order; fine when wrapped in ``sorted(...)``.
_FS_ORDER_CALLS = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)


def entry_roots(model: AnalysisModel) -> List[str]:
    """Resolve :data:`ENTRY_ROOT_PATTERNS` against the project."""
    roots: List[str] = []
    for pattern in ENTRY_ROOT_PATTERNS:
        if pattern.endswith(".*"):
            module = pattern[: -len(".*")]
            symbols = model.project.modules.get(module)
            if symbols is None:
                continue
            roots.extend(
                qual
                for name, qual in sorted(symbols.functions.items())
                if not name.startswith("_")
            )
        elif pattern in model.project.functions:
            roots.append(pattern)
    return roots


def sanitized_modules(model: AnalysisModel) -> List[str]:
    """Modules the taint walk must not traverse into."""
    out = []
    for name in sorted(model.project.modules):
        if (
            name in ("repro.obs.profile", "repro.utils.rng")
            or name == "repro.serve"
            or name.startswith("repro.serve.")
            or name.endswith(".cli")
            or name.endswith(".__main__")
        ):
            out.append(name)
    return out


class DeterminismTaint(AnalyzeCheck):
    """Nondeterminism sources must not reach the simulate/fingerprint core."""

    id = "A-TAINT"
    severity = Severity.ERROR
    description = (
        "no wall-clock, OS-entropy, unordered-filesystem or raw-set-iteration "
        "source may be reachable from simulate()/simulate_batch()/"
        "simulate_faulty() or the fingerprint/exporter paths (sanitized: "
        "repro.obs.profile, repro.utils.rng, repro.serve, CLI modules)"
    )

    def analyze(self, model: AnalysisModel) -> Iterator[AnalysisFinding]:
        roots = entry_roots(model)
        parents = model.graph.reachable(roots, skip_modules=sanitized_modules(model))
        for qual in sorted(parents):
            symbol = model.project.functions.get(qual)
            if symbol is None:  # pragma: no cover - roots are real functions
                continue
            for source_name, node in self._direct_sources(model, qual):
                chain = tuple(model.graph.chain(parents, qual)) + (
                    f"{source_name} at line {getattr(node, 'lineno', 1)}",
                )
                yield self.analysis_finding(
                    model,
                    symbol.module,
                    node,
                    f"nondeterminism source {source_name} is reachable from "
                    f"the deterministic core (entry: {chain[0].split(' ')[0]}); "
                    "results would stop being a pure function of (config, seed)",
                    key=f"A-TAINT:{qual}:{source_name}",
                    chain=chain,
                )

    # -- source detection --------------------------------------------------

    def _direct_sources(
        self, model: AnalysisModel, qual: str
    ) -> List[Tuple[str, ast.AST]]:
        symbol = model.project.functions[qual]
        parents = _parent_map(symbol.node)
        sources: List[Tuple[str, ast.AST]] = []
        for name, site in model.graph.external_calls(qual):
            node = _node_at(symbol.node, site.lineno, site.col)
            if node is None:  # pragma: no cover - defensive
                continue
            if name in _SOURCE_CALLS or any(name.startswith(p) for p in _SOURCE_PREFIXES):
                sources.append((name, node))
            elif name in _FS_ORDER_CALLS and not _sorted_wrapped(node, parents):
                sources.append((f"{name} (unsorted)", node))
        sources.extend(
            ("set-iteration", node) for node in _unordered_iterations(symbol.node)
        )
        sources.sort(key=lambda s: (getattr(s[1], "lineno", 1), getattr(s[1], "col_offset", 0)))
        return sources


def _parent_map(root: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _node_at(root: ast.AST, lineno: int, col: int) -> Optional[ast.AST]:
    """The ``ast.Call`` at an exact position (call sites store positions)."""
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and getattr(node, "lineno", None) == lineno
            and getattr(node, "col_offset", None) == col
        ):
            return node
    return None  # pragma: no cover - positions come from the same tree


def _sorted_wrapped(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    """True when *node* is a direct argument of a ``sorted(...)`` call."""
    parent = parents.get(id(node))
    if isinstance(parent, ast.GeneratorExp):
        # ``sorted(p for p in os.listdir(d))``: the listdir call sits in a
        # comprehension whose parent is the sorted() call.
        parent = parents.get(id(parent))
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
    )


def _unordered_iterations(root: ast.AST) -> List[ast.AST]:
    """Loop/comprehension iterables that are raw set values."""
    set_vars = _set_typed_locals(root)
    out: List[ast.AST] = []
    iters: List[ast.expr] = []
    for node in ast.walk(root):
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
    for it in iters:
        if _is_set_expr(it, set_vars):
            out.append(it)
    return out


def _set_typed_locals(root: ast.AST) -> Set[str]:
    """Local names assigned a set literal/constructor anywhere in *root*."""
    names: Set[str] = set()
    for node in ast.walk(root):
        if isinstance(node, ast.Assign):
            if _is_set_expr(node.value, set()):
                names.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
    return names


def _is_set_expr(expr: ast.expr, set_vars: Set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    if isinstance(expr, ast.Name):
        return expr.id in set_vars
    return False
