"""Check registry and shared analysis model for :mod:`repro.analyze`.

Checks are :class:`repro.lint.framework.Rule` subclasses implementing
``check_package``, so the lint framework's noqa suppression, sorting and
reporters apply unchanged.  They differ from lint rules in what they see:
each check receives an :class:`AnalysisModel` — the project symbol table
plus call graph — built once per run and shared across checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.analyze.callgraph import CallGraph, build_call_graph
from repro.analyze.findings import AnalysisFinding
from repro.analyze.project import Project, build_project
from repro.lint.framework import Finding, ModuleInfo, Rule, run_lint

__all__ = [
    "ALL_CHECKS",
    "AnalysisModel",
    "AnalyzeCheck",
    "build_model",
    "default_checks",
    "run_analysis",
    "select_checks",
]


@dataclass
class AnalysisModel:
    """The whole-program view shared by every check of one run."""

    project: Project
    graph: CallGraph


def build_model(modules: Sequence[ModuleInfo]) -> AnalysisModel:
    """Build symbol table and call graph for *modules*."""
    project = build_project(modules)
    return AnalysisModel(project=project, graph=build_call_graph(project))


class AnalyzeCheck(Rule):
    """Base class: a lint rule that runs over the shared analysis model."""

    def __init__(self, model: Optional[AnalysisModel] = None) -> None:
        self._model = model

    def check_package(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        """Build (or reuse) the model and delegate to :meth:`analyze`."""
        if self._model is None:
            self._model = build_model(modules)
        return self.analyze(self._model)

    def analyze(self, model: AnalysisModel) -> Iterator[Finding]:
        """Yield findings for the whole program; overridden per check."""
        raise NotImplementedError

    def analysis_finding(
        self,
        model: AnalysisModel,
        module_name: str,
        node: ast.AST,
        message: str,
        *,
        key: str,
        chain: Tuple[str, ...] = (),
    ) -> AnalysisFinding:
        """Build an :class:`AnalysisFinding` anchored in *module_name*."""
        info = model.project.modules[module_name].info
        return AnalysisFinding(
            rule_id=self.id,
            severity=self.severity,
            path=str(info.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            key=key,
            chain=chain,
        )


def _check_index() -> Dict[str, Type[AnalyzeCheck]]:
    return {cls.id: cls for cls in ALL_CHECKS}


def default_checks(
    model: Optional[AnalysisModel] = None, *, api_doc: Optional[str] = None
) -> List[AnalyzeCheck]:
    """Fresh instances of the full check set sharing one *model*."""
    return _instantiate(list(_check_index()), model, api_doc)


def select_checks(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    *,
    model: Optional[AnalysisModel] = None,
    api_doc: Optional[str] = None,
) -> List[AnalyzeCheck]:
    """The check set filtered by id; unknown ids raise ``ValueError``."""
    index = _check_index()
    chosen = list(index)
    if select is not None:
        wanted = [s.upper() for s in select]
        unknown = sorted(set(wanted) - set(index))
        if unknown:
            raise ValueError(f"unknown check id(s): {', '.join(unknown)}")
        chosen = [cid for cid in chosen if cid in wanted]
    if ignore is not None:
        dropped = [s.upper() for s in ignore]
        unknown = sorted(set(dropped) - set(index))
        if unknown:
            raise ValueError(f"unknown check id(s): {', '.join(unknown)}")
        chosen = [cid for cid in chosen if cid not in dropped]
    return _instantiate(chosen, model, api_doc)


def _instantiate(
    ids: List[str], model: Optional[AnalysisModel], api_doc: Optional[str]
) -> List[AnalyzeCheck]:
    from repro.analyze.drift import ApiDrift

    index = _check_index()
    checks: List[AnalyzeCheck] = []
    for cid in ids:
        cls = index[cid]
        if issubclass(cls, ApiDrift):
            checks.append(cls(model=model, api_doc=api_doc))
        else:
            checks.append(cls(model=model))
    return checks


def run_analysis(
    modules: Sequence[ModuleInfo],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    api_doc: Optional[str] = None,
) -> List[Finding]:
    """Run the (filtered) analyzer check set over *modules*.

    Builds the shared model once, runs every check through the lint
    framework (so per-line ``# repro: noqa[A-...]`` suppressions apply) and
    returns the sorted findings.
    """
    model = build_model(modules)
    checks = select_checks(select, ignore, model=model, api_doc=api_doc)
    return run_lint(modules, checks)


# Imported late so the check modules can import AnalyzeCheck from here.
from repro.analyze.drift import ApiDrift, DeadPublicCode  # noqa: E402
from repro.analyze.locks import LockDiscipline, LockHeldAcrossSlowCall  # noqa: E402
from repro.analyze.purity import StrategyPurity  # noqa: E402
from repro.analyze.taint import DeterminismTaint  # noqa: E402

#: Every analyzer check, in reporting-priority order.
ALL_CHECKS: List[Type[AnalyzeCheck]] = [
    DeterminismTaint,
    LockDiscipline,
    LockHeldAcrossSlowCall,
    StrategyPurity,
    ApiDrift,
    DeadPublicCode,
]
