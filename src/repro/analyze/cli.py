"""Command-line entry point: ``repro-analyze`` / ``python -m repro.analyze``.

Three subcommands:

* ``check`` — run the interprocedural check set, optionally against a
  committed baseline (known findings suppressed, stale entries fail);
* ``graph`` — summarize the project call graph, or list the callers /
  callees of one function;
* ``explain KEY`` — re-run the analysis and print the full root-to-source
  call chain for the finding with that key.

Exit codes follow ``repro-lint``: 0 clean, 1 findings (or stale baseline
entries), 2 usage or I/O errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analyze.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analyze.checks import ALL_CHECKS, build_model, run_analysis
from repro.analyze.findings import AnalysisFinding
from repro.lint.framework import LintError, ModuleInfo, collect_modules
from repro.lint.reporters import render_json, render_text

__all__ = ["build_parser", "main"]

_DEFAULT_API_DOC = "docs/API.md"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-analyze`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Whole-program determinism and concurrency analyzer for the "
            "repro scheduler codebase: call-graph construction plus "
            "interprocedural taint, lock-discipline, strategy-purity and "
            "API-drift checks."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run the analyzer check set")
    _add_tree_args(check)
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    check.add_argument(
        "--select",
        action="append",
        metavar="CHECK-ID",
        help="run only these check ids (repeatable)",
    )
    check.add_argument(
        "--ignore",
        action="append",
        metavar="CHECK-ID",
        help="skip these check ids (repeatable)",
    )
    check.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of grandfathered finding keys; known findings "
        "are suppressed, stale entries fail the run",
    )
    check.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the current findings' keys as a new baseline and exit 0",
    )
    check.add_argument(
        "--api-doc",
        metavar="PATH",
        default=None,
        help=f"API reference for the drift check (default: {_DEFAULT_API_DOC} "
        "when it exists)",
    )
    check.add_argument(
        "--list-checks",
        action="store_true",
        help="print the check catalogue and exit",
    )

    graph = sub.add_parser("graph", help="summarize the project call graph")
    _add_tree_args(graph)
    graph.add_argument(
        "--callers",
        metavar="QUALNAME",
        help="list direct callers of a function (dotted qualname)",
    )
    graph.add_argument(
        "--callees",
        metavar="QUALNAME",
        help="list direct callees of a function (dotted qualname)",
    )

    explain = sub.add_parser(
        "explain", help="print the full call chain behind one finding"
    )
    explain.add_argument("key", help="finding key, e.g. A-TAINT:repro.x.f:time.time")
    _add_tree_args(explain)
    explain.add_argument(
        "--api-doc",
        metavar="PATH",
        default=None,
        help="API reference for the drift check",
    )
    return parser


def _add_tree_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )


def _list_checks() -> str:
    lines = []
    for cls in ALL_CHECKS:
        lines.append(f"{cls.id:14s} [{cls.severity}] {cls.description}")
    return "\n".join(lines)


def _collect(paths: Sequence[str]) -> List[ModuleInfo]:
    return collect_modules([Path(p) for p in paths])


def _resolve_api_doc(flag: Optional[str]) -> Optional[str]:
    if flag is not None:
        return flag
    default = Path(_DEFAULT_API_DOC)
    return str(default) if default.exists() else None


def _cmd_check(args: argparse.Namespace) -> int:
    if args.list_checks:
        print(_list_checks())
        return 0
    try:
        modules = _collect(args.paths)
        findings = run_analysis(
            modules,
            select=args.select,
            ignore=args.ignore,
            api_doc=_resolve_api_doc(args.api_doc),
        )
    except (LintError, ValueError) as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        keys = save_baseline(Path(args.write_baseline), findings)
        print(f"repro-analyze: wrote {len(keys)} key(s) to {args.write_baseline}")
        return 0

    stale: Sequence[str] = ()
    if args.baseline:
        try:
            keys = load_baseline(Path(args.baseline))
        except BaselineError as exc:
            print(f"repro-analyze: {exc}", file=sys.stderr)
            return 2
        split = apply_baseline(findings, keys)
        findings = list(split.fresh)
        stale = split.stale

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings, prog="repro-analyze"))
    for key in stale:
        print(
            f"repro-analyze: stale baseline entry {key} — the finding no "
            f"longer fires; delete it from {args.baseline}",
            file=sys.stderr,
        )
    return 1 if findings or stale else 0


def _cmd_graph(args: argparse.Namespace) -> int:
    try:
        modules = _collect(args.paths)
    except LintError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2
    model = build_model(modules)
    if args.callers or args.callees:
        qual = args.callers or args.callees
        table = model.graph.callers if args.callers else model.graph.edges
        if qual not in model.project.functions:
            print(f"repro-analyze: unknown function {qual}", file=sys.stderr)
            return 2
        for name, lineno in sorted(set(table.get(qual, []))):
            print(f"{name} (line {lineno})")
        return 0
    edge_count = sum(len(v) for v in model.graph.edges.values())
    print(f"modules:    {len(model.project.modules)}")
    print(f"functions:  {len(model.project.functions)}")
    print(f"classes:    {len(model.project.classes)}")
    print(f"call edges: {edge_count}")
    print(f"unresolved: {model.graph.unresolved}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    try:
        modules = _collect(args.paths)
        findings = run_analysis(modules, api_doc=_resolve_api_doc(args.api_doc))
    except LintError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        if isinstance(finding, AnalysisFinding) and finding.key == args.key:
            print(finding.render_chain())
            return 0
    print(f"repro-analyze: no finding with key {args.key}", file=sys.stderr)
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "graph":
        return _cmd_graph(args)
    return _cmd_explain(args)
