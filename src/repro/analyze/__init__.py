"""repro.analyze — whole-program determinism & concurrency analyzer.

Where :mod:`repro.lint` checks one module at a time, this package builds a
*whole-program* view — symbol table, import graph and an approximate call
graph over ``src/repro`` — and runs interprocedural checks on it:

* **A-TAINT** — no wall-clock/entropy/unordered-iteration source reachable
  from ``simulate()``/``simulate_faulty()`` or the fingerprint/exporter
  paths (:mod:`repro.analyze.taint`);
* **A-LOCK** / **A-LOCK-HELD** — every ``repro.store`` mutation dominated
  by FileLock acquisition, and no lock held across slow or forking calls
  (:mod:`repro.analyze.locks`);
* **A-PURE** — strategy hooks write no shared state and do no I/O
  (:mod:`repro.analyze.purity`);
* **A-DRIFT** / **A-DEAD** — ``docs/API.md`` matches ``__all__``, and
  exported functions are actually used (:mod:`repro.analyze.drift`).

CLI: ``repro-analyze check|graph|explain`` (``python -m repro.analyze``).
Known debt lives in a committed baseline that may only shrink; see
:mod:`repro.analyze.baseline` and ``docs/ANALYSIS.md``.

Programmatic use::

    from repro.analyze import run_analysis
    from repro.lint import collect_modules

    findings = run_analysis(collect_modules(["src/repro"]))
    assert not findings
"""

from repro.analyze.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analyze.callgraph import CallGraph, CallSite, build_call_graph
from repro.analyze.checks import (
    ALL_CHECKS,
    AnalysisModel,
    AnalyzeCheck,
    build_model,
    default_checks,
    run_analysis,
    select_checks,
)
from repro.analyze.findings import AnalysisFinding
from repro.analyze.project import (
    ClassSymbol,
    FunctionSymbol,
    ModuleSymbols,
    Project,
    build_project,
)

__all__ = [
    "ALL_CHECKS",
    "AnalysisFinding",
    "AnalysisModel",
    "AnalyzeCheck",
    "BaselineError",
    "CallGraph",
    "CallSite",
    "ClassSymbol",
    "FunctionSymbol",
    "ModuleSymbols",
    "Project",
    "apply_baseline",
    "build_call_graph",
    "build_model",
    "build_project",
    "default_checks",
    "load_baseline",
    "run_analysis",
    "save_baseline",
    "select_checks",
]
