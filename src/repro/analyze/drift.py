"""API drift and dead-public-code checks (A-DRIFT, A-DEAD).

``docs/API.md`` is generated from the live package by
``tools/gen_api_docs.py``: each module section (``## `repro.x```) lists the
module's ``__all__``-exported functions and classes *defined in that
module*.  :class:`ApiDrift` re-derives that contract statically and flags
both directions of drift — a documented member that no longer exists, and
an exported definition missing from the reference (i.e. ``docs/API.md`` is
stale and the docs CI job would fail after regeneration).

:class:`DeadPublicCode` uses the call graph for the deeper question: which
``__all__``-exported *functions* does nothing in the project call, import,
or reference?  Classes are excluded — their uses are typically type-level
(annotations, registries) which a call graph does not witness.  CLI,
``__main__`` and bench modules are exempt (their entry points are invoked
by name from outside), as are ``main``/``build_parser`` anywhere.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, Optional, Set

from repro.analyze.checks import AnalysisModel, AnalyzeCheck
from repro.analyze.findings import AnalysisFinding
from repro.lint.framework import Severity

__all__ = ["ApiDrift", "DeadPublicCode", "parse_api_doc"]

_MODULE_RE = re.compile(r"^##\s+`(?P<module>[\w.]+)`\s*$")
_MEMBER_RE = re.compile(r"^###\s+`(?:def|class)\s+(?P<name>\w+)")

#: Entry-point names invoked from outside the project by console scripts.
_ENTRY_NAMES = frozenset({"main", "build_parser"})


def parse_api_doc(path: Path) -> Dict[str, Set[str]]:
    """Parse API.md into ``{module: {member, ...}}`` (empty if unreadable)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return {}
    sections: Dict[str, Set[str]] = {}
    current: Optional[str] = None
    for line in text.splitlines():
        match = _MODULE_RE.match(line)
        if match:
            current = match.group("module")
            sections.setdefault(current, set())
            continue
        match = _MEMBER_RE.match(line)
        if match and current is not None:
            sections[current].add(match.group("name"))
    return sections


class ApiDrift(AnalyzeCheck):
    """docs/API.md must match each module's ``__all__``-exported definitions."""

    id = "A-DRIFT"
    severity = Severity.ERROR
    description = (
        "docs/API.md module sections must list exactly the __all__-exported "
        "functions/classes defined in each module; drift in either direction "
        "means the generated reference is stale"
    )

    def __init__(self, model: Optional["AnalysisModel"] = None, *, api_doc: Optional[str] = None) -> None:
        super().__init__(model)
        self.api_doc = api_doc

    def analyze(self, model: AnalysisModel) -> Iterator[AnalysisFinding]:
        if self.api_doc is None:
            return
        sections = parse_api_doc(Path(self.api_doc))
        if not sections:
            return
        for mod_name in sorted(model.project.modules):
            mod = model.project.modules[mod_name]
            if mod.all_names is None:
                continue
            defined = self._exported_definitions(model, mod_name)
            documented = sections.get(mod_name, set())
            for name in sorted(set(defined) - documented):
                yield self.analysis_finding(
                    model,
                    mod_name,
                    defined[name],
                    f"{mod_name}.{name} is exported via __all__ but missing "
                    f"from {self.api_doc}; regenerate with tools/gen_api_docs.py",
                    key=f"A-DRIFT:{mod_name}.{name}:undocumented",
                )
            gone = documented - set(defined)
            anchor = mod.all_node if mod.all_node is not None else mod.info.tree
            for name in sorted(gone):
                yield self.analysis_finding(
                    model,
                    mod_name,
                    anchor,
                    f"{self.api_doc} documents {mod_name}.{name} but the "
                    "module no longer exports a definition with that name",
                    key=f"A-DRIFT:{mod_name}.{name}:documented-but-missing",
                )

    @staticmethod
    def _exported_definitions(model: AnalysisModel, mod_name: str) -> Dict[str, ast.AST]:
        """``__all__`` names defined (not re-exported) in *mod_name* -> node."""
        mod = model.project.modules[mod_name]
        out: Dict[str, ast.AST] = {}
        for name in mod.all_names or ():
            if name in mod.functions:
                out[name] = model.project.functions[mod.functions[name]].node
            elif name in mod.classes:
                out[name] = model.project.classes[mod.classes[name]].node
        return out


class DeadPublicCode(AnalyzeCheck):
    """``__all__``-exported functions nothing calls, imports, or references."""

    id = "A-DEAD"
    severity = Severity.WARNING
    description = (
        "an __all__-exported module-level function with no project call "
        "edge, import, or reference is dead public surface — either wire it "
        "in, or stop exporting it"
    )

    def analyze(self, model: AnalysisModel) -> Iterator[AnalysisFinding]:
        imported = self._imported_quals(model)
        registered: Set[str] = set()
        for refs in model.project.registered_functions.values():
            registered.update(refs)
        for mod_name in sorted(model.project.modules):
            mod = model.project.modules[mod_name]
            if mod.all_names is None or self._exempt_module(mod_name):
                continue
            for name in mod.all_names:
                qual = mod.functions.get(name)
                if qual is None or name in _ENTRY_NAMES:
                    continue
                if (
                    qual in imported
                    or qual in registered
                    or self._has_external_caller(model, qual)
                ):
                    continue
                symbol = model.project.functions[qual]
                yield self.analysis_finding(
                    model,
                    mod_name,
                    symbol.node,
                    f"{qual} is exported via __all__ but no project code "
                    "calls, imports, or references it",
                    key=f"A-DEAD:{qual}",
                )

    @staticmethod
    def _exempt_module(mod_name: str) -> bool:
        parts = mod_name.split(".")
        return (
            mod_name.endswith(".cli")
            or mod_name.endswith(".__main__")
            or "bench" in parts
        )

    @staticmethod
    def _imported_quals(model: AnalysisModel) -> Set[str]:
        """Function qualnames any module imports (canonicalized)."""
        out: Set[str] = set()
        for mod in model.project.modules.values():
            for target in mod.imports.values():
                resolved = model.project._canonicalize(target)
                if resolved is not None:
                    out.add(resolved)
        return out

    @staticmethod
    def _has_external_caller(model: AnalysisModel, qual: str) -> bool:
        """An incoming edge from outside the defining function itself."""
        for caller, _ in model.graph.callers.get(qual, ()):
            if caller != qual:
                return True
        return False
