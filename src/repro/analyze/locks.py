"""Lock-discipline checks over the result store (A-LOCK, A-LOCK-HELD).

:mod:`repro.store` serializes every cache mutation on one
:class:`~repro.store.lock.FileLock` so parallel replicate runners can share
a store.  Two properties keep that true as the store grows:

* **A-LOCK** — every mutating filesystem operation (``os.replace``,
  ``os.unlink``, write-mode ``open``/``os.fdopen``, ...) inside
  ``repro.store`` must be *dominated* by lock acquisition: either the
  operation sits lexically inside a ``with <lock>:`` block, or every call
  path into its function runs under one (helpers only ever invoked from
  locked regions are fine — computed as a fixpoint over the call graph).
  Reads never lock by design (writes are atomic ``os.replace``); read-path
  best-effort cleanup is the sanctioned per-line ``noqa`` exemption.
* **A-LOCK-HELD** — no lock may be held across a slow or forking call:
  ``subprocess``/``os.fork``/``multiprocessing``, or anything that
  (transitively) enters ``simulate()``/``simulate_faulty()``.  A lock held
  across a long simulation starves every sibling replicate process.

Lock acquisitions are recognized both semantically (a ``with`` context
resolving to ``FileLock(...)`` or a project method named ``lock``) and
syntactically (``with self.lock():`` / ``with FileLock(...):``), so the
check works on fixture trees without the real lock module.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analyze.callgraph import ChainLink
from repro.analyze.checks import AnalysisModel, AnalyzeCheck
from repro.analyze.findings import AnalysisFinding
from repro.analyze.project import FunctionSymbol
from repro.lint.framework import Severity

__all__ = ["LockDiscipline", "LockHeldAcrossSlowCall"]

#: Package whose mutations must be lock-dominated.
_SCOPE = "repro.store"

#: The lock implementation itself manipulates lock files without holding one.
_EXEMPT_MODULES = frozenset({"repro.store.lock"})

#: External calls that mutate store state on disk.
_MUTATION_CALLS = frozenset(
    {"os.replace", "os.unlink", "os.rename", "os.remove", "shutil.rmtree"}
)

#: Open-like externals whose mode argument decides mutation.
_OPEN_CALLS = frozenset({"open", "io.open", "os.fdopen"})

#: Slow/forking externals that must not run under the store lock.
_SLOW_CALLS = frozenset({"os.fork", "os.forkpty", "os.system"})
_SLOW_PREFIXES: Tuple[str, ...] = ("subprocess.", "multiprocessing.", "concurrent.")

#: Project functions that are long-running by contract.
_SLOW_INTERNAL = frozenset(
    {"repro.simulator.engine.simulate", "repro.faults.engine.simulate_faulty"}
)


def _in_scope(module: str) -> bool:
    return (module == _SCOPE or module.startswith(_SCOPE + ".")) and (
        module not in _EXEMPT_MODULES
    )


def _is_lock_context(model: AnalysisModel, qual: str, expr: ast.expr) -> bool:
    """Whether a ``with`` context expression acquires a store lock."""
    if not isinstance(expr, ast.Call):
        return False
    site = model.graph.site_for_node(qual, expr)
    if site is not None:
        for target in site.targets:
            name = target.rsplit(".", 1)[1]
            if name == "lock" or ".FileLock." in f".{target}.":
                return True
    func = expr.func
    if isinstance(func, ast.Attribute) and func.attr == "lock":
        return True
    if isinstance(func, ast.Name) and func.id == "FileLock":
        return True
    return False


def _locked_regions(model: AnalysisModel, symbol: FunctionSymbol) -> Set[int]:
    """ids of AST nodes lexically inside a lock-acquiring ``with`` body."""
    locked: Set[int] = set()
    for node in ast.walk(symbol.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(
            _is_lock_context(model, symbol.qualname, item.context_expr)
            for item in node.items
        ):
            continue
        for stmt in node.body:
            for child in ast.walk(stmt):
                locked.add(id(child))
    return locked


def _mutation_name(model: AnalysisModel, qual: str, node: ast.Call) -> Optional[str]:
    """The canonical mutation name of a call, or ``None`` if not a mutation."""
    site = model.graph.site_for_node(qual, node)
    if site is None or site.external is None:
        return None
    name = site.external
    if name in _MUTATION_CALLS:
        return name
    if name in _OPEN_CALLS and _write_mode(node):
        return f"{name}(mode=w)"
    return None


def _write_mode(node: ast.Call) -> bool:
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in "wax+")
    return True  # dynamic mode: assume the worst


class LockDiscipline(AnalyzeCheck):
    """Store mutations must be dominated by FileLock acquisition."""

    id = "A-LOCK"
    severity = Severity.ERROR
    description = (
        "every filesystem mutation in repro.store (os.replace/os.unlink/"
        "write-mode open, ...) must run inside a FileLock 'with' block, "
        "either locally or on every call path into its function"
    )

    def analyze(self, model: AnalysisModel) -> Iterator[AnalysisFinding]:
        scope = [
            s
            for s in model.project.iter_functions()
            if _in_scope(s.module)
        ]
        locked_regions = {s.qualname: _locked_regions(model, s) for s in scope}
        always_locked = self._always_locked(model, scope, locked_regions)
        for symbol in scope:
            regions = locked_regions[symbol.qualname]
            for node in ast.walk(symbol.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _mutation_name(model, symbol.qualname, node)
                if name is None or id(node) in regions:
                    continue
                if symbol.qualname in always_locked:
                    continue
                yield self.analysis_finding(
                    model,
                    symbol.module,
                    node,
                    f"store mutation {name} in {symbol.qualname} is not "
                    "dominated by FileLock acquisition; concurrent writers "
                    "could interleave partial cache state",
                    key=f"A-LOCK:{symbol.qualname}:{name}",
                    chain=(
                        f"{symbol.qualname} [{symbol.module}]",
                        f"{name} at line {getattr(node, 'lineno', 1)} outside any lock",
                    ),
                )

    def _always_locked(
        self,
        model: AnalysisModel,
        scope: List[FunctionSymbol],
        locked_regions: Dict[str, Set[int]],
    ) -> Set[str]:
        """Functions whose every in-scope call site runs under a lock."""
        in_scope = {s.qualname for s in scope}
        # Which call edges originate inside a locked region of their caller?
        locked_edges: Dict[Tuple[str, str], bool] = {}
        for symbol in scope:
            regions = locked_regions[symbol.qualname]
            for node in ast.walk(symbol.node):
                if not isinstance(node, ast.Call):
                    continue
                site = model.graph.site_for_node(symbol.qualname, node)
                if site is None:
                    continue
                inside = id(node) in regions
                for target in site.targets:
                    edge = (symbol.qualname, target)
                    locked_edges[edge] = locked_edges.get(edge, True) and inside
        always: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for symbol in scope:
                qual = symbol.qualname
                if qual in always:
                    continue
                callers = [
                    (caller, _)
                    for caller, _ in model.graph.callers.get(qual, ())
                    if caller in in_scope
                ]
                if not callers:
                    continue
                if all(
                    locked_edges.get((caller, qual), False) or caller in always
                    for caller, _ in callers
                ):
                    always.add(qual)
                    changed = True
        return always


class LockHeldAcrossSlowCall(AnalyzeCheck):
    """No FileLock may be held across subprocess/fork or a simulation."""

    id = "A-LOCK-HELD"
    severity = Severity.ERROR
    description = (
        "code inside a FileLock 'with' block must not call subprocess/fork/"
        "multiprocessing or reach simulate()/simulate_faulty(); a lock held "
        "across slow work starves every process sharing the store"
    )

    def analyze(self, model: AnalysisModel) -> Iterator[AnalysisFinding]:
        for symbol in model.project.iter_functions():
            regions = _locked_regions(model, symbol)
            if not regions:
                continue
            roots: List[Tuple[str, ast.AST]] = []
            direct: List[Tuple[str, ast.AST]] = []
            for node in ast.walk(symbol.node):
                if not isinstance(node, ast.Call) or id(node) not in regions:
                    continue
                site = model.graph.site_for_node(symbol.qualname, node)
                if site is None:
                    continue
                if site.external is not None and _is_slow_external(site.external):
                    direct.append((site.external, node))
                for target in site.targets:
                    roots.append((target, node))
            for name, node in direct:
                yield self._finding(model, symbol, node, name, chain_tail=())
            # Transitive: anything called under the lock that reaches a slow
            # call or the simulation engines.
            parents = model.graph.reachable([t for t, _ in roots])
            for qual in sorted(parents):
                slow = self._slow_in(model, qual)
                if slow is None:
                    continue
                root = qual
                while True:
                    link: Optional[ChainLink] = parents.get(root)
                    if link is None:
                        break
                    root = link.parent
                entry_node = next((n for t, n in roots if t == root), None)
                if entry_node is None:  # pragma: no cover - defensive
                    continue
                chain = tuple(model.graph.chain(parents, qual))
                yield self._finding(model, symbol, entry_node, slow, chain_tail=chain)

    def _slow_in(self, model: AnalysisModel, qual: str) -> Optional[str]:
        if qual in _SLOW_INTERNAL:
            return qual
        for name, _ in model.graph.external_calls(qual):
            if _is_slow_external(name):
                return name
        return None

    def _finding(
        self,
        model: AnalysisModel,
        symbol: FunctionSymbol,
        node: ast.AST,
        slow_name: str,
        *,
        chain_tail: Tuple[str, ...],
    ) -> AnalysisFinding:
        chain = (f"{symbol.qualname} [{symbol.module}] holds the lock",) + chain_tail
        return self.analysis_finding(
            model,
            symbol.module,
            node,
            f"{symbol.qualname} calls {slow_name} while holding a FileLock; "
            "move slow work outside the locked region",
            key=f"A-LOCK-HELD:{symbol.qualname}:{slow_name}",
            chain=chain,
        )


def _is_slow_external(name: str) -> bool:
    return name in _SLOW_CALLS or any(name.startswith(p) for p in _SLOW_PREFIXES)
