"""Baseline files: grandfathered analyzer findings that may only shrink.

A baseline is a committed JSON file listing finding *keys* (stable
identities without line numbers, see
:class:`repro.analyze.findings.AnalysisFinding`).  ``repro-analyze check
--baseline tools/analyze_baseline.json`` then:

* suppresses findings whose key is baselined (they are known debt);
* **fails** on baselined keys that no longer fire (*stale* entries) — the
  debt was paid, so the entry must be deleted.  This is the ratchet that
  makes the baseline monotonically shrink: entries can be removed, never
  silently kept, and new findings are never absorbed without an explicit
  ``--write-baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple

from repro.analyze.findings import AnalysisFinding
from repro.lint.framework import Finding

__all__ = [
    "BASELINE_FORMAT",
    "BaselineError",
    "BaselineSplit",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
]

#: Format tag written into every baseline file.
BASELINE_FORMAT = "repro.analyze-baseline/1"


class BaselineError(ValueError):
    """Raised for unreadable or malformed baseline files."""


def load_baseline(path: Path) -> List[str]:
    """Read the sorted key list from a baseline file."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != BASELINE_FORMAT:
        raise BaselineError(
            f"baseline {path} has unexpected format "
            f"(want {BASELINE_FORMAT!r}, got {doc.get('format') if isinstance(doc, dict) else doc!r})"
        )
    keys = doc.get("keys")
    if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
        raise BaselineError(f"baseline {path} 'keys' must be a list of strings")
    return sorted(keys)


def save_baseline(path: Path, findings: Sequence[Finding]) -> List[str]:
    """Write a baseline covering *findings*; returns the keys written."""
    keys = sorted({f.key for f in findings if isinstance(f, AnalysisFinding) and f.key})
    doc = {"format": BASELINE_FORMAT, "keys": keys}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return keys


@dataclass(frozen=True)
class BaselineSplit:
    """Outcome of applying a baseline to a finding list."""

    fresh: Tuple[Finding, ...]  # not baselined: must be fixed or absorbed
    known: Tuple[Finding, ...]  # baselined and still firing: suppressed
    stale: Tuple[str, ...]  # baselined but no longer firing: delete these


def apply_baseline(findings: Sequence[Finding], keys: Sequence[str]) -> BaselineSplit:
    """Split *findings* against baselined *keys* (see module docstring)."""
    baselined = set(keys)
    fresh: List[Finding] = []
    known: List[Finding] = []
    fired = set()
    for finding in findings:
        key = finding.key if isinstance(finding, AnalysisFinding) else ""
        if key and key in baselined:
            fired.add(key)
            known.append(finding)
        else:
            fresh.append(finding)
    stale = tuple(sorted(baselined - fired))
    return BaselineSplit(fresh=tuple(fresh), known=tuple(known), stale=stale)
