"""Observability layer: deterministic metrics, sinks, exporters, reports.

The subsystem that turns every simulation into a self-describing run
report:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  keyed by ``(strategy, worker, phase)``, simulated time only;
* :mod:`repro.obs.sink` — the engines' hook contract
  (:class:`MetricsSink`) and the accumulating :class:`RecordingSink`;
* :mod:`repro.obs.export` — JSON-lines event streams plus CSV/JSON metric
  summaries, all exact round-trips;
* :mod:`repro.obs.report` — normalized-communication run reports (the
  ``repro-report`` CLI);
* :mod:`repro.obs.profile` — wall-clock stage profiling for the bench
  harness; the single module allowed to read the clock (``R-OBS-CLOCK``).
"""

from __future__ import annotations

from repro.obs.export import (
    events_from_jsonl,
    events_to_jsonl,
    load_summary,
    metrics_from_csv,
    metrics_from_json,
    metrics_to_csv,
    metrics_to_json,
    save_summary,
    summary_from_sink,
    summary_to_json,
)
from repro.obs.metrics import (
    ALL_PHASES,
    ALL_WORKERS,
    TASK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricKey,
    Metrics,
)
from repro.obs.profile import StageProfiler, wall_time
from repro.obs.report import build_report, render_report
from repro.obs.sink import MetricsSink, NullSink, RecordingSink

__all__ = [
    "ALL_PHASES",
    "ALL_WORKERS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricKey",
    "Metrics",
    "MetricsSink",
    "NullSink",
    "RecordingSink",
    "StageProfiler",
    "TASK_BUCKETS",
    "build_report",
    "events_from_jsonl",
    "events_to_jsonl",
    "load_summary",
    "metrics_from_csv",
    "metrics_from_json",
    "metrics_to_csv",
    "metrics_to_json",
    "render_report",
    "save_summary",
    "summary_from_sink",
    "summary_to_json",
    "wall_time",
]
