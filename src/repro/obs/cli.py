"""``repro-report`` — render observability run reports from the shell.

Examples::

    repro-report run DynamicOuter -n 50 -p 6 --seed 3
    repro-report run DynamicOuter SortedOuter -n 50 -p 6 --summary run.json \\
        --events run.jsonl
    repro-report render run.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.export import events_to_jsonl, load_summary, save_summary, summary_from_sink
from repro.obs.report import render_report
from repro.obs.sink import RecordingSink

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-report`` argument parser (exposed for the docs tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Run instrumented simulations and render observability reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate strategies with a recording sink and report")
    run.add_argument("strategies", nargs="+", help="strategy names (see repro.strategy_names())")
    run.add_argument("-n", type=int, default=40, help="blocks per dimension (default: 40)")
    run.add_argument("-p", type=int, default=8, help="number of workers (default: 8)")
    run.add_argument("--seed", type=int, default=0, help="RNG seed (default: 0)")
    run.add_argument("--summary", default=None, help="write the summary JSON document here")
    run.add_argument("--events", default=None, help="write the JSON-lines event stream here")
    run.add_argument("--quiet", action="store_true", help="suppress the terminal report")
    run.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="memoize the simulations in a result store at DIR; the report then"
        " shows cache hit rates (ignored with --events: event streams are not cached)",
    )

    render = sub.add_parser("render", help="render a report from a saved summary document")
    render.add_argument("summary", help="summary JSON written by 'repro-report run --summary'")
    return parser


def _run(args: argparse.Namespace) -> int:
    from repro.core.strategies.registry import make_strategy, strategy_names
    from repro.platform.platform import Platform
    from repro.platform.speeds import uniform_speeds
    from repro.simulator.engine import simulate

    unknown = [s for s in args.strategies if s not in strategy_names()]
    if unknown:
        raise SystemExit(
            f"unknown strategy name(s): {', '.join(unknown)}; "
            f"available: {', '.join(strategy_names())}"
        )

    sink = RecordingSink(events=args.events is not None)
    platform = Platform(uniform_speeds(args.p, 10, 100, rng=args.seed))
    store = None
    if args.cache is not None and args.events is None:
        from repro.store.cache import ResultStore

        store = ResultStore(args.cache, sink=sink)
    for i, name in enumerate(args.strategies):
        if store is not None:
            from repro.store.results import run_cached_simulation

            run_cached_simulation(
                store,
                strategy_name=name,
                n=args.n,
                platform=platform,
                seed=args.seed + 1 + i,
                sink=sink,
            )
            continue
        strategy = make_strategy(name, args.n)
        simulate(strategy, platform, rng=args.seed + 1 + i, sink=sink)

    if args.events is not None and sink.events is not None:
        with open(args.events, "w", encoding="utf-8") as fh:
            fh.write(events_to_jsonl(sink.events))
            fh.write("\n")
        print(f"wrote {args.events}")
    if args.summary is not None:
        print(f"wrote {save_summary(sink, args.summary)}")
    if not args.quiet:
        print(render_report(summary_from_sink(sink)))
        print(_engine_note(args.strategies, args.n))
    return 0


def _engine_note(strategies: List[str], n: int) -> str:
    """One line naming the batch-engine coverage of the reported strategies.

    Replicate sweeps over these strategies take the vectorized fast path
    unless :func:`repro.simulator.batch.fallback_reason` says otherwise —
    naming the reason here keeps scalar fallbacks visible from the CLI.
    """
    from repro.core.strategies.registry import make_strategy
    from repro.simulator.batch import fallback_reason

    parts = []
    for name in strategies:
        reason = fallback_reason(make_strategy(name, n))
        parts.append(name if reason is None else f"{name}: scalar ({reason})")
    scalars = [part for part in parts if "(" in part]
    if not scalars:
        return f"engine: vectorized batch kernels cover {', '.join(parts)}"
    return "engine: scalar fallback for " + "; ".join(scalars)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-report``; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    print(render_report(load_summary(args.summary)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
