"""Deterministic metrics primitives: counters, gauges, fixed-bucket histograms.

Every metric value is keyed by a ``(strategy, worker, phase)`` triple — the
three dimensions the paper's aggregates break down over (total vs per-worker
communication, phase-1 vs phase-2 block counts).  ``worker = -1`` and
``phase = 0`` are the documented "whole run" sentinels, so a single key type
covers run-level gauges (makespan), per-worker counters (blocks shipped) and
per-phase splits without separate container shapes.

The primitives are *simulated-time only*: nothing in this module reads a
clock — values arrive from the engines through
:class:`~repro.obs.sink.MetricsSink` hooks, already stamped with event time.
Wall-clock accounting lives exclusively in :mod:`repro.obs.profile` (a
boundary machine-enforced by the ``R-OBS-CLOCK`` lint rule).

All containers merge associatively in a *defined order* (``merge`` applies
the other container's entries in its own sorted-key order), which is what
lets the parallel replicate runner fold per-repetition snapshots into the
same bits the serial loop produces.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ALL_PHASES",
    "ALL_WORKERS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricKey",
    "Metrics",
    "TASK_BUCKETS",
]

#: A metric key: ``(strategy, worker, phase)``.
MetricKey = Tuple[str, int, int]

#: Sentinel worker id meaning "aggregated over all workers".
ALL_WORKERS = -1

#: Sentinel phase meaning "not phase-specific".
ALL_PHASES = 0

#: Default fixed bucket upper bounds for per-assignment task counts
#: (roughly powers of two; the overflow bucket catches anything larger).
TASK_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: Fixed bucket upper bounds (seconds) for request/cell latency histograms
#: (1 ms .. 30 s, roughly 2.5x steps — a cache hit lands in the first few
#: buckets, a simulated cell in the tail; the overflow bucket catches hangs).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def _check_key(key: MetricKey) -> MetricKey:
    if (
        not isinstance(key, tuple)
        or len(key) != 3
        or not isinstance(key[0], str)
        or isinstance(key[1], bool)
        or not isinstance(key[1], int)
        or isinstance(key[2], bool)
        or not isinstance(key[2], int)
    ):
        raise TypeError(f"metric key must be (strategy: str, worker: int, phase: int), got {key!r}")
    return key


def _key_to_list(key: MetricKey) -> List[Any]:
    return [key[0], key[1], key[2]]


def _key_from_list(raw: Sequence[Any]) -> MetricKey:
    if len(raw) != 3:
        raise ValueError(f"metric key must have 3 fields, got {raw!r}")
    return _check_key((str(raw[0]), int(raw[1]), int(raw[2])))


class Counter:
    """A monotonically increasing integer counter per key."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[MetricKey, int] = {}

    def inc(self, key: MetricKey, amount: int = 1) -> None:
        """Add *amount* (a non-negative integer) to the key's count."""
        if isinstance(amount, bool) or not isinstance(amount, int):
            raise TypeError(f"amount must be an integer, got {type(amount).__name__}")
        if amount < 0:
            raise ValueError(f"counters only increase; got amount {amount}")
        self._values[_check_key(key)] = self._values.get(key, 0) + amount

    def get(self, key: MetricKey) -> int:
        """The key's count (0 when never incremented)."""
        return self._values.get(key, 0)

    def total(self) -> int:
        """Sum over every key."""
        return sum(self._values.values())

    def items(self) -> List[Tuple[MetricKey, int]]:
        """All ``(key, count)`` pairs in sorted key order."""
        return sorted(self._values.items())

    def merge(self, other: "Counter") -> None:
        """Fold *other* into this counter (per-key addition)."""
        for key, value in other.items():
            self._values[key] = self._values.get(key, 0) + value

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counter):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({len(self._values)} keys, total={self.total()})"

    def to_list(self) -> List[Dict[str, Any]]:
        """JSON-ready representation, sorted by key."""
        return [{"key": _key_to_list(k), "value": v} for k, v in self.items()]

    @classmethod
    def from_list(cls, raw: Sequence[Mapping[str, Any]]) -> "Counter":
        counter = cls()
        for entry in raw:
            counter.inc(_key_from_list(entry["key"]), int(entry["value"]))
        return counter


class Gauge:
    """A last-value-wins float gauge per key."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[MetricKey, float] = {}

    def set(self, key: MetricKey, value: float) -> None:
        """Record the key's current value (overwrites any previous one)."""
        self._values[_check_key(key)] = float(value)

    def get(self, key: MetricKey, default: Optional[float] = None) -> Optional[float]:
        """The key's last value, or *default* when never set."""
        return self._values.get(key, default)

    def items(self) -> List[Tuple[MetricKey, float]]:
        """All ``(key, value)`` pairs in sorted key order."""
        return sorted(self._values.items())

    def merge(self, other: "Gauge") -> None:
        """Fold *other* into this gauge (other's values win per key)."""
        for key, value in other.items():
            self._values[key] = value

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gauge):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({len(self._values)} keys)"

    def to_list(self) -> List[Dict[str, Any]]:
        """JSON-ready representation, sorted by key."""
        return [{"key": _key_to_list(k), "value": v} for k, v in self.items()]

    @classmethod
    def from_list(cls, raw: Sequence[Mapping[str, Any]]) -> "Gauge":
        gauge = cls()
        for entry in raw:
            gauge.set(_key_from_list(entry["key"]), float(entry["value"]))
        return gauge


class _HistogramCell:
    """Bucket counts, observation count and value sum of one key."""

    __slots__ = ("counts", "count", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.counts: List[int] = [0] * (n_buckets + 1)  # + overflow bucket
        self.count = 0
        self.sum = 0.0


class Histogram:
    """A fixed-bucket histogram per key.

    ``buckets`` are the upper bounds (inclusive) of each bucket, strictly
    increasing; one extra overflow bucket catches larger values.  Buckets
    are fixed at construction so two histograms built from the same spec
    always merge cell-by-cell.
    """

    __slots__ = ("buckets", "_cells")

    def __init__(self, buckets: Sequence[float] = TASK_BUCKETS) -> None:
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise ValueError("histogram needs at least one bucket upper bound")
        if any(b >= c for b, c in zip(uppers, uppers[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {uppers}")
        self.buckets: Tuple[float, ...] = uppers
        self._cells: Dict[MetricKey, _HistogramCell] = {}

    def observe(self, key: MetricKey, value: float) -> None:
        """Record one observation of *value* under *key*."""
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[_check_key(key)] = _HistogramCell(len(self.buckets))
        value = float(value)
        index = len(self.buckets)  # overflow unless a bound catches it
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                index = i
                break
        cell.counts[index] += 1
        cell.count += 1
        cell.sum += value

    def cell(self, key: MetricKey) -> Tuple[List[int], int, float]:
        """``(bucket_counts, count, sum)`` of one key (zeros when unseen)."""
        cell = self._cells.get(key)
        if cell is None:
            return [0] * (len(self.buckets) + 1), 0, 0.0
        return list(cell.counts), cell.count, cell.sum

    def items(self) -> List[Tuple[MetricKey, Tuple[List[int], int, float]]]:
        """All ``(key, (bucket_counts, count, sum))`` in sorted key order."""
        return [(k, (list(c.counts), c.count, c.sum)) for k, c in sorted(self._cells.items())]

    def quantile(self, key: MetricKey, q: float) -> Optional[float]:
        """Upper-bound estimate of the *q*-quantile of one key's observations.

        Returns the smallest bucket upper bound whose cumulative count
        reaches ``ceil(q * count)`` — i.e. at least a *q* fraction of the
        observations are ≤ the returned value.  Observations that landed in
        the overflow bucket report the last finite bound (a lower bound on
        the true quantile; pick wider buckets if the tail matters).
        ``None`` when the key has no observations.
        """
        q = float(q)
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must lie in [0, 1], got {q}")
        cell = self._cells.get(key)
        if cell is None or cell.count == 0:
            return None
        # ceil(count * q), tolerating float fuzz like 0.3 * 10 = 3.0000...4
        target = max(1, math.ceil(cell.count * q - 1e-9))
        cumulative = 0
        for i, upper in enumerate(self.buckets):
            cumulative += cell.counts[i]
            if cumulative >= target:
                return upper
        return self.buckets[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (same bucket spec required)."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for key, (counts, count, total) in other.items():
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _HistogramCell(len(self.buckets))
            for i, c in enumerate(counts):
                cell.counts[i] += c
            cell.count += count
            cell.sum += total

    def __len__(self) -> int:
        return len(self._cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.buckets == other.buckets and self.items() == other.items()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({len(self.buckets)} buckets, {len(self._cells)} keys)"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation, cells sorted by key."""
        return {
            "buckets": list(self.buckets),
            "cells": [
                {"key": _key_to_list(k), "counts": counts, "count": count, "sum": total}
                for k, (counts, count, total) in self.items()
            ],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Histogram":
        hist = cls(tuple(float(b) for b in raw["buckets"]))
        for entry in raw["cells"]:
            key = _key_from_list(entry["key"])
            cell = _HistogramCell(len(hist.buckets))
            counts = [int(c) for c in entry["counts"]]
            if len(counts) != len(hist.buckets) + 1:
                raise ValueError(
                    f"cell has {len(counts)} buckets, expected {len(hist.buckets) + 1}"
                )
            cell.counts = counts
            cell.count = int(entry["count"])
            cell.sum = float(entry["sum"])
            hist._cells[key] = cell
        return hist


class Metrics:
    """A named collection of counters, gauges and histograms.

    The single container the sinks accumulate into and the exporters
    serialize; metric families are created lazily by name via
    :meth:`counter`, :meth:`gauge` and :meth:`histogram`.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- family accessors (get-or-create) ----------------------------------

    def counter(self, name: str) -> Counter:
        """The counter family *name*, created empty on first use."""
        family = self._counters.get(name)
        if family is None:
            family = self._counters[name] = Counter()
        return family

    def gauge(self, name: str) -> Gauge:
        """The gauge family *name*, created empty on first use."""
        family = self._gauges.get(name)
        if family is None:
            family = self._gauges[name] = Gauge()
        return family

    def histogram(self, name: str, buckets: Sequence[float] = TASK_BUCKETS) -> Histogram:
        """The histogram family *name*; *buckets* applies on first creation."""
        family = self._histograms.get(name)
        if family is None:
            family = self._histograms[name] = Histogram(buckets)
        return family

    # -- introspection -----------------------------------------------------

    def counter_names(self) -> List[str]:
        return sorted(self._counters)

    def gauge_names(self) -> List[str]:
        return sorted(self._gauges)

    def histogram_names(self) -> List[str]:
        return sorted(self._histograms)

    def __iter__(self) -> Iterator[str]:
        return iter(self.counter_names() + self.gauge_names() + self.histogram_names())

    def is_empty(self) -> bool:
        """True when no family holds any key."""
        return (
            all(len(c) == 0 for c in self._counters.values())
            and all(len(g) == 0 for g in self._gauges.values())
            and all(len(h) == 0 for h in self._histograms.values())
        )

    # -- merge -------------------------------------------------------------

    def merge(self, other: "Metrics") -> None:
        """Fold *other*'s families into this collection, name by name.

        Families are merged in sorted name order and, within a family, in
        sorted key order — a fixed fold order, so merging the same sequence
        of snapshots always produces bit-identical float sums.
        """
        for name in sorted(other._counters):
            self.counter(name).merge(other._counters[name])
        for name in sorted(other._gauges):
            self.gauge(name).merge(other._gauges[name])
        for name in sorted(other._histograms):
            self.histogram(name, other._histograms[name].buckets).merge(
                other._histograms[name]
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Metrics):
            return NotImplemented
        return (
            {n: c for n, c in self._counters.items() if len(c)}
            == {n: c for n, c in other._counters.items() if len(c)}
            and {n: g for n, g in self._gauges.items() if len(g)}
            == {n: g for n, g in other._gauges.items() if len(g)}
            and {n: h for n, h in self._histograms.items() if len(h)}
            == {n: h for n, h in other._histograms.items() if len(h)}
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Metrics(counters={self.counter_names()}, gauges={self.gauge_names()}, "
            f"histograms={self.histogram_names()})"
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested representation (sorted names and keys)."""
        return {
            "counters": {n: self._counters[n].to_list() for n in self.counter_names()},
            "gauges": {n: self._gauges[n].to_list() for n in self.gauge_names()},
            "histograms": {n: self._histograms[n].to_dict() for n in self.histogram_names()},
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Metrics":
        metrics = cls()
        for name, entries in raw.get("counters", {}).items():
            metrics._counters[name] = Counter.from_list(entries)
        for name, entries in raw.get("gauges", {}).items():
            metrics._gauges[name] = Gauge.from_list(entries)
        for name, entry in raw.get("histograms", {}).items():
            metrics._histograms[name] = Histogram.from_dict(entry)
        return metrics
