"""Metric sinks: the engines' observability hooks.

The simulation engines (:func:`repro.simulator.simulate`,
:func:`repro.faults.simulate_faulty`) and the replicate runner accept an
optional :class:`MetricsSink`.  The default is *no sink at all* — the hot
loop performs a single ``is not None`` test per event and nothing else, so
instrumentation costs nothing when disabled.  :class:`NullSink` is the
explicit no-op for callers that want to pass "a sink that drops everything";
:class:`RecordingSink` accumulates :class:`~repro.obs.metrics.Metrics` and,
optionally, a JSON-ready event stream.

Hooks receive *simulated* time only; the sink never reads a clock.  All
hook arguments are plain scalars so sinks stay decoupled from the strategy
and platform classes (and snapshots stay picklable for the parallel
replicate runner).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.metrics import ALL_PHASES, ALL_WORKERS, Metrics, TASK_BUCKETS

__all__ = ["MetricsSink", "NullSink", "RecordingSink", "STORE_EVENTS"]

#: Events the result-store layer may forward through ``on_store_event``:
#: cache traffic (``hit``/``miss``/``put``/``corrupt`` with the entry kind),
#: claim-file lifecycle (``claim``/``steal``/``release`` with kind
#: ``"claim"``) and journal activity (``journal_append``/``journal_corrupt``
#: with kind ``"journal"``).
STORE_EVENTS = ("hit", "miss", "put", "corrupt", "claim", "steal", "release", "journal_append", "journal_corrupt")


class MetricsSink:
    """Base sink: every hook is a no-op.

    Subclass and override the hooks you care about.  The engines call:

    * :meth:`on_run_start` once, after the strategy is reset;
    * :meth:`on_assignment` once per master/worker interaction (including
      zero-task index shipments, lost allocations — with ``duration`` 0 —
      and tail replicas);
    * :meth:`on_fault` once per fault/recovery event of a fault-aware run
      (kinds follow :data:`repro.simulator.trace.FAULT_KINDS`);
    * :meth:`on_run_end` once, just before the result is returned.

    :meth:`snapshot`/:meth:`absorb_snapshot` are the replicate-runner
    contract: a repetition's sink is snapshotted to a picklable dict in the
    worker process and absorbed by the caller's sink in repetition order.
    """

    def on_run_start(
        self,
        strategy: str,
        kernel: str,
        n: int,
        p: int,
        relative_speeds: Sequence[float],
    ) -> None:
        """A run of *strategy* (kernel, size *n*) starts on *p* workers."""

    def on_assignment(
        self, now: float, worker: int, blocks: int, tasks: int, duration: float, phase: int
    ) -> None:
        """The master answered one request at simulated time *now*."""

    def on_fault(self, now: float, kind: str, worker: int, tasks: int, blocks: int) -> None:
        """A fault/recovery event fired at simulated time *now*."""

    def on_run_end(
        self, makespan: float, total_blocks: int, total_tasks: int, n_assignments: int
    ) -> None:
        """The run finished; totals are the result's headline numbers."""

    def on_store_event(self, kind: str, event: str) -> None:
        """The result-store layer looked up/wrote an entry of *kind*.

        *event* is one of :data:`STORE_EVENTS`: cache traffic
        (``hit``/``miss``/``put``/``corrupt``, see
        :class:`repro.store.cache.ResultStore`), claim lifecycle
        (``claim``/``steal``/``release``, see
        :class:`repro.store.claims.ClaimRegistry`) or journal activity
        (``journal_append``/``journal_corrupt``, see
        :class:`repro.store.journal.Journal`).  Unlike the engine hooks
        this fires outside any run, so implementations must not assume a
        current strategy.
        """

    def snapshot(self) -> Dict[str, Any]:
        """Picklable representation of everything accumulated so far."""
        return {}

    def absorb_snapshot(self, raw: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` produced by another sink into this one."""


class NullSink(MetricsSink):
    """The explicit do-nothing sink (identical to passing no sink)."""


class RecordingSink(MetricsSink):
    """Accumulates engine events into :class:`~repro.obs.metrics.Metrics`.

    Metric families recorded, all keyed ``(strategy, worker, phase)`` with
    the :data:`~repro.obs.metrics.ALL_WORKERS` / :data:`~repro.obs.metrics.ALL_PHASES`
    sentinels where a dimension does not apply:

    ==========================  =======================================================
    ``runs`` (counter)          completed runs per strategy
    ``assignments`` (counter)   master/worker interactions, per worker and phase
    ``blocks_shipped`` (counter)  communication volume in blocks, per worker and phase
    ``tasks_allocated`` (counter) allocated tasks, per worker and phase
    ``zero_task_assignments``   index-only shipments (no work allocated)
    ``fault_<kind>`` (counter)  fault events per kind (crash/restart/loss/...)
    ``store_<event>`` (counter) result-store traffic per entry kind, keyed
                                ``(kind, ALL_WORKERS, ALL_PHASES)`` for each
                                of :data:`STORE_EVENTS` (cache hits/misses/
                                puts/corruption, claim/steal/release,
                                journal appends/quarantines)
    ``assignment_tasks`` (hist) per-assignment task counts, fixed power-of-two buckets
    ``makespan`` (gauge)        last run's makespan
    ``phase2_start_time`` (gauge) simulated time of the first phase-2 assignment
    ``idle_gap`` (gauge)        per-worker ``makespan - busy_time`` of the last run
    ==========================  =======================================================

    With ``events=True`` the sink additionally buffers one JSON-ready dict
    per engine event (run start/end, every assignment, phase transitions,
    faults) for the JSON-lines exporter.  Event buffers are per-sink and are
    *not* transferred by :meth:`absorb_snapshot` — replicate sweeps merge
    metrics, not event streams.
    """

    def __init__(self, *, events: bool = False) -> None:
        self.metrics = Metrics()
        self.runs: List[Dict[str, Any]] = []
        self.events: Optional[List[Dict[str, Any]]] = [] if events else None
        self._strategy: Optional[str] = None
        self._busy: List[float] = []
        self._phase2_at: Optional[float] = None
        self._event_index = 0

    # -- internal helpers --------------------------------------------------

    def _require_run(self) -> str:
        if self._strategy is None:
            raise RuntimeError("sink received an event before on_run_start")
        return self._strategy

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.events is not None:
            event["i"] = self._event_index
            self.events.append(event)
        self._event_index += 1

    # -- MetricsSink hooks -------------------------------------------------

    def on_run_start(
        self,
        strategy: str,
        kernel: str,
        n: int,
        p: int,
        relative_speeds: Sequence[float],
    ) -> None:
        self._strategy = strategy
        self._busy = [0.0] * p
        self._phase2_at = None
        self.runs.append(
            {
                "strategy": strategy,
                "kernel": kernel,
                "n": int(n),
                "p": int(p),
                "relative_speeds": [float(s) for s in relative_speeds],
            }
        )
        self._emit(
            {"event": "run_start", "strategy": strategy, "kernel": kernel, "n": int(n), "p": int(p)}
        )

    def on_assignment(
        self, now: float, worker: int, blocks: int, tasks: int, duration: float, phase: int
    ) -> None:
        strategy = self._require_run()
        key = (strategy, worker, phase)
        metrics = self.metrics
        metrics.counter("assignments").inc(key)
        if blocks:
            metrics.counter("blocks_shipped").inc(key, blocks)
        if tasks:
            metrics.counter("tasks_allocated").inc(key, tasks)
        else:
            metrics.counter("zero_task_assignments").inc(key)
        metrics.histogram("assignment_tasks", TASK_BUCKETS).observe(key, tasks)
        self._busy[worker] += duration
        if phase == 2 and self._phase2_at is None:
            self._phase2_at = now
            metrics.gauge("phase2_start_time").set((strategy, ALL_WORKERS, 2), now)
            self._emit({"event": "phase_transition", "t": now, "worker": worker, "phase": 2})
        self._emit(
            {
                "event": "assignment",
                "t": now,
                "worker": worker,
                "blocks": blocks,
                "tasks": tasks,
                "duration": duration,
                "phase": phase,
            }
        )

    def on_fault(self, now: float, kind: str, worker: int, tasks: int, blocks: int) -> None:
        strategy = self._require_run()
        self.metrics.counter(f"fault_{kind}").inc((strategy, worker, ALL_PHASES))
        self._emit(
            {
                "event": "fault",
                "t": now,
                "kind": kind,
                "worker": worker,
                "tasks": tasks,
                "blocks": blocks,
            }
        )

    def on_store_event(self, kind: str, event: str) -> None:
        """Count store traffic as ``store_<event>`` keyed by entry kind."""
        if event not in STORE_EVENTS:
            raise ValueError(f"unknown store event {event!r}")
        self.metrics.counter(f"store_{event}").inc((str(kind), ALL_WORKERS, ALL_PHASES))

    def on_run_end(
        self, makespan: float, total_blocks: int, total_tasks: int, n_assignments: int
    ) -> None:
        strategy = self._require_run()
        metrics = self.metrics
        metrics.counter("runs").inc((strategy, ALL_WORKERS, ALL_PHASES))
        metrics.gauge("makespan").set((strategy, ALL_WORKERS, ALL_PHASES), makespan)
        for worker, busy in enumerate(self._busy):
            metrics.gauge("idle_gap").set(
                (strategy, worker, ALL_PHASES), max(0.0, makespan - busy)
            )
        run = self.runs[-1]
        run["makespan"] = makespan
        run["total_blocks"] = int(total_blocks)
        run["total_tasks"] = int(total_tasks)
        run["n_assignments"] = int(n_assignments)
        self._emit(
            {
                "event": "run_end",
                "t": makespan,
                "blocks": int(total_blocks),
                "tasks": int(total_tasks),
                "assignments": int(n_assignments),
            }
        )
        self._strategy = None

    # -- replicate-runner contract -----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Runs metadata plus metrics, as a picklable/JSON-ready dict."""
        return {"runs": [dict(r) for r in self.runs], "metrics": self.metrics.to_dict()}

    def absorb_snapshot(self, raw: Mapping[str, Any]) -> None:
        """Merge another sink's snapshot (metrics add, run metas append)."""
        self.runs.extend(dict(r) for r in raw.get("runs", []))
        self.metrics.merge(Metrics.from_dict(raw.get("metrics", {})))
