"""Run reports: turning recorded metrics into the paper's headline numbers.

A *summary document* (what :func:`repro.obs.export.summary_from_sink`
produces and ``repro-report`` reads) carries per-run metadata plus the
merged :class:`~repro.obs.metrics.Metrics`.  This module derives the
quantities the paper argues with — communication volume normalized by the
analytical lower bound, per-phase block/task splits, per-worker load and
idle gaps, fault counts — and renders them as a plain-text report.

:func:`build_report` returns the structured (JSON-ready) form;
:func:`render_report` formats it for terminals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.core.analysis.lower_bounds import lower_bound
from repro.obs.metrics import ALL_PHASES, ALL_WORKERS, Counter, Metrics

__all__ = ["build_report", "render_report"]


def _phase_split(counter: Counter, strategy: str) -> Dict[int, int]:
    """Per-phase totals of one strategy, summed over real workers."""
    split: Dict[int, int] = {}
    for (name, worker, phase), value in counter.items():
        if name == strategy and worker >= 0:
            split[phase] = split.get(phase, 0) + value
    return split


def _worker_totals(counter: Counter, strategy: str) -> Dict[int, int]:
    """Per-worker totals of one strategy, summed over phases."""
    totals: Dict[int, int] = {}
    for (name, worker, phase), value in counter.items():
        if name == strategy and worker >= 0:
            totals[worker] = totals.get(worker, 0) + value
    return totals


def _strategy_names(metrics: Metrics, runs: List[Mapping[str, Any]]) -> List[str]:
    names = {str(r["strategy"]) for r in runs if "strategy" in r}
    for family in metrics.counter_names():
        if family.startswith("store_"):
            continue  # the strategy slot carries the cache entry kind there
        for key, _ in metrics.counter(family).items():
            names.add(key[0])
    return sorted(names)


def _run_row(run: Mapping[str, Any]) -> Dict[str, Any]:
    row = dict(run)
    kernel = row.get("kernel")
    speeds = row.get("relative_speeds")
    n = row.get("n")
    blocks = row.get("total_blocks")
    if kernel is not None and speeds is not None and n is not None and blocks is not None:
        bound = lower_bound(str(kernel), speeds, int(n))
        row["lower_bound"] = bound
        row["normalized_comm"] = float(blocks) / bound
    return row


def _strategy_section(metrics: Metrics, strategy: str) -> Dict[str, Any]:
    run_key = (strategy, ALL_WORKERS, ALL_PHASES)
    blocks = metrics.counter("blocks_shipped")
    tasks = metrics.counter("tasks_allocated")
    assignments = metrics.counter("assignments")
    idle = metrics.gauge("idle_gap")

    worker_blocks = _worker_totals(blocks, strategy)
    worker_tasks = _worker_totals(tasks, strategy)
    worker_assignments = _worker_totals(assignments, strategy)
    workers = sorted(set(worker_blocks) | set(worker_tasks) | set(worker_assignments))

    faults: Dict[str, int] = {}
    for family in metrics.counter_names():
        if family.startswith("fault_"):
            total = sum(
                value
                for (name, _w, _ph), value in metrics.counter(family).items()
                if name == strategy
            )
            if total:
                faults[family[len("fault_"):]] = total

    section: Dict[str, Any] = {
        "strategy": strategy,
        "runs": metrics.counter("runs").get(run_key),
        "total_blocks": sum(worker_blocks.values()),
        "total_tasks": sum(worker_tasks.values()),
        "assignments": sum(worker_assignments.values()),
        "zero_task_assignments": sum(
            _worker_totals(metrics.counter("zero_task_assignments"), strategy).values()
        ),
        "phase_blocks": _phase_split(blocks, strategy),
        "phase_tasks": _phase_split(tasks, strategy),
        "faults": faults,
        "workers": [
            {
                "worker": w,
                "blocks": worker_blocks.get(w, 0),
                "tasks": worker_tasks.get(w, 0),
                "assignments": worker_assignments.get(w, 0),
                "idle_gap": idle.get((strategy, w, ALL_PHASES)),
            }
            for w in workers
        ],
    }
    makespan = metrics.gauge("makespan").get(run_key)
    if makespan is not None:
        section["last_makespan"] = makespan
    phase2 = metrics.gauge("phase2_start_time").get((strategy, ALL_WORKERS, 2))
    if phase2 is not None:
        section["phase2_start_time"] = phase2
    return section


#: The ``store_*`` counter families a RecordingSink fills from cache events.
_STORE_EVENTS = ("hit", "miss", "put", "corrupt")


def _store_section(metrics: Metrics) -> List[Dict[str, Any]]:
    """Per-entry-kind cache statistics from the ``store_*`` counter families.

    The result cache (:mod:`repro.store`) reports every hit/miss/put/corrupt
    event through the sink; the counter key's strategy slot carries the
    entry *kind* (``"replicate-cell"``, ``"simulation"``, …).  Returns one
    row per kind, with a ``hit_rate`` where at least one lookup happened.
    """
    kinds: Dict[str, Dict[str, int]] = {}
    for event in _STORE_EVENTS:
        family = f"store_{event}"
        if family not in metrics.counter_names():
            continue
        for (kind, _w, _ph), value in metrics.counter(family).items():
            kinds.setdefault(str(kind), {})[event] = (
                kinds.get(str(kind), {}).get(event, 0) + value
            )
    rows: List[Dict[str, Any]] = []
    for kind in sorted(kinds):
        row: Dict[str, Any] = {"kind": kind}
        for event in _STORE_EVENTS:
            row[event] = kinds[kind].get(event, 0)
        lookups = row["hit"] + row["miss"]
        if lookups:
            row["hit_rate"] = row["hit"] / lookups
        rows.append(row)
    return rows


def build_report(summary: Mapping[str, Any]) -> Dict[str, Any]:
    """The structured report derived from a summary document.

    Returns a JSON-ready dict with a ``runs`` list (each run's metadata
    plus ``lower_bound`` and ``normalized_comm`` when computable), a
    ``strategies`` list of per-strategy aggregate sections, and a ``store``
    list of per-kind result-cache statistics (empty when no cache was used).
    """
    metrics = Metrics.from_dict(summary.get("metrics", {}))
    runs = [dict(r) for r in summary.get("runs", [])]
    return {
        "runs": [_run_row(r) for r in runs],
        "strategies": [
            _strategy_section(metrics, name) for name in _strategy_names(metrics, runs)
        ],
        "store": _store_section(metrics),
    }


def _fmt(value: Optional[float], spec: str = ".4g") -> str:
    return "-" if value is None else format(value, spec)


def render_report(summary: Mapping[str, Any]) -> str:
    """Plain-text rendering of :func:`build_report` for terminals."""
    report = build_report(summary)
    lines: List[str] = ["repro.obs run report", "===================="]

    runs = report["runs"]
    if runs:
        lines.append("")
        lines.append(f"runs recorded: {len(runs)}")
        for i, run in enumerate(runs, start=1):
            head = (
                f"  [{i}] {run.get('strategy', '?')}  kernel={run.get('kernel', '?')}"
                f"  n={run.get('n', '?')}  p={run.get('p', '?')}"
            )
            lines.append(head)
            if "normalized_comm" in run:
                lines.append(
                    f"      blocks={run['total_blocks']}  "
                    f"lower bound={_fmt(run['lower_bound'])}  "
                    f"normalized comm={_fmt(run['normalized_comm'], '.4f')}  "
                    f"makespan={_fmt(run.get('makespan'))}"
                )

    for section in report["strategies"]:
        lines.append("")
        lines.append(f"strategy {section['strategy']}")
        lines.append("-" * (9 + len(section["strategy"])))
        lines.append(
            f"  runs={section['runs']}  assignments={section['assignments']}"
            f"  zero-task={section['zero_task_assignments']}"
        )
        lines.append(
            f"  blocks shipped={section['total_blocks']}  tasks allocated={section['total_tasks']}"
        )
        for phase in sorted(section["phase_blocks"]):
            lines.append(
                f"  phase {phase}: blocks={section['phase_blocks'][phase]}"
                f"  tasks={section['phase_tasks'].get(phase, 0)}"
            )
        if "phase2_start_time" in section:
            lines.append(f"  phase-2 switch at t={_fmt(section['phase2_start_time'])}")
        if section["faults"]:
            pairs = "  ".join(f"{kind}={count}" for kind, count in sorted(section["faults"].items()))
            lines.append(f"  faults: {pairs}")
        if section["workers"]:
            lines.append("  worker   blocks    tasks  assignments  idle_gap")
            for row in section["workers"]:
                lines.append(
                    f"  {row['worker']:>6d} {row['blocks']:>8d} {row['tasks']:>8d}"
                    f" {row['assignments']:>12d}  {_fmt(row['idle_gap'])}"
                )

    if report["store"]:
        lines.append("")
        lines.append("result cache")
        lines.append("------------")
        for row in report["store"]:
            rate = row.get("hit_rate")
            rate_text = "-" if rate is None else f"{100.0 * rate:.0f}%"
            lines.append(
                f"  {row['kind']}: hits={row['hit']}  misses={row['miss']}"
                f"  puts={row['put']}  corrupt={row['corrupt']}  hit rate={rate_text}"
            )
    lines.append("")
    return "\n".join(lines)
