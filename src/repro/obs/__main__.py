"""``python -m repro.obs`` — alias for the ``repro-report`` CLI."""

from __future__ import annotations

import sys

from repro.obs.cli import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
