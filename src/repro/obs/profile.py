"""Wall-clock profiling hooks — the one module allowed to read the clock.

Everything else in :mod:`repro.obs` (and the experiment drivers that feed
it) works in *simulated* time; the ``R-OBS-CLOCK`` lint rule bans direct
``time.time``/``perf_counter`` calls across ``repro.obs`` and
``repro.experiments`` so wall-clock reads cannot leak into metrics.  Code
that legitimately measures host time — the bench harness, CLI progress
lines — imports :func:`wall_time` / :class:`StageProfiler` from here
instead.

:class:`StageProfiler` backs ``repro-bench --profile``: workloads wrap
their stages in :meth:`StageProfiler.stage` blocks and the harness records
the per-stage seconds into the BENCH json.  A disabled profiler
(``StageProfiler(enabled=False)``) skips the clock reads entirely, so the
hooks cost one attribute check when profiling is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

__all__ = ["StageProfiler", "wall_time"]


def wall_time() -> float:
    """A monotonic wall-clock reading in seconds (arbitrary epoch)."""
    return time.perf_counter()


class StageProfiler:
    """Accumulates wall-time per named stage, in first-seen order.

    Re-entering a stage name adds to its accumulated seconds, so per-rep
    loops profile naturally::

        prof = StageProfiler()
        for seed in range(reps):
            with prof.stage("simulate"):
                run(seed)
        prof.to_dict()  # {"simulate": 1.234}
    """

    __slots__ = ("enabled", "_seconds", "_order")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._seconds: Dict[str, float] = {}
        self._order: List[str] = []

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = wall_time()
        try:
            yield
        finally:
            self.add(name, wall_time() - start)

    def add(self, name: str, seconds: float) -> None:
        """Credit *seconds* to *name* (creates the stage on first use)."""
        seconds = float(seconds)
        if seconds < 0.0:
            raise ValueError(f"stage seconds must be non-negative, got {seconds}")
        if name not in self._seconds:
            self._seconds[name] = 0.0
            self._order.append(name)
        self._seconds[name] += seconds

    def stages(self) -> List[Tuple[str, float]]:
        """``(name, seconds)`` pairs in first-seen order."""
        return [(name, self._seconds[name]) for name in self._order]

    def total(self) -> float:
        """Sum of all stage seconds."""
        return sum(self._seconds.values())

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready ``{stage: seconds}`` in first-seen order."""
        return {name: self._seconds[name] for name in self._order}

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StageProfiler(enabled={self.enabled}, stages={self._order})"
