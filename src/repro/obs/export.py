"""Exporters: JSON-lines event streams and CSV/JSON metric summaries.

Three self-describing formats, all deterministic (sorted keys, fixed row
order) so exports fingerprint cleanly and round-trip exactly:

* **events JSONL** — one JSON object per engine event, in emission order;
  the format streaming consumers tail while a sweep runs;
* **metrics JSON** — a versioned document wrapping
  :meth:`repro.obs.metrics.Metrics.to_dict`;
* **metrics CSV** — one row per metric cell field, for spreadsheet-style
  post-processing without a JSON parser.

A :class:`~repro.obs.sink.RecordingSink` additionally serializes to a
*summary* document (run metadata plus metrics) — the input of
:func:`repro.obs.report.render_report` and the ``repro-report`` CLI.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.obs.metrics import MetricKey, Metrics
from repro.obs.sink import RecordingSink

__all__ = [
    "FORMAT",
    "events_from_jsonl",
    "events_to_jsonl",
    "load_summary",
    "metrics_from_csv",
    "metrics_from_json",
    "metrics_to_csv",
    "metrics_to_json",
    "save_summary",
    "summary_from_sink",
    "summary_to_json",
]

#: Version tag embedded in every JSON document this module writes.
FORMAT = "repro.obs/1"

_CSV_HEADER = ("metric", "kind", "strategy", "worker", "phase", "field", "value")


# ---------------------------------------------------------------------------
# JSON-lines event streams
# ---------------------------------------------------------------------------


def events_to_jsonl(events: Sequence[Mapping[str, Any]]) -> str:
    """Serialize an event buffer to JSON-lines (one object per line)."""
    return "\n".join(json.dumps(dict(e), sort_keys=True) for e in events)


def events_from_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines event stream back into a list of dicts."""
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        parsed = json.loads(line)
        if not isinstance(parsed, dict):
            raise ValueError(f"line {lineno}: expected a JSON object, got {type(parsed).__name__}")
        events.append(parsed)
    return events


# ---------------------------------------------------------------------------
# Metrics JSON
# ---------------------------------------------------------------------------


def metrics_to_json(metrics: Metrics, *, indent: int = 2) -> str:
    """Serialize a :class:`Metrics` collection to a versioned JSON document."""
    payload = {"format": FORMAT, "metrics": metrics.to_dict()}
    return json.dumps(payload, indent=indent, sort_keys=True)


def metrics_from_json(text: str) -> Metrics:
    """Rebuild :class:`Metrics` from :func:`metrics_to_json` output."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT:
        raise ValueError(f"not a {FORMAT} document (format={payload.get('format')!r})")
    return Metrics.from_dict(payload["metrics"])


# ---------------------------------------------------------------------------
# Metrics CSV
# ---------------------------------------------------------------------------


def _key_fields(key: MetricKey) -> Tuple[str, int, int]:
    return key[0], key[1], key[2]


def metrics_to_csv(metrics: Metrics) -> str:
    """Serialize metrics to CSV rows: ``metric,kind,strategy,worker,phase,field,value``.

    Counters and gauges emit one ``value`` row per key; histograms emit one
    ``le_<upper>``/``le_inf`` row per bucket plus ``count`` and ``sum``
    rows.  Row order is fixed (family name, then key), so equal metrics
    produce byte-equal CSV.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(_CSV_HEADER)
    for name in metrics.counter_names():
        for key, value in metrics.counter(name).items():
            writer.writerow((name, "counter", *_key_fields(key), "value", value))
    for name in metrics.gauge_names():
        for key, value in metrics.gauge(name).items():
            writer.writerow((name, "gauge", *_key_fields(key), "value", repr(value)))
    for name in metrics.histogram_names():
        hist = metrics.histogram(name)
        bucket_fields = [f"le_{upper:g}" for upper in hist.buckets] + ["le_inf"]
        for key, (counts, count, total) in hist.items():
            for field, bucket_count in zip(bucket_fields, counts):
                writer.writerow((name, "histogram", *_key_fields(key), field, bucket_count))
            writer.writerow((name, "histogram", *_key_fields(key), "count", count))
            writer.writerow((name, "histogram", *_key_fields(key), "sum", repr(total)))
    return out.getvalue()


def metrics_from_csv(text: str) -> Metrics:
    """Rebuild :class:`Metrics` from :func:`metrics_to_csv` output.

    The reconstruction is exact: counters/gauges restore their values and
    histograms restore bucket bounds (parsed from the ``le_*`` field
    names), per-bucket counts, counts and sums.
    """
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or tuple(header) != _CSV_HEADER:
        raise ValueError(f"not a metrics CSV (header={header!r})")
    metrics = Metrics()
    hist_rows: Dict[str, Dict[MetricKey, Dict[str, str]]] = {}
    for row in reader:
        if not row:
            continue
        if len(row) != len(_CSV_HEADER):
            raise ValueError(f"malformed metrics CSV row: {row!r}")
        name, kind, strategy, worker, phase, field, value = row
        key: MetricKey = (strategy, int(worker), int(phase))
        if kind == "counter":
            metrics.counter(name).inc(key, int(value))
        elif kind == "gauge":
            metrics.gauge(name).set(key, float(value))
        elif kind == "histogram":
            hist_rows.setdefault(name, {}).setdefault(key, {})[field] = value
        else:
            raise ValueError(f"unknown metric kind {kind!r} in CSV")
    for name, cells in hist_rows.items():
        uppers: List[float] = []
        for fields in cells.values():
            uppers = [
                float(f[3:]) for f in fields if f.startswith("le_") and f != "le_inf"
            ]
            break
        uppers.sort()
        hist = metrics.histogram(name, uppers)
        raw_cells = [
            {
                "key": [key[0], key[1], key[2]],
                "counts": [int(fields[f"le_{u:g}"]) for u in uppers]
                + [int(fields["le_inf"])],
                "count": int(fields["count"]),
                "sum": float(fields["sum"]),
            }
            for key, fields in sorted(cells.items())
        ]
        hist.merge(type(hist).from_dict({"buckets": uppers, "cells": raw_cells}))
    return metrics


# ---------------------------------------------------------------------------
# Run summaries (sink -> document -> report)
# ---------------------------------------------------------------------------


def summary_from_sink(sink: RecordingSink) -> Dict[str, Any]:
    """The versioned summary document of a recording sink."""
    return {"format": FORMAT, **sink.snapshot()}


def summary_to_json(sink: RecordingSink, *, indent: int = 2) -> str:
    """Serialize a recording sink's summary document to JSON."""
    return json.dumps(summary_from_sink(sink), indent=indent, sort_keys=True)


def save_summary(sink: RecordingSink, path: str) -> str:
    """Write the sink's summary JSON to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(summary_to_json(sink))
        fh.write("\n")
    return path


def load_summary(path: str) -> Dict[str, Any]:
    """Read a summary document written by :func:`save_summary`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise ValueError(f"{path}: not a {FORMAT} summary document")
    return payload
