"""The paper's primary contribution: dynamic scheduling strategies and their
ODE-based theoretical analysis.

* :mod:`repro.core.strategies` — the eight runtime strategies (Random /
  Sorted / Dynamic / Dynamic2Phases, for the outer product and for matrix
  multiplication);
* :mod:`repro.core.analysis` — lower bounds, the ODE lemmas, the closed-form
  communication-ratio predictions, and the optimal-β computation that turns
  the analysis into a runtime threshold.
"""

from repro.core import analysis, strategies

__all__ = ["strategies", "analysis"]
