"""Closed-form communication prediction for DynamicMatrix2Phases.

Section 4.2 of the paper, with the same two-variant scheme as
:mod:`repro.core.analysis.outer`:

* ``"exact"`` — phase 1 ships ``3 n^2 x_k^2`` blocks to worker ``k`` (one
  ``x_k n`` x ``x_k n`` rectangle of each of ``A``, ``B``, ``C``) with
  ``x_k = (beta rs_k - beta^2/2 rs_k^2)^(1/3)``; phase 2 costs
  ``3 (1 - x_k^2)`` blocks per task in expectation (each of the three needed
  blocks is already held with probability ``x_k^2``) over the
  ``e^{-beta} n^3`` remaining tasks.

* ``"first_order"`` — the truncated expansion, with the scan's coefficient
  and normalization slips repaired (DESIGN.md):
  ``V1/LB = beta^{2/3} - beta^{5/3} sum rs^{5/3} / (3 sum rs^{2/3})`` and
  ``V2/LB = e^{-beta} n (1 - beta^{2/3} sum rs^{5/3}) / sum rs^{2/3}``.

All ratios are relative to ``LB = 3 n^2 sum_k rs_k^(2/3)``.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
from scipy import optimize

from repro.core.analysis.lower_bounds import _check_rel, matrix_lower_bound
from repro.core.analysis.ode import switch_fraction
from repro.utils.validation import check_positive_int

__all__ = [
    "matrix_phase1_ratio",
    "matrix_phase2_ratio",
    "matrix_total_ratio",
    "optimal_matrix_beta",
]

_VARIANTS = ("exact", "first_order")


def _check_variant(variant: str) -> str:
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}, got {variant!r}")
    return variant


def matrix_phase1_ratio(beta: float, rel_speeds: npt.ArrayLike, variant: str = "exact") -> float:
    """Phase-1 volume over the lower bound: ``sum_k x_k^2 / sum_k rs_k^{2/3}``."""
    _check_variant(variant)
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    rel = _check_rel(rel_speeds)
    denom = np.sum(rel ** (2.0 / 3.0))
    if variant == "exact":
        x = switch_fraction(beta, rel, d=3)
        return float(np.sum(x**2) / denom)
    s53 = np.sum(rel ** (5.0 / 3.0))
    return float(beta ** (2.0 / 3.0) - beta ** (5.0 / 3.0) * s53 / (3.0 * denom))


def matrix_phase2_ratio(beta: float, rel_speeds: npt.ArrayLike, n: int, variant: str = "exact") -> float:
    """Phase-2 volume over the lower bound.

    ``e^{-beta} n^3`` tasks remain; worker ``k`` processes an ``rs_k`` share
    at an expected ``3 (1 - x_k^2)`` blocks per task.
    """
    _check_variant(variant)
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    rel = _check_rel(rel_speeds)
    n = check_positive_int("n", n)
    remaining = np.exp(-beta) * n**3
    lb = matrix_lower_bound(rel, n)
    if variant == "exact":
        x = switch_fraction(beta, rel, d=3)
        volume = remaining * np.sum(rel * 3.0 * (1.0 - x**2))
        return float(volume / lb)
    s53 = np.sum(rel ** (5.0 / 3.0))
    s23 = np.sum(rel ** (2.0 / 3.0))
    return float(np.exp(-beta) * n * (1.0 - beta ** (2.0 / 3.0) * s53) / s23)


def matrix_total_ratio(beta: float, rel_speeds: npt.ArrayLike, n: int, variant: str = "exact") -> float:
    """Total predicted communication over the lower bound (Section 4.2)."""
    return matrix_phase1_ratio(beta, rel_speeds, variant) + matrix_phase2_ratio(beta, rel_speeds, n, variant)


def _total_ratio_grid(betas: np.ndarray, rel: np.ndarray, n: int, variant: str) -> np.ndarray:
    """Vectorized :func:`matrix_total_ratio` over an array of betas.

    Inputs are pre-validated by :func:`optimal_matrix_beta`.  Mirrors the
    scalar ratio functions operation for operation (betas broadcast along a
    leading axis) so the grid scan stays bit-identical; see the outer-product
    counterpart :func:`repro.core.analysis.outer._total_ratio_grid`.
    """
    denom = np.sum(rel ** (2.0 / 3.0))
    if variant == "exact":
        b = betas[:, np.newaxis]
        x = np.clip(b * rel - 0.5 * b**2 * rel**2, 0.0, 1.0) ** (1.0 / 3)
        phase1 = np.sum(x**2, axis=1) / denom
        lb = 3.0 * n * n * denom
        remaining = np.exp(-betas) * n**3
        phase2 = remaining * np.sum(rel * 3.0 * (1.0 - x**2), axis=1) / lb
        return np.asarray(phase1 + phase2)
    s53 = np.sum(rel ** (5.0 / 3.0))
    phase1 = betas ** (2.0 / 3.0) - betas ** (5.0 / 3.0) * s53 / (3.0 * denom)
    phase2 = np.exp(-betas) * n * (1.0 - betas ** (2.0 / 3.0) * s53) / denom
    return np.asarray(phase1 + phase2)


def optimal_matrix_beta(
    rel_speeds: npt.ArrayLike,
    n: int,
    variant: str = "exact",
    *,
    beta_range: tuple[float, float] = (1e-3, 15.0),
) -> float:
    """β minimizing the Section-4.2 total ratio (grid scan + Brent polish).

    As for the outer product, the search is capped at ``1 / max(rs_k)``,
    the validity boundary of the Lemma-3-style expansion.
    """
    _check_variant(variant)
    rel = _check_rel(rel_speeds)
    n = check_positive_int("n", n)
    lo, hi = float(beta_range[0]), float(beta_range[1])
    if not 0 <= lo < hi:
        raise ValueError(f"invalid beta_range {beta_range}")
    hi = min(hi, 1.0 / float(np.max(rel)))
    if hi <= lo:
        return hi

    objective = lambda b: matrix_total_ratio(b, rel, n, variant)  # noqa: E731
    grid = np.linspace(lo, hi, 200)
    values = _total_ratio_grid(grid, rel, n, variant)
    best = int(np.argmin(values))
    left = grid[max(best - 1, 0)]
    right = grid[min(best + 1, grid.size - 1)]
    if left == right:  # pragma: no cover - degenerate single-point range
        return float(grid[best])
    result = optimize.minimize_scalar(objective, bounds=(left, right), method="bounded")
    return float(result.x)
