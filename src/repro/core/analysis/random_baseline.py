"""Closed-form expected volume of the cached Random* baselines.

The paper plots RandomOuter / RandomMatrix only empirically.  Their
expected communication has a clean coupon-collector form, which this
module provides (and the test suite validates against simulation):

Worker ``k`` processes ``T_k ≈ rs_k n^d`` uniformly random tasks.  For the
outer product, each task draws a uniformly random row index, so the chance
that a given ``a`` block is *never* needed is ``(1 - 1/n)^{T_k}``; the
worker therefore ends up holding ``n (1 - (1 - 1/n)^{T_k})`` blocks of
each input vector::

    V_outer = sum_k 2 n (1 - (1 - 1/n)^{rs_k n^2})

For matmul, each task needs one block of each of A, B, C drawn uniformly
from the ``n^2`` blocks of that operand::

    V_matrix = sum_k 3 n^2 (1 - (1 - 1/n^2)^{rs_k n^3})

Two regimes follow directly: when tasks-per-worker ≪ blocks the volume is
~``d`` blocks per task (full replication — the MapReduce bound), and when
tasks-per-worker ≫ blocks it saturates at the full-input capacity
``d n^{d-1}`` per worker, which is why the Figure 1/4 Random curves bend
over at large p.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.core.analysis.lower_bounds import _check_rel
from repro.utils.validation import check_positive_int

__all__ = ["expected_random_outer_volume", "expected_random_matrix_volume"]


def expected_random_outer_volume(rel_speeds: npt.ArrayLike, n: int) -> float:
    """Expected RandomOuter communication volume in blocks."""
    rel = _check_rel(rel_speeds)
    n = check_positive_int("n", n)
    tasks = rel * n * n
    return float(np.sum(2.0 * n * (1.0 - (1.0 - 1.0 / n) ** tasks)))


def expected_random_matrix_volume(rel_speeds: npt.ArrayLike, n: int) -> float:
    """Expected RandomMatrix communication volume in blocks."""
    rel = _check_rel(rel_speeds)
    n = check_positive_int("n", n)
    tasks = rel * float(n) ** 3
    blocks_per_operand = float(n) * n
    return float(np.sum(3.0 * blocks_per_operand * (1.0 - (1.0 - 1.0 / blocks_per_operand) ** tasks)))
