"""Continuous-process primitives of the ODE analysis.

The paper models the data-aware phase from the point of view of one worker
``P_k`` whose known fraction of each input dimension is ``x``.  With
``alpha_k = (sum_{i != k} s_i) / s_k`` and ``d`` the dimension of the task
domain (``d = 2`` for the outer product, ``d = 3`` for matmul):

* **Lemma 1 / 7** — the fraction of unprocessed tasks in the region not yet
  owned by ``P_k``::

      g_k(x) = (1 - x^d) ** alpha_k

* the number of tasks ``P_k`` *could* have processed but that other workers
  processed first (``h_k`` in the Lemma-2 proof)::

      h_k(x) = n^d * (x^d + ((1 - x^d)^(alpha_k + 1) - 1) / (alpha_k + 1))

* **Lemma 2 / 8** — the (speed-normalized) time at which ``P_k`` knows a
  fraction ``x``::

      t_k(x) * sum_i s_i = n^d * (1 - (1 - x^d) ** (alpha_k + 1))

  (The paper's Lemma 8 prints this with a garbled left-hand side; the
  derivation in DESIGN.md restores the symmetric form.)

* **Lemma 3** — the phase switch happens simultaneously on all workers when
  ``x_k^d = beta * rs_k - beta^2 / 2 * rs_k^2``; then
  ``t_k(x_k) * sum s_i = n^d (1 - e^{-beta})`` at first order.

All functions are NumPy-vectorized over ``x`` and/or ``alpha``.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = [
    "alpha_of",
    "unprocessed_fraction",
    "stolen_tasks",
    "time_to_knowledge",
    "switch_fraction",
]


def _check_dim(d: int) -> int:
    if d not in (2, 3):
        raise ValueError(f"task-domain dimension must be 2 (outer) or 3 (matmul), got {d}")
    return d


def alpha_of(rel_speed: npt.ArrayLike) -> np.ndarray:
    """``alpha_k = (1 - rs_k) / rs_k``, vectorized over relative speeds."""
    rs = np.asarray(rel_speed, dtype=float)
    if np.any(rs <= 0) or np.any(rs > 1):
        raise ValueError("relative speeds must lie in (0, 1]")
    return (1.0 - rs) / rs


def unprocessed_fraction(x: npt.ArrayLike, alpha: npt.ArrayLike, d: int = 2) -> np.ndarray:
    """Lemma 1 / 7: ``g_k(x) = (1 - x^d)^alpha``.

    *x* is the worker's known fraction of each input dimension, *alpha* its
    ``alpha_k``.  Both may be arrays (NumPy broadcasting applies).
    """
    d = _check_dim(d)
    x = np.asarray(x, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    if np.any(x < 0) or np.any(x > 1):
        raise ValueError("x must lie in [0, 1]")
    if np.any(alpha < 0):
        raise ValueError("alpha must be >= 0")
    return (1.0 - x**d) ** alpha


def stolen_tasks(x: npt.ArrayLike, alpha: npt.ArrayLike, n: int, d: int = 2) -> np.ndarray:
    """Tasks computable by ``P_k`` but processed by others, ``h_k(x)``.

    Derived in the proof of Lemma 2:
    ``h_k(x) = n^d (x^d + ((1 - x^d)^(alpha+1) - 1) / (alpha + 1))``.
    """
    d = _check_dim(d)
    x = np.asarray(x, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    if np.any(x < 0) or np.any(x > 1):
        raise ValueError("x must lie in [0, 1]")
    xd = x**d
    return (n**d) * (xd + ((1.0 - xd) ** (alpha + 1.0) - 1.0) / (alpha + 1.0))


def time_to_knowledge(x: npt.ArrayLike, alpha: npt.ArrayLike, n: int, d: int = 2) -> np.ndarray:
    """Lemma 2 / 8: speed-normalized time ``t_k(x) * sum_i s_i``.

    Returns ``n^d * (1 - (1 - x^d)^(alpha + 1))`` — divide by the platform's
    total speed to get wall-clock simulation time.
    """
    d = _check_dim(d)
    x = np.asarray(x, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    if np.any(x < 0) or np.any(x > 1):
        raise ValueError("x must lie in [0, 1]")
    return (n**d) * (1.0 - (1.0 - x**d) ** (alpha + 1.0))


def switch_fraction(beta: float, rel_speed: npt.ArrayLike, d: int = 2) -> np.ndarray:
    """Lemma 3's simultaneous switch point ``x_k``.

    ``x_k = (beta * rs_k - beta^2 / 2 * rs_k^2) ** (1/d)``, clipped into
    ``[0, 1]`` (the expression is a first-order expansion and can leave the
    unit interval for extreme ``beta * rs_k``).
    """
    d = _check_dim(d)
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    rs = np.asarray(rel_speed, dtype=float)
    if np.any(rs <= 0) or np.any(rs > 1):
        raise ValueError("relative speeds must lie in (0, 1]")
    val = beta * rs - 0.5 * beta**2 * rs**2
    return np.clip(val, 0.0, 1.0) ** (1.0 / d)
