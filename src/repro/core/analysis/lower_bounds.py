"""Communication lower bounds used to normalize every figure.

Outer product (Section 3.2): in the optimistic setting each worker computes
a *square* sub-domain of area proportional to its relative speed; its
communication is the half-perimeter ``2 n sqrt(rs_k)``, hence::

    LB_outer = 2 n * sum_k sqrt(rs_k)

Matrix multiplication (Section 4.2): each worker computes a *cube* of tasks
with edge ``n * rs_k^(1/3)`` and must receive one square face of each of
``A``, ``B``, ``C``::

    LB_matrix = 3 n^2 * sum_k rs_k^(2/3)

Neither bound is generally achievable (two heterogeneous workers cannot tile
a square with two proportional squares); the best known static algorithm is
a 7/4-approximation — see :mod:`repro.partition`.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.utils.validation import check_positive_int

__all__ = ["outer_lower_bound", "matrix_lower_bound", "lower_bound"]


def _check_rel(rel_speeds: npt.ArrayLike) -> np.ndarray:
    rel = np.asarray(rel_speeds, dtype=float)
    if rel.ndim != 1 or rel.size == 0:
        raise ValueError("relative speeds must be a non-empty 1-D array")
    if np.any(rel <= 0):
        raise ValueError("relative speeds must be strictly positive")
    if not np.isclose(rel.sum(), 1.0, rtol=1e-6):
        raise ValueError(f"relative speeds must sum to 1, got {rel.sum():.6g}")
    return rel


def outer_lower_bound(rel_speeds: npt.ArrayLike, n: int) -> float:
    """``2 n sum_k sqrt(rs_k)`` — blocks, for vectors of *n* blocks."""
    rel = _check_rel(rel_speeds)
    n = check_positive_int("n", n)
    return float(2.0 * n * np.sum(np.sqrt(rel)))


def matrix_lower_bound(rel_speeds: npt.ArrayLike, n: int) -> float:
    """``3 n^2 sum_k rs_k^(2/3)`` — blocks, for matrices of *n x n* blocks."""
    rel = _check_rel(rel_speeds)
    n = check_positive_int("n", n)
    return float(3.0 * n * n * np.sum(rel ** (2.0 / 3.0)))


def lower_bound(kernel: str, rel_speeds: npt.ArrayLike, n: int) -> float:
    """Dispatch on kernel name (``"outer"`` or ``"matrix"``)."""
    if kernel == "outer":
        return outer_lower_bound(rel_speeds, n)
    if kernel == "matrix":
        return matrix_lower_bound(rel_speeds, n)
    raise ValueError(f"kernel must be 'outer' or 'matrix', got {kernel!r}")
