"""ODE-based theoretical analysis of the dynamic strategies.

Implements, with documented corrections of the paper's typographical slips
(see DESIGN.md):

* :mod:`~repro.core.analysis.ode` — the continuous-process primitives:
  unprocessed-task fraction ``g_k``, stolen-task count ``h_k``, time-to-
  knowledge ``t_k`` (Lemmas 1, 2, 7, 8);
* :mod:`~repro.core.analysis.lower_bounds` — the communication lower bounds
  used to normalize every figure;
* :mod:`~repro.core.analysis.outer` — phase volumes, the Theorem-6 total
  ratio, and the optimal β for the outer product;
* :mod:`~repro.core.analysis.matrix` — the Section-4.2 analogues for matmul;
* :mod:`~repro.core.analysis.beta` — the speed-agnostic (homogeneous) β of
  Section 3.6.
"""

from repro.core.analysis.beta import agnostic_beta, beta_deviation
from repro.core.analysis.lower_bounds import lower_bound, matrix_lower_bound, outer_lower_bound
from repro.core.analysis.matrix import (
    matrix_phase1_ratio,
    matrix_phase2_ratio,
    matrix_total_ratio,
    optimal_matrix_beta,
)
from repro.core.analysis.ode import (
    alpha_of,
    stolen_tasks,
    switch_fraction,
    time_to_knowledge,
    unprocessed_fraction,
)
from repro.core.analysis.outer import (
    optimal_outer_beta,
    outer_phase1_ratio,
    outer_phase2_ratio,
    outer_total_ratio,
)
from repro.core.analysis.random_baseline import (
    expected_random_matrix_volume,
    expected_random_outer_volume,
)

__all__ = [
    "alpha_of",
    "unprocessed_fraction",
    "stolen_tasks",
    "time_to_knowledge",
    "switch_fraction",
    "lower_bound",
    "outer_lower_bound",
    "matrix_lower_bound",
    "outer_phase1_ratio",
    "outer_phase2_ratio",
    "outer_total_ratio",
    "optimal_outer_beta",
    "matrix_phase1_ratio",
    "matrix_phase2_ratio",
    "matrix_total_ratio",
    "optimal_matrix_beta",
    "agnostic_beta",
    "beta_deviation",
    "expected_random_outer_volume",
    "expected_random_matrix_volume",
]
