"""Speed-agnostic β estimation (Section 3.6).

The optimal β nominally depends on the relative speeds through
``sum_k rs_k^{3/2}`` etc., but the paper observes that β computed for a
*homogeneous* platform of the same size is within ~5 % of the heterogeneous
optimum, and that the resulting volume prediction error is below 0.1 %.
These helpers compute the homogeneous β and quantify the deviation, which
is what makes DynamicOuter2Phases "totally agnostic to processor speeds":
only ``p`` and ``n`` are needed at runtime.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.analysis.matrix import matrix_total_ratio, optimal_matrix_beta
from repro.core.analysis.outer import optimal_outer_beta, outer_total_ratio
from repro.utils.validation import check_positive_int

__all__ = ["agnostic_beta", "beta_deviation"]


def agnostic_beta(kernel: str, p: int, n: int, variant: str = "exact") -> float:
    """β for a homogeneous platform of *p* workers and size-*n* problems.

    This is the value a speed-agnostic runtime would use.
    """
    p = check_positive_int("p", p)
    rel = np.full(p, 1.0 / p)
    if kernel == "outer":
        return optimal_outer_beta(rel, n, variant)
    if kernel == "matrix":
        return optimal_matrix_beta(rel, n, variant)
    raise ValueError(f"kernel must be 'outer' or 'matrix', got {kernel!r}")


def beta_deviation(
    kernel: str,
    rel_speeds_draws: Sequence[np.ndarray],
    n: int,
    variant: str = "exact",
) -> dict:
    """Quantify Section 3.6: homogeneous vs per-draw heterogeneous β.

    For each draw of relative speeds, compute the heterogeneous optimum
    ``beta_het`` and compare with the homogeneous ``beta_hom`` (same ``p``).
    Returns a dict with the homogeneous β, the per-draw heterogeneous βs,
    the maximum relative β deviation, and the maximum relative error on the
    *predicted volume* incurred by using ``beta_hom`` instead of
    ``beta_het``.
    """
    draws = [np.asarray(d, dtype=float) for d in rel_speeds_draws]
    if not draws:
        raise ValueError("need at least one relative-speed draw")
    p = draws[0].size
    if any(d.size != p for d in draws):
        raise ValueError("all draws must have the same number of workers")

    beta_hom = agnostic_beta(kernel, p, n, variant)
    if kernel == "outer":
        ratio = outer_total_ratio
        beta_opt = optimal_outer_beta
    elif kernel == "matrix":
        ratio = matrix_total_ratio
        beta_opt = optimal_matrix_beta
    else:
        raise ValueError(f"kernel must be 'outer' or 'matrix', got {kernel!r}")

    betas_het = []
    volume_errors = []
    for rel in draws:
        b_het = beta_opt(rel, n, variant)
        betas_het.append(b_het)
        best = ratio(b_het, rel, n, variant)
        with_hom = ratio(beta_hom, rel, n, variant)
        volume_errors.append(abs(with_hom - best) / best)

    betas_het_arr = np.asarray(betas_het)
    return {
        "beta_hom": beta_hom,
        "betas_het": betas_het_arr,
        "max_beta_rel_dev": float(np.max(np.abs(betas_het_arr - beta_hom) / beta_hom)),
        "mean_beta_het": float(betas_het_arr.mean()),
        "max_volume_rel_error": float(np.max(volume_errors)),
    }
