"""Closed-form communication prediction for DynamicOuter2Phases.

Lemma 4 (phase 1), Lemma 5 (phase 2) and Theorem 6 (total), plus the 1-D
minimization that yields the optimal switch parameter β.

Two variants of every formula are exposed:

* ``"exact"`` (default) — evaluates the phase volumes without first-order
  truncation: phase 1 ships ``2 n x_k`` blocks to worker ``k`` with
  ``x_k = sqrt(beta rs_k - beta^2/2 rs_k^2)``; phase 2 costs
  ``2 / (1 + x_k)`` blocks per task on worker ``k``, which processes an
  ``rs_k`` share of the ``e^{-beta} n^2`` remaining tasks.  This is the
  variant plotted as "Analysis" in the figures — it is what actually
  overlays the simulation.

* ``"first_order"`` — the paper's truncated expansions (with the sign/unit
  typos of the scan repaired; see DESIGN.md):
  ``V1/LB = sqrt(beta) - beta^{3/2} sum rs^{3/2} / (4 sum rs^{1/2})`` and
  ``V2/LB = e^{-beta} n (1 - sqrt(beta) sum rs^{3/2}) / sum rs^{1/2}``.

All ratios are relative to ``LB = 2 n sum_k sqrt(rs_k)``.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
from scipy import optimize

from repro.core.analysis.lower_bounds import _check_rel, outer_lower_bound
from repro.core.analysis.ode import switch_fraction
from repro.utils.validation import check_positive_int

__all__ = [
    "outer_phase1_ratio",
    "outer_phase2_ratio",
    "outer_total_ratio",
    "optimal_outer_beta",
]

_VARIANTS = ("exact", "first_order")


def _check_variant(variant: str) -> str:
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}, got {variant!r}")
    return variant


def outer_phase1_ratio(beta: float, rel_speeds: npt.ArrayLike, variant: str = "exact") -> float:
    """Lemma 4: phase-1 communication volume over the lower bound.

    Worker ``k`` ends phase 1 knowing ``x_k n`` blocks of each vector, so
    phase 1 ships ``2 n x_k`` blocks to it; the ratio is
    ``sum_k x_k / sum_k sqrt(rs_k)``.
    """
    _check_variant(variant)
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    rel = _check_rel(rel_speeds)
    denom = np.sum(np.sqrt(rel))
    if variant == "exact":
        x = switch_fraction(beta, rel, d=2)
        return float(np.sum(x) / denom)
    s32 = np.sum(rel**1.5)
    return float(np.sqrt(beta) - beta**1.5 * s32 / (4.0 * denom))


def outer_phase2_ratio(beta: float, rel_speeds: npt.ArrayLike, n: int, variant: str = "exact") -> float:
    """Lemma 5: phase-2 communication volume over the lower bound.

    ``e^{-beta} n^2`` tasks remain; worker ``k`` processes an ``rs_k`` share
    and pays ``2 / (1 + x_k)`` blocks per task in expectation (one block
    with probability ``2 x_k / (1 + x_k)``, two with ``(1 - x_k)/(1 + x_k)``).
    """
    _check_variant(variant)
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    rel = _check_rel(rel_speeds)
    n = check_positive_int("n", n)
    remaining = np.exp(-beta) * n * n
    lb = outer_lower_bound(rel, n)
    if variant == "exact":
        x = switch_fraction(beta, rel, d=2)
        volume = remaining * np.sum(rel * 2.0 / (1.0 + x))
        return float(volume / lb)
    s32 = np.sum(rel**1.5)
    s12 = np.sum(np.sqrt(rel))
    return float(np.exp(-beta) * n * (1.0 - np.sqrt(beta) * s32) / s12)


def outer_total_ratio(beta: float, rel_speeds: npt.ArrayLike, n: int, variant: str = "exact") -> float:
    """Theorem 6: total predicted communication over the lower bound."""
    return outer_phase1_ratio(beta, rel_speeds, variant) + outer_phase2_ratio(beta, rel_speeds, n, variant)


def _total_ratio_grid(betas: np.ndarray, rel: np.ndarray, n: int, variant: str) -> np.ndarray:
    """Vectorized :func:`outer_total_ratio` over an array of betas.

    Inputs are pre-validated by :func:`optimal_outer_beta`.  The arithmetic
    mirrors the scalar ratio functions operation for operation (betas
    broadcast along a leading axis), so the grid scan returns bit-identical
    values while costing a handful of array operations instead of hundreds
    of per-beta Python calls — the scan dominated ``reset()`` time of the
    auto-tuned two-phase strategies.
    """
    denom = np.sum(np.sqrt(rel))
    if variant == "exact":
        b = betas[:, np.newaxis]
        x = np.clip(b * rel - 0.5 * b**2 * rel**2, 0.0, 1.0) ** (1.0 / 2)
        phase1 = np.sum(x, axis=1) / denom
        lb = 2.0 * n * denom
        remaining = np.exp(-betas) * n * n
        phase2 = remaining * np.sum(rel * 2.0 / (1.0 + x), axis=1) / lb
        return np.asarray(phase1 + phase2)
    s32 = np.sum(rel**1.5)
    phase1 = np.sqrt(betas) - betas**1.5 * s32 / (4.0 * denom)
    phase2 = np.exp(-betas) * n * (1.0 - np.sqrt(betas) * s32) / denom
    return np.asarray(phase1 + phase2)


def optimal_outer_beta(
    rel_speeds: npt.ArrayLike,
    n: int,
    variant: str = "exact",
    *,
    beta_range: tuple[float, float] = (1e-3, 15.0),
) -> float:
    """β minimizing the Theorem-6 total ratio.

    A coarse grid scan locates the basin, then bounded Brent polishing
    refines it — the objective is smooth but can be very flat (Figure 6's
    valley spans roughly 3 <= β <= 6), so pure local search from a bad
    start is unreliable.

    The search is additionally capped at ``1 / max(rs_k)``: beyond that the
    Lemma-3 expansion ``x_k^2 = beta rs_k - beta^2/2 rs_k^2`` stops being
    monotone in β and the model loses meaning (relevant only for very small
    p, where the paper notes the analysis degrades anyway).
    """
    _check_variant(variant)
    rel = _check_rel(rel_speeds)
    n = check_positive_int("n", n)
    lo, hi = float(beta_range[0]), float(beta_range[1])
    if not 0 <= lo < hi:
        raise ValueError(f"invalid beta_range {beta_range}")
    hi = min(hi, 1.0 / float(np.max(rel)))
    if hi <= lo:
        return hi

    objective = lambda b: outer_total_ratio(b, rel, n, variant)  # noqa: E731
    grid = np.linspace(lo, hi, 200)
    values = _total_ratio_grid(grid, rel, n, variant)
    best = int(np.argmin(values))
    left = grid[max(best - 1, 0)]
    right = grid[min(best + 1, grid.size - 1)]
    if left == right:  # pragma: no cover - degenerate single-point range
        return float(grid[best])
    result = optimize.minimize_scalar(objective, bounds=(left, right), method="bounded")
    return float(result.x)
