"""DynamicOuter2Phases: data-aware start, random finish (Algorithm 2).

Phase 1 is plain DynamicOuter.  When the number of *remaining* tasks drops
to the threshold ``e^{-beta} n^2`` the strategy switches to RandomOuter-style
allocation: a uniformly random unprocessed task per request, shipping the at
most two missing blocks.  Workers keep the blocks accumulated in phase 1,
so phase-2 requests are often satisfied with 0 or 1 new blocks.

The threshold can be given three equivalent ways:

* ``beta`` — the paper's parameter (remaining fraction ``e^{-beta}``);
* ``phase1_fraction`` — "percentage of tasks treated in phase 1"
  (Figure 2's x-axis);
* ``threshold_tasks`` — an absolute remaining-task count.

When none is given, β is computed at :meth:`reset` time from the platform's
relative speeds by minimizing the analysis of Theorem 6 — the paper's
headline use of the theory inside the scheduler.  Pass
``agnostic=True`` to instead use the speed-agnostic homogeneous β of
Section 3.6.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.strategies.base import Assignment
from repro.core.strategies.outer_dynamic import OuterDynamic

if TYPE_CHECKING:
    from repro.platform.platform import Platform
from repro.taskpool.knowledge import BlockCache
from repro.taskpool.sample_set import SampleSet
from repro.utils.validation import check_fraction, check_nonnegative, check_nonnegative_int

__all__ = ["OuterTwoPhase"]


class OuterTwoPhase(OuterDynamic):
    """The paper's **DynamicOuter2Phases** (Algorithm 2)."""

    name = "DynamicOuter2Phases"
    kernel = "outer"

    def __init__(
        self,
        n: int,
        *,
        beta: Optional[float] = None,
        phase1_fraction: Optional[float] = None,
        threshold_tasks: Optional[int] = None,
        agnostic: bool = False,
        collect_ids: bool = False,
    ) -> None:
        super().__init__(n, collect_ids=collect_ids)
        given = [beta is not None, phase1_fraction is not None, threshold_tasks is not None]
        if sum(given) > 1:
            raise ValueError("give at most one of beta / phase1_fraction / threshold_tasks")
        if beta is not None:
            beta = check_nonnegative("beta", beta)
        if phase1_fraction is not None:
            phase1_fraction = check_fraction("phase1_fraction", phase1_fraction)
        if threshold_tasks is not None:
            threshold_tasks = check_nonnegative_int("threshold_tasks", threshold_tasks)
        self._beta = beta
        self._phase1_fraction = phase1_fraction
        self._threshold_tasks = threshold_tasks
        self._agnostic = bool(agnostic)

    # -- threshold resolution ---------------------------------------------

    def resolve_threshold(self, platform: "Platform") -> int:
        """The phase-2 threshold this configuration yields on *platform*.

        Pure function of (configuration, platform) — the vector kernel
        replays it per replicate, and :meth:`reset` applies it to the
        bound platform via :meth:`_resolve_threshold`.
        """
        total = self.n * self.n
        if self._threshold_tasks is not None:
            return min(self._threshold_tasks, total)
        if self._phase1_fraction is not None:
            return min(total, int(round((1.0 - self._phase1_fraction) * total)))
        beta = self._beta
        if beta is None:
            # Tune from the analysis (Theorem 6); imported lazily to keep
            # strategies importable without the analysis stack.
            from repro.core.analysis.outer import optimal_outer_beta

            if self._agnostic:
                rel = np.full(platform.p, 1.0 / platform.p)
            else:
                rel = platform.relative_speeds
            beta = optimal_outer_beta(rel, self.n)
        self._resolved_beta = float(beta)
        return min(total, int(round(math.exp(-beta) * total)))

    def _resolve_threshold(self) -> int:
        return self.resolve_threshold(self.platform)

    @property
    def beta(self) -> Optional[float]:
        """β in effect (resolved at reset when auto-tuned)."""
        return getattr(self, "_resolved_beta", self._beta)

    @property
    def threshold(self) -> int:
        """Remaining-task count at which phase 2 starts."""
        if not hasattr(self, "_threshold"):
            raise RuntimeError("threshold available only after reset()")
        return self._threshold

    @property
    def phase(self) -> int:
        """Current phase (1 or 2)."""
        return 2 if self._phase2 else 1

    # -- lifecycle ----------------------------------------------------------

    def _setup(self) -> None:
        super()._setup()
        self._threshold = self._resolve_threshold()
        self._phase2 = False
        self._sampler: Optional[SampleSet] = None
        self._cache_a: List[BlockCache] = []
        self._cache_b: List[BlockCache] = []

    def _enter_phase2(self) -> None:
        """Freeze phase-1 state into phase-2 samplers and block caches."""
        self._phase2 = True
        remaining_ids = self._pool.unprocessed_ids()
        n2 = self.n * self.n
        self._sampler = SampleSet(n2, members=remaining_ids)
        for kn in self._knowledge:
            cache_a = BlockCache(self.n)
            cache_a.add_indices(kn.a.known_indices())
            cache_b = BlockCache(self.n)
            cache_b.add_indices(kn.b.known_indices())
            self._cache_a.append(cache_a)
            self._cache_b.append(cache_b)

    # -- fault recovery ------------------------------------------------------

    def release_tasks(self, task_ids: np.ndarray) -> None:
        super().release_tasks(task_ids)
        if self._phase2 and self._sampler is not None:
            # Phase 2 allocates from the frozen sampler, so released tasks
            # must re-enter it as well as the pool bitmap (add() is a no-op
            # for ids already present).
            for t in np.asarray(task_ids, dtype=np.int64):
                self._sampler.add(int(t))

    def forget_worker(self, worker: int) -> None:
        super().forget_worker(worker)
        if self._phase2:
            self._cache_a[worker] = BlockCache(self.n)
            self._cache_b[worker] = BlockCache(self.n)

    # -- scheduling ----------------------------------------------------------

    def assign(self, worker: int, now: float) -> Assignment:
        if self._pool.done:
            raise RuntimeError("assign() called after all tasks were allocated")
        if not self._phase2 and self._pool.remaining <= self._threshold:
            self._enter_phase2()
        if not self._phase2:
            return self._dynamic_assign(worker)
        return self._random_assign(worker)

    def _random_assign(self, worker: int) -> Assignment:
        assert self._sampler is not None
        flat = self._sampler.draw(self.rng)
        i, j = divmod(flat, self.n)
        blocks = int(self._cache_a[worker].add(i)) + int(self._cache_b[worker].add(j))
        newly = self._pool.mark_task(i, j)
        assert newly, "phase-2 sampler handed out an already-processed task"
        task_ids: Optional[np.ndarray] = None
        if self.collect_ids:
            task_ids = np.array([flat], dtype=np.int64)
        # Positional construction (blocks, tasks, phase, task_ids): keyword
        # passing costs ~200ns per event at this call rate.
        return Assignment(blocks, 1, 2, task_ids)
