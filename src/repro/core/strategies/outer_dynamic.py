"""DynamicOuter: the data-aware randomized strategy (Algorithm 1).

Per request, the master ships one new ``a`` block and one new ``b`` block
(chosen uniformly among those the worker lacks) and allocates *every*
unprocessed task on the resulting cross — so a worker that already knows
``x n`` rows and columns receives ``2`` blocks but up to ``2 x n + 1``
tasks.  The marking is a vectorized bitmap operation in
:class:`~repro.taskpool.outer_pool.OuterTaskPool`.

Tail behaviour: when one dimension is exhausted for a worker only the other
arm of the cross is shipped/marked, and a worker with complete knowledge is
allocated the whole remainder at once.  These degenerate cases are exactly
why the plain DynamicOuter wastes communication at the end of a run and why
the paper introduces the two-phase variant.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.strategies.base import Assignment, Strategy
from repro.taskpool.knowledge import VectorKnowledge
from repro.taskpool.outer_pool import OuterTaskPool

__all__ = ["OuterDynamic"]


class OuterDynamic(Strategy):
    """The paper's **DynamicOuter** (Algorithm 1)."""

    name = "DynamicOuter"
    kernel = "outer"

    def _setup(self) -> None:
        self._pool = OuterTaskPool(self.n, collect_ids=self.collect_ids)
        self._knowledge: List[VectorKnowledge] = [VectorKnowledge(self.n) for _ in range(self.platform.p)]

    @property
    def pool(self) -> OuterTaskPool:
        """The shared task pool (exposed for the two-phase subclass/tests)."""
        return self._pool

    def knowledge_of(self, worker: int) -> VectorKnowledge:
        """The worker's current row/column knowledge (for tests/inspection)."""
        return self._knowledge[worker]

    @property
    def total_tasks(self) -> int:
        return self._pool.total

    @property
    def done(self) -> bool:
        return self._pool.done

    def release_tasks(self, task_ids: np.ndarray) -> None:
        self._pool.release_tasks(task_ids)

    def forget_worker(self, worker: int) -> None:
        # A crashed worker restarts with empty memory; released tasks on its
        # old cross are re-marked by future crosses (or a knowledge-complete
        # worker's mark_all), so allocation stays exhaustive.
        self._knowledge[worker] = VectorKnowledge(self.n)

    def assign(self, worker: int, now: float) -> Assignment:
        if self._pool.done:
            raise RuntimeError("assign() called after all tasks were allocated")
        return self._dynamic_assign(worker)

    def _dynamic_assign(self, worker: int) -> Assignment:
        """One DynamicOuter step (shared with the two-phase strategy)."""
        kn = self._knowledge[worker]
        if kn.complete:
            # The worker owns both full vectors: allocate everything left.
            count, ids = self._pool.mark_all()
            return Assignment(blocks=0, tasks=count, task_ids=ids)

        # Capture the *previous* index sets; the views keep their length
        # after draw_unknown appends to the underlying buffers.
        rows = kn.a.known_indices()
        cols = kn.b.known_indices()
        i = kn.a.draw_unknown(self.rng) if not kn.a.complete else None
        j = kn.b.draw_unknown(self.rng) if not kn.b.complete else None
        blocks = int(i is not None) + int(j is not None)
        # _mark_cross: i/j come from the *unknown* sampler, so the
        # public precondition holds by construction.
        count, ids = self._pool._mark_cross(i, j, rows, cols)
        # Positional construction (blocks, tasks, phase, task_ids): keyword
        # passing costs ~200ns per event at this call rate.
        return Assignment(blocks, count, 1, ids)
