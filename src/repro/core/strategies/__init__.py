"""The eight scheduling strategies of the paper, behind one interface.

Outer product (Section 3): :class:`OuterRandom`, :class:`OuterSorted`,
:class:`OuterDynamic`, :class:`OuterTwoPhase`.

Matrix multiplication (Section 4): :class:`MatrixRandom`,
:class:`MatrixSorted`, :class:`MatrixDynamic`, :class:`MatrixTwoPhase`.

Use :func:`make_strategy` for name-based construction.
"""

from repro.core.strategies.base import Assignment, Strategy
from repro.core.strategies.mapreduce import MatrixMapReduce, OuterMapReduce
from repro.core.strategies.matrix_dynamic import MatrixDynamic
from repro.core.strategies.matrix_random import MatrixRandom, MatrixSorted
from repro.core.strategies.matrix_two_phase import MatrixTwoPhase
from repro.core.strategies.outer_dynamic import OuterDynamic
from repro.core.strategies.outer_random import OuterRandom, OuterSorted
from repro.core.strategies.outer_two_phase import OuterTwoPhase
from repro.core.strategies.registry import (
    STRATEGIES,
    make_strategy,
    strategies_for_kernel,
    strategy_names,
)

__all__ = [
    "Assignment",
    "Strategy",
    "OuterRandom",
    "OuterSorted",
    "OuterDynamic",
    "OuterTwoPhase",
    "OuterMapReduce",
    "MatrixRandom",
    "MatrixSorted",
    "MatrixDynamic",
    "MatrixTwoPhase",
    "MatrixMapReduce",
    "STRATEGIES",
    "make_strategy",
    "strategy_names",
    "strategies_for_kernel",
]
