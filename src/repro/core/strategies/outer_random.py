"""RandomOuter and SortedOuter: locality-oblivious baselines (Section 3.2).

Both strategies hand out one task per request and ship whichever of the two
input blocks the worker does not yet hold.  Workers *do* cache received
blocks (the paper ships "one or two of the a_i and b_j blocks"), so even
these baselines get some accidental reuse — they are oblivious, not
stateless.  They differ only in task selection:

* ``RandomOuter`` picks a uniformly random unprocessed task;
* ``SortedOuter`` hands tasks out in lexicographic order of ``(i, j)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.strategies.base import Assignment, Strategy
from repro.taskpool.knowledge import BlockCache
from repro.taskpool.sample_set import SampleSet

__all__ = ["OuterRandom", "OuterSorted"]


class _OuterTaskByTask(Strategy):
    """Common machinery: per-worker block caches + one task per request."""

    kernel = "outer"

    def _setup(self) -> None:
        n = self.n
        self._cache_a: List[BlockCache] = [BlockCache(n) for _ in range(self.platform.p)]
        self._cache_b: List[BlockCache] = [BlockCache(n) for _ in range(self.platform.p)]
        self._remaining = n * n
        # Tasks released by fault recovery; re-issued FIFO ahead of the
        # regular order.  Empty (and never touched) in fault-free runs.
        self._backlog: List[int] = []
        self._setup_order()

    def _setup_order(self) -> None:
        raise NotImplementedError

    def _next_task(self) -> int:
        """Return the flat id of the next task to hand out."""
        raise NotImplementedError

    @property
    def total_tasks(self) -> int:
        return self.n * self.n

    @property
    def done(self) -> bool:
        return self._remaining == 0

    def release_tasks(self, task_ids: np.ndarray) -> None:
        released = np.asarray(task_ids, dtype=np.int64)
        self._backlog.extend(int(t) for t in released)
        self._remaining += int(released.size)

    def forget_worker(self, worker: int) -> None:
        self._cache_a[worker] = BlockCache(self.n)
        self._cache_b[worker] = BlockCache(self.n)

    def assign(self, worker: int, now: float) -> Assignment:
        if self._remaining == 0:
            raise RuntimeError("assign() called after all tasks were allocated")
        flat = self._backlog.pop(0) if self._backlog else self._next_task()
        self._remaining -= 1
        # Private attributes, not the validating properties: this runs once
        # per task (n^2 events per simulation).
        i, j = divmod(flat, self._n)
        blocks = int(self._cache_a[worker].add(i)) + int(self._cache_b[worker].add(j))
        task_ids: Optional[np.ndarray] = None
        if self._collect_ids:
            task_ids = np.array([flat], dtype=np.int64)
        # Positional construction (blocks, tasks, phase, task_ids): keyword
        # passing costs ~200ns per event at this call rate.
        return Assignment(blocks, 1, 1, task_ids)


class OuterRandom(_OuterTaskByTask):
    """The paper's **RandomOuter**: uniformly random task selection."""

    name = "RandomOuter"

    def _setup_order(self) -> None:
        self._sampler = SampleSet(self.n * self.n)

    def _next_task(self) -> int:
        return self._sampler.draw(self.rng)


class OuterSorted(_OuterTaskByTask):
    """The paper's **SortedOuter**: lexicographic ``(i, j)`` task order."""

    name = "SortedOuter"

    def _setup_order(self) -> None:
        self._next = 0

    def _next_task(self) -> int:
        flat = self._next
        self._next += 1
        return flat
