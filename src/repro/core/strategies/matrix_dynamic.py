"""DynamicMatrix: the data-aware randomized matmul strategy (Algorithm 3).

Each worker maintains index sets ``I, J, K`` and owns the blocks
``A[I x K]``, ``B[K x J]``, ``C[I x J]``.  Per request the master picks new
indices ``i not in I``, ``j not in J``, ``k not in K`` uniformly at random,
ships the blocks needed to grow the worker's cube by one in every dimension
— ``3 (2 |I| + 1)`` blocks when all sets have equal size — and allocates
every unprocessed task of the grown cube's shell (``i' = i`` or ``j' = j``
or ``k' = k``).

As for the outer product, exhausted dimensions degrade gracefully and a
worker with complete knowledge absorbs the remainder.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.strategies.base import Assignment, Strategy
from repro.taskpool.knowledge import CubeKnowledge
from repro.taskpool.matrix_pool import MatrixTaskPool

__all__ = ["MatrixDynamic"]


def _grown_blocks(n_rows: int, n_cols: int, grow_rows: bool, grow_cols: bool) -> int:
    """New blocks of one operand when its index rectangle grows.

    The operand footprint is the Cartesian product of two index sets; growing
    a set by one index enlarges the rectangle, and the shipped blocks are the
    area difference: ``(r + dr)(c + dc) - r c``.
    """
    dr = 1 if grow_rows else 0
    dc = 1 if grow_cols else 0
    return (n_rows + dr) * (n_cols + dc) - n_rows * n_cols


class MatrixDynamic(Strategy):
    """The paper's **DynamicMatrix** (Algorithm 3)."""

    name = "DynamicMatrix"
    kernel = "matrix"

    def _setup(self) -> None:
        self._pool = MatrixTaskPool(self.n, collect_ids=self.collect_ids)
        self._knowledge: List[CubeKnowledge] = [CubeKnowledge(self.n) for _ in range(self.platform.p)]

    @property
    def pool(self) -> MatrixTaskPool:
        """The shared task pool (exposed for the two-phase subclass/tests)."""
        return self._pool

    def knowledge_of(self, worker: int) -> CubeKnowledge:
        """The worker's current I/J/K knowledge (for tests/inspection)."""
        return self._knowledge[worker]

    @property
    def total_tasks(self) -> int:
        return self._pool.total

    @property
    def done(self) -> bool:
        return self._pool.done

    def release_tasks(self, task_ids: np.ndarray) -> None:
        self._pool.release_tasks(task_ids)

    def forget_worker(self, worker: int) -> None:
        self._knowledge[worker] = CubeKnowledge(self.n)

    def assign(self, worker: int, now: float) -> Assignment:
        if self._pool.done:
            raise RuntimeError("assign() called after all tasks were allocated")
        return self._dynamic_assign(worker)

    def _dynamic_assign(self, worker: int) -> Assignment:
        kn = self._knowledge[worker]
        if kn.complete:
            count, ids = self._pool.mark_all()
            return Assignment(blocks=0, tasks=count, task_ids=ids)

        # Previous index sets (views keep their length across draws).
        rows = kn.i.known_indices()
        cols = kn.j.known_indices()
        deps = kn.k.known_indices()
        i: Optional[int] = kn.i.draw_unknown(self.rng) if not kn.i.complete else None
        j: Optional[int] = kn.j.draw_unknown(self.rng) if not kn.j.complete else None
        k: Optional[int] = kn.k.draw_unknown(self.rng) if not kn.k.complete else None

        # Shipped blocks: growth of the three operand rectangles
        # A over I x K, B over K x J, C over I x J.
        blocks = (
            _grown_blocks(rows.size, deps.size, i is not None, k is not None)
            + _grown_blocks(deps.size, cols.size, k is not None, j is not None)
            + _grown_blocks(rows.size, cols.size, i is not None, j is not None)
        )
        # _mark_shell: i/j/k come from the *unknown* samplers, so the
        # public precondition holds by construction.
        count, ids = self._pool._mark_shell(i, j, k, rows, cols, deps)
        # Positional construction (blocks, tasks, phase, task_ids): keyword
        # passing costs ~200ns per event at this call rate.
        return Assignment(blocks, count, 1, ids)
