"""Name-based strategy construction.

Maps the paper's strategy names to their classes so experiments, benchmarks
and the CLI can be configured with plain strings.
"""

from __future__ import annotations

from typing import Any, Dict, List, Type

from repro.core.strategies.base import Strategy
from repro.core.strategies.mapreduce import MatrixMapReduce, OuterMapReduce
from repro.core.strategies.matrix_dynamic import MatrixDynamic
from repro.core.strategies.matrix_random import MatrixRandom, MatrixSorted
from repro.core.strategies.matrix_two_phase import MatrixTwoPhase
from repro.core.strategies.outer_dynamic import OuterDynamic
from repro.core.strategies.outer_random import OuterRandom, OuterSorted
from repro.core.strategies.outer_two_phase import OuterTwoPhase

__all__ = ["STRATEGIES", "make_strategy", "strategy_names", "strategies_for_kernel"]

# The paper's eight evaluated strategies plus the two MapReduce-style
# full-replication baselines its introduction motivates against.
STRATEGIES: Dict[str, Type[Strategy]] = {
    cls.name: cls
    for cls in (
        OuterRandom,
        OuterSorted,
        OuterDynamic,
        OuterTwoPhase,
        OuterMapReduce,
        MatrixRandom,
        MatrixSorted,
        MatrixDynamic,
        MatrixTwoPhase,
        MatrixMapReduce,
    )
}


def make_strategy(name: str, n: int, **kwargs: Any) -> Strategy:
    """Instantiate a strategy by its paper name (e.g. ``"DynamicOuter"``).

    Extra keyword arguments are forwarded to the constructor (``beta``,
    ``phase1_fraction``, ``collect_ids``, ...).
    """
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}") from None
    return cls(n, **kwargs)


def strategy_names() -> List[str]:
    """All registered strategy names (paper order)."""
    return list(STRATEGIES)


def strategies_for_kernel(kernel: str) -> List[str]:
    """Names of the strategies applying to ``"outer"`` or ``"matrix"``."""
    if kernel not in ("outer", "matrix"):
        raise ValueError(f"kernel must be 'outer' or 'matrix', got {kernel!r}")
    return [name for name, cls in STRATEGIES.items() if cls.kernel == kernel]
