"""MapReduce-style full-replication baselines (the paper's motivation).

The introduction motivates data-aware scheduling with the observation that
a plain MapReduce implementation of the outer product "emits all possible
pairs (a_i, b_j)" because the framework is unaware of the 2-D structure of
the data — every task ships its inputs, with no worker-side caching.

These strategies model exactly that: stateless workers, so the
communication volume is the replication upper bound (``2`` blocks per task
for the outer product, ``3`` for matmul).  They bound from above what the
cached Random* baselines achieve and make the intro's "large replication
factor" quantitative.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.strategies.base import Assignment, Strategy
from repro.taskpool.sample_set import SampleSet

__all__ = ["OuterMapReduce", "MatrixMapReduce"]


class OuterMapReduce(Strategy):
    """Outer product with full replication: 2 blocks shipped per task."""

    name = "MapReduceOuter"
    kernel = "outer"

    def _setup(self) -> None:
        self._sampler = SampleSet(self.n * self.n)

    @property
    def total_tasks(self) -> int:
        return self.n * self.n

    @property
    def done(self) -> bool:
        return len(self._sampler) == 0

    def release_tasks(self, task_ids: np.ndarray) -> None:
        for t in np.asarray(task_ids, dtype=np.int64):
            self._sampler.add(int(t))

    def forget_worker(self, worker: int) -> None:
        # Workers are stateless (full replication): nothing to forget.
        pass

    def assign(self, worker: int, now: float) -> Assignment:
        if self.done:
            raise RuntimeError("assign() called after all tasks were allocated")
        flat = self._sampler.draw(self.rng)
        task_ids: Optional[np.ndarray] = None
        if self.collect_ids:
            task_ids = np.array([flat], dtype=np.int64)
        # Positional construction (blocks, tasks, phase, task_ids): keyword
        # passing costs ~200ns per event at this call rate.
        return Assignment(2, 1, 1, task_ids)


class MatrixMapReduce(Strategy):
    """Matmul with full replication: 3 blocks shipped per task."""

    name = "MapReduceMatrix"
    kernel = "matrix"

    def _setup(self) -> None:
        self._sampler = SampleSet(self.n**3)

    @property
    def total_tasks(self) -> int:
        return self.n**3

    @property
    def done(self) -> bool:
        return len(self._sampler) == 0

    def release_tasks(self, task_ids: np.ndarray) -> None:
        for t in np.asarray(task_ids, dtype=np.int64):
            self._sampler.add(int(t))

    def forget_worker(self, worker: int) -> None:
        # Workers are stateless (full replication): nothing to forget.
        pass

    def assign(self, worker: int, now: float) -> Assignment:
        if self.done:
            raise RuntimeError("assign() called after all tasks were allocated")
        flat = self._sampler.draw(self.rng)
        task_ids: Optional[np.ndarray] = None
        if self.collect_ids:
            task_ids = np.array([flat], dtype=np.int64)
        # Positional construction (blocks, tasks, phase, task_ids): keyword
        # passing costs ~200ns per event at this call rate.
        return Assignment(3, 1, 1, task_ids)
