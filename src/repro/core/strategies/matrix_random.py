"""RandomMatrix and SortedMatrix: locality-oblivious matmul baselines.

One task ``T[i, j, k]`` per request; the master ships whichever of
``A[i, k]``, ``B[k, j]``, ``C[i, j]`` the worker does not yet hold (the
``C`` block counts toward communication volume even though it physically
travels back to the master at the end — the paper only tracks total
volume).  Workers cache all blocks they ever touch.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.strategies.base import Assignment, Strategy
from repro.taskpool.knowledge import BlockCache
from repro.taskpool.sample_set import SampleSet

__all__ = ["MatrixRandom", "MatrixSorted"]


class _MatrixTaskByTask(Strategy):
    """Common machinery: per-worker A/B/C block caches, one task per request."""

    kernel = "matrix"

    def _setup(self) -> None:
        n = self.n
        p = self.platform.p
        self._cache_a: List[BlockCache] = [BlockCache((n, n)) for _ in range(p)]
        self._cache_b: List[BlockCache] = [BlockCache((n, n)) for _ in range(p)]
        self._cache_c: List[BlockCache] = [BlockCache((n, n)) for _ in range(p)]
        self._remaining = n**3
        # Tasks released by fault recovery; re-issued FIFO ahead of the
        # regular order.  Empty (and never touched) in fault-free runs.
        self._backlog: List[int] = []
        self._setup_order()

    def _setup_order(self) -> None:
        raise NotImplementedError

    def _next_task(self) -> int:
        raise NotImplementedError

    @property
    def total_tasks(self) -> int:
        return self.n**3

    @property
    def done(self) -> bool:
        return self._remaining == 0

    def release_tasks(self, task_ids: np.ndarray) -> None:
        released = np.asarray(task_ids, dtype=np.int64)
        self._backlog.extend(int(t) for t in released)
        self._remaining += int(released.size)

    def forget_worker(self, worker: int) -> None:
        n = self.n
        self._cache_a[worker] = BlockCache((n, n))
        self._cache_b[worker] = BlockCache((n, n))
        self._cache_c[worker] = BlockCache((n, n))

    def assign(self, worker: int, now: float) -> Assignment:
        if self._remaining == 0:
            raise RuntimeError("assign() called after all tasks were allocated")
        flat = self._backlog.pop(0) if self._backlog else self._next_task()
        self._remaining -= 1
        # Private attributes, not the validating properties: this runs once
        # per task (n^3 events per simulation).
        n = self._n
        ij, k = divmod(flat, n)
        i, j = divmod(ij, n)
        blocks = (
            int(self._cache_a[worker].add(i, k))
            + int(self._cache_b[worker].add(k, j))
            + int(self._cache_c[worker].add(i, j))
        )
        task_ids: Optional[np.ndarray] = None
        if self._collect_ids:
            task_ids = np.array([flat], dtype=np.int64)
        # Positional construction (blocks, tasks, phase, task_ids): keyword
        # passing costs ~200ns per event at this call rate.
        return Assignment(blocks, 1, 1, task_ids)


class MatrixRandom(_MatrixTaskByTask):
    """The paper's **RandomMatrix**: uniformly random task selection."""

    name = "RandomMatrix"

    def _setup_order(self) -> None:
        self._sampler = SampleSet(self.n**3)

    def _next_task(self) -> int:
        return self._sampler.draw(self.rng)


class MatrixSorted(_MatrixTaskByTask):
    """The paper's **SortedMatrix**: lexicographic ``(i, j, k)`` order."""

    name = "SortedMatrix"

    def _setup_order(self) -> None:
        self._next = 0

    def _next_task(self) -> int:
        flat = self._next
        self._next += 1
        return flat
