"""DynamicMatrix2Phases: data-aware start, random finish (Section 4.1).

Phase 1 is DynamicMatrix; when ``e^{-beta} n^3`` tasks remain the strategy
switches to RandomMatrix-style allocation, seeding each worker's per-block
caches with the rectangles ``A[I x K]``, ``B[K x J]``, ``C[I x J]``
accumulated during phase 1.

Threshold options mirror
:class:`~repro.core.strategies.outer_two_phase.OuterTwoPhase`; the default
tunes β by minimizing the matmul analysis of Section 4.2.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.strategies.base import Assignment
from repro.core.strategies.matrix_dynamic import MatrixDynamic

if TYPE_CHECKING:
    from repro.platform.platform import Platform
from repro.taskpool.knowledge import BlockCache
from repro.taskpool.sample_set import SampleSet
from repro.utils.validation import check_fraction, check_nonnegative, check_nonnegative_int

__all__ = ["MatrixTwoPhase"]


class MatrixTwoPhase(MatrixDynamic):
    """The paper's **DynamicMatrix2Phases**."""

    name = "DynamicMatrix2Phases"
    kernel = "matrix"

    def __init__(
        self,
        n: int,
        *,
        beta: Optional[float] = None,
        phase1_fraction: Optional[float] = None,
        threshold_tasks: Optional[int] = None,
        agnostic: bool = False,
        collect_ids: bool = False,
    ) -> None:
        super().__init__(n, collect_ids=collect_ids)
        given = [beta is not None, phase1_fraction is not None, threshold_tasks is not None]
        if sum(given) > 1:
            raise ValueError("give at most one of beta / phase1_fraction / threshold_tasks")
        if beta is not None:
            beta = check_nonnegative("beta", beta)
        if phase1_fraction is not None:
            phase1_fraction = check_fraction("phase1_fraction", phase1_fraction)
        if threshold_tasks is not None:
            threshold_tasks = check_nonnegative_int("threshold_tasks", threshold_tasks)
        self._beta = beta
        self._phase1_fraction = phase1_fraction
        self._threshold_tasks = threshold_tasks
        self._agnostic = bool(agnostic)

    def resolve_threshold(self, platform: "Platform") -> int:
        """The phase-2 threshold this configuration yields on *platform*.

        Pure function of (configuration, platform) — the vector kernel
        replays it per replicate, and :meth:`reset` applies it to the
        bound platform via :meth:`_resolve_threshold`.
        """
        total = self.n**3
        if self._threshold_tasks is not None:
            return min(self._threshold_tasks, total)
        if self._phase1_fraction is not None:
            return min(total, int(round((1.0 - self._phase1_fraction) * total)))
        beta = self._beta
        if beta is None:
            from repro.core.analysis.matrix import optimal_matrix_beta

            if self._agnostic:
                rel = np.full(platform.p, 1.0 / platform.p)
            else:
                rel = platform.relative_speeds
            beta = optimal_matrix_beta(rel, self.n)
        self._resolved_beta = float(beta)
        return min(total, int(round(math.exp(-beta) * total)))

    def _resolve_threshold(self) -> int:
        return self.resolve_threshold(self.platform)

    @property
    def beta(self) -> Optional[float]:
        """β in effect (resolved at reset when auto-tuned)."""
        return getattr(self, "_resolved_beta", self._beta)

    @property
    def threshold(self) -> int:
        """Remaining-task count at which phase 2 starts."""
        if not hasattr(self, "_threshold"):
            raise RuntimeError("threshold available only after reset()")
        return self._threshold

    @property
    def phase(self) -> int:
        return 2 if self._phase2 else 1

    # -- lifecycle ----------------------------------------------------------

    def _setup(self) -> None:
        super()._setup()
        self._threshold = self._resolve_threshold()
        self._phase2 = False
        self._sampler: Optional[SampleSet] = None
        self._cache_a: List[BlockCache] = []
        self._cache_b: List[BlockCache] = []
        self._cache_c: List[BlockCache] = []

    def _enter_phase2(self) -> None:
        """Freeze phase-1 index sets into phase-2 per-block caches."""
        self._phase2 = True
        self._sampler = SampleSet(self.n**3, members=self._pool.unprocessed_ids())
        for kn in self._knowledge:
            rows = kn.i.known_indices()
            cols = kn.j.known_indices()
            deps = kn.k.known_indices()
            cache_a = BlockCache((self.n, self.n))
            cache_b = BlockCache((self.n, self.n))
            cache_c = BlockCache((self.n, self.n))
            if rows.size and deps.size:
                cache_a.add_product(rows, deps)
            if deps.size and cols.size:
                cache_b.add_product(deps, cols)
            if rows.size and cols.size:
                cache_c.add_product(rows, cols)
            self._cache_a.append(cache_a)
            self._cache_b.append(cache_b)
            self._cache_c.append(cache_c)

    # -- fault recovery ------------------------------------------------------

    def release_tasks(self, task_ids: np.ndarray) -> None:
        super().release_tasks(task_ids)
        if self._phase2 and self._sampler is not None:
            # Mirror the pool release into the frozen phase-2 sampler.
            for t in np.asarray(task_ids, dtype=np.int64):
                self._sampler.add(int(t))

    def forget_worker(self, worker: int) -> None:
        super().forget_worker(worker)
        if self._phase2:
            self._cache_a[worker] = BlockCache((self.n, self.n))
            self._cache_b[worker] = BlockCache((self.n, self.n))
            self._cache_c[worker] = BlockCache((self.n, self.n))

    # -- scheduling ----------------------------------------------------------

    def assign(self, worker: int, now: float) -> Assignment:
        if self._pool.done:
            raise RuntimeError("assign() called after all tasks were allocated")
        if not self._phase2 and self._pool.remaining <= self._threshold:
            self._enter_phase2()
        if not self._phase2:
            return self._dynamic_assign(worker)
        return self._random_assign(worker)

    def _random_assign(self, worker: int) -> Assignment:
        assert self._sampler is not None
        flat = self._sampler.draw(self.rng)
        n = self.n
        ij, k = divmod(flat, n)
        i, j = divmod(ij, n)
        blocks = (
            int(self._cache_a[worker].add(i, k))
            + int(self._cache_b[worker].add(k, j))
            + int(self._cache_c[worker].add(i, j))
        )
        newly = self._pool.mark_task(i, j, k)
        assert newly, "phase-2 sampler handed out an already-processed task"
        task_ids: Optional[np.ndarray] = None
        if self.collect_ids:
            task_ids = np.array([flat], dtype=np.int64)
        # Positional construction (blocks, tasks, phase, task_ids): keyword
        # passing costs ~200ns per event at this call rate.
        return Assignment(blocks, 1, 2, task_ids)
