"""Strategy interface shared by all schedulers.

A strategy encapsulates the *master's* decision logic: given a requesting
worker, decide which tasks to allocate and which blocks to ship.  It owns
the task pool and the per-worker knowledge state; the simulation engine owns
time.  This split mirrors the paper's model where the master "is aware of
which blocks are replicated on the computing nodes and decides which new
blocks are sent, as well as which tasks are allocated".

Strategies are *reusable*: construct once, then :meth:`Strategy.reset` binds
them to a platform and RNG at the start of each run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Optional

import numpy as np

from repro.platform.platform import Platform
from repro.utils.validation import check_positive_int

__all__ = ["Assignment", "Strategy"]

# Bound once at import: resolving ``object.__setattr__`` inside
# ``Assignment.__init__`` costs two attribute lookups per instance, and one
# Assignment is built per simulated event.
_set_field = object.__setattr__


class Assignment:
    """The master's answer to one work request.

    ``blocks`` is the communication cost (data blocks shipped), ``tasks``
    the number of block tasks allocated.  ``phase`` distinguishes the two
    phases of the *2Phases strategies for tracing.  ``task_ids`` carries the
    allocated tasks' flat ids when the strategy was built with
    ``collect_ids=True``.

    Immutable and ``__slots__``-backed: one instance is created per
    master/worker interaction (~10^6 per large run), so the per-instance
    ``__dict__`` a plain dataclass would carry is measurable in both time
    and memory.
    """

    __slots__ = ("blocks", "tasks", "phase", "task_ids")

    blocks: int
    tasks: int
    phase: int
    task_ids: Optional[np.ndarray]

    def __init__(
        self,
        blocks: int,
        tasks: int,
        phase: int = 1,
        task_ids: Optional[np.ndarray] = None,
    ) -> None:
        # Inline comparisons, not check_* helpers: one Assignment is built
        # per master/worker interaction, and two extra function calls per
        # event are measurable at 10^6 events.
        if blocks < 0:
            raise ValueError(f"blocks must be >= 0, got {blocks}")
        if tasks < 0:
            raise ValueError(f"tasks must be >= 0, got {tasks}")
        if phase not in (1, 2):
            raise ValueError(f"phase must be 1 or 2, got {phase}")
        _set_field(self, "blocks", blocks)
        _set_field(self, "tasks", tasks)
        _set_field(self, "phase", phase)
        _set_field(self, "task_ids", task_ids)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Assignment is immutable; cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Assignment is immutable; cannot delete {name!r}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        if (self.blocks, self.tasks, self.phase) != (other.blocks, other.tasks, other.phase):
            return False
        if self.task_ids is None or other.task_ids is None:
            return self.task_ids is None and other.task_ids is None
        return bool(np.array_equal(self.task_ids, other.task_ids))

    def __hash__(self) -> int:
        # ``task_ids`` is excluded (ndarrays are unhashable); equal
        # assignments still hash equal, which is all the contract needs.
        return hash((self.blocks, self.tasks, self.phase))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Assignment(blocks={self.blocks}, tasks={self.tasks}, "
            f"phase={self.phase}, task_ids={self.task_ids!r})"
        )


class Strategy(ABC):
    """Base class of all scheduling strategies.

    Class attributes
    ----------------
    name:
        The paper's name for the strategy (e.g. ``"DynamicOuter"``).
    kernel:
        ``"outer"`` or ``"matrix"`` — selects the task domain and the
        communication lower bound used for normalization.

    Parameters
    ----------
    n:
        Problem size in blocks per dimension (the paper's ``N / l``).
    collect_ids:
        Propagated to the task pool; when true, every
        :class:`Assignment` carries the flat ids of its tasks so the run can
        be replayed on real data by :mod:`repro.execution`.
    """

    name: ClassVar[str] = "abstract"
    kernel: ClassVar[str] = "abstract"

    def __init__(self, n: int, *, collect_ids: bool = False) -> None:
        self._n = check_positive_int("n", n)
        self._collect_ids = bool(collect_ids)
        self._platform: Optional[Platform] = None
        self._rng: Optional[np.random.Generator] = None

    # -- lifecycle ---------------------------------------------------------

    def reset(self, platform: Platform, rng: np.random.Generator) -> None:
        """Bind to *platform* and *rng* and rebuild all scheduling state."""
        self._platform = platform
        self._rng = rng
        self._setup()

    @abstractmethod
    def _setup(self) -> None:
        """Rebuild pools and per-worker state (platform/rng already bound)."""

    # -- scheduling --------------------------------------------------------

    @abstractmethod
    def assign(self, worker: int, now: float) -> Assignment:
        """Serve one work request from *worker* at simulation time *now*."""

    @property
    @abstractmethod
    def done(self) -> bool:
        """True when every task of the kernel has been allocated."""

    @property
    @abstractmethod
    def total_tasks(self) -> int:
        """Total number of block tasks of the kernel instance."""

    # -- fault recovery ----------------------------------------------------

    def release_tasks(self, task_ids: np.ndarray) -> None:
        """Return allocated-but-unfinished tasks to the allocatable set.

        Called by the fault-aware engine (:mod:`repro.faults`) when an
        assignment is lost before completing: the tasks must become
        allocatable again so a later request re-executes them.  Every
        registered strategy implements this; custom strategies that never
        run under :func:`repro.faults.simulate_faulty` may ignore it.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support fault recovery")

    def forget_worker(self, worker: int) -> None:
        """Drop everything the master believes *worker* holds.

        Called when a worker crashes (its memory is gone): the master must
        re-ship any block the worker needs from now on.  Implementations
        reset the worker's knowledge/caches; they must not touch the task
        pool (that is :meth:`release_tasks`'s job).
        """
        raise NotImplementedError(f"{type(self).__name__} does not support fault recovery")

    def on_worker_lost(self, worker: int, task_ids: Optional[np.ndarray] = None) -> None:
        """Fault hook: *worker* crashed with *task_ids* in flight.

        The default composes :meth:`release_tasks` (the lost in-flight
        tasks go back to the pool) with :meth:`forget_worker` (the worker's
        cached blocks are gone) and is correct for every registered
        strategy.  Override to react to churn — e.g. to rebalance remaining
        work away from flaky workers — but keep the released tasks
        allocatable or the run will never complete.
        """
        if task_ids is not None and task_ids.size:
            self.release_tasks(task_ids)
        self.forget_worker(worker)

    # -- accessors ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Blocks per dimension."""
        return self._n

    @property
    def collect_ids(self) -> bool:
        return self._collect_ids

    @property
    def platform(self) -> Platform:
        if self._platform is None:
            raise RuntimeError(f"{type(self).__name__} used before reset()")
        return self._platform

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise RuntimeError(f"{type(self).__name__} used before reset()")
        return self._rng

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self._n})"
