"""Small shared array helpers for the task-pool bulk-marking primitives.

Both :class:`~repro.taskpool.outer_pool.OuterTaskPool` and
:class:`~repro.taskpool.matrix_pool.MatrixTaskPool` repeatedly need a
one-element ``int64`` array to feed a single new index into their
fancy-indexed marking slabs; keeping the constructor here avoids each pool
re-defining a local lambda for it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["single_index_array"]


def single_index_array(value: int) -> np.ndarray:
    """A one-element ``int64`` array holding *value* (for fancy indexing)."""
    return np.array([value], dtype=np.int64)
