"""Per-worker knowledge of input/output blocks.

Two representations coexist, mirroring the two families of strategies in the
paper:

* the *data-aware* strategies (DynamicOuter / DynamicMatrix) maintain, for
  each worker, **index sets**: the rows of ``a`` / columns of ``b`` (outer
  product) or the sets ``I, J, K`` (matmul) it has received.  A worker then
  owns the full cross/cube of blocks over those sets.
  :class:`IndexKnowledge` tracks one such index dimension with O(1) "draw a
  uniformly random unknown index".

* the *random* strategies (RandomOuter / RandomMatrix and phase 2 of the
  two-phase strategies) ship **individual blocks**; a worker's cache is then
  an arbitrary subset of blocks, tracked by the bitmap :class:`BlockCache`.

:class:`VectorKnowledge` and :class:`CubeKnowledge` bundle two and three
:class:`IndexKnowledge` dimensions for the outer product and matmul cases.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.taskpool.sample_set import SampleSet
from repro.utils.validation import check_positive_int

__all__ = ["IndexKnowledge", "VectorKnowledge", "CubeKnowledge", "BlockCache"]


class IndexKnowledge:
    """Track which indices of one dimension (size *n*) a worker knows.

    Provides the three operations the Dynamic* strategies need:

    * ``known_indices()`` — the known set, as a contiguous array view, for
      vectorized crossing against the processed bitmap;
    * ``draw_unknown(rng)`` — pick a uniformly random *unknown* index and
      mark it known (the "choose i not in I uniformly at random" step);
    * ``add(i)`` — mark a specific index known (phase-2 block shipping).
    """

    __slots__ = ("_n", "_known", "_order", "_count", "_unknown")

    def __init__(self, n: int) -> None:
        self._n = check_positive_int("n", n)
        self._known = np.zeros(self._n, dtype=bool)
        self._order = np.empty(self._n, dtype=np.int64)
        self._count = 0
        self._unknown = SampleSet(self._n)

    @property
    def n(self) -> int:
        return self._n

    @property
    def count(self) -> int:
        """Number of known indices."""
        return self._count

    @property
    def complete(self) -> bool:
        """True when every index of the dimension is known."""
        return self._count == self._n

    def knows(self, i: int) -> bool:
        return bool(self._known[i])

    def known_indices(self) -> np.ndarray:
        """Known indices in insertion order (read-only view, no copy)."""
        view = self._order[: self._count]
        view.flags.writeable = False
        return view

    def add(self, i: int) -> bool:
        """Mark index *i* known; returns ``True`` if it was new."""
        i = int(i)
        if not 0 <= i < self._n:
            raise ValueError(f"index {i} outside [0, {self._n})")
        if self._known[i]:
            return False
        self._known[i] = True
        self._order[self._count] = i
        self._count += 1
        self._unknown.discard(i)
        return True

    def draw_unknown(self, rng: np.random.Generator) -> int:
        """Pick a uniformly random unknown index, mark it known, return it."""
        i = self._unknown.draw(rng)
        self._known[i] = True
        self._order[self._count] = i
        self._count += 1
        return i

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexKnowledge(n={self._n}, known={self._count})"


class VectorKnowledge:
    """Worker knowledge for the outer product: rows of ``a``, columns of ``b``.

    The paper's DynamicOuter keeps ``|I| == |J|`` by always shipping one new
    ``a`` block and one new ``b`` block per request; this class does not
    enforce the equality so that edge cases (one dimension exhausted before
    the other) remain representable.
    """

    __slots__ = ("a", "b")

    def __init__(self, n: int) -> None:
        n = check_positive_int("n", n)
        self.a = IndexKnowledge(n)
        self.b = IndexKnowledge(n)

    @property
    def complete(self) -> bool:
        """True when the worker owns every block of both input vectors."""
        return self.a.complete and self.b.complete


class CubeKnowledge:
    """Worker knowledge for matmul: the index sets ``I``, ``J``, ``K``.

    A worker owning ``I, J, K`` holds blocks ``A[I x K]``, ``B[K x J]`` and
    ``C[I x J]`` and can process any task in ``I x J x K``.
    """

    __slots__ = ("i", "j", "k")

    def __init__(self, n: int) -> None:
        n = check_positive_int("n", n)
        self.i = IndexKnowledge(n)
        self.j = IndexKnowledge(n)
        self.k = IndexKnowledge(n)

    @property
    def complete(self) -> bool:
        return self.i.complete and self.j.complete and self.k.complete

    def dims(self) -> Tuple[IndexKnowledge, IndexKnowledge, IndexKnowledge]:
        return (self.i, self.j, self.k)


class BlockCache:
    """Bitmap over individual blocks of one matrix/vector operand.

    Used by the random strategies (and phase 2 of the two-phase strategies)
    where a worker's holdings are not a Cartesian product.  ``add`` returns
    whether the block was newly received, which is exactly the per-block
    communication cost.
    """

    __slots__ = ("_have", "_count")

    def __init__(self, shape: "int | Tuple[int, ...]") -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ValueError(f"shape must be positive, got {shape}")
        self._have = np.zeros(shape, dtype=bool)
        self._count = 0

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._have.shape

    @property
    def count(self) -> int:
        """Number of distinct blocks held."""
        return self._count

    def has(self, *idx: int) -> bool:
        return bool(self._have[idx])

    def add(self, *idx: int) -> bool:
        """Record block *idx* as held; returns ``True`` if it was new."""
        if self._have[idx]:
            return False
        self._have[idx] = True
        self._count += 1
        return True

    def add_product(self, rows: np.ndarray, cols: np.ndarray) -> int:
        """Mark the full Cartesian product ``rows x cols`` held (2-D caches).

        Used when seeding phase 2 from a Dynamic* worker's index sets.
        Returns the number of newly-held blocks.
        """
        if self._have.ndim != 2:
            raise ValueError("add_product requires a 2-D cache")
        sub = self._have[np.ix_(np.asarray(rows), np.asarray(cols))]
        newly = int(sub.size - np.count_nonzero(sub))
        self._have[np.ix_(np.asarray(rows), np.asarray(cols))] = True
        self._count += newly
        return newly

    def add_indices(self, idx: np.ndarray) -> int:
        """Mark a set of indices held (1-D caches); returns newly-held count."""
        if self._have.ndim != 1:
            raise ValueError("add_indices requires a 1-D cache")
        idx = np.asarray(idx)
        sub = self._have[idx]
        newly = int(idx.size - np.count_nonzero(sub))
        self._have[idx] = True
        self._count += newly
        return newly
