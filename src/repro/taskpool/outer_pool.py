"""The two-dimensional task domain of the block outer product.

The outer product of two vectors of ``n`` blocks defines ``n * n``
independent block tasks ``T[i, j] = a_i b_j^t``.  :class:`OuterTaskPool`
tracks which tasks are processed and implements the vectorized bulk-marking
primitive behind DynamicOuter: when a worker learns a new row ``i`` and
column ``j``, every unprocessed task on the cross
``({i} x (J u {j})) u (I x {j})`` is allocated to it at once (Algorithm 1 of
the paper).

The total marking work over a whole simulation is O(n^2) plus the size of
the index-set slices scanned, which telescopes to O(n^2) as well — this is
what makes the n = 1000 sweeps of Figure 5 cheap in pure NumPy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.taskpool._arrays import single_index_array
from repro.utils.validation import check_positive_int

__all__ = ["OuterTaskPool"]


class OuterTaskPool:
    """Processed/unprocessed state of the ``n x n`` outer-product tasks.

    Task ``(i, j)`` is identified by the flat id ``i * n + j`` wherever ids
    are exchanged (phase-2 sampling, execution replay).

    Parameters
    ----------
    n:
        Number of blocks per input vector (the paper's ``N / l``).
    collect_ids:
        When true, every marking call also returns the flat ids of the tasks
        it newly processed — used by the execution-replay engine to validate
        schedules numerically.  Off by default to keep simulations lean.
    """

    __slots__ = ("_n", "_processed", "_remaining", "collect_ids")

    def __init__(self, n: int, *, collect_ids: bool = False) -> None:
        self._n = check_positive_int("n", n)
        self._processed = np.zeros((self._n, self._n), dtype=bool)
        self._remaining = self._n * self._n
        self.collect_ids = bool(collect_ids)

    # -- queries ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def total(self) -> int:
        """Total number of block tasks, ``n * n``."""
        return self._n * self._n

    @property
    def remaining(self) -> int:
        """Number of still-unprocessed tasks."""
        return self._remaining

    @property
    def done(self) -> bool:
        return self._remaining == 0

    def is_processed(self, i: int, j: int) -> bool:
        return bool(self._processed[i, j])

    def processed_view(self) -> np.ndarray:
        """Read-only view of the processed bitmap (no copy)."""
        view = self._processed.view()
        view.flags.writeable = False
        return view

    def unprocessed_ids(self) -> np.ndarray:
        """Flat ids of all unprocessed tasks (fresh array).

        Used once, at the phase switch of DynamicOuter2Phases, to seed the
        phase-2 uniform sampler.
        """
        return np.flatnonzero(~self._processed.ravel())

    # -- mutation --------------------------------------------------------

    def mark_task(self, i: int, j: int) -> bool:
        """Mark a single task processed; returns ``True`` if it was new."""
        if self._processed[i, j]:
            return False
        self._processed[i, j] = True
        self._remaining -= 1
        return True

    def mark_cross(
        self,
        i: Optional[int],
        j: Optional[int],
        rows: np.ndarray,
        cols: np.ndarray,
    ) -> Tuple[int, Optional[np.ndarray]]:
        """Mark the DynamicOuter cross for new row *i* and new column *j*.

        *rows* / *cols* are the worker's **previously** known index sets
        (``I`` and ``J`` in Algorithm 1, i.e. excluding *i* and *j*).  Either
        of *i*, *j* may be ``None`` when that dimension is already exhausted
        for the worker; the corresponding arm of the cross is skipped.

        Precondition (enforced): *i* must not appear in *rows* nor *j* in
        *cols* — duplicated indices inside one fancy-indexed arm would break
        the count.  The Dynamic* strategies guarantee this by construction.

        Returns ``(count, ids)`` where *count* is the number of newly
        processed tasks and *ids* their flat ids (or ``None`` unless
        ``collect_ids``).

        This is the validating public entry point; the Dynamic* strategies,
        which guarantee the precondition by construction (new indices come
        from the *unknown* sampler), go through :meth:`_mark_cross` — the
        two ``np.any`` scans are measurable at one marking per event.
        """
        if i is not None and np.any(rows == i):
            raise ValueError(f"new index i={i} already in known rows")
        if j is not None and np.any(cols == j):
            raise ValueError(f"new index j={j} already in known cols")
        return self._mark_cross(i, j, rows, cols)

    def _mark_cross(
        self,
        i: Optional[int],
        j: Optional[int],
        rows: np.ndarray,
        cols: np.ndarray,
    ) -> Tuple[int, Optional[np.ndarray]]:
        """Hot-path marking: the :meth:`mark_cross` precondition must hold."""
        n = self._n
        proc = self._processed
        count = 0
        ids: Optional[List[np.ndarray]] = [] if self.collect_ids else None

        if i is not None and j is not None and not proc[i, j]:
            proc[i, j] = True
            count += 1
            if ids is not None:
                ids.append(single_index_array(i * n + j))

        if i is not None and cols.size:
            hit = cols[~proc[i, cols]]
            if hit.size:
                proc[i, hit] = True
                count += hit.size
                if ids is not None:
                    ids.append(i * n + hit.astype(np.int64))

        if j is not None and rows.size:
            hit = rows[~proc[rows, j]]
            if hit.size:
                proc[hit, j] = True
                count += hit.size
                if ids is not None:
                    ids.append(hit.astype(np.int64) * n + j)

        self._remaining -= count
        if ids is None:
            return count, None
        return count, (np.concatenate(ids) if ids else np.empty(0, dtype=np.int64))

    def mark_all(self) -> Tuple[int, Optional[np.ndarray]]:
        """Mark every remaining task processed (worker knows everything).

        Degenerate tail case: once a worker owns both full input vectors it
        can be allocated the whole remainder in one request.
        """
        ids = self.unprocessed_ids() if self.collect_ids else None
        count = self._remaining
        self._processed[:] = True
        self._remaining = 0
        return count, ids

    def release_tasks(self, flat_ids: np.ndarray) -> int:
        """Return allocated-but-unfinished tasks to the unprocessed set.

        Fault recovery: when a worker is lost mid-assignment, its in-flight
        tasks (identified by flat id ``i * n + j``) go back to the pool so a
        later allocation can re-execute them.  Already-unprocessed ids are
        skipped, so the call is idempotent.  Returns the number of tasks
        actually released.
        """
        flat = np.unique(np.asarray(flat_ids, dtype=np.int64))
        if flat.size == 0:
            return 0
        if flat[0] < 0 or flat[-1] >= self._n * self._n:
            raise ValueError(f"task ids must lie in [0, {self._n * self._n})")
        i, j = np.divmod(flat, self._n)
        held = self._processed[i, j]
        count = int(np.count_nonzero(held))
        if count:
            self._processed[i[held], j[held]] = False
            self._remaining += count
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OuterTaskPool(n={self._n}, remaining={self._remaining}/{self.total})"
