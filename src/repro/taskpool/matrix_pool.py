"""The three-dimensional task domain of blocked matrix multiplication.

``C = A B`` with ``n x n`` blocks defines ``n^3`` independent block tasks
``T[i, j, k] : C[i, j] += A[i, k] B[k, j]``.  :class:`MatrixTaskPool` tracks
processing state and implements the vectorized *shell* marking behind
DynamicMatrix (Algorithm 3 of the paper): when a worker's index sets grow
from ``(I, J, K)`` to ``(I u {i}, J u {j}, K u {k})`` it is allocated every
unprocessed task of the grown cube having ``i' = i`` or ``j' = j`` or
``k' = k``.

That shell decomposes into three *disjoint* slabs (so nothing is counted
twice)::

    S1 = {i} x (J u {j}) x (K u {k})        (all tasks with i' = i)
    S2 =  I  x    {j}    x (K u {k})        (i' != i, j' = j)
    S3 =  I  x     J     x    {k}           (i' != i, j' != j, k' = k)

each of which is a fancy-indexed sub-block of the processed bitmap.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.taskpool._arrays import single_index_array
from repro.utils.validation import check_positive_int

__all__ = ["MatrixTaskPool"]


class MatrixTaskPool:
    """Processed/unprocessed state of the ``n^3`` matmul block tasks.

    Task ``(i, j, k)`` has flat id ``(i * n + j) * n + k``.

    Parameters mirror :class:`~repro.taskpool.outer_pool.OuterTaskPool`.
    """

    __slots__ = ("_n", "_processed", "_remaining", "collect_ids")

    def __init__(self, n: int, *, collect_ids: bool = False) -> None:
        self._n = check_positive_int("n", n)
        self._processed = np.zeros((self._n,) * 3, dtype=bool)
        self._remaining = self._n**3
        self.collect_ids = bool(collect_ids)

    # -- queries ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def total(self) -> int:
        """Total number of block tasks, ``n^3``."""
        return self._n**3

    @property
    def remaining(self) -> int:
        return self._remaining

    @property
    def done(self) -> bool:
        return self._remaining == 0

    def is_processed(self, i: int, j: int, k: int) -> bool:
        return bool(self._processed[i, j, k])

    def processed_view(self) -> np.ndarray:
        view = self._processed.view()
        view.flags.writeable = False
        return view

    def unprocessed_ids(self) -> np.ndarray:
        """Flat ids of all unprocessed tasks (fresh array)."""
        return np.flatnonzero(~self._processed.ravel())

    # -- mutation --------------------------------------------------------

    def mark_task(self, i: int, j: int, k: int) -> bool:
        """Mark one task processed; returns ``True`` if it was new."""
        if self._processed[i, j, k]:
            return False
        self._processed[i, j, k] = True
        self._remaining -= 1
        return True

    def _mark_slab(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        deps: np.ndarray,
        ids: Optional[List[np.ndarray]],
    ) -> int:
        """Mark every unprocessed task in ``rows x cols x deps``; return count."""
        if rows.size == 0 or cols.size == 0 or deps.size == 0:
            return 0
        # Hand-built open mesh: equivalent to ``np.ix_(rows, cols, deps)``
        # but without its per-call dtype introspection, which dominates at
        # one shell (three slabs) per simulated event.
        grid = (rows[:, None, None], cols[:, None], deps)
        sub = self._processed[grid]
        fresh = ~sub
        count = int(np.count_nonzero(fresh))
        if count == 0:
            return 0
        self._processed[grid] = True
        if ids is not None:
            n = self._n
            ri, ci, di = np.nonzero(fresh)
            flat = (rows[ri].astype(np.int64) * n + cols[ci]) * n + deps[di]
            ids.append(flat)
        return count

    def mark_shell(
        self,
        i: Optional[int],
        j: Optional[int],
        k: Optional[int],
        rows: np.ndarray,
        cols: np.ndarray,
        deps: np.ndarray,
    ) -> Tuple[int, Optional[np.ndarray]]:
        """Mark the DynamicMatrix growth shell.

        *rows*, *cols*, *deps* are the worker's previously known sets
        ``I, J, K`` (excluding the new indices).  Any of *i*, *j*, *k* may be
        ``None`` when that dimension is exhausted; the shell degrades
        gracefully (only slabs involving actually-new indices are scanned).

        Precondition (enforced): a new index must not already belong to its
        known set, and known sets must not contain duplicates — otherwise the
        fancy-indexed slabs would contain repeated cells and the count would
        be wrong.  The Dynamic* strategies guarantee this by construction.

        Returns ``(count, ids)`` as in
        :meth:`~repro.taskpool.outer_pool.OuterTaskPool.mark_cross`.

        This is the validating public entry point; DynamicMatrix, which
        guarantees the precondition by construction, goes through
        :meth:`_mark_shell` to skip the three ``np.any`` scans per event.
        """
        if i is not None and np.any(rows == i):
            raise ValueError(f"new index i={i} already in known rows")
        if j is not None and np.any(cols == j):
            raise ValueError(f"new index j={j} already in known cols")
        if k is not None and np.any(deps == k):
            raise ValueError(f"new index k={k} already in known deps")
        return self._mark_shell(i, j, k, rows, cols, deps)

    def _mark_shell(
        self,
        i: Optional[int],
        j: Optional[int],
        k: Optional[int],
        rows: np.ndarray,
        cols: np.ndarray,
        deps: np.ndarray,
    ) -> Tuple[int, Optional[np.ndarray]]:
        """Hot-path marking: the :meth:`mark_shell` precondition must hold."""
        ids: Optional[List[np.ndarray]] = [] if self.collect_ids else None
        grown_j = np.concatenate((cols, single_index_array(j))) if j is not None else cols
        grown_k = np.concatenate((deps, single_index_array(k))) if k is not None else deps

        count = 0
        if i is not None:
            count += self._mark_slab(single_index_array(i), grown_j, grown_k, ids)
        if j is not None:
            count += self._mark_slab(
                np.asarray(rows, dtype=np.int64), single_index_array(j), grown_k, ids
            )
        if k is not None:
            count += self._mark_slab(
                np.asarray(rows, dtype=np.int64),
                np.asarray(cols, dtype=np.int64),
                single_index_array(k),
                ids,
            )

        self._remaining -= count
        if ids is None:
            return count, None
        return count, (np.concatenate(ids) if ids else np.empty(0, dtype=np.int64))

    def mark_all(self) -> Tuple[int, Optional[np.ndarray]]:
        """Mark every remaining task processed (worker knows everything)."""
        ids = self.unprocessed_ids() if self.collect_ids else None
        count = self._remaining
        self._processed[:] = True
        self._remaining = 0
        return count, ids

    def release_tasks(self, flat_ids: np.ndarray) -> int:
        """Return allocated-but-unfinished tasks to the unprocessed set.

        Mirrors :meth:`~repro.taskpool.outer_pool.OuterTaskPool.release_tasks`
        for the 3-D domain: ids are ``(i * n + j) * n + k``, duplicate and
        already-unprocessed ids are skipped, and the number of tasks actually
        released is returned.
        """
        flat = np.unique(np.asarray(flat_ids, dtype=np.int64))
        if flat.size == 0:
            return 0
        if flat[0] < 0 or flat[-1] >= self._n**3:
            raise ValueError(f"task ids must lie in [0, {self._n**3})")
        ij, k = np.divmod(flat, self._n)
        i, j = np.divmod(ij, self._n)
        held = self._processed[i, j, k]
        count = int(np.count_nonzero(held))
        if count:
            self._processed[i[held], j[held], k[held]] = False
            self._remaining += count
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MatrixTaskPool(n={self._n}, remaining={self._remaining}/{self.total})"
