"""Task-pool substrate: the data structures behind every scheduling strategy.

This package provides

* :class:`~repro.taskpool.sample_set.SampleSet` — O(1) uniform sampling
  without replacement over a shrinking integer universe (swap-remove over a
  pre-sized buffer), with an opt-in batched fast path
  (:class:`~repro.taskpool.sample_set.FastSampleSet`) that is
  stream-compatible with single draws;
* :class:`~repro.taskpool.outer_pool.OuterTaskPool` — the ``n x n`` domain of
  outer-product block tasks with vectorized cross marking;
* :class:`~repro.taskpool.matrix_pool.MatrixTaskPool` — the ``n x n x n``
  domain of matmul block tasks with vectorized shell marking;
* per-worker knowledge trackers
  (:class:`~repro.taskpool.knowledge.VectorKnowledge`,
  :class:`~repro.taskpool.knowledge.CubeKnowledge`,
  :class:`~repro.taskpool.knowledge.BlockCache`).
"""

from repro.taskpool.knowledge import BlockCache, CubeKnowledge, VectorKnowledge
from repro.taskpool.matrix_pool import MatrixTaskPool
from repro.taskpool.outer_pool import OuterTaskPool
from repro.taskpool.sample_set import FastDrawMixin, FastSampleSet, SampleSet

__all__ = [
    "SampleSet",
    "FastDrawMixin",
    "FastSampleSet",
    "OuterTaskPool",
    "MatrixTaskPool",
    "VectorKnowledge",
    "CubeKnowledge",
    "BlockCache",
]
