"""Uniform sampling without replacement over a shrinking set of integers.

The randomized strategies of the paper repeatedly need "pick an unprocessed
task uniformly at random" (RandomOuter / RandomMatrix and the second phase
of the two-phase strategies) and "pick an unknown row index uniformly at
random" (the Dynamic* strategies).  Both must be O(1) per draw even when the
universe has 10^6 elements (matrices of 100 x 100 blocks), so rejection
sampling against a bitmap is not acceptable near the end of a run.

:class:`SampleSet` keeps the live elements in the prefix of a pre-sized
buffer together with an inverse permutation, giving O(1)
``draw``/``discard``/``__contains__`` with zero per-operation allocation —
the idiom recommended by the HPC guides (pre-allocate, mutate in place).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = ["FastDrawMixin", "FastSampleSet", "SampleSet"]


class SampleSet:
    """A set over ``{0, ..., universe - 1}`` supporting O(1) uniform draws.

    Parameters
    ----------
    universe:
        Size of the integer universe.
    members:
        Optional iterable of initial members.  By default the set starts
        *full* (all universe elements present), which matches the common
        case of "all tasks unprocessed" / "all rows unknown".

    Notes
    -----
    Layout invariant: ``_items[:_size]`` holds the current members in
    arbitrary order and ``_pos[v]`` is the index of ``v`` in ``_items`` if
    ``v`` is a member, else ``-1``.  ``discard`` swaps the removed element
    with the last live one (swap-remove), so no holes ever appear.

    Both buffers are plain Python lists: every operation is a scalar
    read-modify-write, where list indexing is several times faster than
    NumPy scalar indexing (no per-access dtype boxing) — and the draw loop
    is the single hottest call of the task-by-task strategies.  The RNG is
    still consumed through ``rng.integers`` exactly as before, so the
    representation is invisible to simulated results.
    """

    __slots__ = ("_universe", "_items", "_pos", "_size")

    def __init__(self, universe: int, members: Optional[Iterable[int]] = None) -> None:
        self._universe = check_positive_int("universe", universe)
        if members is None:
            self._items = list(range(self._universe))
            self._pos = list(range(self._universe))
            self._size = self._universe
        else:
            member_arr = np.asarray(list(members), dtype=np.int64)
            if member_arr.size:
                if member_arr.min() < 0 or member_arr.max() >= self._universe:
                    raise ValueError("members must lie in [0, universe)")
                if np.unique(member_arr).size != member_arr.size:
                    raise ValueError("members must be distinct")
            self._items = member_arr.tolist() + [0] * (self._universe - int(member_arr.size))
            pos = np.full(self._universe, -1, dtype=np.int64)
            pos[member_arr] = np.arange(member_arr.size, dtype=np.int64)
            self._pos = pos.tolist()
            self._size = int(member_arr.size)

    # -- queries ---------------------------------------------------------

    @property
    def universe(self) -> int:
        """Size of the underlying integer universe."""
        return self._universe

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, (int, np.integer)):
            return False
        v = int(value)
        return 0 <= v < self._universe and self._pos[v] >= 0

    def __iter__(self) -> Iterator[int]:
        """Iterate over current members (arbitrary order, snapshot)."""
        return iter(self._items[: self._size])

    def members(self) -> np.ndarray:
        """Return a copy of the current members as an ``int64`` array."""
        return np.asarray(self._items[: self._size], dtype=np.int64)

    # -- mutation --------------------------------------------------------

    def add(self, value: int) -> bool:
        """Insert *value*; returns ``True`` if it was absent."""
        v = int(value)
        if not 0 <= v < self._universe:
            raise ValueError(f"value {v} outside universe [0, {self._universe})")
        if self._pos[v] >= 0:
            return False
        self._items[self._size] = v
        self._pos[v] = self._size
        self._size += 1
        return True

    def discard(self, value: int) -> bool:
        """Remove *value* if present; returns ``True`` if it was removed."""
        v = int(value)
        if not 0 <= v < self._universe:
            return False
        idx = self._pos[v]
        if idx < 0:
            return False
        last = self._items[self._size - 1]
        self._items[idx] = last
        self._pos[last] = idx
        self._pos[v] = -1
        self._size -= 1
        return True

    def sample(self, rng: np.random.Generator) -> int:
        """Return a uniformly random member *without* removing it."""
        if self._size == 0:
            raise IndexError("sample from an empty SampleSet")
        return self._items[int(rng.integers(self._size))]

    def draw(self, rng: np.random.Generator) -> int:
        """Remove and return a uniformly random member."""
        if self._size == 0:
            raise IndexError("draw from an empty SampleSet")
        items = self._items
        pos = self._pos
        idx = int(rng.integers(self._size))
        v = items[idx]
        self._size -= 1
        last = items[self._size]
        items[idx] = last
        pos[last] = idx
        pos[v] = -1
        return v

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SampleSet(universe={self._universe}, size={self._size})"


class FastDrawMixin:
    """Opt-in batched draws for :class:`SampleSet`, stream-compatible.

    :meth:`draw_many` consumes the RNG **exactly** like ``count`` successive
    :meth:`SampleSet.draw` calls — one bounded ``rng.integers(size)`` draw
    per removed element, with the same shrinking bounds in the same order —
    so switching a caller to the batched form cannot change any simulated
    result.  What it saves is pure Python overhead: per-call method
    dispatch, attribute lookups and emptiness re-checks, which dominate the
    O(1) swap-remove itself in task-by-task strategies.

    Only mix this into :class:`SampleSet` (or a subclass that keeps its
    layout invariant); :class:`FastSampleSet` is the ready-made combination.
    Callers whose draw pattern is *not* a straight run of draws from one
    generator should keep using ``draw`` — batching is only safe where the
    call sequence is equivalent, which is what keeps replicates bit-identical
    to the serial reference.
    """

    _items: List[int]
    _pos: List[int]
    _size: int

    def draw_many(self, rng: np.random.Generator, count: int) -> List[int]:
        """Remove and return *count* uniformly random members, in draw order."""
        count = check_nonnegative_int("count", count)
        if count > self._size:
            raise IndexError(f"cannot draw {count} from a set of {self._size}")
        items = self._items
        pos = self._pos
        size = self._size
        integers = rng.integers
        out: List[int] = []
        append = out.append
        for _ in range(count):
            idx = int(integers(size))
            v = items[idx]
            size -= 1
            last = items[size]
            items[idx] = last
            pos[last] = idx
            pos[v] = -1
            append(v)
        self._size = size
        return out


class FastSampleSet(FastDrawMixin, SampleSet):
    """:class:`SampleSet` with the batched :meth:`FastDrawMixin.draw_many` API."""

