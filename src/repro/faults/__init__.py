"""Fault injection and recovery for dynamic schedulers on unreliable platforms.

The paper evaluates dynamic scheduling under *speed* variability (Figure
8); this subsystem adds the orthogonal *availability* axis — crashes,
stragglers and lost messages — while keeping every run a pure function of
``(config, seed)``:

* :mod:`repro.faults.models` — deterministic, pre-drawn fault schedules
  (:class:`WorkerCrash`, :class:`Slowdown`, :class:`AssignmentLoss`,
  :class:`FaultSchedule`);
* :mod:`repro.faults.policies` — recovery policies
  (:class:`ReassignLost`, :class:`HeartbeatTimeout`, :class:`ReplicateTail`);
* :mod:`repro.faults.engine` — :func:`simulate_faulty`, the fault-aware
  event loop; bit-identical to :func:`repro.simulator.simulate` for an
  empty schedule.
"""

from repro.faults.engine import FaultDeadlockError, simulate_faulty
from repro.faults.models import AssignmentLoss, FaultSchedule, Slowdown, WorkerCrash
from repro.faults.policies import (
    HeartbeatTimeout,
    ReassignLost,
    RecoveryPolicy,
    ReplicateTail,
)

__all__ = [
    "simulate_faulty",
    "FaultDeadlockError",
    "FaultSchedule",
    "WorkerCrash",
    "Slowdown",
    "AssignmentLoss",
    "RecoveryPolicy",
    "ReassignLost",
    "HeartbeatTimeout",
    "ReplicateTail",
]
