"""Recovery policies: how the master reacts to faults.

A :class:`RecoveryPolicy` plugs into :func:`repro.faults.simulate_faulty`
and decides three things:

* whether an issued assignment gets a heartbeat deadline
  (:meth:`~RecoveryPolicy.timeout_deadline`);
* bookkeeping when such a deadline fires
  (:meth:`~RecoveryPolicy.register_timeout`);
* whether an idle worker with no allocatable work should duplicate another
  worker's in-flight tail tasks instead of parking
  (:meth:`~RecoveryPolicy.tail_replicas`).

Releasing crashed workers' in-flight tasks back to the pool is *not* a
policy decision — the engine always does it (otherwise no run with a crash
could terminate); policies only add proactive behavior on top.  The
baseline :class:`ReassignLost` adds nothing, :class:`HeartbeatTimeout`
re-issues suspiciously late assignments, and :class:`ReplicateTail`
duplicates the expected tail of the computation to mask stragglers.
"""

from __future__ import annotations

import math
from typing import ClassVar, List, Optional, Sequence

import numpy as np

from repro.core.analysis.beta import agnostic_beta
from repro.core.strategies.base import Strategy
from repro.platform.platform import Platform
from repro.utils.validation import check_positive

__all__ = ["RecoveryPolicy", "ReassignLost", "HeartbeatTimeout", "ReplicateTail"]


class RecoveryPolicy:
    """Base policy: react to crashes only (reassignment, no proactive work).

    Subclasses override the hooks they care about; every hook has a correct
    no-op default, so a policy can be as small as one method.  Policies are
    reusable across runs: :meth:`reset` rebuilds all per-run state.
    """

    name: ClassVar[str] = "abstract"

    #: Whether the policy needs per-task completion tracking.  When true,
    #: :func:`repro.faults.simulate_faulty` requires the strategy to be
    #: built with ``collect_ids=True`` even for an empty fault schedule.
    needs_task_ids: ClassVar[bool] = False

    def reset(self, strategy: Strategy, platform: Platform) -> None:
        """Bind to the run's strategy/platform; rebuild per-run state."""

    def timeout_deadline(
        self, worker: int, now: float, expected_duration: float
    ) -> Optional[float]:
        """Heartbeat deadline for an assignment issued at *now*, or ``None``.

        *expected_duration* is the master's estimate (nominal compute time
        at the worker's known speed, before any hidden slowdown).  Returning
        a deadline makes the engine release the assignment's tasks back to
        the pool if the worker has not finished by then.
        """
        return None

    def register_timeout(self, worker: int) -> None:
        """Called when a deadline fired and the assignment was released."""

    def tail_replicas(
        self,
        worker: int,
        now: float,
        inflight: Sequence[Optional[np.ndarray]],
        completed: np.ndarray,
        n_completed: int,
    ) -> Optional[np.ndarray]:
        """Task ids for *worker* to duplicate, or ``None`` to park it.

        Called only when the pool has allocated everything but completions
        are still outstanding.  *inflight* maps each worker to its in-flight
        task ids (``None`` when idle), *completed* is the first-completion
        bitmap over flat task ids.
        """
        return None


class ReassignLost(RecoveryPolicy):
    """The baseline: crashed workers' tasks go back to the pool, nothing more.

    Reallocation is automatically data-aware for the Dynamic* strategies:
    released tasks re-enter the same pool the strategy selects from, so the
    master hands them to whichever requester already holds the most relevant
    blocks — no policy-side placement logic is needed.
    """

    name = "ReassignLost"


class HeartbeatTimeout(RecoveryPolicy):
    """Declare an assignment lost after ``k``× its expected duration.

    When a deadline fires, the in-flight tasks are released for
    re-execution elsewhere while the (possibly just slow) worker keeps
    computing — a straggler that eventually finishes produces duplicate
    completions, which the engine counts but ignores for correctness.
    Each timeout on a worker multiplies its next deadline by *backoff*
    (exponential backoff), so a persistently slow worker is given
    progressively more slack instead of being re-issued in a tight loop.

    ``k`` must exceed 1: with ``k <= 1`` every on-time assignment would be
    declared lost, and a fault-free run would no longer match the fault-free
    engine.
    """

    name = "HeartbeatTimeout"
    needs_task_ids = True

    def __init__(self, k: float = 3.0, backoff: float = 2.0) -> None:
        self.k = check_positive("k", k)
        if self.k <= 1.0:
            raise ValueError(f"timeout multiplier k must be > 1, got {k}")
        self.backoff = check_positive("backoff", backoff)
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        self._attempts: List[int] = []

    def reset(self, strategy: Strategy, platform: Platform) -> None:
        self._attempts = [0] * platform.p

    def timeout_deadline(
        self, worker: int, now: float, expected_duration: float
    ) -> Optional[float]:
        if expected_duration <= 0.0:
            return None
        slack = self.k * self.backoff ** self._attempts[worker]
        return now + slack * expected_duration

    def register_timeout(self, worker: int) -> None:
        self._attempts[worker] += 1


class ReplicateTail(RecoveryPolicy):
    """Duplicate the computation's tail to mask stragglers.

    Section 3.5's analysis shows that after the dynamic phase has allocated
    most tasks, roughly ``exp(-beta) * total`` tasks remain — the tail whose
    stragglers dominate the makespan on an unreliable platform.  This policy
    lets an idle worker duplicate another worker's in-flight tasks once the
    number of uncompleted tasks drops to that threshold; whichever copy
    finishes first counts, the other becomes a duplicate completion.

    With ``beta=None`` the threshold uses the speed-agnostic
    :func:`repro.core.analysis.beta.agnostic_beta` for the strategy's kernel
    — the same "only p and n are needed" property as DynamicOuter2Phases.
    Each task is duplicated at most once, and every duplicated task costs
    the kernel's full per-task block count (2 for the outer product, 3 for
    matmul) — an upper bound, since the replica target may cache some
    blocks already.
    """

    name = "ReplicateTail"
    needs_task_ids = True

    def __init__(self, beta: Optional[float] = None) -> None:
        self._beta = None if beta is None else check_positive("beta", beta)
        self._threshold = 0
        self._total = 0
        self._duplicated: Optional[np.ndarray] = None

    def reset(self, strategy: Strategy, platform: Platform) -> None:
        beta = self._beta
        if beta is None:
            beta = agnostic_beta(strategy.kernel, platform.p, strategy.n)
        self._total = strategy.total_tasks
        # The expected tail size; at least 1 so the policy is never inert.
        self._threshold = max(1, round(math.exp(-beta) * self._total))
        self._duplicated = np.zeros(self._total, dtype=bool)

    @property
    def threshold(self) -> int:
        """Uncompleted-task count at or below which replication starts."""
        return self._threshold

    def tail_replicas(
        self,
        worker: int,
        now: float,
        inflight: Sequence[Optional[np.ndarray]],
        completed: np.ndarray,
        n_completed: int,
    ) -> Optional[np.ndarray]:
        duplicated = self._duplicated
        if duplicated is None:
            raise RuntimeError("ReplicateTail used before reset()")
        if self._total - n_completed > self._threshold:
            return None
        best: Optional[np.ndarray] = None
        for other, ids in enumerate(inflight):
            if other == worker or ids is None or ids.size == 0:
                continue
            candidates = ids[~completed[ids] & ~duplicated[ids]]
            if candidates.size and (best is None or candidates.size > best.size):
                best = candidates
        if best is None:
            return None
        duplicated[best] = True
        return best.copy()
