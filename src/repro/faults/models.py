"""Deterministic fault models: crashes, slowdowns and lost assignments.

The paper's platforms are unreliable in speed only (Figure 8's ``dyn.*``
scenarios); this module adds the orthogonal failure axis — workers that
disappear, straggle or lose messages — while preserving the repo's core
contract: *a run is a pure function of (config, seed)*.

All fault events are **pre-drawn**: :meth:`FaultSchedule.draw` materializes
the full schedule from its own RNG stream before the simulation starts, so
the fault process never interleaves with the strategy's draws.  Two
consequences:

* an empty schedule leaves :func:`repro.faults.simulate_faulty` bit-identical
  to :func:`repro.simulator.simulate` (nothing extra is drawn from the run
  RNG);
* worker ``w``'s fault stream is drawn from the ``w``-th spawned child of
  the schedule seed, so it depends only on ``(seed, w)`` — adding workers to
  a platform never perturbs the faults injected into existing ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences
from repro.utils.validation import (
    check_nonnegative,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = ["WorkerCrash", "Slowdown", "AssignmentLoss", "FaultSchedule"]

#: Floor applied to drawn downtimes/durations so intervals are never empty.
_MIN_INTERVAL = 1e-9


@dataclass(frozen=True)
class WorkerCrash:
    """Worker *worker* crashes at *time* and restarts after *downtime*.

    A crash destroys the worker's memory: its in-flight tasks are lost and
    every block it cached must be re-shipped if needed again.  The restart
    at ``time + downtime`` rejoins the worker with a cold cache.
    """

    worker: int
    time: float
    downtime: float

    def __post_init__(self) -> None:
        check_nonnegative_int("worker", self.worker)
        check_nonnegative("time", self.time)
        check_positive("downtime", self.downtime)

    @property
    def restart_time(self) -> float:
        return self.time + self.downtime


@dataclass(frozen=True)
class Slowdown:
    """Transient straggler window: assignments issued to *worker* while
    ``start <= t < start + duration`` take *factor* times their nominal
    compute time.

    The factor applies to the whole assignment whose issue time falls in the
    window (the granularity at which the master observes progress), not to
    the overlapped fraction — a deliberate simplification that keeps the
    schedule pre-drawable.
    """

    worker: int
    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        check_nonnegative_int("worker", self.worker)
        check_nonnegative("start", self.start)
        check_positive("duration", self.duration)
        factor = check_positive("factor", self.factor)
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class AssignmentLoss:
    """The *request_index*-th assignment issued to *worker* is lost in
    transit.

    The data blocks still arrive (the master's knowledge of the worker's
    cache stays consistent) but the task-allocation message does not: the
    tasks return to the pool, and the worker re-requests work after the
    assignment's nominal compute time elapses unanswered.
    """

    worker: int
    request_index: int

    def __post_init__(self) -> None:
        check_nonnegative_int("worker", self.worker)
        check_nonnegative_int("request_index", self.request_index)


@dataclass(frozen=True)
class FaultSchedule:
    """Immutable, fully pre-drawn set of fault events for one run.

    Build one with :meth:`draw` (seed-driven) or construct directly from
    event lists for hand-crafted scenarios and tests.  Events are normalized
    to tuples sorted by worker and time, so two schedules with the same
    events compare equal regardless of construction order.
    """

    crashes: Tuple[WorkerCrash, ...] = field(default_factory=tuple)
    slowdowns: Tuple[Slowdown, ...] = field(default_factory=tuple)
    losses: Tuple[AssignmentLoss, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "crashes", tuple(sorted(self.crashes, key=lambda c: (c.worker, c.time)))
        )
        object.__setattr__(
            self,
            "slowdowns",
            tuple(sorted(self.slowdowns, key=lambda s: (s.worker, s.start))),
        )
        object.__setattr__(
            self,
            "losses",
            tuple(sorted(self.losses, key=lambda x: (x.worker, x.request_index))),
        )
        prev: Dict[int, WorkerCrash] = {}
        for crash in self.crashes:
            earlier = prev.get(crash.worker)
            if earlier is not None and crash.time < earlier.restart_time:
                raise ValueError(
                    f"worker {crash.worker} crashes at t={crash.time} while "
                    f"already down (until t={earlier.restart_time})"
                )
            prev[crash.worker] = crash
        seen = set()
        for loss in self.losses:
            key = (loss.worker, loss.request_index)
            if key in seen:
                raise ValueError(
                    f"duplicate assignment loss for worker {loss.worker}, "
                    f"request {loss.request_index}"
                )
            seen.add(key)

    # -- introspection -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the schedule injects no fault at all."""
        return not (self.crashes or self.slowdowns or self.losses)

    @property
    def max_worker(self) -> int:
        """Largest worker id referenced by any event (``-1`` when empty)."""
        ids = [c.worker for c in self.crashes]
        ids += [s.worker for s in self.slowdowns]
        ids += [x.worker for x in self.losses]
        return max(ids) if ids else -1

    def __len__(self) -> int:
        return len(self.crashes) + len(self.slowdowns) + len(self.losses)

    def cache_token(self) -> List[object]:
        """Canonical description for the result cache (:mod:`repro.store`).

        The schedule is fully pre-drawn, so listing every event captures it
        exactly; two schedules with equal tokens inject identical faults.
        """
        return [
            "fault-schedule",
            [[c.worker, c.time, c.downtime] for c in self.crashes],
            [[s.worker, s.start, s.duration, s.factor] for s in self.slowdowns],
            [[x.worker, x.request_index] for x in self.losses],
        ]

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The fault-free schedule (``simulate_faulty`` reduces to ``simulate``)."""
        return cls()

    @classmethod
    def draw(
        cls,
        p: int,
        horizon: float,
        *,
        rng: SeedLike = None,
        crash_rate: float = 0.0,
        mean_downtime: float = 1.0,
        slowdown_rate: float = 0.0,
        slowdown_factor: float = 3.0,
        mean_slowdown: float = 1.0,
        loss_prob: float = 0.0,
        max_requests: int = 100_000,
    ) -> "FaultSchedule":
        """Pre-draw a schedule for *p* workers over ``[0, horizon)``.

        Crashes and slowdown windows follow independent per-worker renewal
        processes with exponential inter-event gaps (rates per simulated
        time unit); no crash is drawn while the worker is already down.
        Assignment losses are Bernoulli(*loss_prob*) per issued assignment,
        pre-drawn as geometric gaps over the first *max_requests* request
        indices.

        Worker ``w``'s events come from the ``w``-th spawned child of *rng*
        (see :func:`repro.utils.rng.spawn_seed_sequences`), so they are
        invariant under changes of *p*.
        """
        p = check_positive_int("p", p)
        horizon = check_positive("horizon", horizon)
        crash_rate = check_nonnegative("crash_rate", crash_rate)
        mean_downtime = check_positive("mean_downtime", mean_downtime)
        slowdown_rate = check_nonnegative("slowdown_rate", slowdown_rate)
        slowdown_factor = check_positive("slowdown_factor", slowdown_factor)
        if slowdown_factor < 1.0:
            raise ValueError(f"slowdown_factor must be >= 1, got {slowdown_factor}")
        mean_slowdown = check_positive("mean_slowdown", mean_slowdown)
        loss_prob = check_probability("loss_prob", loss_prob)
        max_requests = check_positive_int("max_requests", max_requests)

        crashes: List[WorkerCrash] = []
        slowdowns: List[Slowdown] = []
        losses: List[AssignmentLoss] = []
        for worker, child in enumerate(spawn_seed_sequences(rng, p)):
            gen = as_generator(child)
            # Draw order is fixed (crashes, then slowdowns, then losses) so a
            # worker's stream is a deterministic function of (seed, worker).
            if crash_rate > 0.0:
                t = 0.0
                while True:
                    t += float(gen.exponential(1.0 / crash_rate))
                    if t >= horizon:
                        break
                    downtime = max(float(gen.exponential(mean_downtime)), _MIN_INTERVAL)
                    crashes.append(WorkerCrash(worker, t, downtime))
                    t += downtime
            if slowdown_rate > 0.0 and slowdown_factor > 1.0:
                t = 0.0
                while True:
                    t += float(gen.exponential(1.0 / slowdown_rate))
                    if t >= horizon:
                        break
                    duration = max(float(gen.exponential(mean_slowdown)), _MIN_INTERVAL)
                    slowdowns.append(Slowdown(worker, t, duration, slowdown_factor))
                    t += duration
            if loss_prob > 0.0:
                index = -1
                while True:
                    index += int(gen.geometric(loss_prob))
                    if index >= max_requests:
                        break
                    losses.append(AssignmentLoss(worker, index))
                    if loss_prob >= 1.0:
                        # Every request lost: enumerate instead of looping
                        # one geometric draw per index.
                        losses.extend(
                            AssignmentLoss(worker, i) for i in range(index + 1, max_requests)
                        )
                        break
        return cls(tuple(crashes), tuple(slowdowns), tuple(losses))

    def scaled(self, factor: float) -> "FaultSchedule":
        """A copy with every timestamp/duration multiplied by *factor*.

        Useful to adapt a schedule drawn for one horizon to a problem whose
        makespan is *factor* times longer; request indices are untouched.
        """
        factor = check_positive("factor", factor)
        if not math.isfinite(factor):  # pragma: no cover - check_positive guards
            raise ValueError(f"factor must be finite, got {factor}")
        return FaultSchedule(
            tuple(
                WorkerCrash(c.worker, c.time * factor, c.downtime * factor)
                for c in self.crashes
            ),
            tuple(
                Slowdown(s.worker, s.start * factor, s.duration * factor, s.factor)
                for s in self.slowdowns
            ),
            self.losses,
        )
