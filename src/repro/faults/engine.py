"""The fault-aware simulation loop.

:func:`simulate_faulty` wraps the demand-driven execution model of
:func:`repro.simulator.simulate` with crash/restart, slowdown, lost-message
and heartbeat-timeout events, all multiplexed through the *same*
:class:`~repro.simulator.events.EventQueue`.  Four event kinds share the
queue, encoded into the integer payload as ``kind + 4 * (worker + p * epoch)``:

========  =====================================================
``SELF``  worker becomes idle: complete its assignment, request
``CRASH`` pre-drawn worker crash fires
``RESTART`` crashed worker rejoins (cold cache) and requests
``TIMEOUT`` a policy heartbeat deadline fires
========  =====================================================

``epoch`` is a per-worker monotone counter bumped on every crash and every
assignment completion; events carrying a stale epoch are discarded on pop.
This is what makes crash-at-completion races unambiguous: a crash at the
exact timestamp of a finish invalidates the finish (FIFO pop order decides
which fired first), and a completed assignment can never be re-released by
its own late heartbeat.

Correctness contract (verified by the property tests):

* **exactly-once completion** — a first-completion bitmap guarantees every
  task of the kernel is counted complete exactly once; re-executions and
  replica finishes are tallied separately in
  :class:`~repro.simulator.results.FaultStats`;
* **fault-free reduction** — with an empty schedule and the default policy
  the loop performs the same pops, the same strategy calls and the same RNG
  draws as :func:`repro.simulator.simulate`, so results are bit-identical;
* **termination** — releases only ever return tasks to the pool (knowledge
  grows monotonically, so a knowledge-complete worker eventually absorbs
  any remainder); if every worker is down or parked and no event is
  pending, the loop raises :class:`FaultDeadlockError` instead of hanging.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.strategies.base import Strategy
from repro.faults.models import FaultSchedule, Slowdown, WorkerCrash
from repro.faults.policies import RecoveryPolicy, ReassignLost
from repro.obs.sink import MetricsSink
from repro.platform.platform import Platform
from repro.platform.speeds import SpeedModel, StaticSpeedModel
from repro.simulator.engine import LivelockError
from repro.simulator.events import EventQueue
from repro.simulator.results import FaultStats, SimulationResult
from repro.simulator.trace import AssignmentRecord, FaultRecord, Trace
from repro.utils.rng import SeedLike, as_generator

__all__ = ["simulate_faulty", "FaultDeadlockError"]

# Event kinds multiplexed into the queue's integer payload.
_SELF, _CRASH, _RESTART, _TIMEOUT = 0, 1, 2, 3


class FaultDeadlockError(RuntimeError):
    """Raised when no event is pending but the computation is unfinished.

    This happens only for schedules without eventual worker availability —
    e.g. every worker crashed and none restarts — or for policies that park
    workers while no straggler can ever finish.
    """


def _prepare(
    schedule: FaultSchedule, p: int
) -> Tuple[List[List[WorkerCrash]], List[List[Slowdown]], List[List[int]]]:
    """Split the schedule into per-worker event lists (time-sorted)."""
    crashes: List[List[WorkerCrash]] = [[] for _ in range(p)]
    for crash in schedule.crashes:
        crashes[crash.worker].append(crash)
    slowdowns: List[List[Slowdown]] = [[] for _ in range(p)]
    for window in schedule.slowdowns:
        slowdowns[window.worker].append(window)
    losses: List[List[int]] = [[] for _ in range(p)]
    for loss in schedule.losses:
        losses[loss.worker].append(loss.request_index)
    return crashes, slowdowns, losses


def simulate_faulty(
    strategy: Strategy,
    platform: Platform,
    *,
    schedule: FaultSchedule,
    policy: Optional[RecoveryPolicy] = None,
    rng: SeedLike = None,
    speed_model: Optional[SpeedModel] = None,
    collect_trace: bool = False,
    sink: Optional[MetricsSink] = None,
) -> SimulationResult:
    """Run *strategy* on *platform* under the fault *schedule*.

    Parameters mirror :func:`repro.simulator.simulate` (including the
    optional metrics *sink*, which additionally receives one
    :meth:`~repro.obs.sink.MetricsSink.on_fault` call per fault/recovery
    event), plus:

    schedule:
        A pre-drawn :class:`~repro.faults.models.FaultSchedule`.  An empty
        schedule (with the default policy) reproduces the fault-free engine
        bit for bit.
    policy:
        A :class:`~repro.faults.policies.RecoveryPolicy`; defaults to
        :class:`~repro.faults.policies.ReassignLost`.  Crashed workers'
        in-flight tasks are always released back to the pool regardless of
        the policy.

    The strategy must be built with ``collect_ids=True`` whenever the
    schedule is non-empty or the policy needs per-task tracking
    (heartbeats, replication): completions are deduplicated through a
    first-completion bitmap over flat task ids.

    Returns a :class:`~repro.simulator.results.SimulationResult` whose
    ``faults`` field carries the :class:`~repro.simulator.results.FaultStats`
    accounting; with ``collect_trace=True`` the trace additionally holds one
    :class:`~repro.simulator.trace.FaultRecord` per fault/recovery event.
    """
    if not isinstance(schedule, FaultSchedule):
        raise TypeError(f"schedule must be a FaultSchedule, got {type(schedule).__name__}")
    if policy is None:
        policy = ReassignLost()
    p = platform.p
    if schedule.max_worker >= p:
        raise ValueError(
            f"schedule references worker {schedule.max_worker} but the "
            f"platform has only {p} workers"
        )
    needs_ids = (not schedule.is_empty) or policy.needs_task_ids
    if needs_ids and not strategy.collect_ids:
        raise ValueError(
            "fault injection needs per-task completion tracking; build the "
            "strategy with collect_ids=True"
        )

    generator = as_generator(rng)
    model = speed_model if speed_model is not None else StaticSpeedModel()
    model.reset(platform, generator)
    strategy.reset(platform, generator)
    policy.reset(strategy, platform)
    if sink is not None:
        sink.on_run_start(
            strategy.name,
            strategy.kernel,
            strategy.n,
            p,
            [float(s) for s in platform.relative_speeds],
        )

    total = strategy.total_tasks
    track = strategy.collect_ids
    per_task_blocks = 2 if strategy.kernel == "outer" else 3

    queue = EventQueue()
    # Initial requests, one per worker, validated once; the loop re-queues
    # through the unchecked fast path (identically to the fault-free engine).
    for w in range(p):
        queue.push(0.0, _SELF + 4 * w)
    crash_lists, slow_lists, lost_lists = _prepare(schedule, p)
    crash_ptr = [0] * p
    slow_ptr = [0] * p
    lost_ptr = [0] * p
    # Crash events are externally scheduled: push them all up front (the
    # epoch part of the token is ignored for CRASH on pop).
    for w, crash_list in enumerate(crash_lists):
        for crash in crash_list:
            queue.push(crash.time, _CRASH + 4 * w)

    # -- per-worker state --------------------------------------------------
    alive = [True] * p
    parked = [False] * p
    epoch = [0] * p
    req_count = [0] * p
    cache_blocks = [0] * p
    inflight_ids: List[Optional[np.ndarray]] = [None] * p
    inflight_blocks = [0] * p

    # -- accounting --------------------------------------------------------
    blocks = [0] * p
    tasks = [0] * p
    makespan = 0.0
    n_assignments = 0
    allocated_tasks = 0
    trace = Trace() if collect_trace else None
    stats_n_crashes = 0
    stats_n_restarts = 0
    stats_n_lost = 0
    stats_n_timeouts = 0
    stats_wasted_blocks = 0
    stats_lost_cache = 0
    stats_released = 0
    stats_replicated = 0
    stats_duplicates = 0

    completed = np.zeros(total, dtype=bool) if track else None
    completed_count = 0

    zero_streak = 0
    # Same budget as the fault-free engine, with slack per crash: every
    # forget_worker resets knowledge, legitimately re-enabling up to ~3n
    # zero-task (index-only) assignments for that worker.
    zero_budget = 4 * (3 * strategy.n + 2) * p * (1 + len(schedule.crashes)) + 1024

    queue_pop = queue.pop
    queue_push = queue.push_unchecked
    assign = strategy.assign

    static_speeds: Optional[List[float]] = None
    if type(model) is StaticSpeedModel:
        static_speeds = [float(s) for s in platform.speeds]
    model_duration = model.duration
    base_speeds = [float(s) for s in platform.speeds]

    def wake_parked(now: float) -> None:
        """Re-queue every parked, alive worker (tasks became allocatable)."""
        for u in range(p):
            if parked[u] and alive[u]:
                parked[u] = False
                queue_push(now, _SELF + 4 * (u + p * epoch[u]))

    def slow_factor(worker: int, now: float) -> float:
        """Straggler factor of the window containing *now*, else 1.0."""
        windows = slow_lists[worker]
        ptr = slow_ptr[worker]
        while ptr < len(windows) and windows[ptr].end <= now:
            ptr += 1
        slow_ptr[worker] = ptr
        if ptr < len(windows) and windows[ptr].start <= now:
            return windows[ptr].factor
        return 1.0

    def is_lost(worker: int, request_index: int) -> bool:
        indices = lost_lists[worker]
        ptr = lost_ptr[worker]
        while ptr < len(indices) and indices[ptr] < request_index:
            ptr += 1
        lost_ptr[worker] = ptr
        if ptr < len(indices) and indices[ptr] == request_index:
            lost_ptr[worker] = ptr + 1
            return True
        return False

    while True:
        if (completed_count >= total) if track else strategy.done:
            break
        if not queue:
            raise FaultDeadlockError(
                f"no pending event but only {completed_count}/{total} tasks "
                f"completed (strategy={strategy.name}); the schedule leaves "
                "no worker available to finish the run"
            )
        now, token = queue_pop()
        kind = token & 3
        rest = token >> 2
        worker = rest % p

        if kind == _CRASH:
            if not alive[worker]:
                continue  # defensive: hand-made overlapping schedules
            crash = crash_lists[worker][crash_ptr[worker]]
            crash_ptr[worker] += 1
            stats_n_crashes += 1
            epoch[worker] += 1  # invalidates the worker's SELF/TIMEOUT events
            alive[worker] = False
            parked[worker] = False
            lost_ids = inflight_ids[worker]
            release_ids: Optional[np.ndarray] = None
            if lost_ids is not None and lost_ids.size:
                stats_wasted_blocks += inflight_blocks[worker]
                # Only uncompleted copies need re-execution; a re-executed
                # task whose original straggler already finished is done.
                assert completed is not None
                release_ids = lost_ids[~completed[lost_ids]]
            n_released = 0 if release_ids is None else int(release_ids.size)
            stats_released += n_released
            strategy.on_worker_lost(worker, release_ids)
            inflight_ids[worker] = None
            inflight_blocks[worker] = 0
            lost_cache = cache_blocks[worker]
            stats_lost_cache += lost_cache
            cache_blocks[worker] = 0
            if trace is not None:
                trace.append_fault(FaultRecord(now, "crash", worker, n_released, lost_cache))
            if sink is not None:
                sink.on_fault(now, "crash", worker, n_released, lost_cache)
            queue_push(crash.restart_time, _RESTART + 4 * (worker + p * epoch[worker]))
            if n_released:
                wake_parked(now)
            continue

        if kind == _RESTART:
            if alive[worker]:
                continue  # defensive: cannot happen for drawn schedules
            alive[worker] = True
            stats_n_restarts += 1
            if trace is not None:
                trace.append_fault(FaultRecord(now, "restart", worker))
            if sink is not None:
                sink.on_fault(now, "restart", worker, 0, 0)
            # The rejoined worker requests work immediately.
            queue_push(now, _SELF + 4 * (worker + p * epoch[worker]))
            continue

        ev_epoch = rest // p

        if kind == _TIMEOUT:
            if ev_epoch != epoch[worker] or not alive[worker]:
                continue  # assignment completed or worker crashed meanwhile
            late_ids = inflight_ids[worker]
            if late_ids is None or late_ids.size == 0:
                continue
            # Declare the assignment lost: its uncompleted tasks go back to
            # the pool for re-execution while the straggler keeps computing
            # its own copy (a late finish becomes a duplicate completion).
            policy.register_timeout(worker)
            stats_n_timeouts += 1
            assert completed is not None
            late_uncompleted = late_ids[~completed[late_ids]]
            if trace is not None:
                trace.append_fault(
                    FaultRecord(now, "timeout", worker, int(late_uncompleted.size))
                )
            if sink is not None:
                sink.on_fault(now, "timeout", worker, int(late_uncompleted.size), 0)
            if late_uncompleted.size:
                stats_released += int(late_uncompleted.size)
                strategy.release_tasks(late_uncompleted)
                wake_parked(now)
            continue

        # -- SELF: completion (if computing) then a new work request -------
        if ev_epoch != epoch[worker] or not alive[worker]:
            continue
        if track:
            done_ids = inflight_ids[worker]
            if done_ids is not None:
                epoch[worker] += 1  # retire any pending heartbeat deadline
                if done_ids.size:
                    assert completed is not None
                    firsts = int(np.count_nonzero(~completed[done_ids]))
                    stats_duplicates += int(done_ids.size) - firsts
                    if firsts:
                        completed[done_ids] = True
                        completed_count += firsts
                        if now > makespan:
                            makespan = now
                inflight_ids[worker] = None
                inflight_blocks[worker] = 0

        if strategy.done:
            if track and completed_count < total:
                assert completed is not None
                replicas = policy.tail_replicas(
                    worker, now, inflight_ids, completed, completed_count
                )
                if replicas is not None and replicas.size:
                    n_rep = int(replicas.size)
                    rep_blocks = n_rep * per_task_blocks
                    stats_replicated += n_rep
                    blocks[worker] += rep_blocks
                    cache_blocks[worker] += rep_blocks
                    tasks[worker] += n_rep
                    n_assignments += 1
                    if static_speeds is not None:
                        duration = n_rep / static_speeds[worker]
                    else:
                        duration = model_duration(worker, n_rep)
                    duration *= slow_factor(worker, now)
                    inflight_ids[worker] = replicas
                    inflight_blocks[worker] = rep_blocks
                    if trace is not None:
                        trace.append_fault(
                            FaultRecord(now, "replicate", worker, n_rep, rep_blocks)
                        )
                        trace.append(
                            AssignmentRecord(now, worker, rep_blocks, n_rep, duration, 1, replicas)
                        )
                    if sink is not None:
                        sink.on_fault(now, "replicate", worker, n_rep, rep_blocks)
                        sink.on_assignment(now, worker, rep_blocks, n_rep, duration, 1)
                    queue_push(now + duration, _SELF + 4 * (worker + p * epoch[worker]))
                    continue
            parked[worker] = True
            continue

        assignment = assign(worker, now)
        n_assignments += 1
        request_index = req_count[worker]
        req_count[worker] += 1
        a_tasks = assignment.tasks
        a_blocks = assignment.blocks
        allocated_tasks += a_tasks
        blocks[worker] += a_blocks
        cache_blocks[worker] += a_blocks
        nominal = a_tasks / base_speeds[worker]

        if is_lost(worker, request_index):
            # The allocation message vanishes: blocks arrived (the master's
            # cache bookkeeping stays truthful) but no work starts.  The
            # tasks return to the pool and the worker re-requests after the
            # time the lost work would have taken.
            stats_n_lost += 1
            stats_wasted_blocks += a_blocks
            if a_tasks and assignment.task_ids is not None:
                stats_released += a_tasks
                strategy.release_tasks(assignment.task_ids)
            if trace is not None:
                trace.append_fault(FaultRecord(now, "loss", worker, a_tasks, a_blocks))
                trace.append(
                    AssignmentRecord(
                        now, worker, a_blocks, a_tasks, 0.0, assignment.phase, assignment.task_ids
                    )
                )
            if sink is not None:
                sink.on_fault(now, "loss", worker, a_tasks, a_blocks)
                sink.on_assignment(now, worker, a_blocks, a_tasks, 0.0, assignment.phase)
            queue_push(now + nominal, _SELF + 4 * (worker + p * epoch[worker]))
            if a_tasks:
                wake_parked(now)
            continue

        tasks[worker] += a_tasks
        if static_speeds is not None:
            duration = a_tasks / static_speeds[worker]
        else:
            duration = model_duration(worker, a_tasks)
        factor = slow_factor(worker, now)
        if factor != 1.0:
            duration *= factor
        finish = now + duration
        if a_tasks > 0:
            if not track and finish > makespan:
                makespan = finish
            zero_streak = 0
        else:
            zero_streak += 1
            if zero_streak > zero_budget:
                raise LivelockError(
                    f"{zero_streak} consecutive zero-task assignments "
                    f"(strategy={strategy.name}, remaining tasks unallocated)"
                )
        if trace is not None:
            trace.append(
                AssignmentRecord(
                    now, worker, a_blocks, a_tasks, duration, assignment.phase, assignment.task_ids
                )
            )
        if sink is not None:
            sink.on_assignment(now, worker, a_blocks, a_tasks, duration, assignment.phase)
        if track:
            inflight_ids[worker] = assignment.task_ids
            inflight_blocks[worker] = a_blocks
            deadline = policy.timeout_deadline(worker, now, nominal)
            if deadline is not None and a_tasks > 0:
                queue_push(deadline, _TIMEOUT + 4 * (worker + p * epoch[worker]))
        queue_push(finish, _SELF + 4 * (worker + p * epoch[worker]))

    if sink is not None:
        sink.on_run_end(makespan, sum(blocks), sum(tasks), n_assignments)
    stats = FaultStats(
        n_crashes=stats_n_crashes,
        n_restarts=stats_n_restarts,
        n_lost_assignments=stats_n_lost,
        n_timeouts=stats_n_timeouts,
        wasted_blocks=stats_wasted_blocks,
        lost_cache_blocks=stats_lost_cache,
        released_tasks=stats_released,
        reexecuted_tasks=max(0, allocated_tasks - total),
        replicated_tasks=stats_replicated,
        duplicate_completions=stats_duplicates,
    )
    return SimulationResult(
        total_blocks=sum(blocks),
        per_worker_blocks=np.asarray(blocks, dtype=np.int64),
        per_worker_tasks=np.asarray(tasks, dtype=np.int64),
        makespan=makespan,
        n_assignments=n_assignments,
        strategy_name=strategy.name,
        trace=trace,
        faults=stats,
    )
