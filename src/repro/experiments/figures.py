"""One generator per figure of the paper's evaluation.

Every ``figNN`` function returns a :class:`~repro.experiments.config.FigureData`
whose series reproduce the corresponding plot:

========  ==================================================================
fig01     outer: Random vs Sorted vs DynamicOuter vs #processors (n=100)
fig02     outer: DynamicOuter2Phases vs %-tasks-in-phase-1 (p=20, n=100)
fig04     outer: all strategies + Analysis vs #processors (n=100)
fig05     outer: all strategies + Analysis vs #processors (n=1000)
fig06     outer: comm vs β, analysis + simulation (p=20, n=100)
fig07     outer: heterogeneity sweep h ∈ [0, 100) (p=20, n=100)
fig08     outer: scenario study unif/set/dyn (p=20, n=100)
fig09     matrix: all strategies + Analysis vs #processors (n=40)
fig10     matrix: all strategies + Analysis vs #processors (n=100)
fig11     matrix: comm vs β, analysis + simulation (p=100, n=40)
sec36     β speed-agnosticism study (Section 3.6, textual result)
========  ==================================================================

Figure 3 of the paper is a proof illustration — nothing to reproduce.

Scales: ``"paper"`` uses the paper's parameters; ``"medium"`` is a faithful
but hours→minutes reduction used for EXPERIMENTS.md; ``"ci"`` is a
seconds-scale smoke with the same shape.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.analysis.beta import agnostic_beta, beta_deviation
from repro.core.analysis.matrix import matrix_total_ratio, optimal_matrix_beta
from repro.core.analysis.outer import optimal_outer_beta, outer_total_ratio
from repro.experiments.config import FigureData, check_scale
from repro.experiments.parallel import (
    FixedPlatformSpec,
    HeterogeneityPlatformSpec,
    ScenarioPlatformSpec,
    StrategySpec,
    UniformPlatformSpec,
)
from repro.experiments.runner import average_normalized_comm, mean_analysis_ratio
from repro.platform.platform import Platform
from repro.platform.speeds import SCENARIO_NAMES, uniform_speeds
from repro.store.cache import ResultStore
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "FIGURES",
    "MATRIX_BASELINES",
    "NORMALIZED_YLABEL",
    "OUTER_BASELINES",
    "fig01",
    "fig02",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "generate",
    "sec36",
]

OUTER_BASELINES = ("RandomOuter", "SortedOuter", "DynamicOuter")
MATRIX_BASELINES = ("RandomMatrix", "SortedMatrix", "DynamicMatrix")

NORMALIZED_YLABEL = "Normalized communication amount"


def _engine_meta(strategy_names: Sequence[str], n: int) -> Dict[str, str]:
    """Sweep metadata: which engine each strategy's replicates run on.

    ``"vectorized"`` when the batch engine covers the strategy, else
    ``"scalar (<reason>)"`` with the
    :func:`repro.simulator.batch.fallback_reason` string — recorded per
    figure so a silent scalar fallback shows up in exported meta.
    """
    from repro.simulator.batch import fallback_reason

    engines: Dict[str, str] = {}
    for name in strategy_names:
        reason = fallback_reason(StrategySpec(name, n)())
        engines[name] = "vectorized" if reason is None else f"scalar ({reason})"
    return engines


def _p_grid(scale: str) -> Sequence[int]:
    return {
        "paper": (10, 50, 100, 150, 200, 250, 300),
        "medium": (10, 50, 100, 200, 300),
        "ci": (10, 40),
    }[scale]


def _reps(scale: str, paper_reps: int = 10) -> int:
    return {"paper": paper_reps, "medium": 5, "ci": 2}[scale]


# ---------------------------------------------------------------------------
# Strategy-vs-p sweeps (Figures 1, 4, 5, 9, 10)
# ---------------------------------------------------------------------------


def _sweep_vs_p(
    figure_id: str,
    title: str,
    kernel: str,
    strategy_names: Sequence[str],
    n: int,
    ps: Sequence[int],
    reps: int,
    seed: SeedLike,
    *,
    include_analysis: bool,
    workers: int = 1,
    cache: Optional[ResultStore] = None,
) -> FigureData:
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        xlabel="Number of processors",
        ylabel=NORMALIZED_YLABEL,
        meta={
            "kernel": kernel,
            "n": n,
            "reps": reps,
            "engine": _engine_meta(strategy_names, n),
        },
    )
    for name in strategy_names:
        fig.new_series(name)
    if include_analysis:
        fig.new_series("Analysis")

    for p in ps:
        # The paper's default draw: speeds uniform in [10, 100].  Spec
        # factories (rather than closures) are what make the cells
        # cacheable and picklable on spawn-only platforms.
        factory = UniformPlatformSpec(p)
        for name in strategy_names:
            summary = average_normalized_comm(
                StrategySpec(name, n),
                factory,
                n,
                reps,
                seed=seed,
                workers=workers,
                cache=cache,
            )
            fig[name].add(p, summary.mean, summary.std)
        if include_analysis:
            summary = mean_analysis_ratio(kernel, factory, n, reps, seed=seed)
            fig["Analysis"].add(p, summary.mean, summary.std)
    return fig


def fig01(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 1: random vs data-aware dynamic strategies for the outer product."""
    check_scale(scale)
    n = {"paper": 100, "medium": 100, "ci": 30}[scale]
    return _sweep_vs_p(
        "fig01",
        "Random vs data-aware dynamic strategies (outer product)",
        "outer",
        OUTER_BASELINES,
        n,
        _p_grid(scale),
        _reps(scale),
        seed,
        include_analysis=False,
        workers=workers,
        cache=cache,
    )


def fig04(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 4: all outer-product strategies + analysis, n = 100 blocks."""
    check_scale(scale)
    n = {"paper": 100, "medium": 100, "ci": 30}[scale]
    return _sweep_vs_p(
        "fig04",
        "All outer-product strategies, n = 100 blocks",
        "outer",
        OUTER_BASELINES + ("DynamicOuter2Phases",),
        n,
        _p_grid(scale),
        _reps(scale),
        seed,
        include_analysis=True,
        workers=workers,
        cache=cache,
    )


def fig05(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 5: all outer-product strategies + analysis, n = 1000 blocks."""
    check_scale(scale)
    n = {"paper": 1000, "medium": 300, "ci": 60}[scale]
    return _sweep_vs_p(
        "fig05",
        "All outer-product strategies, n = 1000 blocks",
        "outer",
        OUTER_BASELINES + ("DynamicOuter2Phases",),
        n,
        _p_grid(scale),
        _reps(scale),
        seed,
        include_analysis=True,
        workers=workers,
        cache=cache,
    )


def fig09(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 9: all matmul strategies + analysis, n = 40 blocks."""
    check_scale(scale)
    n = {"paper": 40, "medium": 40, "ci": 10}[scale]
    return _sweep_vs_p(
        "fig09",
        "All matrix-multiplication strategies, n = 40 blocks",
        "matrix",
        MATRIX_BASELINES + ("DynamicMatrix2Phases",),
        n,
        _p_grid(scale),
        _reps(scale),
        seed,
        include_analysis=True,
        workers=workers,
        cache=cache,
    )


def fig10(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 10: all matmul strategies + analysis, n = 100 blocks."""
    check_scale(scale)
    n = {"paper": 100, "medium": 60, "ci": 14}[scale]
    return _sweep_vs_p(
        "fig10",
        "All matrix-multiplication strategies, n = 100 blocks",
        "matrix",
        MATRIX_BASELINES + ("DynamicMatrix2Phases",),
        n,
        _p_grid(scale),
        _reps(scale),
        seed,
        include_analysis=True,
        workers=workers,
        cache=cache,
    )


# ---------------------------------------------------------------------------
# Figure 2: phase-1 fraction sweep
# ---------------------------------------------------------------------------


def fig02(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 2: DynamicOuter2Phases vs percentage of tasks in phase 1.

    A single platform draw (p = 20) is reused across the sweep, as in the
    paper; reference strategies appear as flat series.
    """
    check_scale(scale)
    p = 20
    n = {"paper": 100, "medium": 100, "ci": 30}[scale]
    reps = _reps(scale)
    fractions = {
        "paper": np.concatenate([np.arange(0.0, 0.96, 0.05), [0.97, 0.98, 0.99, 0.995, 1.0]]),
        "medium": np.concatenate([np.arange(0.0, 0.96, 0.10), [0.98, 0.99, 1.0]]),
        "ci": np.array([0.0, 0.5, 0.9, 0.99, 1.0]),
    }[scale]

    # One fixed draw reused across the sweep; only the simulation stream
    # varies.  FixedPlatformSpec rebuilds the identical float64 vector.
    platform = Platform(uniform_speeds(p, 10, 100, rng=as_generator(seed)))
    factory = FixedPlatformSpec(platform.speeds)

    fig = FigureData(
        figure_id="fig02",
        title="DynamicOuter2Phases vs fraction of tasks in phase 1 (p=20)",
        xlabel="Percentage of tasks treated in phase 1",
        ylabel=NORMALIZED_YLABEL,
        meta={
            "kernel": "outer",
            "n": n,
            "p": p,
            "reps": reps,
            "engine": _engine_meta(("DynamicOuter2Phases",) + OUTER_BASELINES, n),
        },
    )
    sweep = fig.new_series("DynamicOuter2Phases")
    for frac in fractions:
        summary = average_normalized_comm(
            StrategySpec("DynamicOuter2Phases", n, phase1_fraction=float(frac)),
            factory,
            n,
            reps,
            seed=seed,
            workers=workers,
            cache=cache,
        )
        sweep.add(100.0 * frac, summary.mean, summary.std)

    for name in OUTER_BASELINES:
        summary = average_normalized_comm(
            StrategySpec(name, n), factory, n, reps, seed=seed, workers=workers, cache=cache
        )
        flat = fig.new_series(name)
        for frac in (fractions[0], fractions[-1]):
            flat.add(100.0 * frac, summary.mean, summary.std)
    return fig


# ---------------------------------------------------------------------------
# Figures 6 and 11: β sweeps against the analysis
# ---------------------------------------------------------------------------


def _beta_sweep(
    figure_id: str,
    title: str,
    kernel: str,
    p: int,
    n: int,
    reps: int,
    seed: SeedLike,
    betas: Sequence[float],
    workers: int = 1,
    cache: Optional[ResultStore] = None,
) -> FigureData:
    two_phase = "DynamicOuter2Phases" if kernel == "outer" else "DynamicMatrix2Phases"
    dynamic = "DynamicOuter" if kernel == "outer" else "DynamicMatrix"
    ratio = outer_total_ratio if kernel == "outer" else matrix_total_ratio
    beta_opt = optimal_outer_beta if kernel == "outer" else optimal_matrix_beta

    platform = Platform(uniform_speeds(p, 10, 100, rng=as_generator(seed)))
    rel = platform.relative_speeds
    factory = FixedPlatformSpec(platform.speeds)

    fig = FigureData(
        figure_id=figure_id,
        title=title,
        xlabel="Value of beta",
        ylabel=NORMALIZED_YLABEL,
        meta={
            "kernel": kernel,
            "n": n,
            "p": p,
            "reps": reps,
            "beta_opt_analysis": beta_opt(rel, n),
            "beta_opt_agnostic": agnostic_beta(kernel, p, n),
            "engine": _engine_meta((two_phase, dynamic), n),
        },
    )
    sim_series = fig.new_series(two_phase)
    ana_series = fig.new_series("Analysis")
    for beta in betas:
        summary = average_normalized_comm(
            StrategySpec(two_phase, n, beta=float(beta)),
            factory,
            n,
            reps,
            seed=seed,
            workers=workers,
            cache=cache,
        )
        sim_series.add(beta, summary.mean, summary.std)
        ana_series.add(beta, ratio(float(beta), rel, n))

    dyn = average_normalized_comm(
        StrategySpec(dynamic, n), factory, n, reps, seed=seed, workers=workers, cache=cache
    )
    flat = fig.new_series(dynamic)
    for beta in (betas[0], betas[-1]):
        flat.add(beta, dyn.mean, dyn.std)
    return fig


def fig06(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 6: outer-product communication vs β (p=20, n=100)."""
    check_scale(scale)
    n = {"paper": 100, "medium": 100, "ci": 30}[scale]
    betas = {
        "paper": np.arange(0.5, 8.01, 0.25),
        "medium": np.arange(1.0, 8.01, 0.5),
        "ci": np.array([1.0, 3.0, 4.2, 6.0]),
    }[scale]
    return _beta_sweep(
        "fig06",
        "Outer product: communication vs beta (p=20)",
        "outer",
        20,
        n,
        _reps(scale),
        seed,
        betas,
        workers=workers,
        cache=cache,
    )


def fig11(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 11: matmul communication vs β (p=100, n=40)."""
    check_scale(scale)
    p = {"paper": 100, "medium": 100, "ci": 30}[scale]
    n = {"paper": 40, "medium": 40, "ci": 10}[scale]
    betas = {
        "paper": np.arange(0.5, 10.01, 0.5),
        "medium": np.arange(1.0, 10.01, 0.75),
        "ci": np.array([1.0, 3.0, 6.0]),
    }[scale]
    return _beta_sweep(
        "fig11",
        "Matrix multiplication: communication vs beta (p=100)",
        "matrix",
        p,
        n,
        _reps(scale),
        seed,
        betas,
        workers=workers,
        cache=cache,
    )


# ---------------------------------------------------------------------------
# Figure 7: heterogeneity sweep, Figure 8: scenario study
# ---------------------------------------------------------------------------


def fig07(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 7: impact of the heterogeneity level h (speeds in [100-h, 100+h])."""
    check_scale(scale)
    p = 20
    n = {"paper": 100, "medium": 100, "ci": 30}[scale]
    reps = _reps(scale, paper_reps=50)
    hs = {
        "paper": (0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 99.0),
        "medium": (0.0, 20.0, 40.0, 60.0, 80.0, 99.0),
        "ci": (0.0, 50.0, 99.0),
    }[scale]

    fig = FigureData(
        figure_id="fig07",
        title="Outer product: impact of heterogeneity (p=20)",
        xlabel="Heterogeneity",
        ylabel=NORMALIZED_YLABEL,
        meta={
            "kernel": "outer",
            "n": n,
            "p": p,
            "reps": reps,
            "engine": _engine_meta(OUTER_BASELINES + ("DynamicOuter2Phases",), n),
        },
    )
    names = OUTER_BASELINES + ("DynamicOuter2Phases",)
    for name in names:
        fig.new_series(name)
    fig.new_series("Analysis")

    for h in hs:
        factory = HeterogeneityPlatformSpec(p, float(h))
        for name in names:
            summary = average_normalized_comm(
                StrategySpec(name, n), factory, n, reps, seed=seed, workers=workers, cache=cache
            )
            fig[name].add(h, summary.mean, summary.std)
        summary = mean_analysis_ratio("outer", factory, n, reps, seed=seed)
        fig["Analysis"].add(h, summary.mean, summary.std)
    return fig


def fig08(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Figure 8: heterogeneity scenarios (unif.*, set.*, dyn.*)."""
    check_scale(scale)
    p = 20
    n = {"paper": 100, "medium": 100, "ci": 30}[scale]
    reps = _reps(scale, paper_reps=50)
    scenarios = SCENARIO_NAMES

    fig = FigureData(
        figure_id="fig08",
        title="Outer product: heterogeneity scenarios (p=20)",
        xlabel="Scenario",
        ylabel=NORMALIZED_YLABEL,
        meta={
            "kernel": "outer",
            "n": n,
            "p": p,
            "reps": reps,
            "engine": _engine_meta(OUTER_BASELINES + ("DynamicOuter2Phases",), n),
        },
        x_categories=list(scenarios),
    )
    names = OUTER_BASELINES + ("DynamicOuter2Phases",)
    for name in names:
        fig.new_series(name)
    fig.new_series("Analysis")

    for idx, scenario in enumerate(scenarios):
        factory = ScenarioPlatformSpec(scenario, p)
        for name in names:
            summary = average_normalized_comm(
                StrategySpec(name, n), factory, n, reps, seed=seed, workers=workers, cache=cache
            )
            fig[name].add(idx, summary.mean, summary.std)
        summary = mean_analysis_ratio("outer", factory, n, reps, seed=seed)
        fig["Analysis"].add(idx, summary.mean, summary.std)
    return fig


# ---------------------------------------------------------------------------
# Section 3.6: speed-agnostic beta
# ---------------------------------------------------------------------------


def sec36(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Section 3.6: β is effectively speed-agnostic.

    For a grid of (p, n), draws heterogeneous speed vectors (uniform in
    [10, 100] — the paper's most heterogeneous setting), computes the
    per-draw optimal β and reports the deviation from the homogeneous β.
    """
    check_scale(scale)
    grid = {
        "paper": [(10, 100), (20, 100), (100, 100), (100, 1000), (1000, 1000)],
        "medium": [(10, 100), (20, 100), (100, 300)],
        "ci": [(10, 50), (20, 50)],
    }[scale]
    draws_per_point = {"paper": 100, "medium": 20, "ci": 5}[scale]

    fig = FigureData(
        figure_id="sec36",
        title="Speed-agnostic beta (Section 3.6)",
        xlabel="(p, n) grid point index",
        ylabel="relative deviation",
        meta={"kernel": "outer", "draws": draws_per_point, "grid": grid},
        x_categories=[f"p={p},n={n}" for p, n in grid],
    )
    hom = fig.new_series("beta_hom")
    dev = fig.new_series("max_beta_rel_dev")
    vol_err = fig.new_series("max_volume_rel_error")

    master = as_generator(seed)
    for idx, (p, n) in enumerate(grid):
        draws = []
        for _ in range(draws_per_point):
            s = uniform_speeds(p, 10, 100, rng=master)
            draws.append(s / s.sum())
        report = beta_deviation("outer", draws, n)
        hom.add(idx, report["beta_hom"])
        dev.add(idx, report["max_beta_rel_dev"])
        vol_err.add(idx, report["max_volume_rel_error"])
    return fig


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _extension_figures() -> Dict[str, Callable[..., FigureData]]:
    # Imported lazily: the extension experiments pull in the extension
    # packages, which plain figure generation does not need.
    from repro.experiments.ext_figures import ext01, ext02, ext03

    return {"ext01": ext01, "ext02": ext02, "ext03": ext03}


def _fault_figures() -> Dict[str, Callable[..., FigureData]]:
    # Imported lazily, like _extension_figures: pulls in repro.faults.
    from repro.experiments.faults import flt01

    return {"flt01": flt01}


FIGURES: Dict[str, Callable[..., FigureData]] = {
    "fig01": fig01,
    "fig02": fig02,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "sec36": sec36,
    **_extension_figures(),
    **_fault_figures(),
}



def generate(figure_id: str, scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Generate one figure by id (``"fig01"`` ... ``"fig11"``, ``"sec36"``)."""
    try:
        fn = FIGURES[figure_id]
    except KeyError:
        raise ValueError(f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}") from None
    return fn(scale=scale, seed=seed, workers=workers, cache=cache)
