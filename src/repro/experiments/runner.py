"""Repetition and aggregation around the simulator.

The paper's figures average the *normalized communication amount* (total
blocks over the kernel's lower bound) across 10-50 simulations, drawing a
fresh speed vector per repetition (except the fixed-distribution β sweeps).
These helpers implement exactly that protocol with independent RNG streams
per repetition.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.core.analysis.lower_bounds import lower_bound
from repro.core.analysis.matrix import matrix_total_ratio, optimal_matrix_beta
from repro.core.analysis.outer import optimal_outer_beta, outer_total_ratio
from repro.core.strategies.base import Strategy
from repro.obs.sink import MetricsSink, RecordingSink
from repro.platform.platform import Platform
from repro.platform.speeds import SpeedModel
from repro.simulator.batch import fallback_reason, simulate_batch
from repro.simulator.engine import simulate
from repro.store.cache import ResultStore
from repro.store.cells import load_cell, replicate_cell_key, save_cell
from repro.store.fingerprint import fingerprint
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.stats import RunningStats, Summary

__all__ = [
    "average_normalized_comm",
    "collect_planned_cells",
    "mean_analysis_ratio",
    "resolve_vectorize",
    "PlannedCell",
    "PlatformFactory",
    "StrategyFactory",
]

# A platform factory receives the repetition's RNG and returns the platform
# (and optionally a speed model) for that repetition.
PlatformFactory = Callable[[np.random.Generator], "Platform | tuple[Platform, SpeedModel]"]
StrategyFactory = Callable[[], Strategy]


@dataclass(frozen=True)
class PlannedCell:
    """One replicate cell recorded by :func:`collect_planned_cells`.

    Carries everything needed to compute the cell later in any process —
    the (picklable) factories and scalar parameters — plus the cell's
    store key and fingerprint when the cell is cacheable (``None`` for
    uncacheable inputs, which planning skips over and the assembling run
    computes inline).
    """

    strategy_factory: StrategyFactory
    platform_factory: PlatformFactory
    n: int
    reps: int
    seed: SeedLike
    key: Optional[Dict[str, Any]]
    fingerprint: Optional[str]


#: When set, :func:`average_normalized_comm` records cells instead of
#: computing them.  Context-local so a planner pass can never leak into
#: unrelated threads or tasks.
_PLAN_BUCKET: "contextvars.ContextVar[Optional[List[PlannedCell]]]" = contextvars.ContextVar(
    "repro_plan_bucket", default=None
)

#: Placeholder statistics returned while planning; real values come from
#: the post-drain assembly pass, which hits the cache.  Non-zero so figure
#: code dividing by a planned mean never trips on 0.
_PLAN_PLACEHOLDER = Summary(n=1, mean=1.0, std=0.0, min=1.0, max=1.0)


@contextlib.contextmanager
def collect_planned_cells() -> Iterator[List[PlannedCell]]:
    """Record the replicate cells a figure *would* compute, without computing.

    Inside the context every :func:`average_normalized_comm` call appends
    a :class:`PlannedCell` to the yielded list and returns a placeholder
    summary.  Running a figure generator under this context is the
    planning pre-pass of the external multi-worker mode
    (:mod:`repro.experiments.external`): because the generators are
    deterministic in (figure, scale, seed), every worker plans the exact
    same grid.
    """
    bucket: List[PlannedCell] = []
    token = _PLAN_BUCKET.set(bucket)
    try:
        yield bucket
    finally:
        _PLAN_BUCKET.reset(token)


def _unpack(made: "Platform | tuple[Platform, SpeedModel]") -> "tuple[Platform, Optional[SpeedModel]]":
    if isinstance(made, tuple):
        platform, model = made
        return platform, model
    return made, None


def _rep_normalized_comm(
    rng: np.random.Generator,
    strategy_factory: StrategyFactory,
    platform_factory: PlatformFactory,
    n: int,
    sink: Optional[MetricsSink] = None,
) -> float:
    """One repetition: draw a platform, simulate, normalize by the bound.

    This is the unit of work both the serial loop below and the parallel
    replicate runner (:mod:`repro.experiments.parallel`) execute — keeping
    it in one place is what makes the two paths bit-identical.
    """
    platform, model = _unpack(platform_factory(rng))
    strategy = strategy_factory()
    result = simulate(strategy, platform, rng=rng, speed_model=model, sink=sink)
    lb = lower_bound(strategy.kernel, platform.relative_speeds, n)
    return result.normalized(lb)


def resolve_vectorize(
    vectorize: Union[bool, str], strategy_factory: StrategyFactory
) -> "tuple[bool, Optional[str]]":
    """Resolve a ``vectorize`` option against the strategy's capabilities.

    Returns ``(use_batch, reason)``: *use_batch* selects the engine and
    *reason* names why the scalar loop runs when it does (a
    :func:`repro.simulator.batch.fallback_reason` string, or ``"forced"``
    for an explicit ``vectorize=False``; ``None`` on the fast path).
    Sweep metadata records the reason so auto fallbacks are visible in
    bench and report output rather than silent.

    ``"auto"`` opts in iff the strategy's exact type has a vector kernel
    (and does not collect per-task ids); ``True`` demands one and raises
    when unavailable; ``False`` always runs scalar.
    """
    if vectorize is False:
        return False, "forced"
    if vectorize not in (True, "auto"):
        raise ValueError(
            f"vectorize must be True, False or 'auto', got {vectorize!r}"
        )
    prototype = strategy_factory()
    reason = fallback_reason(prototype)
    if vectorize is True and reason is not None:
        raise ValueError(
            f"vectorize=True but strategy {prototype.name!r} cannot take the "
            f"vectorized fast path ({reason}: no vector kernel for the exact "
            "type, or per-task id collection); use vectorize='auto' to fall "
            "back transparently"
        )
    return reason is None, reason


def _should_vectorize(
    vectorize: Union[bool, str], strategy_factory: StrategyFactory
) -> bool:
    """Engine selection only — see :func:`resolve_vectorize` for the reason."""
    return resolve_vectorize(vectorize, strategy_factory)[0]


def _batch_outcomes(
    generators: Sequence[np.random.Generator],
    strategy_factory: StrategyFactory,
    platform_factory: PlatformFactory,
    n: int,
    collect_metrics: bool,
) -> "List[tuple[float, Optional[Dict[str, Any]]]]":
    """Run one replicate per generator through the vectorized batch engine.

    Per-replicate RNG consumption matches :func:`_rep_normalized_comm`
    exactly: the platform draw comes first on each stream, then the
    simulation, so outcomes (values and metric snapshots alike) are
    bit-identical to the scalar unit of work — just computed in lockstep.
    """
    platforms: List[Platform] = []
    models: List[Optional[SpeedModel]] = []
    for generator in generators:
        platform, model = _unpack(platform_factory(generator))
        platforms.append(platform)
        models.append(model)
    sinks: Optional[List[RecordingSink]] = (
        [RecordingSink() for _ in generators] if collect_metrics else None
    )
    results = simulate_batch(
        strategy_factory,
        platforms,
        rngs=list(generators),
        speed_models=models,
        sinks=sinks,
    )
    kernel = strategy_factory().kernel
    outcomes: List[tuple[float, Optional[Dict[str, Any]]]] = []
    for idx, result in enumerate(results):
        lb = lower_bound(kernel, platforms[idx].relative_speeds, n)
        snapshot = sinks[idx].snapshot() if sinks is not None else None
        outcomes.append((result.normalized(lb), snapshot))
    return outcomes


def average_normalized_comm(
    strategy_factory: StrategyFactory,
    platform_factory: PlatformFactory,
    n: int,
    reps: int,
    *,
    seed: SeedLike = 0,
    workers: int = 1,
    sink: Optional[MetricsSink] = None,
    cache: Optional[ResultStore] = None,
    vectorize: Union[bool, str] = "auto",
) -> Summary:
    """Mean/std of normalized communication over *reps* simulations.

    Each repetition gets an independent RNG stream used for the platform
    draw, the strategy's choices and any dynamic speed perturbations —
    mirroring the paper's protocol of averaging over full re-runs.

    ``workers`` distributes the repetitions over processes
    (see :func:`repro.experiments.parallel.parallel_average_normalized_comm`):
    ``1`` runs serially in-process, ``0`` uses one worker per CPU, and any
    other positive count uses exactly that many processes.  Results are
    bit-identical for every worker count because each repetition owns an
    independent, pre-spawned RNG stream and the aggregation order is fixed.

    When a *sink* is given, every repetition is instrumented with a fresh
    :class:`~repro.obs.sink.RecordingSink` whose snapshot is folded into
    *sink* via :meth:`~repro.obs.sink.MetricsSink.absorb_snapshot` in
    repetition order — the identical fold sequence serial and parallel, so
    accumulated metrics are bit-identical for every worker count too.

    A *cache* (:class:`~repro.store.cache.ResultStore`) memoizes the whole
    cell: when both factories expose a ``cache_token()`` and the seed is
    tokenizable, the summary (and, with a sink, the per-repetition metric
    snapshots) is stored under a content fingerprint and later calls return
    it without simulating — bit-identical, since JSON round-trips floats
    exactly and cached snapshots replay through the same fold.  Uncacheable
    inputs silently bypass the cache.

    ``vectorize`` selects the batch engine
    (:func:`repro.simulator.simulate_batch`): ``"auto"`` (the default) uses
    it whenever the strategy has a vector kernel, ``False`` forces the
    scalar loop, ``True`` raises if no kernel exists.  Because the batch
    engine is bit-identical to the scalar oracle, the setting changes
    runtime only — summaries, sink snapshots and cache entries are the
    same objects either way (cache keys deliberately ignore it).
    """
    if reps <= 0:
        raise ValueError(f"reps must be positive, got {reps}")
    bucket = _PLAN_BUCKET.get()
    if bucket is not None:
        planned_key = replicate_cell_key(
            strategy_factory=strategy_factory,
            platform_factory=platform_factory,
            n=n,
            reps=reps,
            seed=seed,
            metrics=sink is not None,
        )
        bucket.append(
            PlannedCell(
                strategy_factory=strategy_factory,
                platform_factory=platform_factory,
                n=n,
                reps=reps,
                seed=seed,
                key=planned_key,
                fingerprint=None if planned_key is None else fingerprint(planned_key),
            )
        )
        return _PLAN_PLACEHOLDER
    if workers != 1:
        from repro.experiments.parallel import parallel_average_normalized_comm

        return parallel_average_normalized_comm(
            strategy_factory,
            platform_factory,
            n,
            reps,
            seed=seed,
            workers=workers,
            sink=sink,
            cache=cache,
            vectorize=vectorize,
        )
    use_batch = _should_vectorize(vectorize, strategy_factory)
    key = None
    if cache is not None:
        key = replicate_cell_key(
            strategy_factory=strategy_factory,
            platform_factory=platform_factory,
            n=n,
            reps=reps,
            seed=seed,
            metrics=sink is not None,
        )
        if key is not None:
            cached = load_cell(cache, key, sink=sink)
            if cached is not None:
                return cached
    snapshots: Optional[List[Dict[str, Any]]] = (
        [] if (key is not None and sink is not None) else None
    )
    stats = RunningStats()
    if use_batch:
        outcomes = _batch_outcomes(
            spawn_rngs(seed, reps),
            strategy_factory,
            platform_factory,
            n,
            collect_metrics=sink is not None,
        )
        for value, snapshot in outcomes:
            stats.add(value)
            if sink is not None and snapshot is not None:
                sink.absorb_snapshot(snapshot)
                if snapshots is not None:
                    snapshots.append(snapshot)
    else:
        for rng in spawn_rngs(seed, reps):
            if sink is None:
                stats.add(_rep_normalized_comm(rng, strategy_factory, platform_factory, n))
            else:
                rep_sink = RecordingSink()
                stats.add(
                    _rep_normalized_comm(rng, strategy_factory, platform_factory, n, sink=rep_sink)
                )
                snapshot = rep_sink.snapshot()
                sink.absorb_snapshot(snapshot)
                if snapshots is not None:
                    snapshots.append(snapshot)
    summary = stats.summary()
    if cache is not None and key is not None:
        save_cell(cache, key, summary, snapshots)
    return summary


def mean_analysis_ratio(
    kernel: str,
    platform_factory: PlatformFactory,
    n: int,
    reps: int,
    *,
    seed: SeedLike = 0,
    beta: Optional[float] = None,
) -> Summary:
    """Mean/std of the *predicted* normalized communication over draws.

    For each repetition's platform draw, evaluates the closed-form total
    ratio at *beta* (or at the per-draw optimal β when ``beta`` is None) —
    this is the "Analysis" curve of Figures 4, 5, 7, 8, 9, 10.
    """
    if reps <= 0:
        raise ValueError(f"reps must be positive, got {reps}")
    stats = RunningStats()
    for rng in spawn_rngs(seed, reps):
        platform, _ = _unpack(platform_factory(rng))
        rel = platform.relative_speeds
        if kernel == "outer":
            b = optimal_outer_beta(rel, n) if beta is None else beta
            stats.add(outer_total_ratio(b, rel, n))
        elif kernel == "matrix":
            b = optimal_matrix_beta(rel, n) if beta is None else beta
            stats.add(matrix_total_ratio(b, rel, n))
        else:
            raise ValueError(f"kernel must be 'outer' or 'matrix', got {kernel!r}")
    return stats.summary()
