"""Fault-injection experiments: scheduling under worker churn.

The paper's figures assume workers never disappear; this extension asks how
the communication advantage of the data-aware dynamic strategies holds up
when they do.  The headline experiment, ``flt01``, sweeps the expected
number of crashes per worker over one nominal run and plots the normalized
communication amount per outer-product strategy — crashes destroy worker
caches, so every strategy pays re-shipping costs, but the Dynamic*
strategies additionally lose the carefully accumulated knowledge their
block reuse depends on.

Protocol per repetition: draw a fresh platform (speeds uniform in
[10, 100], as in the paper), estimate the nominal makespan
``n^2 / sum(speeds)``, pre-draw a :class:`~repro.faults.models.FaultSchedule`
whose per-worker crash rate yields the target expected crash count over
that nominal duration, and run :func:`~repro.faults.engine.simulate_faulty`
with the default reassignment policy.  Everything derives from one seed per
repetition, so the sweep is exactly reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

import numpy as np

from repro.core.analysis.lower_bounds import lower_bound
from repro.core.strategies.registry import make_strategy
from repro.experiments.config import FigureData, check_scale
from repro.faults.engine import simulate_faulty
from repro.faults.models import FaultSchedule
from repro.platform.platform import Platform
from repro.platform.speeds import uniform_speeds
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.stats import RunningStats

__all__ = ["CHURN_STRATEGIES", "churn_summary", "flt01"]

#: Strategies compared under churn: the outer-product cast of Figure 4.
CHURN_STRATEGIES = ("RandomOuter", "SortedOuter", "DynamicOuter", "DynamicOuter2Phases")

#: Mean downtime, as a fraction of the nominal (fault-free) makespan.
_DOWNTIME_FRACTION = 0.1


def _crash_grid(scale: str) -> Sequence[float]:
    """Expected crashes per worker over one nominal run duration."""
    return {
        "paper": (0.0, 0.5, 1.0, 2.0, 4.0, 8.0),
        "medium": (0.0, 1.0, 2.0, 4.0),
        "ci": (0.0, 1.0, 2.0),
    }[scale]


def flt01(scale: str = "ci", seed: SeedLike = 0, workers: int = 1) -> FigureData:
    """Churn sweep: normalized communication vs expected crashes per worker.

    ``workers`` is accepted for interface parity with the other figure
    generators but the sweep always runs serially: fault-aware runs are
    dominated by per-task bookkeeping, not the replicate count.
    """
    check_scale(scale)
    p = 20
    n = {"paper": 100, "medium": 60, "ci": 16}[scale]
    reps = {"paper": 10, "medium": 5, "ci": 2}[scale]

    fig = FigureData(
        figure_id="flt01",
        title="Outer product under worker churn (p=20)",
        xlabel="Expected crashes per worker (per nominal run)",
        ylabel="Normalized communication amount",
        meta={
            "kernel": "outer",
            "n": n,
            "p": p,
            "reps": reps,
            "downtime_fraction": _DOWNTIME_FRACTION,
            "policy": "ReassignLost",
        },
    )
    for name in CHURN_STRATEGIES:
        fig.new_series(name)
    crash_stats = fig.new_series("crashes_observed")

    for expected_crashes in _crash_grid(scale):
        per_point: Dict[str, RunningStats] = {name: RunningStats() for name in CHURN_STRATEGIES}
        observed = RunningStats()
        for rng in spawn_rngs(seed, reps):
            platform = Platform(uniform_speeds(p, 10, 100, rng=rng))
            nominal = n * n / float(platform.speeds.sum())
            if expected_crashes > 0.0:
                # Crashes keep firing while recovery extends the run, so
                # draw the schedule over a generous multiple of the nominal
                # makespan; the rate is what fixes the expected count.
                schedule = FaultSchedule.draw(
                    p,
                    4.0 * nominal,
                    rng=rng,
                    crash_rate=expected_crashes / nominal,
                    mean_downtime=_DOWNTIME_FRACTION * nominal,
                )
            else:
                schedule = FaultSchedule.empty()
            lb = lower_bound("outer", platform.relative_speeds, n)
            for name in CHURN_STRATEGIES:
                strategy = make_strategy(name, n, collect_ids=True)
                result = simulate_faulty(strategy, platform, schedule=schedule, rng=rng)
                per_point[name].add(result.normalized(lb))
                if name == CHURN_STRATEGIES[0]:
                    assert result.faults is not None
                    observed.add(float(result.faults.n_crashes) / p)
        for name in CHURN_STRATEGIES:
            summary = per_point[name].summary()
            fig[name].add(expected_crashes, summary.mean, summary.std)
        obs = observed.summary()
        crash_stats.add(expected_crashes, obs.mean, obs.std)
    return fig


def churn_summary(fig: FigureData) -> Dict[str, Any]:
    """JSON-ready summary of a ``flt01`` figure (for the CI artifact).

    Reports, per strategy, the normalized communication at zero churn and at
    the highest churn level, plus the relative degradation between the two —
    the quantity the sweep exists to measure.
    """
    if fig.figure_id != "flt01":
        raise ValueError(f"expected a flt01 figure, got {fig.figure_id!r}")
    strategies: Dict[str, Any] = {}
    for name in CHURN_STRATEGIES:
        series = fig[name]
        if len(series) == 0:
            continue
        baseline = series.mean[0]
        worst = series.mean[-1]
        strategies[name] = {
            "x": list(series.x),
            "mean": list(series.mean),
            "std": list(series.std),
            "baseline": baseline,
            "at_max_churn": worst,
            "degradation": (worst - baseline) / baseline if baseline > 0 else float("nan"),
        }
    return {
        "figure": fig.figure_id,
        "title": fig.title,
        "meta": {k: _jsonable(v) for k, v in fig.meta.items()},
        "strategies": strategies,
        "crashes_observed": {
            "x": list(fig["crashes_observed"].x),
            "mean": list(fig["crashes_observed"].mean),
        },
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value
