"""Fault-injection experiments: scheduling under worker churn.

The paper's figures assume workers never disappear; this extension asks how
the communication advantage of the data-aware dynamic strategies holds up
when they do.  The headline experiment, ``flt01``, sweeps the expected
number of crashes per worker over one nominal run and plots the normalized
communication amount per outer-product strategy — crashes destroy worker
caches, so every strategy pays re-shipping costs, but the Dynamic*
strategies additionally lose the carefully accumulated knowledge their
block reuse depends on.

Protocol per repetition: draw a fresh platform (speeds uniform in
[10, 100], as in the paper), estimate the nominal makespan
``n^2 / sum(speeds)``, pre-draw a :class:`~repro.faults.models.FaultSchedule`
whose per-worker crash rate yields the target expected crash count over
that nominal duration, and run :func:`~repro.faults.engine.simulate_faulty`
with the default reassignment policy.  Everything derives from one seed per
repetition, so the sweep is exactly reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.core.analysis.lower_bounds import lower_bound
from repro.core.strategies.registry import make_strategy
from repro.experiments.config import FigureData, check_scale
from repro.faults.engine import simulate_faulty
from repro.faults.models import FaultSchedule
from repro.platform.platform import Platform
from repro.platform.speeds import uniform_speeds
from repro.store.cache import ResultStore
from repro.store.cells import summary_from_payload, summary_to_payload
from repro.store.fingerprint import ENGINE_VERSION, seed_token
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.stats import RunningStats, Summary

__all__ = ["CHURN_STRATEGIES", "churn_summary", "flt01"]

# One cached cell = one crash level of the sweep (all strategies together):
# a single RNG stream threads sequentially through the platform draw, the
# schedule draw and every strategy's run, so finer-grained caching would
# change RNG consumption.  Bump the schema tag on key- or payload-shape
# changes.
_CHURN_SCHEMA = "repro.store.churn/1"
_CHURN_KIND = "churn-cell"

#: Strategies compared under churn: the outer-product cast of Figure 4.
CHURN_STRATEGIES = ("RandomOuter", "SortedOuter", "DynamicOuter", "DynamicOuter2Phases")

#: Mean downtime, as a fraction of the nominal (fault-free) makespan.
_DOWNTIME_FRACTION = 0.1


def _crash_grid(scale: str) -> Sequence[float]:
    """Expected crashes per worker over one nominal run duration."""
    return {
        "paper": (0.0, 0.5, 1.0, 2.0, 4.0, 8.0),
        "medium": (0.0, 1.0, 2.0, 4.0),
        "ci": (0.0, 1.0, 2.0),
    }[scale]


def _churn_cell_key(
    *, p: int, n: int, reps: int, seed: SeedLike, expected_crashes: float
) -> Optional[Dict[str, Any]]:
    """Cache key for one crash level, or ``None`` when the seed is uncacheable."""
    seed_tok = seed_token(seed)
    if seed_tok is None:
        return None
    return {
        "schema": _CHURN_SCHEMA,
        "engine": ENGINE_VERSION,
        "p": int(p),
        "n": int(n),
        "reps": int(reps),
        "seed": seed_tok,
        "expected_crashes": float(expected_crashes),
        "downtime_fraction": _DOWNTIME_FRACTION,
        "strategies": list(CHURN_STRATEGIES),
    }


def _load_churn_cell(
    store: ResultStore, key: Dict[str, Any]
) -> Optional[Dict[str, Summary]]:
    """Cached ``{strategy: Summary, "crashes_observed": Summary}`` or ``None``."""
    payload = store.get(key, kind=_CHURN_KIND)
    if payload is None:
        return None
    try:
        out = {
            name: summary_from_payload(payload["strategies"][name])[0]
            for name in CHURN_STRATEGIES
        }
        out["crashes_observed"] = summary_from_payload(payload["observed"])[0]
    except (KeyError, TypeError, ValueError):
        return None
    return out


def flt01(
    scale: str = "ci",
    seed: SeedLike = 0,
    workers: int = 1,
    cache: Optional[ResultStore] = None,
) -> FigureData:
    """Churn sweep: normalized communication vs expected crashes per worker.

    ``workers`` is accepted for interface parity with the other figure
    generators but the sweep always runs serially: fault-aware runs are
    dominated by per-task bookkeeping, not the replicate count.

    A *cache* memoizes each crash level as one cell (all strategies plus the
    observed crash count): one RNG stream threads through the platform draw,
    the schedule draw and every strategy in sequence, so the level is the
    finest cacheable unit.
    """
    check_scale(scale)
    p = 20
    n = {"paper": 100, "medium": 60, "ci": 16}[scale]
    reps = {"paper": 10, "medium": 5, "ci": 2}[scale]

    fig = FigureData(
        figure_id="flt01",
        title="Outer product under worker churn (p=20)",
        xlabel="Expected crashes per worker (per nominal run)",
        ylabel="Normalized communication amount",
        meta={
            "kernel": "outer",
            "n": n,
            "p": p,
            "reps": reps,
            "downtime_fraction": _DOWNTIME_FRACTION,
            "policy": "ReassignLost",
        },
    )
    for name in CHURN_STRATEGIES:
        fig.new_series(name)
    crash_stats = fig.new_series("crashes_observed")

    for expected_crashes in _crash_grid(scale):
        key = None
        if cache is not None:
            key = _churn_cell_key(
                p=p, n=n, reps=reps, seed=seed, expected_crashes=expected_crashes
            )
            if key is not None:
                cell = _load_churn_cell(cache, key)
                if cell is not None:
                    for name in CHURN_STRATEGIES:
                        fig[name].add(expected_crashes, cell[name].mean, cell[name].std)
                    obs = cell["crashes_observed"]
                    crash_stats.add(expected_crashes, obs.mean, obs.std)
                    continue
        per_point: Dict[str, RunningStats] = {name: RunningStats() for name in CHURN_STRATEGIES}
        observed = RunningStats()
        for rng in spawn_rngs(seed, reps):
            platform = Platform(uniform_speeds(p, 10, 100, rng=rng))
            nominal = n * n / float(platform.speeds.sum())
            if expected_crashes > 0.0:
                # Crashes keep firing while recovery extends the run, so
                # draw the schedule over a generous multiple of the nominal
                # makespan; the rate is what fixes the expected count.
                schedule = FaultSchedule.draw(
                    p,
                    4.0 * nominal,
                    rng=rng,
                    crash_rate=expected_crashes / nominal,
                    mean_downtime=_DOWNTIME_FRACTION * nominal,
                )
            else:
                schedule = FaultSchedule.empty()
            lb = lower_bound("outer", platform.relative_speeds, n)
            for name in CHURN_STRATEGIES:
                strategy = make_strategy(name, n, collect_ids=True)
                result = simulate_faulty(strategy, platform, schedule=schedule, rng=rng)
                per_point[name].add(result.normalized(lb))
                if name == CHURN_STRATEGIES[0]:
                    assert result.faults is not None
                    observed.add(float(result.faults.n_crashes) / p)
        summaries = {name: per_point[name].summary() for name in CHURN_STRATEGIES}
        for name in CHURN_STRATEGIES:
            fig[name].add(expected_crashes, summaries[name].mean, summaries[name].std)
        obs = observed.summary()
        crash_stats.add(expected_crashes, obs.mean, obs.std)
        if cache is not None and key is not None:
            cache.put(
                key,
                {
                    "strategies": {
                        name: summary_to_payload(summaries[name], None)
                        for name in CHURN_STRATEGIES
                    },
                    "observed": summary_to_payload(obs, None),
                },
                kind=_CHURN_KIND,
            )
    return fig


def churn_summary(fig: FigureData) -> Dict[str, Any]:
    """JSON-ready summary of a ``flt01`` figure (for the CI artifact).

    Reports, per strategy, the normalized communication at zero churn and at
    the highest churn level, plus the relative degradation between the two —
    the quantity the sweep exists to measure.
    """
    if fig.figure_id != "flt01":
        raise ValueError(f"expected a flt01 figure, got {fig.figure_id!r}")
    strategies: Dict[str, Any] = {}
    for name in CHURN_STRATEGIES:
        series = fig[name]
        if len(series) == 0:
            continue
        baseline = series.mean[0]
        worst = series.mean[-1]
        strategies[name] = {
            "x": list(series.x),
            "mean": list(series.mean),
            "std": list(series.std),
            "baseline": baseline,
            "at_max_churn": worst,
            "degradation": (worst - baseline) / baseline if baseline > 0 else float("nan"),
        }
    return {
        "figure": fig.figure_id,
        "title": fig.title,
        "meta": {k: _jsonable(v) for k, v in fig.meta.items()},
        "strategies": strategies,
        "crashes_observed": {
            "x": list(fig["crashes_observed"].x),
            "mean": list(fig["crashes_observed"].mean),
        },
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value
