"""Coordinator-free multi-worker sweeps over one shared store.

``repro-experiments run --workers-external`` turns each invocation into
one of N interchangeable sweep workers.  There is no master process; the
store *is* the coordinator:

1. **Plan** — the worker runs the figure generator under
   :func:`~repro.experiments.runner.collect_planned_cells`, which records
   the deterministic grid of replicate cells instead of computing it.
   Every worker derives the identical plan from (figure, scale, seed).
2. **Publish** — the plan's fingerprints are written to the
   :class:`~repro.store.orchestrator.SweepOrchestrator` cell manifest
   (idempotent: identical bytes from every worker) and journaled as
   ``accepted`` under a deterministic job id.
3. **Drain** — :func:`repro.store.claims.drain_cells` walks the grid:
   cells already in the store are skipped, unclaimed cells are claimed
   and computed, foreign-claimed cells are revisited until their owner
   finishes — or dies, goes stale, and is stolen from.
4. **Assemble** — the caller re-runs the generator normally with the
   store as cache; every cell is a hit, so the CSV is byte-identical to
   a single-process run.

All timing (polling, staleness) lives in :mod:`repro.store.claims`; this
module stays clock-free per the R-OBS-CLOCK discipline for
``repro.experiments``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.figures import generate
from repro.experiments.runner import PlannedCell, average_normalized_comm, collect_planned_cells
from repro.store.cache import ResultStore
from repro.store.claims import ClaimRegistry, DrainStats, drain_cells
from repro.store.fingerprint import ENGINE_VERSION, fingerprint, seed_token
from repro.store.journal import Journal
from repro.store.orchestrator import SweepOrchestrator
from repro.utils.rng import SeedLike

__all__ = ["drain_figure", "external_job_id", "plan_figure_cells"]

#: Schema tag fingerprinted into external-mode job ids.
_JOB_SCHEMA = "repro.store.job/1"


def plan_figure_cells(figure_id: str, *, scale: str, seed: SeedLike) -> List[PlannedCell]:
    """The deduplicated, cacheable cell grid *figure_id* would compute.

    Runs the real generator under the plan collector (cheap: analytical
    series still evaluate, simulations do not), then drops uncacheable
    cells and duplicate fingerprints.  Deterministic in its arguments —
    the property the whole external mode rests on.
    """
    with collect_planned_cells() as bucket:
        generate(figure_id, scale=scale, seed=seed, workers=1, cache=None)
    seen: Dict[str, PlannedCell] = {}
    for cell in bucket:
        if cell.fingerprint is not None and cell.fingerprint not in seen:
            seen[cell.fingerprint] = cell
    return list(seen.values())


def external_job_id(figure_id: str, *, scale: str, seed: SeedLike) -> Optional[str]:
    """Deterministic journal job id for one figure sweep, or ``None``.

    ``None`` mirrors :class:`~repro.store.orchestrator.SweepOrchestrator`'s
    unresumable case: a seed that cannot be tokenized cannot be identified
    across processes, so its sweep gets no cross-process job identity.
    """
    tok = seed_token(seed)
    if tok is None:
        return None
    return fingerprint(
        {
            "schema": _JOB_SCHEMA,
            "engine": ENGINE_VERSION,
            "figure": str(figure_id),
            "scale": str(scale),
            "seed": tok,
        }
    )


def drain_figure(
    figure_id: str,
    *,
    scale: str,
    seed: SeedLike,
    store: ResultStore,
    claims: ClaimRegistry,
    journal: Optional[Journal] = None,
    orchestrator: Optional[SweepOrchestrator] = None,
    workers: int = 1,
    vectorize: "bool | str" = "auto",
    poll_interval: float = 0.05,
    timeout: Optional[float] = None,
) -> DrainStats:
    """Plan, publish and drain one figure's cell grid as one worker.

    Safe to run in any number of processes concurrently: claims guarantee
    each cold cell is computed exactly once, and the function returns when
    *every* planned cell is present in the store — whether this worker
    computed it, a peer did, or a peer died and this worker stole it.
    ``workers``/``vectorize`` configure how *this* worker computes the
    cells it wins (they do not affect results, only speed).
    """
    plan = plan_figure_cells(figure_id, scale=scale, seed=seed)
    job = external_job_id(figure_id, scale=scale, seed=seed)
    fingerprints = sorted(c.fingerprint for c in plan if c.fingerprint is not None)
    if orchestrator is not None:
        orchestrator.write_cell_manifest(figure_id, fingerprints)
    if journal is not None and job is not None:
        journal.append_many("accepted", fingerprints, job=job, owner=claims.owner)

    def compute(cell: PlannedCell) -> None:
        average_normalized_comm(
            cell.strategy_factory,
            cell.platform_factory,
            cell.n,
            cell.reps,
            seed=cell.seed,
            workers=workers,
            cache=store,
            vectorize=vectorize,
        )

    cells = {c.fingerprint: c for c in plan if c.fingerprint is not None}
    return drain_cells(
        store,
        cells,
        compute,
        claims=claims,
        journal=journal,
        job=job,
        poll_interval=poll_interval,
        timeout=timeout,
    )
