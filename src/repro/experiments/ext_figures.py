"""Extension experiments, registered alongside the paper's figures.

These go beyond the paper (DESIGN.md "extensions"):

========  ==================================================================
ext01     factorization DAGs: random vs locality scheduling (Cholesky + QR)
ext02     overlap model: slowdown vs bandwidth and prefetch depth
ext03     Random baselines vs their coupon-collector closed form
========  ==================================================================

The generators accept the driver-wide ``workers`` keyword for interface
uniformity with :func:`repro.experiments.figures.generate`, but always run
serially: they drive the extension engines directly rather than going
through the replicate runner.  The ``cache`` keyword is likewise accepted
and ignored — these sweeps finish in seconds at every scale, so memoizing
them buys nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.core.analysis.random_baseline import (
    expected_random_matrix_volume,
    expected_random_outer_volume,
)
from repro.core.strategies.registry import make_strategy
from repro.experiments.config import FigureData, check_scale
from repro.extensions.cholesky import (
    LocalityScheduler as CholLocality,
    RandomScheduler as CholRandom,
    simulate_cholesky,
)
from repro.extensions.lu import (
    LocalityScheduler as LuLocality,
    RandomScheduler as LuRandom,
    simulate_lu,
)
from repro.extensions.overlap import critical_bandwidth, simulate_with_bandwidth
from repro.extensions.qr import (
    LocalityScheduler as QrLocality,
    RandomScheduler as QrRandom,
    simulate_qr,
)
from repro.platform.platform import Platform
from repro.platform.speeds import uniform_speeds
from repro.simulator.engine import simulate
from repro.store.cache import ResultStore
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import summarize

__all__ = ["ext01", "ext02", "ext03"]


def ext01(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Extension: locality vs random scheduling on factorization DAGs."""
    check_scale(scale)
    p = {"paper": 16, "medium": 16, "ci": 6}[scale]
    tiles = {"paper": (8, 12, 16, 20, 24), "medium": (8, 12, 16, 20), "ci": (6, 10)}[scale]
    reps = {"paper": 10, "medium": 5, "ci": 2}[scale]

    fig = FigureData(
        figure_id="ext01",
        title="Factorization DAGs: blocks fetched, random vs locality",
        xlabel="Tiles per dimension",
        ylabel="Blocks fetched per task",
        meta={"p": p, "reps": reps},
    )
    runners = {
        "RandomCholesky": lambda n, pf, r: simulate_cholesky(n, pf, CholRandom(), rng=r),
        "LocalityCholesky": lambda n, pf, r: simulate_cholesky(n, pf, CholLocality(), rng=r),
        "RandomQR": lambda n, pf, r: simulate_qr(n, pf, QrRandom(), rng=r),
        "LocalityQR": lambda n, pf, r: simulate_qr(n, pf, QrLocality(), rng=r),
        "RandomLU": lambda n, pf, r: simulate_lu(n, pf, LuRandom(), rng=r),
        "LocalityLU": lambda n, pf, r: simulate_lu(n, pf, LuLocality(), rng=r),
    }
    for name in runners:
        fig.new_series(name)
    master = as_generator(seed)
    for n in tiles:
        platform = Platform(uniform_speeds(p, 10, 100, rng=master))
        for name, run in runners.items():
            values = []
            for r in range(reps):
                result = run(n, platform, 1000 * r + n)
                values.append(result.total_blocks / result.total_tasks)
            s = summarize(values)
            fig[name].add(n, s.mean, s.std)
    return fig


def ext02(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Extension: overlap slowdown vs bandwidth, one series per prefetch depth."""
    check_scale(scale)
    p = 20
    n = {"paper": 100, "medium": 100, "ci": 30}[scale]
    factors = {"paper": (0.25, 0.5, 1.0, 2.0, 4.0, 8.0), "medium": (0.25, 0.5, 1.0, 2.0, 4.0), "ci": (0.5, 2.0)}[
        scale
    ]
    depths = {"paper": (0, 1, 2, 8, 32), "medium": (0, 2, 16), "ci": (0, 2)}[scale]

    platform = Platform(uniform_speeds(p, 10, 100, rng=as_generator(seed)))
    factory = lambda: make_strategy("DynamicOuter2Phases", n)  # noqa: E731
    b_star = critical_bandwidth(factory, platform, rng=seed)

    fig = FigureData(
        figure_id="ext02",
        title="Overlap model: slowdown vs link bandwidth (DynamicOuter2Phases)",
        xlabel="Bandwidth / critical bandwidth",
        ylabel="Makespan / compute-bound ideal",
        meta={"p": p, "n": n, "critical_bandwidth": b_star},
    )
    for depth in depths:
        series = fig.new_series(f"prefetch={depth}")
        for factor in factors:
            result = simulate_with_bandwidth(
                factory(), platform, bandwidth=factor * b_star, prefetch_tasks=depth, rng=seed
            )
            series.add(factor, result.slowdown)
    return fig


def ext03(scale: str = "ci", seed: SeedLike = 0, workers: int = 1, cache: Optional[ResultStore] = None) -> FigureData:
    """Extension: Random baselines vs the coupon-collector prediction."""
    check_scale(scale)
    n_outer = {"paper": 100, "medium": 100, "ci": 30}[scale]
    n_matrix = {"paper": 30, "medium": 24, "ci": 8}[scale]
    ps = {"paper": (10, 50, 100, 200, 300), "medium": (10, 50, 100, 200), "ci": (10, 40)}[scale]
    reps = {"paper": 10, "medium": 5, "ci": 2}[scale]

    fig = FigureData(
        figure_id="ext03",
        title="Random baselines vs coupon-collector closed form",
        xlabel="Number of processors",
        ylabel="Communication volume (blocks)",
        meta={"n_outer": n_outer, "n_matrix": n_matrix, "reps": reps},
    )
    for label in ("RandomOuter", "OuterFormula", "RandomMatrix", "MatrixFormula"):
        fig.new_series(label)

    master = as_generator(seed)
    for p in ps:
        platform = Platform(uniform_speeds(p, 10, 100, rng=master))
        rel = platform.relative_speeds
        outer_sims = [
            simulate(make_strategy("RandomOuter", n_outer), platform, rng=r).total_blocks for r in range(reps)
        ]
        matrix_sims = [
            simulate(make_strategy("RandomMatrix", n_matrix), platform, rng=r).total_blocks for r in range(reps)
        ]
        so = summarize(outer_sims)
        sm = summarize(matrix_sims)
        fig["RandomOuter"].add(p, so.mean, so.std)
        fig["OuterFormula"].add(p, expected_random_outer_volume(rel, n_outer))
        fig["RandomMatrix"].add(p, sm.mean, sm.std)
        fig["MatrixFormula"].add(p, expected_random_matrix_volume(rel, n_matrix))
    return fig
