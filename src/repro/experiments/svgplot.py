"""Self-contained SVG line charts for figure data.

The offline environment has no plotting stack, so this small renderer
turns a :class:`~repro.experiments.config.FigureData` into a standalone
SVG file: axes with tick labels, one polyline + markers per series,
optional ±std whiskers, and a legend.  The output opens in any browser and
is diff-friendly (deterministic text).
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

from repro.experiments.config import FigureData, Series

__all__ = ["render_svg", "write_svg"]

# A colorblind-safe categorical palette (Okabe-Ito).
_PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)

_WIDTH, _HEIGHT = 720, 440
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 180, 42, 52


def _nice_ticks(lo: float, hi: float, target: int = 6) -> List[float]:
    """Round tick positions covering [lo, hi] (1/2/5 ladder)."""
    import math

    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(target - 1, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    best = mag
    for step in (1.0, 2.0, 5.0, 10.0):
        cand = step * mag
        if abs((hi - lo) / cand - (target - 1)) < abs((hi - lo) / best - (target - 1)):
            best = cand
    first = math.floor(lo / best) * best
    ticks = []
    t = first
    while t <= hi + 1e-12 * max(abs(hi), 1.0):
        if t >= lo - 1e-12 * max(abs(lo), 1.0):
            ticks.append(round(t, 10))
        t += best
    return ticks or [lo, hi]


def _bounds(series: Sequence[Series]) -> Tuple[float, float, float, float]:
    xs = [x for s in series for x in s.x]
    ys = [m + sd for s in series for m, sd in zip(s.mean, s.std)]
    ys += [m - sd for s in series for m, sd in zip(s.mean, s.std)]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_lo == x_hi:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    pad = 0.05 * (y_hi - y_lo or 1.0)
    return x_lo, x_hi, y_lo - pad, y_hi + pad


def render_svg(fig: FigureData) -> str:
    """Render the figure as an SVG document string."""
    series = [s for s in fig.series.values() if len(s) > 0]
    if not series:
        raise ValueError(f"figure {fig.figure_id} has no data to plot")
    x_lo, x_hi, y_lo, y_hi = _bounds(series)
    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def sx(x: float) -> float:
        return _MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return _MARGIN_T + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_MARGIN_L}" y="22" font-size="15" font-weight="bold">{_esc(fig.title)}</text>',
    ]

    # Axes frame and grid.
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#444" stroke-width="1"/>'
    )
    for ty in _nice_ticks(y_lo, y_hi):
        y = sy(ty)
        if _MARGIN_T - 1 <= y <= _MARGIN_T + plot_h + 1:
            parts.append(
                f'<line x1="{_MARGIN_L}" y1="{y:.1f}" x2="{_MARGIN_L + plot_w}" y2="{y:.1f}" '
                'stroke="#ddd" stroke-width="0.7"/>'
            )
            parts.append(f'<text x="{_MARGIN_L - 8}" y="{y + 4:.1f}" text-anchor="end">{ty:g}</text>')
    if fig.x_categories is not None:
        x_ticks = list(range(len(fig.x_categories)))
        labels = list(fig.x_categories)
    else:
        x_ticks = _nice_ticks(x_lo, x_hi)
        labels = [f"{t:g}" for t in x_ticks]
    for tx, label in zip(x_ticks, labels):
        x = sx(tx)
        if _MARGIN_L - 1 <= x <= _MARGIN_L + plot_w + 1:
            parts.append(
                f'<line x1="{x:.1f}" y1="{_MARGIN_T + plot_h}" x2="{x:.1f}" '
                f'y2="{_MARGIN_T + plot_h + 5}" stroke="#444"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 20}" text-anchor="middle">{_esc(label)}</text>'
            )

    # Axis labels.
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.1f}" y="{_HEIGHT - 10}" text-anchor="middle">'
        f"{_esc(fig.xlabel)}</text>"
    )
    parts.append(
        f'<text x="16" y="{_MARGIN_T + plot_h / 2:.1f}" text-anchor="middle" '
        f'transform="rotate(-90 16 {_MARGIN_T + plot_h / 2:.1f})">{_esc(fig.ylabel)}</text>'
    )

    # Series.
    for idx, (label, s) in enumerate(fig.series.items()):
        if len(s) == 0:
            continue
        color = _PALETTE[idx % len(_PALETTE)]
        pts = sorted(zip(s.x, s.mean, s.std))
        path = " ".join(f"{sx(x):.1f},{sy(m):.1f}" for x, m, _ in pts)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" stroke-width="1.8"/>'
        )
        for x, m, sd in pts:
            cx, cy = sx(x), sy(m)
            if sd > 0:
                parts.append(
                    f'<line x1="{cx:.1f}" y1="{sy(m - sd):.1f}" x2="{cx:.1f}" '
                    f'y2="{sy(m + sd):.1f}" stroke="{color}" stroke-width="1"/>'
                )
            parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="3" fill="{color}"/>')
        # Legend entry.
        ly = _MARGIN_T + 16 * idx
        lx = _MARGIN_L + plot_w + 14
        parts.append(
            f'<line x1="{lx}" y1="{ly + 5}" x2="{lx + 20}" y2="{ly + 5}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 26}" y="{ly + 9}">{_esc(label)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(fig: FigureData, path: str) -> str:
    """Render and write the figure; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(render_svg(fig))
    return path


def _esc(text: str) -> str:
    return str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
