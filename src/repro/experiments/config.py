"""Figure-data containers and scale presets.

A :class:`FigureData` is the plot-ready outcome of one experiment: named
series of (x, mean, std) triples plus axis metadata.  Everything is plain
data so it can be rendered to CSV or ASCII without a plotting dependency.

Scales
------
``"paper"``
    The exact parameters of the paper's figures (p up to 300, n up to
    1000, 10-50 repetitions).  Minutes to hours of CPU.
``"medium"``
    A faithful hours-to-minutes reduction (same p-grid shape, n capped,
    5 repetitions); the scale used to produce EXPERIMENTS.md.
``"ci"``
    Same experiment shape at smoke size (small p-grid, reduced n, 2
    repetitions).  Seconds; used by the benchmark suite's default runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Series", "FigureData", "SCALES", "check_scale"]

SCALES = ("paper", "medium", "ci")


def check_scale(scale: str) -> str:
    """Validate an experiment scale name; returns it unchanged."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


@dataclass
class Series:
    """One curve of a figure: aligned x, mean and std arrays."""

    label: str
    x: List[float] = field(default_factory=list)
    mean: List[float] = field(default_factory=list)
    std: List[float] = field(default_factory=list)

    def add(self, x: float, mean: float, std: float = 0.0) -> None:
        self.x.append(float(x))
        self.mean.append(float(mean))
        self.std.append(float(std))

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class FigureData:
    """Plot-ready outcome of one experiment."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, Series] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    x_categories: Optional[Sequence[str]] = None  # for categorical x-axes (Fig. 8)

    def new_series(self, label: str) -> Series:
        if label in self.series:
            raise ValueError(f"series {label!r} already exists in {self.figure_id}")
        s = Series(label=label)
        self.series[label] = s
        return s

    def __getitem__(self, label: str) -> Series:
        return self.series[label]
