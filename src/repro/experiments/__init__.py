"""Experiment harness: regenerate every figure of the paper's evaluation.

* :mod:`~repro.experiments.config` — figure-data containers and scale
  presets (``"paper"`` reproduces the paper's parameters, ``"ci"`` is a
  minutes-scale smoke configuration with the same shape);
* :mod:`~repro.experiments.runner` — repetition/aggregation helpers around
  the simulator;
* :mod:`~repro.experiments.figures` — one generator per paper figure
  (``fig01`` ... ``fig11``, plus ``sec36`` for the Section-3.6 study);
* :mod:`~repro.experiments.parallel` — process-parallel replicate
  execution, bit-identical to the serial runner for any worker count;
* :mod:`~repro.experiments.bench` — the ``repro-bench`` persistent
  benchmark harness (fixed suite, JSON records, regression comparison);
* :mod:`~repro.experiments.io` — CSV/terminal rendering of figure data;
* :mod:`~repro.experiments.cli` — the ``repro-experiments`` entry point.
"""

from repro.experiments.config import FigureData, Series
from repro.experiments.figures import FIGURES, generate
from repro.experiments.io import figure_to_rows, render_figure, write_csv
from repro.experiments.parallel import parallel_average_normalized_comm
from repro.experiments.runner import average_normalized_comm, mean_analysis_ratio

__all__ = [
    "FigureData",
    "Series",
    "FIGURES",
    "generate",
    "write_csv",
    "render_figure",
    "figure_to_rows",
    "average_normalized_comm",
    "mean_analysis_ratio",
    "parallel_average_normalized_comm",
]
